"""Baseline comparison: Tucker vs PCA / Tucker1 (paper Sec. I motivation).

The paper motivates Tucker over prior PCA-based compression of combustion
data (ref [23]): PCA exploits redundancy in a single matricization while
Tucker compresses every mode.  This bench measures compression at equal
error budget on all three proxies:

* Tucker beats the best single-mode baseline on every dataset;
* the margin is largest for SP (redundancy in all five modes) and smallest
  for TJLR (little redundancy anywhere).
"""


from repro.baselines import PcaCompressor, Tucker1Compressor
from repro.core import sthosvd

from benchmarks.conftest import table

EPS = 1e-3


def _best_baseline(compressor_cls, x):
    best = None
    for mode in range(x.ndim):
        c = compressor_cls(mode).compress(x, tol=EPS)
        if best is None or c.compression_ratio > best[1]:
            best = (mode, c.compression_ratio, c.relative_error(x))
    return best


def test_tucker_vs_baselines(benchmark, datasets):
    def run():
        out = {}
        for name in ("HCCI", "TJLR", "SP"):
            _, x = datasets[name]
            tucker = sthosvd(x, tol=EPS)
            pca = _best_baseline(PcaCompressor, x)
            t1 = _best_baseline(Tucker1Compressor, x)
            out[name] = {
                "tucker": tucker.decomposition.compression_ratio,
                "pca": pca,
                "tucker1": t1,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r["tucker"],
                r["pca"][1],
                f"mode {r['pca'][0]}",
                r["tucker1"][1],
                r["tucker"] / max(r["pca"][1], r["tucker1"][1]),
            ]
        )
    table(
        f"Tucker vs single-matricization baselines at eps = {EPS:g}",
        ["dataset", "Tucker C", "PCA C", "PCA mode", "Tucker1 C", "margin"],
        rows,
    )

    for name, r in results.items():
        best_baseline = max(r["pca"][1], r["tucker1"][1])
        # Tucker wins everywhere; every method met the error budget.
        assert r["tucker"] > best_baseline
        assert r["pca"][2] <= EPS
    # Margin ordering: biggest on SP, smallest on TJLR.
    margins = {
        name: r["tucker"] / max(r["pca"][1], r["tucker1"][1])
        for name, r in results.items()
    }
    assert margins["SP"] > margins["TJLR"]
