"""Ablation (Sec. V-B): blocked TTM vs the single reduce-scatter fast path.

The paper notes that when ``K <= J_n / P_n`` the blocking strategy can be
replaced by one local multiply plus one reduce-scatter, reducing latency
but not bandwidth or flops.  Both strategies are implemented; this bench
measures both on the simulator and checks:

* identical results (cross-checked in unit tests) and identical flops;
* the reduce-scatter path sends fewer messages;
* neither path's bandwidth advantage exceeds the model's prediction.
"""

import numpy as np

from repro.distributed import DistTensor, dist_ttm
from repro.mpi import CartGrid, run_spmd
from repro.tensor import low_rank_tensor

from benchmarks.conftest import table

SHAPE = (32, 16, 16)
K = 8
GRID = (4, 1, 2)
P = 8


def _run(strategy):
    x = low_rank_tensor(SHAPE, (8, 8, 8), seed=14, noise=1e-6)
    v = np.random.default_rng(7).standard_normal((K, SHAPE[0]))

    def prog(comm):
        g = CartGrid(comm, GRID)
        dt = DistTensor.from_global(g, x)
        sl = dt.local_slices[0]
        z = dist_ttm(dt, v[:, sl].copy(), 0, K, strategy=strategy)
        return z.to_global()

    res = run_spmd(P, prog)
    return res[0], res.ledger


def test_ttm_blocking_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {s: _run(s) for s in ("blocked", "reduce_scatter")},
        rounds=1,
        iterations=1,
    )
    (z_blocked, ledger_blocked) = results["blocked"]
    (z_rs, ledger_rs) = results["reduce_scatter"]

    np.testing.assert_allclose(z_blocked, z_rs, atol=1e-10)

    rows = []
    for name, ledger in (("blocked", ledger_blocked), ("reduce_scatter", ledger_rs)):
        rows.append(
            [
                name,
                ledger.total_flops(),
                ledger.total_messages(),
                ledger.modeled_time() * 1e3,
            ]
        )
    table(
        f"Sec. V-B ablation: TTM strategies, {SHAPE} x_0 V ({K} rows), "
        f"grid {GRID}",
        ["strategy", "flops", "messages", "modeled ms"],
        rows,
    )

    # Same arithmetic either way.
    assert ledger_blocked.total_flops() == ledger_rs.total_flops()
    # Fewer collective calls on the fast path: P_n reduces vs 1
    # reduce-scatter per rank.
    assert ledger_rs.total_messages() < ledger_blocked.total_messages()
    # The fast path is never slower in modeled time.
    assert ledger_rs.modeled_time() <= ledger_blocked.modeled_time() * 1.01
