"""Fig. 9a: strong scaling of ST-HOSVD and one HOOI iteration.

Paper experiment: 200^4 tensor (256 GB) compressed to a 20^4 core on
24 * 2^k cores, k = 0..9, best of several grids per point.  Claims
reproduced with the calibrated model:

* single-node ST-HOSVD takes ~3 s (the paper's headline number);
* times decrease monotonically through 256 nodes (paper: improvements
  continue up to 256 nodes);
* parallel efficiency decays as P grows (far-from-linear speedup at the
  high end);
* one HOOI iteration costs the same order as ST-HOSVD.

A small instance is also executed on the simulator at P = 1..16 to verify
measured modeled-time speedups.
"""


from repro.data import strong_scaling_problem
from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid, resolve_backend, run_spmd
from repro.perfmodel import EDISON_CALIBRATED, strong_scaling_curve
from repro.tensor import low_rank_tensor

from benchmarks.conftest import table


def test_fig9a_model_at_paper_scale(benchmark):
    problems = [strong_scaling_problem(k) for k in range(10)]
    procs = [p.n_procs for p in problems]
    points = benchmark.pedantic(
        lambda: strong_scaling_curve(
            (200,) * 4, (20,) * 4, procs, EDISON_CALIBRATED
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for k, pt in enumerate(points):
        rows.append(
            [
                2**k,
                pt.n_procs,
                "x".join(map(str, pt.grid)),
                pt.sthosvd_time,
                pt.hooi_time,
            ]
        )
    table(
        "Fig. 9a: strong scaling 200^4 -> 20^4 (modeled, best grid per P)",
        ["nodes", "cores", "grid", "ST-HOSVD s", "HOOI iter s"],
        rows,
    )
    print("paper: ~3 s on one node; time decreasing through 256 nodes")

    st_times = [p.sthosvd_time for p in points]
    # Headline: ~3 s on one node (within 2x given the calibration).
    assert 1.5 < st_times[0] < 6.0
    # Monotone decrease through 256 nodes (index 8).
    assert all(b < a for a, b in zip(st_times[:9], st_times[1:9]))
    # Efficiency decays: speedup at 512 nodes is far below ideal 512x...
    speedup = st_times[0] / st_times[-1]
    assert speedup < 0.7 * 512
    # ...but scaling is still useful (>10x).
    assert speedup > 10
    # HOOI iteration within 3x of ST-HOSVD at every point.
    for pt in points:
        assert pt.hooi_time < 3 * pt.sthosvd_time


def _sthosvd_prog(comm, x, grid, ranks):
    """Module-level SPMD program: picklable by reference, so the process
    backend dispatches it to the persistent rank pool instead of forking."""
    g = CartGrid(comm, grid)
    dt = DistTensor.from_global(g, x)
    dist_sthosvd(dt, ranks=ranks)
    return None


def test_fig9a_simulator_small_scale(benchmark):
    # Large enough that compute dominates communication at small P — a
    # 16^4 tensor is communication-bound already at P = 4 and would not
    # strong-scale even in the paper's model.
    x = low_rank_tensor((32, 32, 32, 32), (8, 8, 8, 8), seed=13, noise=1e-6)
    configs = [(1, (1, 1, 1, 1)), (4, (1, 1, 2, 2)), (16, (1, 2, 2, 4))]

    def run_all():
        out = []
        for p, grid in configs:
            res = run_spmd(p, _sthosvd_prog, x, grid, (8, 8, 8, 8))
            out.append((p, res.ledger.modeled_time()))
        return out

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[p, t * 1e3, times[0][1] / t] for p, t in times]
    backend = resolve_backend(None).name
    table(
        f"Fig. 9a validation: simulated strong scaling 32^4 -> 8^4 "
        f"[{backend} backend]",
        ["cores", "modeled ms", "speedup"],
        rows,
    )
    print(f"spmd executor backend: {backend}")
    # More processors -> less modeled time, with sub-linear speedup.
    assert times[0][1] > times[1][1] > times[2][1]
    assert times[0][1] / times[2][1] < 16
