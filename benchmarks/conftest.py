"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison.  Absolute numbers come from proxies and the
calibrated machine model (see DESIGN.md's substitution table); the *shapes*
— orderings, ratios, crossovers — are the reproduced claims, and each
benchmark asserts them.
"""

from __future__ import annotations

import pytest

from repro.data import center_and_scale, load_dataset


def table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a fixed-width comparison table (captured with pytest -s)."""
    print()
    print("=" * max(len(title), 8 + 14 * len(headers)))
    print(title)
    print("=" * max(len(title), 8 + 14 * len(headers)))
    print("".join(f"{h:>14s}" for h in headers))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.4g}")
            else:
                cells.append(f"{str(value):>14s}")
        print("".join(cells))


@pytest.fixture(scope="session")
def datasets():
    """The three combustion proxies, normalized, built once per session."""
    out = {}
    for name in ("HCCI", "TJLR", "SP"):
        ds = load_dataset(name)
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        out[name] = (ds, x)
    return out
