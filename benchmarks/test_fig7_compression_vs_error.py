"""Fig. 7: compression ratio vs max normalized RMS error, all datasets.

Paper claims reproduced:

* at every tolerance, SP compresses most and TJLR least;
* TJLR spans roughly 2 -> 37 over eps in [1e-6, 1e-2] (an order of
  magnitude), SP spans three orders of magnitude;
* all curves are monotone in eps.
"""


from repro.core import sthosvd

from benchmarks.conftest import table

EPSILONS = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
PAPER_RANGE = {  # (C at 1e-6, C at 1e-2) from Fig. 7
    "HCCI": (3.0, 1000.0),
    "TJLR": (2.0, 37.0),
    "SP": (5.0, 5600.0),
}


def test_fig7_all_datasets(benchmark, datasets):
    def sweep():
        out = {}
        for name in ("HCCI", "TJLR", "SP"):
            _, x = datasets[name]
            out[name] = [
                sthosvd(x, tol=eps, method="svd").decomposition.compression_ratio
                for eps in EPSILONS
            ]
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name in ("HCCI", "TJLR", "SP"):
        rows.append([name] + [float(c) for c in ratios[name]])
    table(
        "Fig. 7: compression ratio vs max normalized RMS error",
        ["dataset"] + [f"{e:.0e}" for e in EPSILONS],
        rows,
    )
    print(f"paper ranges over the same eps span: "
          f"TJLR {PAPER_RANGE['TJLR']}, SP {PAPER_RANGE['SP']}")

    # Monotone per dataset.
    for series in ratios.values():
        assert all(b > a for a, b in zip(series, series[1:]))
    # Dataset ordering at every eps.
    for i in range(len(EPSILONS)):
        assert ratios["SP"][i] > ratios["HCCI"][i] > ratios["TJLR"][i]
    # Dynamic range: TJLR spans ~1 order of magnitude, SP much more.
    tjlr_span = ratios["TJLR"][-1] / ratios["TJLR"][0]
    sp_span = ratios["SP"][-1] / ratios["SP"][0]
    assert 3 < tjlr_span < 100
    assert sp_span > tjlr_span
