"""Fig. 1b: compression ratio vs normalized RMS error for the SP dataset.

Paper series (550 GB SP dataset): ratios 5, 16, 55, 231, 5580 at errors
1e-6 .. 1e-2 — roughly a decade of compression per decade of error, with
acceleration at loose tolerances.  The proxy reproduces the monotone
decade-per-decade *shape*; absolute ratios are capped by the proxy's much
smaller dimensions (see EXPERIMENTS.md).
"""


from repro.core import sthosvd

from benchmarks.conftest import table

PAPER_SERIES = {1e-6: 5, 1e-5: 16, 1e-4: 55, 1e-3: 231, 1e-2: 5580}


def test_fig1b_compression_vs_error(benchmark, datasets):
    ds, x = datasets["SP"]

    def sweep():
        out = {}
        for eps in sorted(PAPER_SERIES):
            res = sthosvd(x, tol=eps, method="svd")
            out[eps] = (
                res.decomposition.compression_ratio,
                res.decomposition.relative_error(x),
            )
        return out

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for eps in sorted(PAPER_SERIES):
        ratio, err = measured[eps]
        rows.append([f"{eps:.0e}", PAPER_SERIES[eps], ratio, err])
    table(
        f"Fig. 1b: compression vs error, SP proxy {ds.shape} "
        f"(paper: 500x500x500x11x50)",
        ["eps", "paper C", "measured C", "true error"],
        rows,
    )

    ratios = [measured[eps][0] for eps in sorted(PAPER_SERIES)]
    # Shape claims: strictly increasing with eps, > 10x per two decades,
    # and hundreds-fold compression at 1e-2.
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] / ratios[0] > 20
    assert ratios[-1] > 100
    # Every point respects its error budget.
    for eps in PAPER_SERIES:
        assert measured[eps][1] <= eps
