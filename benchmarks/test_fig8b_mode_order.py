"""Fig. 8b: ST-HOSVD runtime vs mode-processing order.

Paper problem: 25 x 250 x 250 x 250 tensor from a 10 x 10 x 100 x 100 core
on a 2x2x2x2 grid (16 cores of one node).  The paper sweeps twelve
orderings and finds:

* overall performance is mostly determined by which mode goes first;
* the *optimal* order starts with mode 2 (1-indexed) — the mode with the
  largest compression ratio (250 -> 10) — even though starting with the
  small mode 1 gives a cheaper first Gram;
* the flop-greedy heuristic of [22] is not optimal here.

Reproduced at paper scale with the calibrated model, plus a scaled-down
simulated execution checking that order matters in the same direction.
"""


from repro.core.sthosvd import greedy_flops_order
from repro.data import fig8b_problem
from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid, run_spmd
from repro.perfmodel import EDISON_CALIBRATED, mode_order_sweep
from repro.tensor import low_rank_tensor

from benchmarks.conftest import table

# The twelve orderings shown in the paper's Fig. 8b (1-indexed labels).
PAPER_ORDERS = [
    (0, 1, 2, 3), (0, 2, 1, 3), (0, 2, 3, 1),
    (1, 0, 2, 3), (1, 2, 0, 3), (1, 2, 3, 0),
    (2, 0, 1, 3), (2, 0, 3, 1), (2, 1, 0, 3),
    (2, 1, 3, 0), (2, 3, 0, 1), (2, 3, 1, 0),
]


def test_fig8b_model_at_paper_scale(benchmark):
    problem = fig8b_problem()
    grid = problem.grids[0]
    points = benchmark.pedantic(
        lambda: mode_order_sweep(
            problem.shape, problem.ranks, grid, EDISON_CALIBRATED,
            orders=PAPER_ORDERS,
        ),
        rounds=1,
        iterations=1,
    )
    best = min(p.time for p in points)
    rows = [[p.label, p.time / best] for p in points]
    table(
        "Fig. 8b: relative ST-HOSVD time by mode order "
        "(25x250^3 -> 10x10x100^2, 2x2x2x2 grid, modeled)",
        ["order", "rel time"],
        rows,
    )

    best_point = min(points, key=lambda p: p.time)
    # Optimal order starts with the highest-compression mode (label '2').
    assert best_point.label.startswith("2")
    # The spread between best and worst orderings is substantial (the
    # paper's bars span ~2.5x).
    worst = max(p.time for p in points)
    assert worst / best > 1.5
    # The flop-greedy heuristic of [22] is good but not optimal here.
    greedy = greedy_flops_order(problem.shape, problem.ranks)
    greedy_label = "".join(str(m + 1) for m in greedy)
    greedy_time = next(
        (p.time for p in points if p.label == greedy_label), None
    )
    if greedy_time is not None:
        assert greedy_time >= best


def test_fig8b_simulator_order_sensitivity(benchmark):
    # Scaled instance: 5 x 20 x 20 x 20 from 2 x 2 x 8 x 8 on 2x2x2x2.
    x = low_rank_tensor((8, 20, 20, 20), (2, 2, 8, 8), seed=12, noise=1e-6)
    grid = (2, 2, 2, 2)

    def run(order):
        def prog(comm):
            g = CartGrid(comm, grid)
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=(2, 2, 8, 8), mode_order=order)
            return None

        return run_spmd(16, prog).ledger.modeled_time()

    orders = [(0, 1, 2, 3), (1, 0, 2, 3), (3, 2, 1, 0)]
    times = benchmark.pedantic(
        lambda: {o: run(o) for o in orders}, rounds=1, iterations=1
    )
    rows = [["".join(str(m + 1) for m in o), t * 1e3] for o, t in times.items()]
    table(
        "Fig. 8b validation: simulated 8x20^3 -> 2x2x8x8 on 2x2x2x2",
        ["order", "modeled ms"],
        rows,
    )
    # Processing a high-compression mode early beats leaving both
    # high-compression modes till last.
    early = min(times[(0, 1, 2, 3)], times[(1, 0, 2, 3)])
    assert early < times[(3, 2, 1, 0)]
