"""Fig. 8a: ST-HOSVD runtime breakdown vs processor grid (384^4 -> 96^4).

The paper fixes the problem (384^4 tensor, 96^4 core, P = 384) and sweeps
eleven grids, reporting a Gram/Evecs/TTM stacked-bar breakdown.  Claims
reproduced with the calibrated model at paper scale:

* grids with ``P_1 = 1`` are fastest — the first (dominant) Gram needs no
  ring exchange and the first TTM no communication;
* grids with ``P_1 = 6`` are > 2x slower than the best;
* Gram dominates the runtime of the best grids;
* Evecs is negligible everywhere.

A scaled-down instance is also *executed* on the simulated MPI runtime and
its measured ledger must rank grid families the same way as the model.
"""


from repro.data import fig8a_problem
from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid, run_spmd
from repro.perfmodel import EDISON_CALIBRATED, grid_sweep
from repro.tensor import low_rank_tensor

from benchmarks.conftest import table


def test_fig8a_model_at_paper_scale(benchmark):
    problem = fig8a_problem()
    points = benchmark.pedantic(
        lambda: grid_sweep(
            problem.shape, problem.ranks, problem.grids, EDISON_CALIBRATED
        ),
        rounds=1,
        iterations=1,
    )

    best = min(p.time for p in points)
    rows = []
    for p in points:
        b = p.breakdown()
        rows.append(
            [p.label, p.time / best, b["gram"] / p.time, b["ttm"] / p.time,
             b["evecs"] / p.time]
        )
    table(
        "Fig. 8a: relative ST-HOSVD time by processor grid "
        "(384^4 -> 96^4, P = 384, modeled)",
        ["grid", "rel time", "gram frac", "ttm frac", "evecs frac"],
        rows,
    )

    by_label = {p.label: p for p in points}
    # Best grids have P1 = 1.
    best_point = min(points, key=lambda p: p.time)
    assert best_point.grid[0] == 1
    # P1 = 6 grid is substantially slower than the best (paper: the
    # 6x4x4x4 bar is ~2.5-3x the best, and P1 > 6 grids exceed 5x; the
    # model reproduces the direction with a smaller gap because it does
    # not price cache effects of strided local layouts).
    assert by_label["6x4x4x4"].time > 1.5 * best_point.time
    # Gram dominates the best grid; evecs negligible.
    b = best_point.breakdown()
    assert b["gram"] > b["ttm"]
    assert b["evecs"] < 0.05 * best_point.time


def test_fig8a_simulator_validates_ranking(benchmark):
    # Scaled-down execution: 16^4 tensor -> 4^4 core on P = 8 with a
    # P1 = 1 grid vs a P1 = 4 grid (the paper's good/bad grid families).
    x = low_rank_tensor((16, 16, 16, 16), (4, 4, 4, 4), seed=11, noise=1e-6)
    grids = [(1, 1, 2, 4), (4, 2, 1, 1)]

    def run(grid):
        def prog(comm):
            g = CartGrid(comm, grid)
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=(4, 4, 4, 4))
            return None

        res = run_spmd(8, prog)
        return res.ledger.modeled_time(), res.ledger.section_times()

    results = benchmark.pedantic(
        lambda: [run(g) for g in grids], rounds=1, iterations=1
    )
    (good_time, good_sections), (bad_time, bad_sections) = results
    table(
        "Fig. 8a validation: simulated 16^4 -> 4^4 on P = 8",
        ["grid", "modeled ms", "gram ms", "ttm ms"],
        [
            ["1x1x2x4", good_time * 1e3, good_sections["gram"] * 1e3,
             good_sections["ttm"] * 1e3],
            ["4x2x1x1", bad_time * 1e3, bad_sections["gram"] * 1e3,
             bad_sections["ttm"] * 1e3],
        ],
    )
    assert good_time < bad_time
