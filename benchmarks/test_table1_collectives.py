"""Table I: collective communication costs in the alpha-beta-gamma model.

Validates that the simulated MPI runtime charges exactly the closed-form
costs of Table I (the cost model the whole Sec. V-VI analysis is built on),
by running each collective on the unit-cost machine, where modeled time
reduces to ``messages + words + flops``.
"""


import numpy as np
import pytest

from repro.mpi import SUM, run_spmd
from repro.perfmodel import (
    allgather_cost,
    allreduce_cost,
    reduce_cost,
    send_recv_cost,
)
from repro.perfmodel.machine import UNIT

from benchmarks.conftest import table

P = 8
WORDS = 1024


def _measure(op_name):
    def prog(comm):
        payload = np.zeros(WORDS)
        if op_name == "send/recv":
            if comm.rank == 0:
                comm.send(payload, dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
        elif op_name == "all-gather":
            comm.allgather(np.zeros(WORDS // P))
        elif op_name == "reduce":
            comm.reduce(payload, SUM, root=0)
        elif op_name == "all-reduce":
            comm.allreduce(payload, SUM)
        return None

    res = run_spmd(P, prog, machine=UNIT)
    return max(
        res.ledger.rank_costs(r).time for r in range(P)
    )


CASES = [
    ("send/recv", lambda: send_recv_cost(WORDS, UNIT)),
    ("all-gather", lambda: allgather_cost(P, WORDS, UNIT)),
    ("reduce", lambda: reduce_cost(P, WORDS, UNIT)),
    ("all-reduce", lambda: allreduce_cost(P, WORDS, UNIT)),
]


@pytest.mark.parametrize("name,formula", CASES, ids=[c[0] for c in CASES])
def test_simulator_charges_table1_formula(benchmark, name, formula):
    measured = benchmark.pedantic(
        lambda: _measure(name), rounds=3, iterations=1
    )
    expected = formula()
    table(
        f"Table I check: {name} (P={P}, W={WORDS} words, unit machine)",
        ["collective", "Table I cost", "charged"],
        [[name, float(expected), float(measured)]],
    )
    assert measured == pytest.approx(expected, rel=1e-12)


def test_table1_summary(benchmark):
    rows = []
    for name, formula in CASES:
        rows.append([name, float(formula()), float(_measure(name))])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table(
        f"Table I: collective costs on the unit machine (P={P}, W={WORDS})",
        ["collective", "closed form", "simulated"],
        rows,
    )
    for _, expected, measured in rows:
        assert measured == pytest.approx(expected, rel=1e-12)
