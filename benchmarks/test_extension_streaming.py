"""Extension benchmark: streaming vs batch ST-HOSVD.

Not a paper figure — the paper's motivating scenario (Sec. I: simulations
whose output outgrows storage) implemented as an incremental compressor.
Claims asserted:

* the streamed decomposition meets the same error tolerance as batch;
* its compression ratio is within 2x of batch;
* its peak working set (one slab + running core) is far below the full
  tensor.
"""

import numpy as np

from repro.core import StreamingTucker, normalized_rms, sthosvd

from benchmarks.conftest import table

TOL = 1e-2
CHUNK = 5


def test_streaming_vs_batch(benchmark, datasets):
    _, x = datasets["HCCI"]
    spatial, n_steps = x.shape[:-1], x.shape[-1]

    def run():
        streamer = StreamingTucker(spatial, tol=TOL)
        peak_words = 0
        for t0 in range(0, n_steps, CHUNK):
            slab = x[..., t0 : t0 + CHUNK]
            streamer.update(slab)
            core_words = (
                int(np.prod(streamer.current_ranks)) * streamer.n_steps
            )
            peak_words = max(peak_words, core_words + slab.size)
        streamed = streamer.finalize()
        batch = sthosvd(x, tol=TOL).decomposition
        return streamed, batch, peak_words

    streamed, batch, peak_words = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    err_streamed = normalized_rms(x, streamed.reconstruct())
    err_batch = normalized_rms(x, batch.reconstruct())
    rows = [
        ["streamed", str(streamed.ranks), streamed.compression_ratio,
         err_streamed, peak_words * 8 / 1e6],
        ["batch", str(batch.ranks), batch.compression_ratio, err_batch,
         x.size * 8 / 1e6],
    ]
    table(
        f"Extension: streaming vs batch ST-HOSVD on HCCI proxy (tol={TOL:g})",
        ["method", "ranks", "C", "error", "working MB"],
        rows,
    )

    assert err_streamed <= TOL
    assert streamed.compression_ratio > batch.compression_ratio / 2
    assert peak_words < x.size / 2
