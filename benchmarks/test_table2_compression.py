"""Table II: ST-HOSVD vs HOOI at eps = 1e-3 on all three datasets.

Paper claims reproduced:

* both methods meet the 1e-3 normalized RMS budget;
* HOOI's improvement over ST-HOSVD is negligible (<= ~1% relative),
  justifying the paper's recommendation to skip HOOI for this application;
* compression ratios order SP >> HCCI >> TJLR with HCCI ~ 25x;
* TJLR's species/time modes do not truncate.
"""


from repro.core import hooi, max_abs_error, normalized_rms, sthosvd

from benchmarks.conftest import table

PAPER = {
    # dataset: (ST rms, HOOI rms, compression)
    "HCCI": (9.259e-4, 9.254e-4, 25),
    "TJLR": (7.617e-4, 7.617e-4, 7),
    "SP": (8.663e-4, 8.662e-4, 231),
}


def test_table2(benchmark, datasets):
    def run():
        out = {}
        for name in ("HCCI", "TJLR", "SP"):
            _, x = datasets[name]
            st = sthosvd(x, tol=1e-3)
            ho = hooi(x, init=st, max_iterations=5)
            st_rec = st.decomposition.reconstruct()
            ho_rec = ho.decomposition.reconstruct()
            out[name] = {
                "ranks": st.ranks,
                "st_rms": normalized_rms(x, st_rec),
                "st_max": max_abs_error(x, st_rec),
                "ho_rms": normalized_rms(x, ho_rec),
                "ho_max": max_abs_error(x, ho_rec),
                "c": st.decomposition.compression_ratio,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                str(r["ranks"]),
                r["st_rms"],
                r["ho_rms"],
                r["c"],
                PAPER[name][2],
            ]
        )
    table(
        "Table II: compression and errors at eps = 1e-3",
        ["dataset", "reduced dims", "ST rms", "HOOI rms", "C", "paper C"],
        rows,
    )

    for name, r in results.items():
        # Error budget met by both methods.
        assert r["st_rms"] <= 1e-3
        assert r["ho_rms"] <= r["st_rms"] + 1e-12
        # HOOI improvement negligible (paper: 4th significant digit).
        assert (r["st_rms"] - r["ho_rms"]) / r["st_rms"] < 0.05
    # Compression ordering and HCCI magnitude.
    assert results["SP"]["c"] > results["HCCI"]["c"] > results["TJLR"]["c"]
    assert 10 < results["HCCI"]["c"] < 60  # paper: 25
