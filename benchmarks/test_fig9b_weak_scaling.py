"""Fig. 9b: weak scaling — GFLOPS per core as problem and machine grow.

Paper experiment: (200k)^4 tensors on 24 k^4 cores (k = 1..6; 12 GB to
15 TB of data), best of three grid shapes per point.  Claims reproduced:

* single-node efficiency ~2/3 of peak for ST-HOSVD (paper: 66%);
* HOOI runs at materially lower per-core rates than ST-HOSVD everywhere
  (paper: 43% vs 66% on one node);
* the 15 TB point (k = 6) is processed in about a minute of modeled time
  (paper: 70 s for ST-HOSVD + HOOI on data in memory).

Divergence disclosed: the paper measures per-core rates *decaying* to 17%
at 1296 nodes; the alpha-beta-gamma + BLAS-surrogate model keeps ST-HOSVD
rates roughly flat (its dominant first-mode GEMM grows with k).  The decay
is attributed by the paper to grid-tradeoff and system effects outside
this model — recorded in EXPERIMENTS.md rather than asserted away.
"""


from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid, resolve_backend, run_spmd
from repro.perfmodel import EDISON_CALIBRATED, weak_scaling_curve
from repro.tensor import low_rank_tensor

from benchmarks.conftest import table

PEAK = 19.2  # GFLOPS per Edison core

PAPER_EFFICIENCY = {1: (0.66, 0.43), 6: (0.17, 0.12)}  # k: (ST, HOOI)


def test_fig9b_model_at_paper_scale(benchmark):
    points = benchmark.pedantic(
        lambda: weak_scaling_curve(range(1, 7), EDISON_CALIBRATED),
        rounds=1,
        iterations=1,
    )

    rows = []
    for k, pt in enumerate(points, start=1):
        st = pt.gflops_per_core("sthosvd")
        ho = pt.gflops_per_core("hooi")
        data_tb = (200 * k) ** 4 * 8 / 1e12
        rows.append([k, pt.n_procs, data_tb, st, ho])
    table(
        "Fig. 9b: weak scaling (200k)^4 -> (20k)^4 (modeled, best of the "
        "paper's 3 grids)",
        ["k", "cores", "data TB", "GF/core ST", "GF/core HOOI"],
        rows,
    )
    print("paper: 12.7 (66%) -> 3.3 (17%) GF/core for ST-HOSVD; "
          "model keeps ST roughly flat (see module docstring)")

    st1 = points[0].gflops_per_core("sthosvd")
    ho1 = points[0].gflops_per_core("hooi")
    # Single-node efficiencies near the paper's calibration point.
    assert 0.4 < st1 / PEAK < 0.8
    assert ho1 < st1  # HOOI below ST-HOSVD everywhere (paper: 43% vs 66%)
    for pt in points:
        assert pt.gflops_per_core("hooi") < pt.gflops_per_core("sthosvd")
        assert pt.gflops_per_core("sthosvd") < PEAK

    # The 15 TB point processes in about a minute (ST-HOSVD + one HOOI
    # iteration; paper: 70 seconds).
    k6 = points[-1]
    total = k6.sthosvd_time + k6.hooi_time
    assert 10 < total < 200


def test_fig9b_terabyte_headline(benchmark):
    """Intro headline: '15 TB ... compressed ... in about a minute' and
    '12 GB ... in under a second' — check both modeled configurations."""

    points = benchmark.pedantic(
        lambda: weak_scaling_curve([1, 6], EDISON_CALIBRATED),
        rounds=1,
        iterations=1,
    )
    small, big = points
    table(
        "Intro headline timings (modeled)",
        ["config", "data", "cores", "ST-HOSVD s"],
        [
            ["k=1", "12.8 GB", small.n_procs, small.sthosvd_time],
            ["k=6", "16.6 TB", big.n_procs, big.sthosvd_time],
        ],
    )
    # 12 GB on one node: seconds (paper compresses it "in under a second"
    # on more nodes; on one node it is the ~3 s Fig. 9a point).
    assert small.sthosvd_time < 10
    # 15 TB on 1296 nodes: on the order of a minute.
    assert big.sthosvd_time < 120


def _sthosvd_prog(comm, x, grid):
    """Module-level SPMD program: picklable by reference, so the process
    backend dispatches it to the persistent rank pool instead of forking."""
    g = CartGrid(comm, grid)
    dt = DistTensor.from_global(g, x)
    dist_sthosvd(dt, ranks=(4, 4, 4, 4))
    return None


def test_fig9b_simulator_small_scale(benchmark):
    """Weak-scaling sanity on the executing simulator: constant local
    volume per rank, modeled time grows only by the added communication."""

    configs = [
        (1, (1, 1, 1, 1), (12, 12, 12, 12)),
        (4, (1, 1, 2, 2), (12, 12, 24, 24)),
    ]

    def run_all():
        out = []
        for p, grid, shape in configs:
            x = low_rank_tensor(shape, (4, 4, 4, 4), seed=29, noise=1e-6)
            res = run_spmd(p, _sthosvd_prog, x, grid)
            out.append((p, res.ledger.modeled_time()))
        return out

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    backend = resolve_backend(None).name
    table(
        f"Fig. 9b validation: simulated weak scaling, constant 12^4 per "
        f"rank [{backend} backend]",
        ["cores", "modeled ms", "efficiency"],
        [[p, t * 1e3, times[0][1] / t] for p, t in times],
    )
    print(f"spmd executor backend: {backend}")
    t1, t4 = times[0][1], times[1][1]
    # Far from free (communication enters at P=4) but far from serial
    # (4x the data does not cost 4x the single-rank time).
    assert t4 < 4 * t1
    assert t4 > 0.5 * t1
