"""Ablation (Sec. VIII-C): mode-ordering heuristics vs exhaustive search.

The paper discusses two greedy heuristics — the flop-minimizing rule of
Vannieuwenhoven et al. [22] and "maximize the compression ratio I_n/R_n" —
and notes neither is always optimal.  This bench scores both against the
exhaustive best over all 24 orderings of the Fig. 8b problem, and on a
second problem where the heuristics disagree.
"""



from repro.core.sthosvd import greedy_flops_order, greedy_ratio_order
from repro.data import fig8b_problem
from repro.perfmodel import EDISON_CALIBRATED, mode_order_sweep

from benchmarks.conftest import table


def _score(shape, ranks, grid, order):
    from repro.perfmodel import sthosvd_cost

    return sthosvd_cost(shape, ranks, grid, EDISON_CALIBRATED, mode_order=order).time


def test_heuristics_vs_exhaustive(benchmark):
    problem = fig8b_problem()
    shape, ranks, grid = problem.shape, problem.ranks, problem.grids[0]

    def run():
        points = mode_order_sweep(shape, ranks, grid, EDISON_CALIBRATED)
        best = min(points, key=lambda p: p.time)
        flops_order = tuple(greedy_flops_order(shape, ranks))
        ratio_order = tuple(greedy_ratio_order(shape, ranks))
        return {
            "exhaustive best": (best.label, best.time),
            "greedy flops [22]": (
                "".join(str(m + 1) for m in flops_order),
                _score(shape, ranks, grid, flops_order),
            ),
            "greedy ratio": (
                "".join(str(m + 1) for m in ratio_order),
                _score(shape, ranks, grid, ratio_order),
            ),
            "natural": ("1234", _score(shape, ranks, grid, (0, 1, 2, 3))),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    best_time = results["exhaustive best"][1]
    rows = [
        [name, label, time, time / best_time]
        for name, (label, time) in results.items()
    ]
    table(
        "Sec. VIII-C ablation: ordering heuristics on the Fig. 8b problem",
        ["strategy", "order", "modeled s", "vs best"],
        rows,
    )

    # Both heuristics are never better than the exhaustive optimum, and
    # both beat natural order on this problem (within 50% of optimal).
    for name in ("greedy flops [22]", "greedy ratio"):
        t = results[name][1]
        assert t >= best_time - 1e-12
        assert t <= 1.5 * best_time
    assert results["natural"][1] > best_time


def test_heuristics_can_disagree(benchmark):
    # A problem engineered so the two rules pick different first modes:
    # mode 0 is tiny (cheap first step: flops-greedy favourite) while
    # mode 1 has the extreme compression ratio (ratio-greedy favourite).
    shape, ranks = (8, 512, 64, 64), (4, 8, 32, 32)

    def run():
        return (
            tuple(greedy_flops_order(shape, ranks)),
            tuple(greedy_ratio_order(shape, ranks)),
        )

    flops_order, ratio_order = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        "Heuristic disagreement case (8x512x64x64 -> 4x8x32x32)",
        ["heuristic", "order"],
        [
            ["greedy flops", "".join(str(m + 1) for m in flops_order)],
            ["greedy ratio", "".join(str(m + 1) for m in ratio_order)],
        ],
    )
    assert flops_order[0] != ratio_order[0]
