"""Ablation (Sec. IX): Gram-eigensolver vs direct-SVD factor computation.

The paper's conclusion section proposes computing singular vectors directly
(rather than via the Gram matrix) for accuracies near sqrt(machine eps),
estimating "roughly twice the cost".  Both methods are implemented; this
bench measures:

* wall-clock cost ratio on a proxy dataset (expect SVD within ~1-6x);
* identical results at loose tolerances;
* the accuracy cliff: at eps = 1e-6 on strongly compressible data, the
  Gram path saturates at full rank while the SVD path still truncates.
"""

import time

import pytest

from repro.core import sthosvd

from benchmarks.conftest import table


def test_svd_vs_gram_accuracy_cliff(benchmark, datasets):
    _, x_sp = datasets["SP"]
    # A tensor whose truncatable tail (relative singular values ~1e-9) sits
    # below the Gram path's resolution — forming Y Y^T squares the spectrum,
    # burying 1e-18-relative eigenvalues under ~1e-15 roundoff — while the
    # direct SVD still resolves it.  This is exactly the regime the paper's
    # Sec. IX improvement targets ("errors near the square root of machine
    # precision").
    from repro.tensor import low_rank_tensor

    x_cliff = low_rank_tensor((24, 24, 24), (4, 4, 4), seed=21, noise=1e-9)
    eps_tight = 1e-8

    def run():
        out = {}
        for method in ("gram", "svd"):
            t0 = time.perf_counter()
            res = sthosvd(x_sp, tol=1e-3, method=method)
            out[("sp", method)] = (
                res.decomposition.compression_ratio,
                res.decomposition.relative_error(x_sp),
                time.perf_counter() - t0,
            )
            res = sthosvd(x_cliff, tol=eps_tight, method=method)
            out[("cliff", method)] = (
                res.decomposition.compression_ratio,
                res.decomposition.relative_error(x_cliff),
                0.0,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (case, method), (c, err, elapsed) in sorted(results.items()):
        label = "SP @1e-3" if case == "sp" else f"cliff @{eps_tight:.0e}"
        rows.append([label, method, c, err, elapsed])
    table(
        "Sec. IX ablation: Gram vs direct SVD",
        ["case", "method", "C", "true err", "seconds"],
        rows,
    )

    # Loose tolerance: both methods agree on compression and meet budget.
    assert results[("sp", "gram")][0] == pytest.approx(
        results[("sp", "svd")][0], rel=0.1
    )
    assert results[("sp", "gram")][1] <= 1e-3
    assert results[("sp", "svd")][1] <= 1e-3
    # At eps near sqrt(machine eps): the SVD still honours the budget while
    # the Gram path's rank selection works from roundoff-level eigenvalues
    # and *breaches* it — the failure mode Sec. IX's improvement removes.
    assert results[("cliff", "svd")][1] <= eps_tight
    assert results[("cliff", "gram")][1] > eps_tight
    # Cost ratio at loose tolerance: SVD costs more, within an order of
    # magnitude (paper estimate: ~2x with a QR preprocessing step).
    ratio = results[("sp", "svd")][2] / max(results[("sp", "gram")][2], 1e-9)
    assert ratio < 20
