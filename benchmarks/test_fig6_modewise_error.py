"""Fig. 6: mode-wise contributions to the error bound per dataset.

The paper plots, for each mode, the normalized truncation error
``sqrt(sum_{i>R} lambda_i^(n)) / ||X||`` against rank R; where each curve
crosses ``eps / sqrt(N)`` bounds that mode's reduced dimension.  Claims
reproduced here:

* every curve is monotone decreasing;
* for TJLR the species and time curves never cross eps/sqrt(N) at
  eps = 1e-3 (those modes do not truncate — Table II);
* SP's curves cross at much smaller rank fractions than HCCI's, which
  cross at smaller fractions than TJLR's spatial modes.
"""

import numpy as np
import pytest

from repro.core.errors import modewise_error_curves

from benchmarks.conftest import table

EPS = 1e-3

# Paper reduced dimensions at eps=1e-3 (Table II), as fractions of dims.
PAPER_FRACTIONS = {
    "HCCI": (297 / 672, 279 / 672, 29 / 33, 153 / 627),
    "TJLR": (306 / 460, 232 / 700, 239 / 360, 35 / 35, 16 / 16),
    "SP": (81 / 500, 129 / 500, 127 / 500, 7 / 11, 32 / 50),
}


def _crossing(curve, threshold):
    """Smallest rank R where the mode-wise error falls below threshold."""
    below = np.nonzero(curve <= threshold)[0]
    return int(below[0]) if below.size else len(curve) - 1


@pytest.mark.parametrize("name", ["HCCI", "TJLR", "SP"])
def test_fig6_modewise_curves(benchmark, datasets, name):
    ds, x = datasets[name]
    n_modes = x.ndim
    threshold = EPS / np.sqrt(n_modes)

    curves = benchmark.pedantic(
        lambda: modewise_error_curves(x), rounds=1, iterations=1
    )

    rows = []
    crossings = []
    for n, curve in enumerate(curves):
        assert np.all(np.diff(curve) <= 1e-12), f"mode {n} curve not monotone"
        r = _crossing(curve, threshold)
        crossings.append(r)
        rows.append(
            [
                f"mode {n}",
                ds.shape[n],
                r,
                r / ds.shape[n],
                PAPER_FRACTIONS[name][n],
            ]
        )
    table(
        f"Fig. 6{'abc'[list(PAPER_FRACTIONS).index(name)]}: {name} mode-wise "
        f"error curves, crossing at eps/sqrt(N) = {threshold:.1e}",
        ["mode", "I_n", "R_n", "measured frac", "paper frac"],
        rows,
    )

    if name == "TJLR":
        # Species and time modes never truncate (paper: R = I).
        assert crossings[3] >= ds.shape[3] - 1
        assert crossings[4] >= ds.shape[4] - 1


def test_fig6_cross_dataset_ordering(benchmark, datasets):
    """Spatial-mode crossings order as SP < HCCI < TJLR (fractions)."""

    def spatial_fraction(name):
        ds, x = datasets[name]
        threshold = EPS / np.sqrt(x.ndim)
        curve = modewise_error_curves(x)[0]
        return _crossing(curve, threshold) / ds.shape[0]

    fractions = benchmark.pedantic(
        lambda: {n: spatial_fraction(n) for n in ("HCCI", "TJLR", "SP")},
        rounds=1,
        iterations=1,
    )
    table(
        "Fig. 6: first-spatial-mode truncation fraction at eps=1e-3",
        ["dataset", "measured", "paper"],
        [
            ["SP", fractions["SP"], 81 / 500],
            ["HCCI", fractions["HCCI"], 297 / 672],
            ["TJLR", fractions["TJLR"], 306 / 460],
        ],
    )
    assert fractions["SP"] < fractions["HCCI"] < fractions["TJLR"]
