"""Distributed-kernel overlap and local-kernel batching microbenchmarks.

Not a paper figure: this benchmark pins the communication/computation
overlap introduced with the deferred-completion transport (isendrecv,
ireduce on double-buffered windows), the batched local TTM, and the
perf-model-driven execution plan.  Results go to ``BENCH_kernels.json``
at the repo root so the perf trajectory is visible across PRs:

* ``dist_gram_overlap`` — the Alg. 4 ring at 4 ranks, overlap on vs off
  (pipelined: all hops posted before the dgemms);
* ``dist_ttm_overlap``  — the Alg. 3 blocked TTM at 4 ranks, overlap on
  vs off (each block-row ireduce completed after the next block's local
  TTM);
* ``ttm_batched``       — skinny-sub-block ``ttm_blocked``, batched
  dgemms vs the per-block Python loop;
* ``dist_mode_svd_overlap`` — the Sec. IX TSQR/SVD kernel's mode-column
  ring at 4 ranks, overlap on vs off (the shared ``ring_exchange``
  pipeline: all hops posted before the slab scatter and local QR;
  recorded, not asserted — the TSQR+SVD tail dilutes the ring and the
  measured spread crosses 1.0, see RECORDED.md);
* ``tsqr_tree``         — butterfly vs eliminate-and-broadcast TSQR at
  4 ranks (the butterfly drops the broadcast and folds on every rank in
  parallel; bit-identical R either way);
* ``dist_sthosvd_overlap`` — the end-to-end driver with the overlap knob
  flipped (recorded for the trajectory, not asserted: on a problem this
  tiny the ratio is set by the transport's real per-message posting
  overhead and has measured on both sides of 1.0 across machines — the
  regime where a hardcoded default is wrong somewhere, and the reason
  the knob is now planned per problem);
* ``dist_sthosvd_mixed`` — the end-to-end tolerance-driven driver under
  ``compute_dtype="mixed"`` vs the float64 default: float32
  Gram/TSQR/TTM words and flops, same truncation decisions on a problem
  whose noise floor sits below both tolerance shares.  Asserted: mixed
  must not lose, and its delivered relative error must meet the
  requested tolerance (the achieved/requested ratio is recorded);
* ``dist_sthosvd_plan`` — the TSQR-based ``method="svd"`` driver under
  the autotuned :func:`~repro.perfmodel.plan_sthosvd` config (planned
  against the calibrated machine, as ``repro-tucker plan`` does) vs the
  hardcoded production default (overlap on, binary tree).  Asserted: the
  plan must never lose to the default it replaces, and both configs must
  produce bit-identical cores.

**Harness.**  Every two-sided row is measured *paired*: each SPMD launch
times both variants back-to-back inside the same ranks, so machine drift
(cache state, sibling tests, CPU frequency) hits both sides of the ratio
equally.  N such launches are interleaved, each contributing one paired
ratio (slowest rank per side, since a collective finishes when its last
rank does); the recorded gain is the **median** ratio with the min/max
spread alongside, and an asserted row failing the ``>= 1.0`` claim
reports every per-launch ratio.  Wall-clock numbers, so absolute values
depend on the machine; the asserted claims are the *ratios* the
machinery exists to deliver.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.distributed import (
    OVERLAP_ENV_VAR,
    DistTensor,
    dist_gram,
    dist_mode_svd,
    dist_sthosvd,
    dist_ttm,
    tsqr_r,
)
from repro.distributed.layout import block_ranges
from repro.mpi import CartGrid, ProcessBackend, run_spmd, shutdown_worker_pools
from repro.mpi.backends import POOL_ENV_VAR
from repro.mpi.process_transport import ARENA_ENV_VAR, WINDOWS_ENV_VAR
from repro.perfmodel import EDISON_CALIBRATED, plan_sthosvd
from repro.tensor import low_rank_tensor, ttm_blocked

from benchmarks.conftest import table

_OUT = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

#: Interleaved launches per row: one paired ratio each.
_LAUNCHES = 5

#: The overlap rows measure the production configuration — collective
#: windows on, warm rank pool — independent of the environment sweep the
#: CI legs apply (the ireduce pipeline exists to hide the window fences;
#: with windows forced off there is nothing to measure, and fork-per-run
#: cold starts drown the per-call ratios in scheduling noise).
_BACKEND = ProcessBackend(windows=True, pool=True)


@pytest.fixture(autouse=True)
def production_fastpath(monkeypatch):
    """Pin the whole fast path on for the workers these tests fork.

    The CI knob sweep exists to keep the *fallback* pipelines correct;
    the ratios measured here only exist on the production configuration
    (the arena in particular has no per-backend constructor knob — with
    per-message segment churn the butterfly's extra exchanges cost more
    than the broadcast they remove, on any schedule).  Fresh pools around
    each test so workers actually observe the pinned environment.
    """
    shutdown_worker_pools()
    for var in (POOL_ENV_VAR, ARENA_ENV_VAR, WINDOWS_ENV_VAR,
                OVERLAP_ENV_VAR):
        monkeypatch.setenv(var, "1")
    yield
    shutdown_worker_pools()

_RESULTS: dict = {}


def _record(key: str, payload: dict) -> None:
    _RESULTS[key] = payload
    existing = {}
    if _OUT.exists():
        try:
            existing = json.loads(_OUT.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    existing.update(_RESULTS)
    existing["meta"] = {
        "cpus": os.cpu_count(),
        "launches": _LAUNCHES,
        "unit": "seconds unless stated",
        "gain": "median of per-launch paired ratios; spread is min..max",
    }
    _OUT.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _paired(n, prog, *args, ranks=4):
    """n interleaved launches of a paired prog -> per-launch times.

    ``prog`` must return ``(base_seconds, variant_seconds, *extras)`` per
    rank, both sides measured inside the same launch.  Each launch
    contributes the slowest rank per side (a collective finishes when its
    last rank does).  Returns ``(base[], variant[], extras[])``.
    """
    base, variant, extras = [], [], []
    for _ in range(n):
        res = run_spmd(ranks, prog, *args, backend=_BACKEND, timeout=120.0)
        base.append(max(v[0] for v in res.values))
        variant.append(max(v[1] for v in res.values))
        extras.append([v[2:] for v in res.values])
    return base, variant, extras


def _gain_stats(base, variant, iters=1):
    """Median paired gain + spread, plus per-side median seconds."""
    ratios = sorted(b / v for b, v in zip(base, variant))
    return {
        "base_sec": float(np.median(base)) / iters,
        "variant_sec": float(np.median(variant)) / iters,
        "gain": float(np.median(ratios)),
        "gain_min": ratios[0],
        "gain_max": ratios[-1],
        "ratios": [round(r, 4) for r in ratios],
    }


def _assert_gain(row, stats, floor=1.0):
    """The asserted claim: the variant never loses.  Fails loudly with
    the spread and every per-launch paired ratio so a regression (or a
    row too noisy to assert, see RECORDED.md) is diagnosable."""
    assert stats["gain"] >= floor, (
        f"{row}: median paired gain {stats['gain']:.4f} < {floor} over "
        f"{len(stats['ratios'])} launches; spread "
        f"{stats['gain_min']:.4f}..{stats['gain_max']:.4f}, per-launch "
        f"ratios {stats['ratios']} (base {stats['base_sec']:.3e} s vs "
        f"variant {stats['variant_sec']:.3e} s).  A spread straddling "
        f"{floor} means the row is noise-dominated on this machine and "
        f"belongs in RECORDED.md, not in an assert."
    )


def _gram_prog(comm, x, iters):
    """Times the blocking and the pipelined ring back-to-back in the
    *same* launch, so slow drift on a loaded machine hits both sides of
    the ratio equally."""
    g = CartGrid(comm, (comm.size, 1, 1))
    dt = DistTensor.from_global(g, x)
    elapsed = {}
    for overlap in (False, True):
        dist_gram(dt, 0, overlap=overlap)  # warm (windows, arena, pyc)
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            s = dist_gram(dt, 0, overlap=overlap)
        elapsed[overlap] = time.perf_counter() - start
    return elapsed[False], elapsed[True], float(s[0, 0])


def _ttm_prog(comm, x, v, new_dim, iters):
    g = CartGrid(comm, (comm.size, 1, 1))
    dt = DistTensor.from_global(g, x)
    v_local = np.ascontiguousarray(v[:, dt.local_slices[0]])
    elapsed = {}
    for overlap in (False, True):
        dist_ttm(dt, v_local, 0, new_dim, strategy="blocked",
                 overlap=overlap)  # warm
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            z = dist_ttm(dt, v_local, 0, new_dim, strategy="blocked",
                         overlap=overlap)
        elapsed[overlap] = time.perf_counter() - start
    return elapsed[False], elapsed[True], float(z.local.ravel()[0])


def _mode_svd_prog(comm, x, iters):
    g = CartGrid(comm, (comm.size, 1, 1))
    dt = DistTensor.from_global(g, x)
    elapsed = {}
    for overlap in (False, True):
        dist_mode_svd(dt, 0, rank=4, overlap=overlap)  # warm
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            _, eig = dist_mode_svd(dt, 0, rank=4, overlap=overlap)
        elapsed[overlap] = time.perf_counter() - start
    return elapsed[False], elapsed[True], float(eig.values[0])


def _tsqr_prog(comm, full, rows, iters):
    """Times both trees back-to-back in the same launch; also returns
    whether the two R factors agree bit-for-bit, so the bench doubles as
    a bit-identity check."""
    start_row, stop_row = rows[comm.rank]
    local = full[start_row:stop_row]
    elapsed, bits = {}, {}
    for tree in ("binary", "butterfly"):
        r = tsqr_r(comm, local, tree=tree)  # warm
        bits[tree] = r.tobytes()
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            tsqr_r(comm, local, tree=tree)
        elapsed[tree] = time.perf_counter() - start
    return elapsed["binary"], elapsed["butterfly"], bits["binary"] == bits["butterfly"]


def _sthosvd_prog(comm, x, ranks, iters, method, cfg_a, cfg_b):
    """End-to-end driver under two explicit RuntimeConfigs, paired in the
    same launch; returns both cores' bytes for the bit-identity check."""
    g = CartGrid(comm, (2, 2, 1))
    dt = DistTensor.from_global(g, x)
    elapsed, cores = [], []
    for cfg in (cfg_a, cfg_b):
        dist_sthosvd(dt, ranks=ranks, ttm_strategy="blocked",
                     method=method, config=cfg)  # warm
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            t = dist_sthosvd(dt, ranks=ranks, ttm_strategy="blocked",
                             method=method, config=cfg)
        elapsed.append(time.perf_counter() - start)
        cores.append(t.core.local.tobytes())
    return elapsed[0], elapsed[1], cores[0] == cores[1]


def test_dist_gram_ring_overlap(benchmark):
    # Latency-bound ring: small blocks, 3 hops per call — the regime
    # where the blocking schedule pays one peer-wait per hop per call.
    p, iters = 4, 60
    x = np.random.default_rng(3).standard_normal((32, 12, 8))
    run_spmd(p, _gram_prog, x, 1, backend=_BACKEND)  # prime pool

    blocking, overlapped, _ = benchmark.pedantic(
        lambda: _paired(_LAUNCHES, _gram_prog, x, iters),
        rounds=1, iterations=1,
    )
    stats = _gain_stats(blocking, overlapped, iters)
    table(
        f"dist_gram ring, {p} ranks, {x.shape} tensor "
        f"(median of {_LAUNCHES} x {iters}, paired)",
        ["schedule", "sec/call", "gain"],
        [["blocking", stats["base_sec"], 1.0],
         ["overlapped", stats["variant_sec"], stats["gain"]]],
    )
    _record(
        "dist_gram_overlap",
        {"ranks": p, "shape": list(x.shape), "blocking": stats["base_sec"],
         "overlap": stats["variant_sec"], "gain": stats["gain"],
         "gain_min": stats["gain_min"], "gain_max": stats["gain_max"]},
    )
    # Pipelining must never lose to the blocking ring (observed 1.1-1.3x).
    _assert_gain("dist_gram_overlap", stats)


def test_dist_mode_svd_ring_overlap(benchmark):
    # The Sec. IX kernel's mode-column ring in the same latency-bound
    # regime as the Gram row: small local blocks, 3 hops per call, plus a
    # TSQR+SVD tail the pipeline cannot help.  Recorded, not asserted:
    # the tail dilutes the ring to a fraction of the call, and the
    # measured spread (gain_min) has crossed below 1.0 on loaded
    # machines — see benchmarks/RECORDED.md.
    p, iters = 4, 60
    x = np.random.default_rng(9).standard_normal((24, 16, 8))
    run_spmd(p, _mode_svd_prog, x, 1, backend=_BACKEND)  # prime pool

    blocking, overlapped, _ = benchmark.pedantic(
        lambda: _paired(_LAUNCHES, _mode_svd_prog, x, iters),
        rounds=1, iterations=1,
    )
    stats = _gain_stats(blocking, overlapped, iters)
    table(
        f"dist_mode_svd ring, {p} ranks, {x.shape} tensor "
        f"(median of {_LAUNCHES} x {iters}, paired)",
        ["schedule", "sec/call", "gain"],
        [["blocking", stats["base_sec"], 1.0],
         ["overlapped", stats["variant_sec"], stats["gain"]]],
    )
    _record(
        "dist_mode_svd_overlap",
        {"ranks": p, "shape": list(x.shape), "blocking": stats["base_sec"],
         "overlap": stats["variant_sec"], "gain": stats["gain"],
         "gain_min": stats["gain_min"], "gain_max": stats["gain_max"]},
    )


def test_tsqr_butterfly_vs_binary(benchmark):
    # Communication-bound TSQR: modest triangles, so the binary tree's
    # serialized root folds + broadcast dominate.  The butterfly folds on
    # every rank in parallel and needs no broadcast; results are
    # bit-identical, so the row isolates pure schedule gain.
    p, iters, n = 4, 60, 32
    full = np.random.default_rng(10).standard_normal((48 * p, n))
    rows = block_ranges(48 * p, p)
    run_spmd(p, _tsqr_prog, full, rows, 1, backend=_BACKEND)  # prime pool

    binary, butterfly, extras = benchmark.pedantic(
        lambda: _paired(_LAUNCHES, _tsqr_prog, full, rows, iters),
        rounds=1, iterations=1,
    )
    assert all(same for launch in extras for (same,) in launch)  # bit-identical
    stats = _gain_stats(binary, butterfly, iters)
    table(
        f"tsqr_r, {p} ranks, {full.shape} matrix "
        f"(median of {_LAUNCHES} x {iters}, paired)",
        ["tree", "sec/call", "gain"],
        [["binary", stats["base_sec"], 1.0],
         ["butterfly", stats["variant_sec"], stats["gain"]]],
    )
    _record(
        "tsqr_tree",
        {"ranks": p, "shape": list(full.shape), "binary": stats["base_sec"],
         "butterfly": stats["variant_sec"], "gain": stats["gain"],
         "gain_min": stats["gain_min"], "gain_max": stats["gain_max"]},
    )
    # Dropping the broadcast must pay for the extra folds (observed
    # 1.3-1.45x even on one core).
    _assert_gain("tsqr_tree", stats)


def test_dist_ttm_blocked_overlap(benchmark):
    p, iters, k = 4, 20, 16
    x = np.random.default_rng(4).standard_normal((64, 24, 16))
    v = np.random.default_rng(5).standard_normal((k, x.shape[0]))
    run_spmd(p, _ttm_prog, x, v, k, 1, backend=_BACKEND)  # prime pool

    blocking, overlapped, _ = benchmark.pedantic(
        lambda: _paired(_LAUNCHES, _ttm_prog, x, v, k, iters),
        rounds=1, iterations=1,
    )
    stats = _gain_stats(blocking, overlapped, iters)
    table(
        f"dist_ttm blocked, {p} ranks, {x.shape} -> K={k} "
        f"(median of {_LAUNCHES} x {iters}, paired)",
        ["schedule", "sec/call", "gain"],
        [["blocking", stats["base_sec"], 1.0],
         ["overlapped", stats["variant_sec"], stats["gain"]]],
    )
    _record(
        "dist_ttm_overlap",
        {"ranks": p, "shape": list(x.shape), "new_dim": k,
         "blocking": stats["base_sec"], "overlap": stats["variant_sec"],
         "gain": stats["gain"], "gain_min": stats["gain_min"],
         "gain_max": stats["gain_max"]},
    )
    # The block-row reduces ride the double-buffered windows; hiding
    # their fences behind the dgemms is the headline win (1.4-1.7x).
    _assert_gain("dist_ttm_overlap", stats)


def test_ttm_blocked_batched_vs_loop(benchmark):
    # Skinny sub-blocks: lead=2 columns per block, 4096 blocks — the
    # shape where the per-block Python loop overhead dominates.
    iters = 5
    x = np.asfortranarray(
        np.random.default_rng(6).standard_normal((2, 96, 4096))
    )
    v = np.random.default_rng(7).standard_normal((24, 96))

    def timed(batched):
        start = time.perf_counter()
        for _ in range(iters):
            ttm_blocked(x, v, 1, batched=batched)
        return time.perf_counter() - start

    def paired_local():
        # In-process paired reps: loop then batched inside each rep.
        ttm_blocked(x, v, 1, batched=False)  # warm
        ttm_blocked(x, v, 1, batched=True)
        loop, batched = [], []
        for _ in range(_LAUNCHES):
            loop.append(timed(False))
            batched.append(timed(True))
        return loop, batched

    loop, batched = benchmark.pedantic(paired_local, rounds=1, iterations=1)
    stats = _gain_stats(loop, batched, iters)
    table(
        f"ttm_blocked {x.shape} mode 1 "
        f"(skinny blocks, median of {_LAUNCHES} x {iters}, paired)",
        ["path", "sec/call", "gain"],
        [["python loop", stats["base_sec"], 1.0],
         ["batched dgemm", stats["variant_sec"], stats["gain"]]],
    )
    _record(
        "ttm_batched",
        {"shape": list(x.shape), "mode": 1, "loop": stats["base_sec"],
         "batched": stats["variant_sec"], "gain": stats["gain"],
         "gain_min": stats["gain_min"], "gain_max": stats["gain_max"]},
    )
    # Collapsing the loop must pay for its staging (observed 2-5x).
    _assert_gain("ttm_batched", stats)


def test_dist_sthosvd_overlap_end_to_end(benchmark):
    # End-to-end driver with the overlap knob flipped: recorded for the
    # perf trajectory (and the bit-identity acceptance), not asserted —
    # on a problem this tiny the ratio is set by the transport's real
    # per-message posting overhead and has measured on both sides of 1.0
    # across machines, which is exactly why the knob is now decided per
    # problem from calibrated machine constants (next test) instead of
    # hardcoded.
    p, ranks = 4, (6, 4, 4)
    x = np.random.default_rng(8).standard_normal((24, 16, 12))
    off = RuntimeConfig(overlap=False)
    on = RuntimeConfig(overlap=True)
    run_spmd(p, _sthosvd_prog, x, ranks, 1, "gram", off, on, backend=_BACKEND)

    blocking, overlapped, extras = benchmark.pedantic(
        lambda: _paired(_LAUNCHES, _sthosvd_prog, x, ranks, 1, "gram",
                        off, on),
        rounds=1, iterations=1,
    )
    # Bit-identical with the knob flipped, in every launch.
    assert all(same for launch in extras for (same,) in launch)
    stats = _gain_stats(blocking, overlapped)
    table(
        f"dist_sthosvd, {p} ranks, {x.shape} -> {ranks} "
        f"(median of {_LAUNCHES}, paired)",
        ["schedule", "sec/run", "gain"],
        [["blocking", stats["base_sec"], 1.0],
         ["overlapped", stats["variant_sec"], stats["gain"]]],
    )
    _record(
        "dist_sthosvd_overlap",
        {"ranks": p, "shape": list(x.shape), "tucker_ranks": list(ranks),
         "blocking": stats["base_sec"], "overlap": stats["variant_sec"],
         "gain": stats["gain"], "gain_min": stats["gain_min"],
         "gain_max": stats["gain_max"]},
    )


def _sthosvd_dtype_prog(comm, x, tol, iters):
    """float64 vs mixed, paired in the same launch; also returns the
    driver's error estimate and ranks per side so the row can check the
    truncation decisions match before claiming a fair ratio."""
    g = CartGrid(comm, (2, 2, 1))
    dt = DistTensor.from_global(g, x)
    elapsed, ranks = [], []
    for dtype in ("float64", "mixed"):
        t = dist_sthosvd(dt, tol=tol, compute_dtype=dtype)  # warm
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            t = dist_sthosvd(dt, tol=tol, compute_dtype=dtype)
        elapsed.append(time.perf_counter() - start)
        ranks.append(t.ranks)
    return elapsed[0], elapsed[1], ranks[0] == ranks[1]


def _mixed_error_prog(comm, x, tol):
    g = CartGrid(comm, (2, 2, 1))
    dt = DistTensor.from_global(g, x)
    t = dist_sthosvd(dt, tol=tol, compute_dtype="mixed")
    tucker = t.to_tucker()
    return float(
        np.linalg.norm(x - tucker.reconstruct()) / np.linalg.norm(x)
    )


def test_dist_sthosvd_mixed_vs_float64(benchmark):
    # The tentpole row: the tolerance-driven driver with narrow kernels.
    # The problem's noise floor (2e-4 elementwise, ~1.4% of the norm)
    # sits below both the float64 tolerance and mixed's tighter
    # truncation share, so both dtypes cut to the same ranks and the
    # ratio isolates the float32 words + flops.  Mixed skips refinement
    # here (the float32 defect fits the precision share), keeping the
    # full win; the delivered error must still meet the tolerance.
    p, tol, iters = 4, 0.05, 2
    x = low_rank_tensor((192, 128, 96), (12, 10, 8), seed=20, noise=2e-4)
    run_spmd(p, _sthosvd_dtype_prog, x, tol, 1, backend=_BACKEND)  # prime

    wide, mixed, extras = benchmark.pedantic(
        lambda: _paired(_LAUNCHES, _sthosvd_dtype_prog, x, tol, iters),
        rounds=1, iterations=1,
    )
    # Same truncation decisions on every launch: the ratio is fair.
    assert all(same for launch in extras for (same,) in launch)
    achieved = run_spmd(
        p, _mixed_error_prog, x, tol, backend=_BACKEND, timeout=120.0
    ).values[0]
    stats = _gain_stats(wide, mixed, iters)
    table(
        f"dist_sthosvd dtype, {p} ranks, {x.shape}, tol={tol} "
        f"(median of {_LAUNCHES} x {iters}, paired)",
        ["compute_dtype", "sec/run", "gain"],
        [["float64", stats["base_sec"], 1.0],
         ["mixed", stats["variant_sec"], stats["gain"]]],
    )
    _record(
        "dist_sthosvd_mixed",
        {"ranks": p, "shape": list(x.shape), "tol": tol,
         "float64": stats["base_sec"], "mixed": stats["variant_sec"],
         "gain": stats["gain"], "gain_min": stats["gain_min"],
         "gain_max": stats["gain_max"], "achieved_error": achieved,
         "achieved_vs_requested": achieved / tol},
    )
    # The error-budget contract: delivered error meets the request.
    assert achieved <= tol, (
        f"mixed delivered {achieved:.3e} > requested tol {tol}"
    )
    # Narrow words and flops must pay end to end (observed 1.1-1.3x).
    _assert_gain("dist_sthosvd_mixed", stats)


def test_dist_sthosvd_autotuned_plan(benchmark):
    # The payoff row: the perf-model-selected plan vs the hardcoded
    # production default (overlap on, binary tree), on the TSQR-based
    # ``method="svd"`` driver where the reduction-tree knob is live.
    # Planned against the calibrated machine description (as the CLI's
    # ``repro-tucker plan`` does): the model keeps overlap on — its
    # hideable communication exceeds the posting overhead here — and
    # flips the tree to butterfly, whose parallel folds beat the binary
    # tree's serialized root + broadcast on every mode column.
    p, ranks, iters = 4, (6, 4, 4), 5
    x = np.random.default_rng(8).standard_normal((24, 16, 12))
    default = RuntimeConfig()  # overlap on, binary tree, lead 32
    planned = plan_sthosvd(
        x.shape, ranks=ranks, grid=(2, 2, 1), machine=EDISON_CALIBRATED
    ).config
    assert planned.tsqr_tree == "butterfly"  # the decision this row banks on
    run_spmd(p, _sthosvd_prog, x, ranks, 1, "svd", default, planned,
             backend=_BACKEND)

    base, tuned, extras = benchmark.pedantic(
        lambda: _paired(_LAUNCHES, _sthosvd_prog, x, ranks, iters, "svd",
                        default, planned),
        rounds=1, iterations=1,
    )
    # The plan only reschedules; results stay bit-identical, every launch.
    assert all(same for launch in extras for (same,) in launch)
    stats = _gain_stats(base, tuned, iters)
    table(
        f"dist_sthosvd svd-method plan, {p} ranks, {x.shape} -> {ranks} "
        f"(median of {_LAUNCHES} x {iters}, paired)",
        ["config", "sec/run", "gain"],
        [["default (binary tree)", stats["base_sec"], 1.0],
         ["autotuned plan", stats["variant_sec"], stats["gain"]]],
    )
    _record(
        "dist_sthosvd_plan",
        {"ranks": p, "shape": list(x.shape), "tucker_ranks": list(ranks),
         "method": "svd", "default": stats["base_sec"],
         "planned": stats["variant_sec"], "plan": planned.to_dict(),
         "gain": stats["gain"], "gain_min": stats["gain_min"],
         "gain_max": stats["gain_max"]},
    )
    # The autotuned plan must never lose to the default it replaces.
    _assert_gain("dist_sthosvd_plan", stats)
    shutdown_worker_pools()
