"""Distributed-kernel overlap and local-kernel batching microbenchmarks.

Not a paper figure: this benchmark pins the communication/computation
overlap introduced with the deferred-completion transport (isendrecv,
ireduce on double-buffered windows) and the batched local TTM.  Results
go to ``BENCH_kernels.json`` at the repo root so the perf trajectory is
visible across PRs:

* ``dist_gram_overlap`` — the Alg. 4 ring at 4 ranks, overlap on vs off
  (pipelined: all hops posted before the dgemms);
* ``dist_ttm_overlap``  — the Alg. 3 blocked TTM at 4 ranks, overlap on
  vs off (each block-row ireduce completed after the next block's local
  TTM);
* ``ttm_batched``       — skinny-sub-block ``ttm_blocked``, batched
  dgemms vs the per-block Python loop;
* ``dist_mode_svd_overlap`` — the Sec. IX TSQR/SVD kernel's mode-column
  ring at 4 ranks, overlap on vs off (the shared ``ring_exchange``
  pipeline: all hops posted before the slab scatter and local QR);
* ``tsqr_tree``         — butterfly vs eliminate-and-broadcast TSQR at
  4 ranks (the butterfly drops the broadcast and folds on every rank in
  parallel; bit-identical R either way);
* ``dist_sthosvd_overlap`` — the end-to-end driver with the knob flipped
  (recorded for the trajectory; the per-kernel rows carry the asserts).

The overlap rows measure the latency-bound regime (small blocks, many
exchanges) where the blocking schedule genuinely idles on its peers —
that idle time is what pipelining removes, on any core count.  Wall-clock
numbers, so absolute values depend on the machine; the asserted claims
are the *ratios* the overlap exists to deliver (>= 1.0, i.e. pipelining
never loses; observed 1.1-1.6x even on one core).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.distributed import (
    OVERLAP_ENV_VAR,
    DistTensor,
    dist_gram,
    dist_mode_svd,
    dist_sthosvd,
    dist_ttm,
    tsqr_r,
)
from repro.distributed.layout import block_ranges
from repro.mpi import CartGrid, ProcessBackend, run_spmd, shutdown_worker_pools
from repro.mpi.backends import POOL_ENV_VAR
from repro.mpi.process_transport import ARENA_ENV_VAR, WINDOWS_ENV_VAR
from repro.tensor import ttm_blocked

from benchmarks.conftest import table

_OUT = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

#: The overlap rows measure the production configuration — collective
#: windows on, warm rank pool — independent of the environment sweep the
#: CI legs apply (the ireduce pipeline exists to hide the window fences;
#: with windows forced off there is nothing to measure, and fork-per-run
#: cold starts drown the per-call ratios in scheduling noise).
_BACKEND = ProcessBackend(windows=True, pool=True)


@pytest.fixture(autouse=True)
def production_fastpath(monkeypatch):
    """Pin the whole fast path on for the workers these tests fork.

    The CI knob sweep exists to keep the *fallback* pipelines correct;
    the ratios measured here only exist on the production configuration
    (the arena in particular has no per-backend constructor knob — with
    per-message segment churn the butterfly's extra exchanges cost more
    than the broadcast they remove, on any schedule).  Fresh pools around
    each test so workers actually observe the pinned environment.
    """
    shutdown_worker_pools()
    for var in (POOL_ENV_VAR, ARENA_ENV_VAR, WINDOWS_ENV_VAR,
                OVERLAP_ENV_VAR):
        monkeypatch.setenv(var, "1")
    yield
    shutdown_worker_pools()

_RESULTS: dict = {}


def _record(key: str, payload: dict) -> None:
    _RESULTS[key] = payload
    existing = {}
    if _OUT.exists():
        try:
            existing = json.loads(_OUT.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    existing.update(_RESULTS)
    existing["meta"] = {
        "cpus": os.cpu_count(),
        "unit": "seconds unless stated",
    }
    _OUT.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _gram_prog(comm, x, iters, overlap):
    g = CartGrid(comm, (comm.size, 1, 1))
    dt = DistTensor.from_global(g, x)
    dist_gram(dt, 0, overlap=overlap)  # warm (windows, arena, pyc)
    comm.barrier()
    start = time.perf_counter()
    for _ in range(iters):
        s = dist_gram(dt, 0, overlap=overlap)
    return time.perf_counter() - start, float(s[0, 0])


def _ttm_prog(comm, x, v, new_dim, iters, overlap):
    g = CartGrid(comm, (comm.size, 1, 1))
    dt = DistTensor.from_global(g, x)
    v_local = np.ascontiguousarray(v[:, dt.local_slices[0]])
    dist_ttm(dt, v_local, 0, new_dim, strategy="blocked", overlap=overlap)
    comm.barrier()
    start = time.perf_counter()
    for _ in range(iters):
        z = dist_ttm(dt, v_local, 0, new_dim, strategy="blocked",
                     overlap=overlap)
    return time.perf_counter() - start, float(z.local.ravel()[0])


def _mode_svd_prog(comm, x, iters):
    """Times the blocking and the pipelined schedule back-to-back in the
    *same* launch, so slow drift on a loaded machine (cache state, sibling
    tests) hits both sides of the ratio equally."""
    g = CartGrid(comm, (comm.size, 1, 1))
    dt = DistTensor.from_global(g, x)
    elapsed = {}
    for overlap in (False, True):
        dist_mode_svd(dt, 0, rank=4, overlap=overlap)  # warm
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            _, eig = dist_mode_svd(dt, 0, rank=4, overlap=overlap)
        elapsed[overlap] = time.perf_counter() - start
    return elapsed[False], elapsed[True], float(eig.values[0])


def _tsqr_prog(comm, full, rows, iters):
    """Times both trees back-to-back in the same launch (drift hits both
    sides of the ratio equally); also returns the two R factors' bytes so
    the bench doubles as a bit-identity check."""
    start_row, stop_row = rows[comm.rank]
    local = full[start_row:stop_row]
    elapsed, bits = {}, {}
    for tree in ("binary", "butterfly"):
        r = tsqr_r(comm, local, tree=tree)  # warm
        bits[tree] = r.tobytes()
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            tsqr_r(comm, local, tree=tree)
        elapsed[tree] = time.perf_counter() - start
    return elapsed["binary"], elapsed["butterfly"], bits["binary"] == bits["butterfly"]


def _sthosvd_prog(comm, x, ranks, overlap):
    # The driver has no overlap kwarg by design (the env knob is the
    # production switch); flip it inside the rank so pooled workers see
    # the requested mode for exactly this run.
    os.environ[OVERLAP_ENV_VAR] = "1" if overlap else "0"
    g = CartGrid(comm, (2, 2, 1))
    dt = DistTensor.from_global(g, x)
    comm.barrier()
    start = time.perf_counter()
    t = dist_sthosvd(dt, ranks=ranks, ttm_strategy="blocked")
    elapsed = time.perf_counter() - start
    return elapsed, t.core.local.tobytes()


def _best_of(n, prog, *args, ranks=4):
    """Min over ``n`` launches of the slowest rank's loop time."""
    per_run = []
    for _ in range(n):
        res = run_spmd(ranks, prog, *args, backend=_BACKEND, timeout=120.0)
        per_run.append(max(v[0] for v in res.values))
    return min(per_run)


def test_dist_gram_ring_overlap(benchmark):
    # Latency-bound ring: small blocks, 3 hops per call — the regime
    # where the blocking schedule pays one peer-wait per hop per call.
    p, iters = 4, 60
    x = np.random.default_rng(3).standard_normal((32, 12, 8))
    run_spmd(p, _gram_prog, x, 1, True, backend=_BACKEND)  # prime pool

    blocking = _best_of(4, _gram_prog, x, iters, False) / iters
    overlapped = benchmark.pedantic(
        lambda: _best_of(4, _gram_prog, x, iters, True) / iters,
        rounds=1, iterations=1,
    )
    gain = blocking / overlapped
    table(
        f"dist_gram ring, {p} ranks, {x.shape} tensor (best of 4 x {iters})",
        ["schedule", "sec/call", "gain"],
        [["blocking", blocking, 1.0], ["overlapped", overlapped, gain]],
    )
    _record(
        "dist_gram_overlap",
        {"ranks": p, "shape": list(x.shape), "blocking": blocking,
         "overlap": overlapped, "gain": gain},
    )
    # Pipelining must never lose to the blocking ring (observed 1.1-1.3x).
    assert gain >= 1.0


def test_dist_mode_svd_ring_overlap(benchmark):
    # The Sec. IX kernel's mode-column ring in the same latency-bound
    # regime as the Gram row: small local blocks, 3 hops per call, plus a
    # TSQR+SVD tail that the pipeline cannot help — the asserted claim is
    # that posting all hops up front never loses to the blocking ring.
    p, iters = 4, 60
    x = np.random.default_rng(9).standard_normal((24, 16, 8))
    run_spmd(p, _mode_svd_prog, x, 1, backend=_BACKEND)  # prime pool

    def paired_best():
        # Min over launches of the slowest rank, per schedule; both
        # schedules measured inside each launch (see _mode_svd_prog).
        blocking, overlapped = float("inf"), float("inf")
        for _ in range(4):
            res = run_spmd(p, _mode_svd_prog, x, iters,
                           backend=_BACKEND, timeout=120.0)
            blocking = min(blocking, max(v[0] for v in res.values))
            overlapped = min(overlapped, max(v[1] for v in res.values))
        return blocking / iters, overlapped / iters

    blocking, overlapped = benchmark.pedantic(
        paired_best, rounds=1, iterations=1
    )
    gain = blocking / overlapped
    table(
        f"dist_mode_svd ring, {p} ranks, {x.shape} tensor (best of 4 x {iters})",
        ["schedule", "sec/call", "gain"],
        [["blocking", blocking, 1.0], ["overlapped", overlapped, gain]],
    )
    _record(
        "dist_mode_svd_overlap",
        {"ranks": p, "shape": list(x.shape), "blocking": blocking,
         "overlap": overlapped, "gain": gain},
    )
    # Pipelining must never lose (observed 1.05-1.15x on one core).
    assert gain >= 1.0


def test_tsqr_butterfly_vs_binary(benchmark):
    # Communication-bound TSQR: modest triangles, so the binary tree's
    # serialized root folds + broadcast dominate.  The butterfly folds on
    # every rank in parallel and needs no broadcast; results are
    # bit-identical, so the row isolates pure schedule gain.
    p, iters, n = 4, 60, 32
    full = np.random.default_rng(10).standard_normal((48 * p, n))
    rows = block_ranges(48 * p, p)
    run_spmd(p, _tsqr_prog, full, rows, 1, backend=_BACKEND)  # prime pool

    def paired_best():
        binary, butterfly = float("inf"), float("inf")
        for _ in range(4):
            res = run_spmd(p, _tsqr_prog, full, rows, iters,
                           backend=_BACKEND, timeout=120.0)
            assert all(same for _, _, same in res.values)  # bit-identical
            binary = min(binary, max(v[0] for v in res.values))
            butterfly = min(butterfly, max(v[1] for v in res.values))
        return binary / iters, butterfly / iters

    binary, butterfly = benchmark.pedantic(paired_best, rounds=1, iterations=1)
    gain = binary / butterfly
    table(
        f"tsqr_r, {p} ranks, {full.shape} matrix (best of 4 x {iters})",
        ["tree", "sec/call", "gain"],
        [["binary", binary, 1.0], ["butterfly", butterfly, gain]],
    )
    _record(
        "tsqr_tree",
        {"ranks": p, "shape": list(full.shape), "binary": binary,
         "butterfly": butterfly, "gain": gain},
    )
    # Dropping the broadcast must pay for the extra folds (observed
    # 1.3-1.45x even on one core).
    assert gain >= 1.0


def test_dist_ttm_blocked_overlap(benchmark):
    p, iters, k = 4, 20, 16
    x = np.random.default_rng(4).standard_normal((64, 24, 16))
    v = np.random.default_rng(5).standard_normal((k, x.shape[0]))
    run_spmd(p, _ttm_prog, x, v, k, 1, True, backend=_BACKEND)

    blocking = _best_of(4, _ttm_prog, x, v, k, iters, False) / iters
    overlapped = benchmark.pedantic(
        lambda: _best_of(4, _ttm_prog, x, v, k, iters, True) / iters,
        rounds=1, iterations=1,
    )
    gain = blocking / overlapped
    table(
        f"dist_ttm blocked, {p} ranks, {x.shape} -> K={k} (best of 4 x {iters})",
        ["schedule", "sec/call", "gain"],
        [["blocking", blocking, 1.0], ["overlapped", overlapped, gain]],
    )
    _record(
        "dist_ttm_overlap",
        {"ranks": p, "shape": list(x.shape), "new_dim": k,
         "blocking": blocking, "overlap": overlapped, "gain": gain},
    )
    # The block-row reduces ride the double-buffered windows; hiding
    # their fences behind the dgemms is the headline win (1.4-1.7x).
    assert gain >= 1.0


def test_ttm_blocked_batched_vs_loop(benchmark):
    # Skinny sub-blocks: lead=2 columns per block, 4096 blocks — the
    # shape where the per-block Python loop overhead dominates.
    iters = 5
    x = np.asfortranarray(
        np.random.default_rng(6).standard_normal((2, 96, 4096))
    )
    v = np.random.default_rng(7).standard_normal((24, 96))

    def timed(batched):
        ttm_blocked(x, v, 1, batched=batched)  # warm
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(iters):
                ttm_blocked(x, v, 1, batched=batched)
            best = min(best, (time.perf_counter() - start) / iters)
        return best

    loop = timed(False)
    batched = benchmark.pedantic(lambda: timed(True), rounds=1, iterations=1)
    gain = loop / batched
    table(
        f"ttm_blocked {x.shape} mode 1 (skinny blocks, best of 3 x {iters})",
        ["path", "sec/call", "gain"],
        [["python loop", loop, 1.0], ["batched dgemm", batched, gain]],
    )
    _record(
        "ttm_batched",
        {"shape": list(x.shape), "mode": 1, "loop": loop,
         "batched": batched, "gain": gain},
    )
    # Collapsing the loop must pay for its staging (observed 2-5x).
    assert gain >= 1.0


def test_dist_sthosvd_overlap_end_to_end(benchmark):
    # End-to-end driver with the knob flipped: recorded for the perf
    # trajectory (and the bit-identity acceptance), not asserted — the
    # driver mixes overlap-insensitive phases (evecs, reduce-scatter)
    # with the pipelined kernels, so its ratio is diluted by design.
    p, ranks = 4, (6, 4, 4)
    x = np.random.default_rng(8).standard_normal((24, 16, 12))
    run_spmd(p, _sthosvd_prog, x, ranks, True, backend=_BACKEND)

    def best(overlap):
        per_run = []
        cores = []
        for _ in range(4):
            res = run_spmd(p, _sthosvd_prog, x, ranks, overlap,
                           backend=_BACKEND, timeout=120.0)
            per_run.append(max(v[0] for v in res.values))
            cores.append(tuple(v[1] for v in res.values))
        assert len(set(cores)) == 1  # deterministic across launches
        return min(per_run), cores[0]

    blocking, core_off = best(False)
    (overlapped, core_on) = benchmark.pedantic(
        lambda: best(True), rounds=1, iterations=1
    )
    assert core_on == core_off  # bit-identical with the knob flipped
    gain = blocking / overlapped
    table(
        f"dist_sthosvd, {p} ranks, {x.shape} -> {ranks} (best of 4)",
        ["schedule", "sec/run", "gain"],
        [["blocking", blocking, 1.0], ["overlapped", overlapped, gain]],
    )
    _record(
        "dist_sthosvd_overlap",
        {"ranks": p, "shape": list(x.shape), "tucker_ranks": list(ranks),
         "blocking": blocking, "overlap": overlapped, "gain": gain},
    )
    shutdown_worker_pools()
