"""Transport fast-path microbenchmarks: launch overhead and throughput.

Not a paper figure: this benchmark pins the *executor* performance the
other benchmarks sit on top of.  It measures three things on the process
backend and records them to ``BENCH_transport.json`` at the repo root so
the perf trajectory is visible across PRs:

* ``launch``   — per-run ``run_spmd`` overhead, warm persistent pool vs.
  fork-per-run (the pool must be >= 5x cheaper);
* ``allgather`` — collective throughput with the shared-memory windows vs.
  the point-to-point relay path (windows must not be slower);
* ``p2p``      — small-message ping-pong latency (adaptive poll backoff)
  and large-array bandwidth over the segment arena;
* ``dtype_rounds`` — float32 vs float64 allgather+allreduce rounds on
  the window path at a bandwidth-bound payload: window slots and arena
  buckets are sized by actual nbytes, so half-width elements must buy a
  real round-time win (>= 1.3x asserted; measured ~2-3x).

Wall-clock numbers, so absolute values depend on the machine; the asserted
claims are the *ratios* the fast path exists to deliver.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.mpi import (
    SUM,
    ProcessBackend,
    WINDOWS_ENV_VAR,
    run_spmd,
    shutdown_worker_pools,
)

from benchmarks.conftest import table

_OUT = Path(__file__).resolve().parents[1] / "BENCH_transport.json"

_RESULTS: dict = {}


def _record(key: str, payload: dict) -> None:
    _RESULTS[key] = payload
    existing = {}
    if _OUT.exists():
        try:
            existing = json.loads(_OUT.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    existing.update(_RESULTS)
    existing["meta"] = {
        "cpus": os.cpu_count(),
        "unit": "seconds unless stated",
    }
    _OUT.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _noop_prog(comm):
    return comm.rank


def _allgather_timed(comm, x, iters):
    comm.barrier()
    start = time.perf_counter()
    for _ in range(iters):
        gathered = comm.allgather(x)
    elapsed = time.perf_counter() - start
    return elapsed, float(gathered[comm.size - 1][0])


def _pingpong(comm, payload, iters):
    comm.barrier()
    start = time.perf_counter()
    for _ in range(iters):
        if comm.rank == 0:
            comm.send(payload, dest=1)
            comm.recv(source=1)
        else:
            comm.recv(source=0)
            comm.send(payload, dest=1 - comm.rank)
    return (time.perf_counter() - start) / iters


def test_launch_overhead_warm_pool_vs_fork(benchmark):
    p, rounds = 4, 10
    shutdown_worker_pools()

    def sweep(backend):
        start = time.perf_counter()
        for _ in range(rounds):
            assert run_spmd(p, _noop_prog, backend=backend).values == list(
                range(p)
            )
        return (time.perf_counter() - start) / rounds

    cold = sweep(ProcessBackend(pool=False))
    pooled = ProcessBackend(pool=True)
    run_spmd(p, _noop_prog, backend=pooled)  # prime the pool once
    warm = benchmark.pedantic(lambda: sweep(pooled), rounds=1, iterations=1)
    shutdown_worker_pools()

    speedup = cold / warm
    table(
        f"run_spmd launch overhead, {p} ranks (mean of {rounds})",
        ["mode", "sec/run", "speedup"],
        [["fork-per-run", cold, 1.0], ["warm pool", warm, speedup]],
    )
    _record(
        "launch",
        {"ranks": p, "fork_per_run": cold, "warm_pool": warm,
         "speedup": speedup},
    )
    # Acceptance bar for the persistent pool: >= 5x lower launch overhead.
    assert speedup >= 5.0


def test_admission_overhead(benchmark):
    # Resource governance must be free when uncontended: an admitted
    # launch with a (generous) budget configured pays only the admission
    # bookkeeping over the plain warm-pool launch.
    from repro.config import RuntimeConfig

    p, rounds = 4, 10
    shutdown_worker_pools()
    pooled = ProcessBackend(pool=True)
    governed = RuntimeConfig(shm_budget=1 << 30, max_worlds=8)

    def sweep(config):
        start = time.perf_counter()
        for _ in range(rounds):
            res = run_spmd(p, _noop_prog, backend=pooled, config=config)
            assert res.values == list(range(p))
        return (time.perf_counter() - start) / rounds, res

    run_spmd(p, _noop_prog, backend=pooled)  # prime the pool once
    plain, _ = sweep(None)
    warm, res = benchmark.pedantic(
        lambda: sweep(governed), rounds=1, iterations=1
    )
    shutdown_worker_pools()

    overhead = warm - plain
    wait = res.resources.admission_wait
    table(
        f"admission-control overhead, {p} ranks (mean of {rounds})",
        ["mode", "sec/run"],
        [["ungoverned", plain], ["budget + max_worlds", warm],
         ["overhead", overhead]],
    )
    _record(
        "admission",
        {"ranks": p, "ungoverned": plain, "governed": warm,
         "overhead": overhead, "admission_wait": wait},
    )
    # Negligible: the uncontended gate never queues and costs at most
    # milliseconds against a launch that costs milliseconds itself.
    assert wait < 0.05
    assert overhead < max(0.005, 0.5 * plain)


def test_allgather_windows_vs_p2p(benchmark):
    p, iters, n = 4, 8, 131_072  # 1 MiB per rank
    x = np.random.default_rng(0).standard_normal(n)
    volume_mb = p * x.nbytes / 1e6  # moved per allgather

    def timed(env_value):
        shutdown_worker_pools()
        os.environ[WINDOWS_ENV_VAR] = env_value
        try:
            res = run_spmd(p, _allgather_timed, x, iters, backend="process")
        finally:
            os.environ.pop(WINDOWS_ENV_VAR, None)
            shutdown_worker_pools()
        assert all(v[1] == x[0] for v in res.values)
        return max(v[0] for v in res.values) / iters

    relay = timed("0")
    windowed = benchmark.pedantic(
        lambda: timed("1"), rounds=1, iterations=1
    )
    gain = relay / windowed
    table(
        f"allgather {volume_mb:.1f} MB across {p} ranks (mean of {iters})",
        ["path", "sec/call", "MB/s", "gain"],
        [
            ["p2p relay", relay, volume_mb / relay, 1.0],
            ["shm window", windowed, volume_mb / windowed, gain],
        ],
    )
    _record(
        "allgather",
        {
            "ranks": p,
            "mbytes_per_call": volume_mb,
            "p2p_relay": relay,
            "window": windowed,
            "window_throughput_mb_s": volume_mb / windowed,
            "gain": gain,
        },
    )
    # The single-copy window exchange must beat the O(P) relay at P >= 4.
    assert gain > 1.0


def _dtype_rounds_timed(comm, n, iters):
    """One float64 and one float32 round (allgather + allreduce) per
    iteration, paired inside the same launch: both sides see the same
    windows, pool warmth and machine drift."""
    rng = np.random.default_rng(40 + comm.rank)
    wide = rng.standard_normal(n)
    narrow = wide.astype(np.float32)
    elapsed = []
    for x in (wide, narrow):
        comm.allgather(x)  # warm (windows sized for this payload)
        comm.allreduce(x, SUM)
        comm.barrier()
        start = time.perf_counter()
        for _ in range(iters):
            comm.allgather(x)
            comm.allreduce(x, SUM)
        elapsed.append(time.perf_counter() - start)
    return elapsed[0], elapsed[1]


def test_dtype_rounds_float32_vs_float64(benchmark):
    # Bandwidth-bound collective rounds: 4 MiB float64 per rank, windows
    # on.  Slots and arena buckets are sized by the payload's actual
    # nbytes, so float32 elements genuinely move half the bytes through
    # shared memory — and the allreduce folds run on half-width words
    # too.  The dtype knob exists for this ratio; it must stay >= 1.3x.
    p, iters, n, launches = 4, 6, 524_288, 5
    volume_mb = n * 8 / 1e6

    shutdown_worker_pools()
    os.environ[WINDOWS_ENV_VAR] = "1"
    try:
        run_spmd(p, _dtype_rounds_timed, n, 1, backend="process")  # prime

        def sweep():
            wide, narrow = [], []
            for _ in range(launches):
                res = run_spmd(
                    p, _dtype_rounds_timed, n, iters, backend="process",
                    timeout=120.0,
                )
                wide.append(max(v[0] for v in res.values))
                narrow.append(max(v[1] for v in res.values))
            return wide, narrow

        wide, narrow = benchmark.pedantic(sweep, rounds=1, iterations=1)
    finally:
        os.environ.pop(WINDOWS_ENV_VAR, None)
        shutdown_worker_pools()

    ratios = sorted(w / nr for w, nr in zip(wide, narrow))
    gain = float(np.median(ratios))
    wide_sec = float(np.median(wide)) / iters
    narrow_sec = float(np.median(narrow)) / iters
    table(
        f"allgather+allreduce round, {p} ranks, {volume_mb:.0f} MB/rank "
        f"float64 (median of {launches} x {iters}, paired)",
        ["dtype", "sec/round", "gain"],
        [["float64", wide_sec, 1.0], ["float32", narrow_sec, gain]],
    )
    _record(
        "dtype_rounds",
        {"ranks": p, "elements": n, "mbytes_per_rank_f64": volume_mb,
         "float64": wide_sec, "float32": narrow_sec, "gain": gain,
         "gain_min": ratios[0], "gain_max": ratios[-1]},
    )
    # Half the bytes through the windows must buy a real win at
    # bandwidth-bound sizes (measured 2-3x; 1.3x is the floor).
    assert gain >= 1.3, (
        f"dtype_rounds: median paired gain {gain:.3f} < 1.3; spread "
        f"{ratios[0]:.3f}..{ratios[-1]:.3f}, per-launch ratios "
        f"{[round(r, 3) for r in ratios]}"
    )


def _coll_timed(comm, op, x, iters):
    values = [x] * comm.size
    comm.barrier()
    start = time.perf_counter()
    for _ in range(iters):
        if op == "barrier":
            comm.barrier()
        elif op == "gather":
            comm.gather(x, root=0)
        elif op == "scatter":
            comm.scatter(values if comm.rank == 0 else None, root=0)
        else:
            comm.alltoall(values)
    return time.perf_counter() - start


def test_remaining_collectives_windows_vs_p2p(benchmark):
    """barrier/gather/scatter/alltoall on the window path vs p2p relay.

    PR 3 moved the five remaining collectives onto the shared-memory
    windows (barrier fences, root-only gather/reduce reads, P×P pair
    slots for scatter/alltoall); each must at least match the relayed
    point-to-point path it replaced.
    """
    p, n = 4, 8192  # 64 KiB payloads: overheads visible, copies not free
    x = np.random.default_rng(2).standard_normal(n)
    ops = [("barrier", 200), ("gather", 50), ("scatter", 50), ("alltoall", 30)]

    def sweep(env_value):
        # Best-of-3 per op: sub-millisecond latencies on a shared box are
        # noisy, and the minimum is the honest latency estimator.  The
        # warm pool is shared within a sweep (workers must inherit the
        # right REPRO_SPMD_WINDOWS, so pools are recycled at the edges).
        per_op = {}
        shutdown_worker_pools()
        os.environ[WINDOWS_ENV_VAR] = env_value
        try:
            for op, iters in ops:
                per_op[op] = min(
                    max(
                        run_spmd(
                            p, _coll_timed, op, x, iters, backend="process"
                        ).values
                    )
                    / iters
                    for _ in range(3)
                )
        finally:
            os.environ.pop(WINDOWS_ENV_VAR, None)
            shutdown_worker_pools()
        return per_op

    relay = sweep("0")
    windowed = benchmark.pedantic(lambda: sweep("1"), rounds=1, iterations=1)
    gains = {op: relay[op] / windowed[op] for op, _ in ops}
    table(
        f"remaining collectives, {p} ranks, {x.nbytes // 1024} KiB payloads",
        ["op", "p2p sec/call", "window sec/call", "gain"],
        [[op, relay[op], windowed[op], gains[op]] for op, _ in ops],
    )
    for op, _ in ops:
        _record(
            op,
            {
                "ranks": p,
                "payload_kib": x.nbytes // 1024,
                "p2p_relay": relay[op],
                "window": windowed[op],
                "gain": gains[op],
            },
        )
    # The window path exists to beat the O(P) relay; none of the four may
    # regress below it (observed gains are 1.4x-2.2x even on one core).
    for op, gain in gains.items():
        assert gain >= 1.0, f"{op}: window path slower than p2p ({gain:.2f}x)"


def test_p2p_latency_and_bandwidth(benchmark):
    shutdown_worker_pools()
    small = np.arange(4.0)  # rides the pickle path
    big = np.random.default_rng(1).standard_normal(524_288)  # 4 MiB, shm

    def measure():
        latency = max(
            run_spmd(2, _pingpong, small, 200, backend="process").values
        )
        roundtrip = max(
            run_spmd(2, _pingpong, big, 20, backend="process").values
        )
        return latency, roundtrip

    run_spmd(2, _noop_prog, backend="process")  # prime the pool
    latency, roundtrip = benchmark.pedantic(measure, rounds=1, iterations=1)
    shutdown_worker_pools()
    bandwidth = 2 * big.nbytes / 1e6 / roundtrip
    table(
        "p2p ping-pong (process backend, warm pool)",
        ["metric", "value"],
        [
            ["small round trip (us)", latency * 1e6],
            ["4 MiB round trip (ms)", roundtrip * 1e3],
            ["bandwidth (MB/s)", bandwidth],
        ],
    )
    _record(
        "p2p",
        {
            "small_roundtrip_s": latency,
            "big_roundtrip_s": roundtrip,
            "bandwidth_mb_s": bandwidth,
        },
    )
    # The adaptive backoff starts at 1 ms: a small-message round trip must
    # come in well under the old fixed 50 ms poll floor.
    assert latency < 0.05
