#!/usr/bin/env python3
"""Quickstart: compress a combustion-like dataset with ST-HOSVD.

Mirrors the paper's basic workflow (Sec. VII): normalize the data per
species, compress to a relative-error tolerance, inspect the achieved
ranks/compression, save the compressed model, and reconstruct a subtensor
without ever forming the full reconstruction.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import normalized_rms, sthosvd
from repro.data import center_and_scale, hcci_proxy
from repro.io import load_tucker, save_tucker, stored_bytes


def main() -> None:
    # 1. Load the HCCI proxy dataset (2-D grid x species x time) and apply
    #    the paper's per-species normalization.
    ds = hcci_proxy()
    x, scaling = center_and_scale(ds.tensor, species_mode=ds.species_mode)
    print(f"dataset : {ds.name} {ds.shape}  ({ds.n_elements * 8 / 1e6:.1f} MB)")
    print(f"          {ds.description}")

    # 2. Compress with ST-HOSVD at eps = 1e-3 (ranks chosen automatically).
    eps = 1e-3
    result = sthosvd(x, tol=eps)
    t = result.decomposition
    print(f"\ncompress: eps={eps:g}")
    print(f"  ranks            : {t.ranks}  (of {t.shape})")
    print(f"  compression ratio: {t.compression_ratio:.1f}x")
    print(f"  error (estimate) : {result.error_estimate():.3e}")
    print(f"  error (exact)    : {t.relative_error(x):.3e}")

    # 3. Save the compressed model; report on-disk size.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "hcci.npz")
        save_tucker(path, t, metadata={"dataset": ds.name, "eps": eps})
        raw_mb = ds.n_elements * 8 / 1e6
        disk_mb = stored_bytes(path) / 1e6
        print(f"\nstorage : raw {raw_mb:.1f} MB -> compressed {disk_mb:.2f} MB "
              f"on disk ({raw_mb / disk_mb:.0f}x)")

        loaded, meta = load_tucker(path)
        assert meta["dataset"] == ds.name

    # 4. Reconstruct just one species at one time step — the laptop-analysis
    #    capability of paper Sec. II-C: cost scales with the subtensor.
    species, step = 4, 10
    slab = t.reconstruct_subtensor([None, None, species, step])
    truth = x[:, :, species, step]
    print(f"\npartial : species {species}, time step {step} -> "
          f"slab {slab.squeeze().shape}, "
          f"rel. err {normalized_rms(truth, slab.squeeze()):.3e}")


if __name__ == "__main__":
    main()
