#!/usr/bin/env python3
"""Streaming compression of a running simulation's output.

The paper compresses completed datasets; its motivating scenario — a
simulation emitting time steps one at a time — calls for an *incremental*
compressor that never holds the full tensor.  This example feeds the HCCI
proxy to :class:`repro.core.StreamingTucker` slab by slab, tracks basis
growth and memory, and compares the final decomposition against batch
ST-HOSVD on the same data.

Run:  python examples/streaming_compression.py
"""

import numpy as np

from repro.core import StreamingTucker, normalized_rms, sthosvd
from repro.data import center_and_scale, hcci_proxy

TOL = 1e-2
CHUNK = 5


def main() -> None:
    ds = hcci_proxy()
    x, _ = center_and_scale(ds.tensor, ds.species_mode)
    spatial, n_steps = x.shape[:-1], x.shape[-1]
    print(f"dataset: {ds.name} {x.shape}, streamed in chunks of {CHUNK} "
          f"time steps (tol = {TOL:g})\n")

    streamer = StreamingTucker(spatial, tol=TOL)
    print(f"{'steps':>6s}{'spatial ranks':>22s}{'core MB':>9s}{'full MB':>9s}")
    for t0 in range(0, n_steps, CHUNK):
        streamer.update(x[..., t0 : t0 + CHUNK])
        core_words = int(np.prod(streamer.current_ranks)) * streamer.n_steps
        print(f"{streamer.n_steps:>6d}{str(streamer.current_ranks):>22s}"
              f"{core_words * 8 / 1e6:>9.2f}"
              f"{np.prod(spatial) * streamer.n_steps * 8 / 1e6:>9.1f}")

    streamed = streamer.finalize()
    batch = sthosvd(x, tol=TOL).decomposition

    print(f"\n{'':12s}{'streamed':>14s}{'batch':>14s}")
    print(f"{'ranks':12s}{str(streamed.ranks):>14s}{str(batch.ranks):>14s}")
    print(f"{'compression':12s}{streamed.compression_ratio:>13.1f}x"
          f"{batch.compression_ratio:>13.1f}x")
    print(f"{'error':12s}{normalized_rms(x, streamed.reconstruct()):>14.2e}"
          f"{normalized_rms(x, batch.reconstruct()):>14.2e}")
    print("\nthe streamer held at most one slab plus the running core in "
          "memory, yet meets\nthe same error tolerance as the batch "
          "algorithm on the full tensor.")


if __name__ == "__main__":
    main()
