#!/usr/bin/env python3
"""Distributed Tucker compression on the simulated MPI runtime.

Runs the paper's parallel ST-HOSVD (Algs. 1 + 3-5) on a 2 x 2 x 1 x 3
processor grid (12 ranks), verifies the result against the sequential
reference, and prints the modeled per-kernel time breakdown from the cost
ledger — the same accounting that regenerates Fig. 8.

Run:  python examples/parallel_compression.py
"""

import numpy as np

from repro import sthosvd
from repro.data import center_and_scale, hcci_proxy
from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid, run_spmd

GRID = (2, 2, 1, 3)


def main() -> None:
    ds = hcci_proxy(shape=(32, 32, 33, 24))
    x, _ = center_and_scale(ds.tensor, ds.species_mode)
    print(f"dataset: {ds.name} proxy {x.shape} on grid {GRID} "
          f"({int(np.prod(GRID))} simulated MPI ranks)")

    def program(comm):
        grid = CartGrid(comm, GRID)
        dt = DistTensor.from_global(grid, x)
        t = dist_sthosvd(dt, tol=1e-3)
        # Gather the (small) compressed object on every rank.
        return t.to_tucker(), t.error_estimate()

    result = run_spmd(int(np.prod(GRID)), program)
    tucker, est = result[0]

    print(f"\nparallel ST-HOSVD: ranks {tucker.ranks}, "
          f"compression {tucker.compression_ratio:.1f}x, est. err {est:.2e}")

    seq = sthosvd(x, tol=1e-3)
    diff = np.linalg.norm(tucker.reconstruct() - seq.decomposition.reconstruct())
    print(f"agreement with sequential reference: |diff| = {diff:.2e}")

    ledger = result.ledger
    print(f"\nmodeled execution on {ledger.n_ranks} Edison cores "
          f"({ledger.machine.name}):")
    for section, seconds in sorted(ledger.section_times().items()):
        print(f"  {section:8s} {seconds * 1e3:9.3f} ms")
    print(f"  {'total':8s} {ledger.modeled_time() * 1e3:9.3f} ms   "
          f"({ledger.total_flops() / 1e6:.1f} Mflops, "
          f"{ledger.total_words() * 8 / 1e6:.1f} MB moved)")


if __name__ == "__main__":
    main()
