#!/usr/bin/env python3
"""What-if study: Tucker compression performance on a different machine.

The performance model (paper Secs. V-VI) is parameterized by four machine
constants, so it can answer questions the paper could not: how would the
same algorithm behave on a modern node with much higher flop rates but
comparatively slower networks?  This example compares three machines on the
paper's strong-scaling problem and shows how the compute/communication
crossover moves.

Run:  python examples/custom_machine_study.py
"""

from repro.perfmodel import (
    EDISON_CALIBRATED,
    MachineSpec,
    sthosvd_cost,
    strong_scaling_curve,
)

# A 2016 Cray XC30 core (the paper's machine, calibrated).
EDISON = EDISON_CALIBRATED

# A modern CPU core: ~20x the flops, ~4x the network bandwidth, similar
# latency.  Computation shrinks relative to communication.
MODERN_CPU = MachineSpec(
    alpha=1.0e-6,
    beta=8.0 / 10e9,
    gamma=1.0 / 400e9,
    name="modern-cpu-core",
    n_half=500.0,  # wider vector units need bigger blocks for peak
)

# A cloud VM: modern flops but high-latency, modest-bandwidth networking.
CLOUD_VM = MachineSpec(
    alpha=20e-6,
    beta=8.0 / 3e9,
    gamma=1.0 / 200e9,
    name="cloud-vm-core",
    n_half=500.0,
)

SHAPE, RANKS = (200,) * 4, (20,) * 4


def communication_fraction(machine: MachineSpec, grid) -> float:
    cost = sthosvd_cost(SHAPE, RANKS, grid, machine)
    comm = sum(c.bw_time + c.lat_time for c in cost.by_kernel.values())
    return comm / cost.time


def main() -> None:
    machines = [EDISON, MODERN_CPU, CLOUD_VM]
    procs = [24 * 2**k for k in range(0, 10, 3)] + [24 * 512]
    procs = sorted(set(procs))

    print("Strong scaling of ST-HOSVD, 200^4 -> 20^4 (modeled seconds):\n")
    header = f"{'cores':>8s}" + "".join(f"{m.name:>20s}" for m in machines)
    print(header)
    curves = {
        m.name: strong_scaling_curve(SHAPE, RANKS, procs, m) for m in machines
    }
    for i, p in enumerate(procs):
        row = f"{p:>8d}"
        for m in machines:
            row += f"{curves[m.name][i].sthosvd_time:>20.4f}"
        print(row)

    print("\nCommunication share of modeled time (grid 2x2x6x8, P = 192) "
          "and scaling\nefficiency from 24 to 12288 cores:")
    for m in machines:
        frac = communication_fraction(m, (2, 2, 6, 8))
        speedup = (
            curves[m.name][0].sthosvd_time / curves[m.name][-1].sthosvd_time
        )
        eff = speedup / (procs[-1] / procs[0])
        print(f"  {m.name:18s} comm {frac:6.1%}   speedup {speedup:6.1f}x "
              f"({eff:5.1%} efficiency)")

    print(
        "\ntakeaway: machines with high flop rates relative to their network "
        "(the cloud\nVM most of all) lose parallel efficiency soonest — the "
        "paper's communication-\nminimizing choices (P_1 = 1 grids, "
        "compression-first mode orders) are the lever."
    )


if __name__ == "__main__":
    main()
