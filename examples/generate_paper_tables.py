#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation as CSV.

Runs the full experiment registry of :mod:`repro.report` — compression
studies on the combustion proxies, Table II, and the modeled performance
studies (grid sweep, mode ordering, strong/weak scaling) — and writes one
CSV per paper artifact under ``paper_artifacts/``.

Run:  python examples/generate_paper_tables.py [output_dir]
"""

import sys
import time

from repro.report import EXPERIMENTS, generate_all


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "paper_artifacts"
    print(f"regenerating {len(EXPERIMENTS)} paper artifacts -> {out_dir}/")
    t0 = time.time()
    written = generate_all(out_dir)
    for name, path in written.items():
        print(f"  {name:12s} -> {path}")
    print(f"done in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
