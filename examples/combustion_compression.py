#!/usr/bin/env python3
"""Compression study across the three combustion datasets (paper Sec. VII).

Sweeps the error tolerance over the paper's range (1e-6 .. 1e-2) for the
HCCI, TJLR, and SP proxies and prints:

* the compression-vs-error table behind Figs. 1b and 7;
* the Table II comparison of ST-HOSVD vs HOOI at eps = 1e-3, including the
  maximum absolute elementwise error of the normalized data.

Uses the SVD-based factor computation (the paper's Sec. IX refinement) so
tolerances near machine precision remain meaningful at proxy scale.

Run:  python examples/combustion_compression.py
"""

import numpy as np

from repro import hooi, max_abs_error, normalized_rms, sthosvd
from repro.data import center_and_scale, hcci_proxy, sp_proxy, tjlr_proxy


def compression_sweep() -> None:
    print("=" * 72)
    print("Compression ratio vs normalized RMS error  (cf. paper Figs. 1b, 7)")
    print("=" * 72)
    epsilons = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
    header = "dataset " + "".join(f"{e:>12.0e}" for e in epsilons)
    print(header)
    for build in (hcci_proxy, tjlr_proxy, sp_proxy):
        ds = build()
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        ratios = []
        for eps in epsilons:
            r = sthosvd(x, tol=eps, method="svd")
            ratios.append(r.decomposition.compression_ratio)
        print(f"{ds.name:8s}" + "".join(f"{c:12.1f}" for c in ratios))
    print("\npaper (Fig. 7, full-size data): TJLR 2 -> 37, HCCI in between, "
          "SP 5 -> 5580 over the same range;\nproxies reproduce the ordering "
          "and slopes at laptop scale (smaller dims cap the extremes).")


def table2() -> None:
    print()
    print("=" * 72)
    print("ST-HOSVD vs HOOI at eps = 1e-3  (cf. paper Table II)")
    print("=" * 72)
    print(f"{'dataset':8s}{'reduced dims':>26s}{'ST RMS':>10s}{'ST max':>9s}"
          f"{'HOOI RMS':>10s}{'HOOI max':>9s}{'C':>7s}")
    for build in (hcci_proxy, tjlr_proxy, sp_proxy):
        ds = build()
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        st = sthosvd(x, tol=1e-3)
        ho = hooi(x, init=st, max_iterations=5)
        st_rec = st.decomposition.reconstruct()
        ho_rec = ho.decomposition.reconstruct()
        print(
            f"{ds.name:8s}{str(st.ranks):>26s}"
            f"{normalized_rms(x, st_rec):>10.2e}{max_abs_error(x, st_rec):>9.2f}"
            f"{normalized_rms(x, ho_rec):>10.2e}{max_abs_error(x, ho_rec):>9.2f}"
            f"{st.decomposition.compression_ratio:>7.0f}"
        )
    print("\npaper Table II: HOOI's improvement over ST-HOSVD is negligible "
          "for this application,\nso ST-HOSVD alone suffices — the same "
          "conclusion holds for the proxies.")


if __name__ == "__main__":
    compression_sweep()
    table2()
