#!/usr/bin/env python3
"""Laptop-style analysis of compressed data (paper Secs. II-C, VII).

The paper's motivating workflow: a simulation produces terabytes; Tucker
compression reduces them to something shippable; an analyst then extracts
*reconstructed subsets* — one species, a few time steps, a coarser grid, a
spatial window — without ever materializing the full tensor.  This example
compresses the SP proxy once and then performs four such extractions,
reporting per-extraction cost (elements touched) and accuracy.

Run:  python examples/subtensor_analysis.py
"""

import numpy as np

from repro import normalized_rms, sthosvd
from repro.data import center_and_scale, sp_proxy


def main() -> None:
    ds = sp_proxy()
    x, scaling = center_and_scale(ds.tensor, ds.species_mode)
    result = sthosvd(x, tol=1e-3)
    t = result.decomposition
    print(f"dataset {ds.name} {ds.shape}: compressed "
          f"{t.compression_ratio:.0f}x at eps=1e-3 (ranks {t.ranks})\n")

    extractions = [
        (
            "single variable, all space/time",
            [None, None, None, 3, None],
            (slice(None), slice(None), slice(None), 3, slice(None)),
        ),
        (
            "one time step, all variables",
            [None, None, None, None, 7],
            (slice(None), slice(None), slice(None), slice(None), 7),
        ),
        (
            "coarse 2x-downsampled grid",
            [slice(0, None, 2)] * 3 + [None, None],
            (slice(0, None, 2),) * 3 + (slice(None), slice(None)),
        ),
        (
            "spatial window x last 5 steps",
            [slice(8, 24), slice(8, 24), slice(8, 24), None, slice(-5, None)],
            (slice(8, 24), slice(8, 24), slice(8, 24), slice(None), slice(-5, None)),
        ),
    ]

    full = ds.n_elements
    for label, spec, np_idx in extractions:
        sub = t.reconstruct_subtensor(spec)
        truth = x[np_idx]
        err = normalized_rms(truth, sub.reshape(truth.shape))
        print(f"{label:36s} {str(truth.shape):>22s} "
              f"({truth.size / full:7.2%} of data)  err {err:.2e}")

    print("\nevery extraction touched only the selected factor rows — the "
          "full tensor was never formed.")


if __name__ == "__main__":
    main()
