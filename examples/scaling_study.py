#!/usr/bin/env python3
"""Strong/weak scaling study with the alpha-beta-gamma model (paper Sec. VIII).

Regenerates, at paper scale, the predictions behind Figs. 9a and 9b using
the analytic cost model (the physical Cray is simulated — see DESIGN.md),
and validates the model's grid preferences at small scale by actually
executing the simulated-MPI ST-HOSVD and reading its cost ledger.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro.data import center_and_scale
from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid, run_spmd
from repro.perfmodel import EDISON_CALIBRATED, strong_scaling_curve, weak_scaling_curve
from repro.tensor import low_rank_tensor


def strong_scaling() -> None:
    print("=" * 68)
    print("Strong scaling: 200^4 tensor -> 20^4 core  (cf. paper Fig. 9a)")
    print("=" * 68)
    procs = [24 * 2**k for k in range(10)]
    points = strong_scaling_curve((200,) * 4, (20,) * 4, procs, EDISON_CALIBRATED)
    print(f"{'nodes':>6s}{'cores':>8s}{'grid':>16s}{'ST-HOSVD':>12s}{'HOOI iter':>12s}")
    for k, pt in enumerate(points):
        grid = "x".join(map(str, pt.grid))
        print(f"{2**k:>6d}{pt.n_procs:>8d}{grid:>16s}"
              f"{pt.sthosvd_time:>11.3f}s{pt.hooi_time:>11.3f}s")
    t0, t512 = points[0].sthosvd_time, points[-1].sthosvd_time
    print(f"\nmodeled: {t0:.2f} s on one node (paper: ~3 s), speedup "
          f"{t0 / t512:.0f}x to 512 nodes.\npaper measured ~20x with "
          f"saturation past 256 nodes — system effects beyond the\n"
          f"alpha-beta-gamma + BLAS-efficiency model (see EXPERIMENTS.md).")


def weak_scaling() -> None:
    print()
    print("=" * 68)
    print("Weak scaling: (200k)^4 tensor, 24 k^4 cores  (cf. paper Fig. 9b)")
    print("=" * 68)
    points = weak_scaling_curve(range(1, 7), EDISON_CALIBRATED)
    print(f"{'k':>3s}{'nodes':>7s}{'cores':>8s}{'data':>9s}"
          f"{'GF/core ST':>12s}{'GF/core HOOI':>13s}")
    for k, pt in enumerate(points, start=1):
        data_gb = (200 * k) ** 4 * 8 / 1e9
        print(f"{k:>3d}{k**4:>7d}{pt.n_procs:>8d}{data_gb:>7.0f}GB"
              f"{pt.gflops_per_core('sthosvd'):>12.2f}"
              f"{pt.gflops_per_core('hooi'):>13.2f}")
    print("\npaper: 66% of 19.2 GFLOPS peak on one node falling to 17% at "
          "1296 nodes.\nthe model reproduces single-node efficiency and "
          "HOOI < ST-HOSVD per-core rates;\nits per-core rate stays ~flat "
          "with k (the paper's decay is dominated by effects\noutside the "
          "alpha-beta-gamma model — see EXPERIMENTS.md).")


def validate_grid_choice() -> None:
    print()
    print("=" * 68)
    print("Small-scale validation: measured (simulated) vs modeled grid ranking")
    print("=" * 68)
    x = low_rank_tensor((24, 24, 24, 24), (6, 6, 6, 6), seed=9, noise=1e-9)
    grids = [(1, 1, 2, 4), (1, 2, 2, 2), (2, 2, 2, 1), (4, 2, 1, 1)]
    rows = []
    for grid in grids:
        def program(comm, g=grid):
            dt = DistTensor.from_global(CartGrid(comm, g), x)
            dist_sthosvd(dt, ranks=(6, 6, 6, 6))
            return None

        res = run_spmd(8, program)
        rows.append((grid, res.ledger.modeled_time()))
    rows.sort(key=lambda r: r[1])
    for grid, t in rows:
        print(f"  grid {'x'.join(map(str, grid)):>10s}  modeled {t * 1e3:8.3f} ms")
    print("\nas in paper Sec. VIII-B, grids with P_1 = 1 win: the first "
          "(largest) Gram/TTM\npair then needs no ring exchange and no "
          "blocked reduction.")


if __name__ == "__main__":
    strong_scaling()
    weak_scaling()
    validate_grid_choice()
