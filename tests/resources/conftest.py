"""Resource-governance tests pick their backend explicitly per test."""

import pytest


@pytest.fixture(autouse=True)
def spmd_backend():
    """Shadow the package sweep: backends are chosen per test here."""
    return None
