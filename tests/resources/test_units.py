"""Unit tests for the resources package: governor, admission, report."""

import errno
import pickle
import time

import pytest

from repro.config import RuntimeConfig, resolve_config
from repro.mpi.errors import AdmissionError, DeadlineExceededError
from repro.resources import (
    AdmissionController,
    BudgetExceededError,
    DegradationEvent,
    ResourceBoard,
    ResourceGovernor,
    ResourceReport,
    check_deadline,
    estimate_world_shm,
    is_exhaustion,
    remaining_deadline,
    set_active_deadline,
)


class TestConfigKnobs:
    def test_budget_size_suffixes(self, monkeypatch):
        for raw, expected in (
            ("4096", 4096),
            ("64K", 64 << 10),
            ("64M", 64 << 20),
            ("2g", 2 << 30),
            ("0.5M", 1 << 19),
            ("", 0),
        ):
            monkeypatch.setenv("REPRO_SHM_BUDGET", raw)
            assert resolve_config().shm_budget == expected

    def test_bad_budget_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_BUDGET", "lots")
        with pytest.raises(ValueError, match="REPRO_SHM_BUDGET"):
            resolve_config()

    def test_max_worlds_and_deadline_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORLDS", "3")
        monkeypatch.setenv("REPRO_DEADLINE", "2.5")
        cfg = resolve_config()
        assert cfg.max_worlds == 3
        assert cfg.deadline == 2.5

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="shm_budget"):
            RuntimeConfig(shm_budget=-1)
        with pytest.raises(ValueError, match="max_worlds"):
            RuntimeConfig(max_worlds=-1)
        with pytest.raises(ValueError, match="deadline"):
            RuntimeConfig(deadline=-0.1)

    def test_json_roundtrip_with_resource_fields(self):
        cfg = RuntimeConfig(shm_budget=1 << 20, max_worlds=2, deadline=9.0)
        assert RuntimeConfig.from_json(cfg.to_json()) == cfg


class TestGovernor:
    def test_gate_denies_over_budget_with_enospc(self):
        gov = ResourceGovernor()
        gov.configure(budget=1000)
        gov.gate("arena", 900)  # within budget: no raise
        gov.charge(900)
        with pytest.raises(BudgetExceededError) as exc_info:
            gov.gate("window", 200)
        exc = exc_info.value
        assert isinstance(exc, OSError)
        assert exc.errno == errno.ENOSPC
        assert exc.purpose == "window" and exc.nbytes == 200
        assert is_exhaustion(exc)

    def test_budget_exceeded_error_pickles(self):
        exc = BudgetExceededError("arena", 10, 5, 4)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.errno == errno.ENOSPC
        assert (clone.purpose, clone.nbytes) == ("arena", 10)

    def test_release_frees_budget(self):
        gov = ResourceGovernor()
        gov.configure(budget=1000)
        gov.charge(900)
        gov.release(900)
        gov.gate("arena", 900)  # fits again

    def test_is_exhaustion_routes_on_errno(self):
        assert is_exhaustion(OSError(errno.ENOSPC, "full"))
        assert is_exhaustion(OSError(errno.ENOMEM, "oom"))
        assert not is_exhaustion(OSError(errno.EINVAL, "bad"))
        assert not is_exhaustion(ValueError("nope"))

    def test_summary_counts_events_and_bytes(self):
        gov = ResourceGovernor()
        gov.configure(budget=0)
        gov.charge(100)
        gov.note_degradation("window", "p2p", 64, "why")
        gov.release(40)
        summary = gov.deconfigure()
        assert summary["events"] == [("window", "p2p", 64, "why")]
        assert summary["charged"] == 100
        assert summary["released"] == 40
        assert summary["live"] == 60
        assert summary["peak"] == 100

    def test_board_mirror_is_world_wide(self):
        board = ResourceBoard.create(3)
        try:
            a, b = ResourceGovernor(), ResourceGovernor()
            a.configure(budget=100, board=board, slot=0)
            b.configure(budget=100, board=board, slot=1)
            a.charge(80)
            # b sees a's bytes through the board and denies its request.
            with pytest.raises(BudgetExceededError):
                b.gate("arena", 40)
            # Ownership transfer: b unlinks a's segment; the sum nets out.
            b.release(80)
            assert board.total() == 0
            b.gate("arena", 40)
        finally:
            board.close()
            board.unlink()


class TestDeadline:
    def test_check_raises_past_deadline_naming_op(self):
        previous = set_active_deadline((time.monotonic() - 0.01, 5.0))
        try:
            with pytest.raises(DeadlineExceededError, match="allreduce fence"):
                check_deadline("allreduce fence")
        finally:
            set_active_deadline(previous)

    def test_check_is_noop_before_deadline_or_unset(self):
        previous = set_active_deadline((time.monotonic() + 60.0, 60.0))
        try:
            check_deadline("anything")
            assert 59.0 < remaining_deadline() <= 60.0
        finally:
            set_active_deadline(previous)
        check_deadline("no deadline installed")
        assert remaining_deadline() is None


class TestAdmission:
    def test_sole_world_always_admitted(self):
        ctrl = AdmissionController()
        cfg = RuntimeConfig(shm_budget=10, max_worlds=1)
        ticket, waited = ctrl.admit(4, estimate=10**9, config=cfg)
        assert waited < 1.0
        ctrl.release(ticket)

    def test_max_worlds_denial_reason(self):
        ctrl = AdmissionController()
        cfg = RuntimeConfig(max_worlds=2)
        t1, _ = ctrl.admit(2, 0, cfg)
        t2, _ = ctrl.admit(2, 0, cfg)
        with pytest.raises(AdmissionError) as exc_info:
            ctrl.admit(2, 0, cfg, max_wait=0.05)
        assert exc_info.value.reason == "max_worlds"
        ctrl.release(t1)
        ctrl.release(t2)

    def test_shm_budget_denial_reason(self):
        ctrl = AdmissionController()
        cfg = RuntimeConfig(shm_budget=1000)
        t1, _ = ctrl.admit(2, 800, cfg)
        with pytest.raises(AdmissionError) as exc_info:
            ctrl.admit(2, 400, cfg, max_wait=0.05)
        assert exc_info.value.reason == "shm_budget"
        ctrl.release(t1)
        # With the first world gone its promise is released too.
        t2, _ = ctrl.admit(2, 400, cfg)
        ctrl.release(t2)

    def test_waiting_launch_admitted_when_world_finishes(self):
        import threading

        ctrl = AdmissionController()
        cfg = RuntimeConfig(max_worlds=1)
        t1, _ = ctrl.admit(2, 0, cfg)
        threading.Timer(0.1, ctrl.release, args=(t1,)).start()
        t2, waited = ctrl.admit(2, 0, cfg, max_wait=2.0)
        assert 0.05 <= waited < 1.5
        ctrl.release(t2)

    def test_denial_runs_recyclers_before_rejecting(self):
        ctrl = AdmissionController()
        cfg = RuntimeConfig(shm_budget=1000)
        freed: list[int] = []

        def recycler(needed: int) -> int:
            freed.append(needed)
            return 0

        ctrl.register_recycler(recycler)
        t1, _ = ctrl.admit(2, 900, cfg)
        with pytest.raises(AdmissionError):
            ctrl.admit(2, 500, cfg, max_wait=0.05)
        assert freed  # the recycler was consulted
        ctrl.release(t1)

    def test_admission_error_pickles(self):
        exc = AdmissionError("denied", reason="shm_budget")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.reason == "shm_budget"

    def test_estimate_scales_with_world(self):
        small = estimate_world_shm(2)
        large = estimate_world_shm(16)
        assert 0 < small < large
        hinted = estimate_world_shm(2, payload_hint=1 << 20)
        assert hinted > small
        no_windows = estimate_world_shm(
            2, RuntimeConfig(windows=False, arena=False)
        )
        assert no_windows == 0


class TestReport:
    def test_fold_rank_summaries(self):
        report = ResourceReport.from_rank_summaries(
            {
                0: {
                    "events": [("window", "p2p", 64, "denied")],
                    "live": 10,
                    "peak": 100,
                    "charged": 90,
                    "released": 80,
                },
                1: None,  # a rank that never configured (or died)
                -1: {
                    "events": [],
                    "live": 5,
                    "peak": 50,
                    "charged": 50,
                    "released": 45,
                },
            }
        )
        assert report.degraded
        (event,) = report.degradations
        assert event == DegradationEvent(0, "window", "p2p", 64, "denied")
        assert report.rank_live_bytes == {0: 10, -1: 5}
        assert report.charged_bytes == 140
        assert report.released_bytes == 125
        assert "degraded" in report.describe()

    def test_empty_report(self):
        report = ResourceReport()
        assert not report.degraded
        assert "no degradations" in report.describe()

    def test_events_survive_pickle(self):
        report = ResourceReport(
            degradations=[DegradationEvent(1, "arena", "pickle", 8, "x")]
        )
        clone = pickle.loads(pickle.dumps(report))
        assert clone.degradations == report.degradations
