"""End-to-end resource governance at the ``run_spmd`` boundary.

Backend choices are deliberate per test (the package sweep is shadowed
in conftest): budget degradation and pool recycling only mean anything
on the process backend, while deadlines must fire on both.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.faults import RetryPolicy
from repro.mpi import DeadlineExceededError, SpmdError, shutdown_worker_pools
from repro.mpi.backends import _recycle_idle_pools
from tests.conftest import spmd


def _collectives(comm, n):
    """Windowed allreduce + bcast, big enough to want real segments."""
    data = np.arange(n, dtype=np.float64) * (comm.rank + 1)
    total = comm.allreduce(data)
    seed = total[:8] if comm.rank == 0 else None
    head = comm.bcast(seed, root=0)
    return float(total.sum()) + float(head.sum())


def _p2p_ring(comm, n):
    """Arena-staged sends: rank r passes its payload to rank r+1."""
    payload = np.full(n, float(comm.rank + 1))
    dest = (comm.rank + 1) % comm.size
    source = (comm.rank - 1) % comm.size
    got = comm.sendrecv(payload, dest=dest, source=source)
    return float(got[0])


def _slow_allreduce(comm):
    return float(comm.allreduce(np.ones(4))[0])


class TestBudgetDegradation:
    def test_tiny_budget_is_bit_identical_to_fast_path(self):
        fast = spmd(2, _collectives, 4096, backend="process")
        # A warm pool's pre-budget segments (arena free lists, windows)
        # are legitimately reused without new allocations; start cold so
        # the constrained run has to allocate — and degrade.
        shutdown_worker_pools()
        lean = spmd(
            2,
            _collectives,
            4096,
            backend="process",
            config=RuntimeConfig(shm_budget=8192),
        )
        assert lean.values == fast.values
        report = lean.resources
        assert report is not None and report.degraded
        for event in report.degradations:
            assert event.site in ("window", "arena")
            assert event.kind in ("p2p", "pickle")
            assert event.nbytes > 0
        assert report.budget_bytes == 8192
        assert "degraded" in report.describe()

    def test_arena_degradation_on_p2p_path(self):
        fast = spmd(3, _p2p_ring, 20_000, backend="process")
        shutdown_worker_pools()  # cold arenas: the lean run must allocate
        lean = spmd(
            3,
            _p2p_ring,
            20_000,
            backend="process",
            config=RuntimeConfig(shm_budget=4096, windows=False),
        )
        assert lean.values == fast.values
        report = lean.resources
        assert report.degraded
        assert {e.site for e in report.degradations} == {"arena"}
        assert {e.kind for e in report.degradations} == {"pickle"}

    def test_unconstrained_run_reports_no_degradations(self):
        # Explicit default config pins the fast path on even when the
        # environment (the CI fallback leg) turns windows/arena off.
        res = spmd(
            2, _collectives, 4096, backend="process", config=RuntimeConfig()
        )
        report = res.resources
        assert report is not None
        assert not report.degraded
        assert report.charged_bytes > 0
        assert report.estimate_bytes > 0
        assert report.admission_wait >= 0.0

    def test_thread_backend_reports_empty_resources(self):
        res = spmd(2, _collectives, 256, backend="thread")
        assert res.resources is not None
        assert not res.resources.degraded
        assert res.resources.charged_bytes == 0


class TestFaultInjection:
    def test_enospc_degrades_the_targeted_window(self):
        fast = spmd(2, _collectives, 4096, backend="process")
        shutdown_worker_pools()  # cold pool: the faulted run allocates
        hit = spmd(
            2,
            _collectives,
            4096,
            backend="process",
            faults="rank=0:site=window:kind=enospc:nth=1",
            config=RuntimeConfig(),  # windows on even on the fallback leg
        )
        assert hit.values == fast.values
        report = hit.resources
        assert report.degraded
        assert any(e.site == "window" for e in report.degradations)

    def test_enospc_on_arena_site(self):
        fast = spmd(2, _p2p_ring, 20_000, backend="process")
        shutdown_worker_pools()  # cold arenas
        hit = spmd(
            2,
            _p2p_ring,
            20_000,
            backend="process",
            faults="rank=1:site=arena:kind=enospc",
            config=RuntimeConfig(),  # arena on even on the fallback leg
        )
        assert hit.values == fast.values
        assert any(
            e.site == "arena" and e.rank == 1
            for e in hit.resources.degradations
        )


class TestDeadline:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_stalled_rank_trips_deadline_on_all_ranks(self, backend):
        start = time.monotonic()
        with pytest.raises(SpmdError) as exc_info:
            spmd(
                2,
                _slow_allreduce,
                backend=backend,
                faults="rank=1:site=allreduce:kind=stall",
                deadline=1.5,
            )
        elapsed = time.monotonic() - start
        failures = exc_info.value.failures
        assert failures, "no rank reported a failure"
        for exc in failures.values():
            assert isinstance(exc, DeadlineExceededError)
            assert "deadline of 1.5" in str(exc)
        # Every rank converges well before the deadlock timeout (20 s).
        assert elapsed < 10.0

    def test_generous_deadline_is_invisible(self):
        res = spmd(2, _slow_allreduce, backend="process", deadline=30.0)
        assert res.values == [2.0, 2.0]

    def test_deadline_composes_with_retry(self):
        # First attempt crashes; the relaunch shares the (generous)
        # deadline budget and completes.
        res = spmd(
            2,
            _slow_allreduce,
            backend="process",
            faults="rank=1:site=allreduce:kind=crash:attempt=1",
            retry=RetryPolicy(max_attempts=2, backoff=0.01),
            deadline=30.0,
        )
        assert res.values == [2.0, 2.0]


class TestAdmission:
    def test_result_carries_admission_fields(self):
        res = spmd(
            2,
            _collectives,
            1024,
            backend="process",
            config=RuntimeConfig(max_worlds=1, shm_budget=1 << 20),
        )
        report = res.resources
        assert report.estimate_bytes > 0
        assert report.budget_bytes == 1 << 20
        assert 0.0 <= report.admission_wait < 1.0

    def test_recycler_reclaims_idle_warm_pools(self):
        # Force pooling (the CI fallback leg exports REPRO_SPMD_POOL=0):
        # the claim is about warm pools, so there must be one.
        from repro.mpi import ProcessBackend

        shutdown_worker_pools()
        spmd(2, _slow_allreduce, backend=ProcessBackend(pool=True))
        warm = len(multiprocessing.active_children())
        assert warm >= 2  # the pool stays warm between runs
        _recycle_idle_pools(1)
        assert len(multiprocessing.active_children()) < warm
