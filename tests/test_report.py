"""Tests for the experiment-regeneration registry (repro.report)."""

import csv
import os

import numpy as np
import pytest

from repro import report
from repro.perfmodel import EDISON


class TestPerformanceData:
    """Model-backed experiments are cheap enough to test at paper scale."""

    def test_fig8a_rows(self):
        rows = report.fig8a_data()
        assert len(rows) == 11
        assert {"grid", "time", "relative_time", "gram_time"} <= set(rows[0])
        assert min(r["relative_time"] for r in rows) == pytest.approx(1.0)

    def test_fig8b_rows(self):
        rows = report.fig8b_data()
        assert len(rows) == 24  # all permutations of 4 modes
        best = min(rows, key=lambda r: r["time"])
        assert best["order"].startswith("2")

    def test_fig9a_rows(self):
        rows = report.fig9a_data()
        assert [r["nodes"] for r in rows] == [2**k for k in range(10)]
        times = [r["sthosvd_seconds"] for r in rows]
        assert times[0] > times[-1]

    def test_fig9b_rows(self):
        rows = report.fig9b_data()
        assert [r["k"] for r in rows] == list(range(1, 7))
        for r in rows:
            assert 0 < r["sthosvd_gflops_per_core"] < 19.2

    def test_machine_parameter(self):
        ideal = report.fig9a_data(machine=EDISON)
        calibrated = report.fig9a_data()
        assert ideal[0]["sthosvd_seconds"] < calibrated[0]["sthosvd_seconds"]


class TestCompressionData:
    """Data-backed experiments run on small proxies via monkeypatching."""

    @pytest.fixture(autouse=True)
    def small_proxies(self, monkeypatch):
        from repro.data import load_dataset

        small = {
            "HCCI": dict(shape=(16, 16, 8, 12)),
            "TJLR": dict(shape=(8, 10, 6, 12, 6)),
            "SP": dict(shape=(12, 12, 12, 6, 8)),
        }

        def patched(name, **kwargs):
            return load_dataset(name, **small[name.upper()])

        monkeypatch.setattr(report, "load_dataset", patched)

    def test_fig1b_rows(self):
        rows = report.fig1b_data(epsilons=(1e-3, 1e-2))
        assert len(rows) == 2
        assert rows[0]["compression_ratio"] < rows[1]["compression_ratio"]
        for r in rows:
            assert r["true_error"] <= r["eps"]

    def test_fig6_rows(self):
        rows = report.fig6_data("SP")
        modes = {r["mode"] for r in rows}
        assert modes == {0, 1, 2, 3, 4}
        # Errors decrease with rank within each mode.
        per_mode = [r["error"] for r in rows if r["mode"] == 0]
        assert all(b <= a + 1e-12 for a, b in zip(per_mode, per_mode[1:]))

    def test_fig7_rows(self):
        rows = report.fig7_data(epsilons=(1e-2,))
        by_ds = {r["dataset"]: r["compression_ratio"] for r in rows}
        assert by_ds["SP"] > by_ds["HCCI"] > by_ds["TJLR"]

    def test_table2_rows(self):
        rows = report.table2_data(eps=1e-2, hooi_iterations=1)
        assert [r["dataset"] for r in rows] == ["HCCI", "TJLR", "SP"]
        for r in rows:
            assert r["hooi_norm_rms"] <= r["st_norm_rms"] + 1e-12


class TestCsvOutput:
    def test_write_csv(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = tmp_path / "out.csv"
        report.write_csv(rows, path)
        with open(path) as fh:
            parsed = list(csv.DictReader(fh))
        assert parsed[1]["a"] == "3"

    def test_write_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            report.write_csv([], tmp_path / "x.csv")

    def test_registry_covers_all_artifacts(self):
        assert set(report.EXPERIMENTS) == {
            "fig1b", "fig6_hcci", "fig6_tjlr", "fig6_sp", "fig7",
            "table2", "fig8a", "fig8b", "fig9a", "fig9b",
        }
