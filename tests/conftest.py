"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.perfmodel.machine import UNIT


@pytest.fixture
def rng():
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


def spmd(n_ranks, fn, *args, **kwargs):
    """Run an SPMD function with test-friendly defaults (short timeout)."""
    kwargs.setdefault("timeout", 20.0)
    return run_spmd(n_ranks, fn, *args, **kwargs)


def spmd_unit(n_ranks, fn, *args, **kwargs):
    """SPMD run on the unit-cost machine (time == messages+words+flops)."""
    kwargs.setdefault("machine", UNIT)
    return spmd(n_ranks, fn, *args, **kwargs)


def suite_compute_dtype() -> str:
    """The compute dtype the whole suite runs under (the REPRO_DTYPE CI leg).

    Agreement tests compare distributed results against float64 sequential
    references; under a narrowed suite dtype those comparisons legitimately
    loosen.  Tests read the environment directly on purpose — they describe
    the launch configuration, unlike library code (see lint rule SPMD006).
    """
    import os

    return os.environ.get("REPRO_DTYPE", "float64")


def recon_atol(float64_atol: float = 1e-8) -> float:
    """Reconstruction comparison atol, widened under a narrow suite dtype.

    float32/mixed factor subspaces carry single-precision roundoff, so a
    reconstruction agrees with the float64 sequential reference only to
    ~sqrt(eps_f32) relative (measured ~2e-7 on the suite problems; 1e-4
    leaves margin across seeds and shapes).
    """
    return float64_atol if suite_compute_dtype() == "float64" else 1e-4
