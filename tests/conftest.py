"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.perfmodel.machine import UNIT


@pytest.fixture
def rng():
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


def spmd(n_ranks, fn, *args, **kwargs):
    """Run an SPMD function with test-friendly defaults (short timeout)."""
    kwargs.setdefault("timeout", 20.0)
    return run_spmd(n_ranks, fn, *args, **kwargs)


def spmd_unit(n_ranks, fn, *args, **kwargs):
    """SPMD run on the unit-cost machine (time == messages+words+flops)."""
    kwargs.setdefault("machine", UNIT)
    return spmd(n_ranks, fn, *args, **kwargs)
