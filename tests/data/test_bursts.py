"""Burst-injection tests: heavy-tailed errors from localized events.

The paper's datasets produce maximum elementwise errors orders of magnitude
above the RMS error (Table II: RMS ~9e-4 vs max-abs ~0.15-1.6) because
combustion activity is bursty and localized.  Bursty synthetic fields must
reproduce that gap; smooth fields must not.
"""

import numpy as np
import pytest

from repro.core import max_abs_error, normalized_rms, sthosvd
from repro.data.fields import decay_profile, multiway_field


def _field(bursts, seed=60):
    shape = (24, 24, 12)
    profiles = [decay_profile(s, kind="exp", rate=12.0 / s) for s in shape]
    return multiway_field(
        shape, profiles, seed=seed, noise=1e-6, bursts=bursts,
        burst_amplitude=8.0,
    )


class TestBurstGeneration:
    def test_bursts_are_localized(self):
        clean = _field(0)
        bursty = _field(3)
        diff = np.abs(bursty - clean)
        # Most of the field is untouched; a small region carries the energy.
        touched = np.mean(diff > 0.1 * diff.max())
        assert touched < 0.05

    def test_bursts_deterministic(self):
        np.testing.assert_array_equal(_field(2), _field(2))

    def test_zero_bursts_unchanged_signature(self):
        shape = (8, 8)
        profiles = [decay_profile(8, rate=1.0)] * 2
        a = multiway_field(shape, profiles, seed=1)
        b = multiway_field(shape, profiles, seed=1, bursts=0)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        profiles = [decay_profile(8, rate=1.0)] * 2
        with pytest.raises(ValueError, match="bursts"):
            multiway_field((8, 8), profiles, bursts=-1)
        with pytest.raises(ValueError, match="burst_amplitude"):
            multiway_field((8, 8), profiles, bursts=1, burst_amplitude=0)


def _tail_ratio(x):
    """Max-abs error over RMS error of a tol=1e-2 compression, in data-RMS
    units — the paper's Table II signature statistic."""
    res = sthosvd(x, tol=1e-2)
    rec = res.decomposition.reconstruct()
    rms = normalized_rms(x, rec)
    data_rms = float(np.sqrt(np.mean(x**2)))
    return max_abs_error(x, rec) / data_rms / max(rms, 1e-300)


class TestHeavyTailedErrors:
    def test_bursty_data_has_heavier_error_tail_than_smooth(self):
        # The paper's Table II shows max-abs errors far above the RMS on
        # real (bursty) data; localized bursts must push the residual's
        # max/RMS ratio up relative to the smooth field.
        assert _tail_ratio(_field(4)) > 1.3 * _tail_ratio(_field(0))

    def test_bursty_tail_exceeds_gaussian_expectation(self):
        # For a Gaussian residual over ~7k elements the max/RMS ratio is
        # ~3.8; bursty data must exceed it clearly.
        assert _tail_ratio(_field(4)) > 5.0
