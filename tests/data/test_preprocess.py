"""Center-and-scale normalization tests (paper Sec. VII-A)."""

import numpy as np
import pytest

from repro.data import center_and_scale, invert_scaling
from repro.data.preprocess import SIGMA_FLOOR


class TestCenterAndScale:
    def test_slices_become_standard(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 9, 4))
        y, info = center_and_scale(x, species_mode=2)
        for s in range(4):
            assert y[:, :, s].mean() == pytest.approx(0.0, abs=1e-12)
            assert y[:, :, s].std() == pytest.approx(1.0)

    def test_constant_slice_only_centered(self, rng):
        x = rng.standard_normal((6, 5, 3))
        x[:, :, 1] = 7.0  # constant slice: sigma < floor
        y, info = center_and_scale(x, species_mode=2)
        np.testing.assert_allclose(y[:, :, 1], 0.0, atol=1e-12)
        assert info.stds[1] == 1.0  # divisor skipped

    def test_input_not_modified(self, rng):
        x = rng.standard_normal((4, 5, 3))
        original = x.copy()
        center_and_scale(x, species_mode=1)
        np.testing.assert_array_equal(x, original)

    def test_negative_mode(self, rng):
        x = rng.standard_normal((4, 5, 3))
        y1, _ = center_and_scale(x, species_mode=-1)
        y2, _ = center_and_scale(x, species_mode=2)
        np.testing.assert_array_equal(y1, y2)

    def test_sigma_floor_constant(self):
        assert SIGMA_FLOOR == 1e-10


class TestInvertScaling:
    def test_roundtrip(self, rng):
        x = rng.normal(loc=-2.0, scale=10.0, size=(6, 7, 5))
        y, info = center_and_scale(x, species_mode=2)
        back = invert_scaling(y, info)
        np.testing.assert_allclose(back, x, atol=1e-10)

    def test_roundtrip_with_constant_slice(self, rng):
        x = rng.standard_normal((5, 4, 3))
        x[:, :, 0] = 2.5
        y, info = center_and_scale(x, species_mode=2)
        back = invert_scaling(y, info)
        np.testing.assert_allclose(back, x, atol=1e-10)

    def test_roundtrip_middle_mode(self, rng):
        x = rng.normal(scale=4.0, size=(5, 6, 7))
        y, info = center_and_scale(x, species_mode=1)
        np.testing.assert_allclose(invert_scaling(y, info), x, atol=1e-10)

    def test_slice_count_mismatch(self, rng):
        x = rng.standard_normal((5, 4, 3))
        _, info = center_and_scale(x, species_mode=2)
        wrong = rng.standard_normal((5, 4, 6))
        with pytest.raises(ValueError, match="slices"):
            invert_scaling(wrong, info)

    def test_reconstruction_error_transfers(self, rng):
        # Denormalizing a compressed approximation must preserve per-slice
        # relative errors scaled by each slice's sigma.
        x = rng.normal(scale=2.0, size=(6, 6, 3))
        y, info = center_and_scale(x, species_mode=2)
        y_approx = y + 1e-3 * rng.standard_normal(y.shape)
        back = invert_scaling(y_approx, info)
        err = np.abs(back - x)
        for s in range(3):
            assert err[:, :, s].max() <= 1e-2 * info.stds[s]
