"""Performance-experiment problem-definition tests."""

import pytest

from repro.data import (
    fig8a_problem,
    fig8b_problem,
    strong_scaling_problem,
    weak_scaling_problem,
)
from repro.util.validation import prod


class TestFig8a:
    def test_paper_scale(self):
        p = fig8a_problem()
        assert p.shape == (384,) * 4
        assert p.ranks == (96,) * 4
        assert p.n_procs == 384
        assert len(p.grids) == 11
        for g in p.grids:
            assert prod(g) == 384

    def test_scaled_down(self):
        p = fig8a_problem(scale=4)
        assert p.shape == (96,) * 4
        assert p.ranks == (24,) * 4

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            fig8a_problem(scale=5)


class TestFig8b:
    def test_paper_scale(self):
        p = fig8b_problem()
        assert p.shape == (25, 250, 250, 250)
        assert p.ranks == (10, 10, 100, 100)

    def test_grids(self):
        assert fig8b_problem().grids == ((2, 2, 2, 2),)

    def test_scaled(self):
        p = fig8b_problem(scale=5)
        assert p.shape[1:] == (50, 50, 50)


class TestStrongScaling:
    def test_paper_points(self):
        for k in range(10):
            p = strong_scaling_problem(k)
            assert p.n_procs == 24 * 2**k
            assert p.shape == (200,) * 4

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            strong_scaling_problem(10)


class TestWeakScaling:
    def test_paper_points(self):
        p = weak_scaling_problem(3)
        assert p.shape == (600,) * 4
        assert p.ranks == (60,) * 4
        assert p.n_procs == 24 * 81
        assert len(p.grids) == 3
        for g in p.grids:
            assert prod(g) == p.n_procs

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            weak_scaling_problem(7)
        with pytest.raises(ValueError):
            weak_scaling_problem(0)
