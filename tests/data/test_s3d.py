"""Dataset-proxy tests: structure and the paper's compressibility ordering."""

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import (
    DATASETS,
    center_and_scale,
    hcci_proxy,
    load_dataset,
    sp_proxy,
    tjlr_proxy,
)

# Small shapes keep this module fast; decay is parameterized in e-folds so
# compressibility fractions are scale-invariant.
SMALL = {
    "HCCI": dict(shape=(24, 24, 12, 20)),
    "TJLR": dict(shape=(12, 14, 10, 18, 8)),
    "SP": dict(shape=(16, 16, 16, 8, 10)),
}


def _small(name):
    return load_dataset(name, **SMALL[name])


class TestStructure:
    def test_hcci_is_4way(self):
        ds = _small("HCCI")
        assert ds.tensor.ndim == 4
        assert ds.species_mode == 2
        assert ds.paper_shape == (672, 672, 33, 627)

    def test_tjlr_is_5way(self):
        ds = _small("TJLR")
        assert ds.tensor.ndim == 5
        assert ds.paper_compression_eps1e3 == pytest.approx(7.0)

    def test_sp_is_5way(self):
        ds = _small("SP")
        assert ds.tensor.ndim == 5
        assert ds.paper_ranks_eps1e3 == (81, 129, 127, 7, 32)

    def test_registry(self):
        assert set(DATASETS) == {"HCCI", "TJLR", "SP"}
        assert load_dataset("hcci", **SMALL["HCCI"]).name == "HCCI"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("DNS9000")

    def test_wrong_order_shapes_rejected(self):
        with pytest.raises(ValueError):
            hcci_proxy(shape=(4, 4, 4))
        with pytest.raises(ValueError):
            tjlr_proxy(shape=(4, 4, 4, 4))
        with pytest.raises(ValueError):
            sp_proxy(shape=(4, 4, 4, 4))

    def test_deterministic(self):
        a = _small("SP").tensor
        b = _small("SP").tensor
        np.testing.assert_array_equal(a, b)


class TestCompressibilityOrdering:
    """The paper's central empirical finding: SP >> HCCI >> TJLR."""

    def test_ordering_at_1e_2(self):
        ratios = {}
        for name in ("HCCI", "TJLR", "SP"):
            ds = _small(name)
            x, _ = center_and_scale(ds.tensor, ds.species_mode)
            res = sthosvd(x, tol=1e-2)
            ratios[name] = res.decomposition.compression_ratio
        assert ratios["SP"] > ratios["HCCI"] > ratios["TJLR"]

    def test_tjlr_species_time_do_not_truncate(self):
        # Table II: TJLR keeps R = I in the species and time modes.
        ds = _small("TJLR")
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        res = sthosvd(x, tol=1e-3)
        assert res.ranks[3] == ds.shape[3]
        assert res.ranks[4] == ds.shape[4]

    def test_error_guarantee_on_all_proxies(self):
        for name in ("HCCI", "TJLR", "SP"):
            ds = _small(name)
            x, _ = center_and_scale(ds.tensor, ds.species_mode)
            res = sthosvd(x, tol=1e-2)
            assert res.decomposition.relative_error(x) <= 1e-2
