"""Synthetic field generator tests."""

import numpy as np
import pytest

from repro.data import dct_basis, decay_profile, multiway_field
from repro.tensor import gram
from repro.tensor.eig import eigendecompose


class TestDctBasis:
    def test_orthonormal(self):
        b = dct_basis(16)
        np.testing.assert_allclose(b.T @ b, np.eye(16), atol=1e-12)

    def test_first_column_constant(self):
        b = dct_basis(8)
        assert np.allclose(b[:, 0], b[0, 0])

    def test_column_k_has_k_sign_changes(self):
        b = dct_basis(12)
        for k in (1, 3, 5):
            changes = np.sum(np.diff(np.sign(b[:, k])) != 0)
            assert changes == k

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            dct_basis(0)


class TestDecayProfile:
    def test_power_law(self):
        w = decay_profile(4, kind="power", rate=1.0)
        np.testing.assert_allclose(w, [1, 0.5, 1 / 3, 0.25])

    def test_exponential(self):
        w = decay_profile(3, kind="exp", rate=1.0)
        np.testing.assert_allclose(w, np.exp([-0.0, -1.0, -2.0]))

    def test_floor_added(self):
        w = decay_profile(5, kind="exp", rate=10.0, floor=0.01)
        assert w[-1] >= 0.01

    def test_monotone_nonincreasing(self):
        for kind in ("power", "exp"):
            w = decay_profile(20, kind=kind, rate=0.7)
            assert np.all(np.diff(w) <= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            decay_profile(0)
        with pytest.raises(ValueError):
            decay_profile(5, rate=-1)
        with pytest.raises(ValueError):
            decay_profile(5, floor=-1)
        with pytest.raises(ValueError):
            decay_profile(5, kind="linear")


class TestMultiwayField:
    def test_deterministic(self):
        profiles = [decay_profile(6, rate=1.0), decay_profile(8, rate=0.5)]
        a = multiway_field((6, 8), profiles, seed=1)
        b = multiway_field((6, 8), profiles, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_spectral_decay_controlled(self):
        # Steeper profiles must give faster eigenvalue decay.
        shape = (16, 16)
        steep = [decay_profile(16, kind="exp", rate=1.0)] * 2
        flat = [decay_profile(16, kind="exp", rate=0.01)] * 2
        x_steep = multiway_field(shape, steep, seed=2)
        x_flat = multiway_field(shape, flat, seed=2)

        def tail_fraction(x):
            lam = eigendecompose(gram(x, 0)).values
            return lam[8:].sum() / lam.sum()

        assert tail_fraction(x_steep) < 1e-6
        assert tail_fraction(x_flat) > 1e-3

    def test_noise_relative_to_signal(self):
        profiles = [decay_profile(10, kind="exp", rate=2.0)] * 2
        clean = multiway_field((10, 10), profiles, seed=3, noise=0.0)
        noisy = multiway_field((10, 10), profiles, seed=3, noise=0.01)
        rel = np.linalg.norm(noisy - clean) / np.linalg.norm(clean)
        assert 0.001 < rel < 0.1

    def test_smooth_modes_flag(self):
        profiles = [decay_profile(8, rate=0.5)] * 2
        x = multiway_field((8, 8), profiles, seed=4, smooth_modes=[True, False])
        assert x.shape == (8, 8)

    def test_validation(self):
        profiles = [decay_profile(6, rate=1.0)]
        with pytest.raises(ValueError, match="profiles"):
            multiway_field((6, 8), profiles)
        with pytest.raises(ValueError, match="shape"):
            multiway_field((6,), [decay_profile(5, rate=1.0)])
        with pytest.raises(ValueError, match="negative"):
            multiway_field((3,), [np.array([1.0, -1.0, 0.5])])
        with pytest.raises(ValueError, match="noise"):
            multiway_field((3,), [decay_profile(3)], noise=-0.1)
