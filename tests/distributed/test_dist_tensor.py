"""DistTensor construction and global-reduction tests."""

import numpy as np
import pytest

from repro.distributed import DistTensor
from repro.mpi import CartGrid, SpmdError
from repro.tensor import unfold
from tests.conftest import spmd


def _x(shape=(6, 9, 4), seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


class TestConstruction:
    def test_from_global_blocks(self):
        x = _x()

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            return dt.local.shape, dt.local_slices

        res = spmd(6, prog)
        for local_shape, slices in res:
            assert local_shape == (3, 3, 4)
            np.testing.assert_array_equal(
                np.empty(local_shape).shape, x[slices].shape
            )

    def test_to_global_roundtrip(self):
        x = _x()

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            return DistTensor.from_global(g, x).to_global()

        for recovered in spmd(6, prog):
            np.testing.assert_array_equal(recovered, x)

    def test_scatter_from_root(self):
        x = _x()

        def prog(comm):
            g = CartGrid(comm, (2, 1, 2))
            dt = DistTensor.scatter(g, x if comm.rank == 0 else None, root=0)
            return dt.to_global()

        for recovered in spmd(4, prog):
            np.testing.assert_array_equal(recovered, x)

    def test_from_local_factory(self):
        shape = (6, 8)

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_local_factory(
                g,
                shape,
                lambda slices: np.fromfunction(
                    lambda i, j: (i + slices[0].start) * 100 + (j + slices[1].start),
                    (slices[0].stop - slices[0].start,
                     slices[1].stop - slices[1].start),
                ),
            )
            return dt.to_global()

        expected = np.fromfunction(lambda i, j: i * 100 + j, shape)
        for recovered in spmd(4, prog):
            np.testing.assert_array_equal(recovered, expected)

    def test_uneven_distribution(self):
        x = _x((7, 5, 3))

        def prog(comm):
            g = CartGrid(comm, (3, 2, 1))
            dt = DistTensor.from_global(g, x)
            return dt.local.shape, dt.to_global()

        res = spmd(6, prog)
        shapes = {r[0] for r in res}
        assert shapes == {(3, 3, 3), (3, 2, 3), (2, 3, 3), (2, 2, 3)}
        np.testing.assert_array_equal(res[0][1], x)

    def test_rejects_oversized_grid(self):
        x = _x((2, 3, 4))

        def prog(comm):
            g = CartGrid(comm, (4, 1, 1))
            DistTensor.from_global(g, x)

        with pytest.raises(
            SpmdError, match="non-empty blocks|more processors than elements"
        ):
            spmd(4, prog)

    def test_rejects_wrong_local_shape(self):
        def prog(comm):
            g = CartGrid(comm, (2,))
            DistTensor(g, (8,), np.zeros(5))

        with pytest.raises(SpmdError, match="does not match expected"):
            spmd(2, prog)

    def test_order_mismatch(self):
        def prog(comm):
            g = CartGrid(comm, (2,))
            DistTensor(g, (8, 8), np.zeros((4, 8)))

        with pytest.raises(SpmdError, match="order"):
            spmd(2, prog)


class TestReductionsAndUnfoldings:
    def test_norm_matches_sequential(self):
        x = _x()

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            return DistTensor.from_global(g, x).norm()

        expected = np.linalg.norm(x.ravel())
        for norm in spmd(6, prog):
            assert norm == pytest.approx(expected)

    def test_local_unfolding_is_logical(self):
        # The local unfolding equals the unfolding of the local block —
        # "unfolding is purely logical" (Sec. IV-C).
        x = _x()

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            ok = True
            for n in range(3):
                ok &= np.array_equal(dt.local_unfolding(n), unfold(dt.local, n))
            return ok

        assert all(spmd(6, prog).values)

    def test_with_local_replaces_block(self):
        x = _x()

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            doubled = dt.with_local(dt.local * 2)
            return doubled.to_global()

        for recovered in spmd(6, prog):
            np.testing.assert_allclose(recovered, 2 * x)
