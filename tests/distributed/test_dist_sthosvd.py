"""Parallel ST-HOSVD driver tests against the sequential reference."""

import numpy as np
import pytest

from repro.core import sthosvd
from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid, SpmdError
from repro.tensor import low_rank_tensor
from tests.conftest import recon_atol, spmd, suite_compute_dtype


def _run(x, grid_dims, **kwargs):
    def prog(comm):
        g = CartGrid(comm, grid_dims)
        dt = DistTensor.from_global(g, x)
        t = dist_sthosvd(dt, **kwargs)
        return t.to_tucker(), t.error_estimate(), t.ranks

    n = int(np.prod(grid_dims))
    return spmd(n, prog)


class TestAgreementWithSequential:
    @pytest.mark.parametrize(
        "grid_dims", [(2, 3, 2), (1, 1, 1), (1, 3, 2), (2, 2, 1)]
    )
    def test_fixed_ranks_reconstruction_matches(self, grid_dims):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=1, noise=0.02)
        res = _run(x, grid_dims, ranks=(3, 3, 2))
        seq = sthosvd(x, ranks=(3, 3, 2))
        for tucker, _, ranks in res:
            assert ranks == (3, 3, 2)
            np.testing.assert_allclose(
                tucker.reconstruct(),
                seq.decomposition.reconstruct(),
                atol=recon_atol(),
            )

    def test_tolerance_based_ranks_match(self):
        x = low_rank_tensor((8, 6, 4), (3, 2, 2), seed=2, noise=0.05)
        seq = sthosvd(x, tol=0.1)
        res = _run(x, (2, 3, 2), tol=0.1)
        for tucker, est, ranks in res:
            if suite_compute_dtype() == "float64":
                assert ranks == seq.ranks
                assert est == pytest.approx(seq.error_estimate(), rel=1e-6)
            else:
                # A narrowed sweep truncates against the tighter share of
                # the split budget (mixed) or float32-noisy tails, so it
                # may keep more directions — never fewer — and must still
                # meet the requested tolerance.
                assert all(r >= rs for r, rs in zip(ranks, seq.ranks))
                assert est <= 0.1

    def test_mode_order_respected(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=3, noise=0.02)
        order = (2, 0, 1)
        seq = sthosvd(x, ranks=(3, 3, 2), mode_order=order)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 2))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2), mode_order=order)
            return t.to_tucker(), t.mode_order

        for tucker, mode_order in spmd(4, prog):
            assert mode_order == order
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(),
                atol=recon_atol(),
            )

    def test_uneven_distribution(self):
        x = low_rank_tensor((7, 5, 6), (3, 2, 3), seed=4, noise=0.02)
        seq = sthosvd(x, ranks=(3, 2, 3))
        res = _run(x, (3, 1, 2), ranks=(3, 2, 3))
        for tucker, _, _ in res:
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(),
                atol=recon_atol(),
            )

    def test_4way(self):
        x = low_rank_tensor((6, 4, 4, 5), (2, 2, 2, 2), seed=5, noise=0.02)
        seq = sthosvd(x, ranks=(2, 2, 2, 2))
        res = _run(x, (2, 1, 2, 1), ranks=(2, 2, 2, 2))
        for tucker, _, _ in res:
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(),
                atol=recon_atol(),
            )

    @pytest.mark.parametrize("strategy", ["blocked", "reduce_scatter"])
    def test_ttm_strategies_equivalent(self, strategy):
        x = low_rank_tensor((8, 6, 4), (4, 2, 2), seed=6, noise=0.02)
        res = _run(x, (2, 2, 1), ranks=(4, 2, 2), ttm_strategy=strategy)
        seq = sthosvd(x, ranks=(4, 2, 2))
        for tucker, _, _ in res:
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(),
                atol=recon_atol(),
            )


class TestDistTuckerObject:
    def test_reconstruct_distributed_matches_gathered(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=7, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2))
            dist_rec = t.reconstruct_distributed().to_global()
            gathered_rec = t.to_tucker().reconstruct()
            return np.allclose(dist_rec, gathered_rec, atol=1e-9)

        assert all(spmd(6, prog).values)

    def test_shape_and_compression(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=8, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2))
            return t.shape, t.compression_ratio

        from repro.core import compression_ratio

        for shape, ratio in spmd(6, prog):
            assert shape == (8, 6, 4)
            assert ratio == pytest.approx(compression_ratio((8, 6, 4), (3, 3, 2)))

    def test_factor_global_assembly(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=9, noise=0.02)

        # float32/mixed factors are orthonormal to single precision only.
        orth_atol = 1e-9 if suite_compute_dtype() == "float64" else 1e-6

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2))
            u0 = t.factor_global(0)
            return u0.shape, np.allclose(u0.T @ u0, np.eye(3), atol=orth_atol)

        for shape, orth in spmd(6, prog):
            assert shape == (8, 3)
            assert orth


class TestValidation:
    def test_requires_exactly_one_selector(self):
        x = low_rank_tensor((6, 4), (2, 2), seed=0)
        with pytest.raises(SpmdError, match="exactly one"):
            _run(x, (2, 1))

    def test_rank_below_grid_extent(self):
        x = low_rank_tensor((8, 4), (2, 2), seed=0)
        with pytest.raises(SpmdError, match="smaller than grid extent"):
            _run(x, (4, 1), ranks=(2, 2))

    def test_bad_mode_order(self):
        x = low_rank_tensor((6, 4), (2, 2), seed=0)
        with pytest.raises(SpmdError, match="permutation"):
            _run(x, (2, 1), ranks=(2, 2), mode_order=(1, 1))


class TestLedgerSections:
    def test_kernel_sections_populated(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=10, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=(3, 3, 2))
            return None

        res = spmd(6, prog)
        sections = res.ledger.section_times()
        assert {"gram", "evecs", "ttm"} <= set(sections)
        assert all(v > 0 for k, v in sections.items() if k != "other")
