"""Validate the paper's memory bound, eq. (2) of Sec. VI.

The distributed kernels record their live-set high-water marks in the cost
ledger; for evenly divisible problems the measured per-rank peak must stay
within the analytic bound

    2 I/P + sum_n R_n I_n / P_n + max_n I_n^2 + max_n R_n I_n.
"""

import numpy as np
import pytest

from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid
from repro.perfmodel import sthosvd_memory_bound
from repro.tensor import low_rank_tensor
from tests.conftest import spmd


@pytest.mark.parametrize(
    "shape,ranks,grid",
    [
        ((8, 8, 8), (4, 4, 4), (2, 2, 2)),
        ((16, 8, 8), (4, 4, 4), (2, 2, 1)),
        ((12, 12, 6, 6), (4, 4, 2, 2), (2, 2, 1, 1)),
    ],
)
def test_peak_memory_within_eq2_bound(shape, ranks, grid):
    x = low_rank_tensor(shape, ranks, seed=30, noise=0.02)
    bound = sthosvd_memory_bound(shape, ranks, grid)

    def prog(comm):
        g = CartGrid(comm, grid)
        dt = DistTensor.from_global(g, x)
        dist_sthosvd(dt, ranks=ranks)
        return None

    res = spmd(int(np.prod(grid)), prog)
    for r in range(res.ledger.n_ranks):
        peak = res.ledger.rank_costs(r).peak_memory_words
        assert 0 < peak <= bound, (
            f"rank {r} peak {peak} words exceeds eq. (2) bound {bound:.0f}"
        )


def test_memory_tracked_per_kernel():
    x = low_rank_tensor((8, 8, 8), (4, 4, 4), seed=31, noise=0.02)

    def prog(comm):
        g = CartGrid(comm, (2, 2, 2))
        dt = DistTensor.from_global(g, x)
        dist_sthosvd(dt, ranks=(4, 4, 4))
        return None

    res = spmd(8, prog)
    # Every rank recorded something at least as large as its tensor block.
    block_words = 8 * 8 * 8 // 8
    for r in range(8):
        assert res.ledger.rank_costs(r).peak_memory_words >= block_words
