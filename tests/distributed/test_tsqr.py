"""TSQR and Gram-free factor-computation tests (the Sec. IX extension)."""

import numpy as np
import pytest

from repro.core import sthosvd
from repro.distributed import DistTensor, dist_mode_svd, dist_sthosvd, tsqr_r
from repro.distributed.layout import block_range, block_ranges
from repro.mpi import CartGrid, SpmdError
from repro.tensor import gram, low_rank_tensor, unfold
from repro.tensor.eig import eigendecompose
from tests.conftest import spmd


class TestTsqrR:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
    def test_r_matches_sequential_qr(self, p):
        full = np.random.default_rng(5).standard_normal((7 * p, 5))
        rows = block_ranges(7 * p, p)

        def prog(comm):
            start, stop = rows[comm.rank]
            return tsqr_r(comm, full[start:stop])

        res = spmd(p, prog)
        expected = np.linalg.qr(full, mode="r")
        signs = np.sign(np.diag(expected))
        signs[signs == 0] = 1
        expected = signs[:, None] * expected
        for r in res:
            np.testing.assert_allclose(r, expected, atol=1e-10)

    def test_rtr_equals_gram(self):
        full = np.random.default_rng(6).standard_normal((20, 4))
        rows = block_ranges(20, 4)

        def prog(comm):
            start, stop = rows[comm.rank]
            return tsqr_r(comm, full[start:stop])

        r = spmd(4, prog)[0]
        np.testing.assert_allclose(r.T @ r, full.T @ full, atol=1e-10)

    def test_short_local_slabs(self):
        # Local slabs with fewer rows than columns must still combine.
        full = np.random.default_rng(7).standard_normal((6, 5))
        rows = block_ranges(6, 3)

        def prog(comm):
            start, stop = rows[comm.rank]
            return tsqr_r(comm, full[start:stop])

        r = spmd(3, prog)[0]
        np.testing.assert_allclose(r.T @ r, full.T @ full, atol=1e-10)

    def test_rejects_non_matrix(self):
        def prog(comm):
            tsqr_r(comm, np.zeros(5))

        with pytest.raises(SpmdError):
            spmd(2, prog)


class TestDistModeSvd:
    @pytest.mark.parametrize("grid_dims", [(2, 3, 2), (1, 1, 1), (3, 2, 1)])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_sequential_spectrum(self, grid_dims, mode):
        x = np.random.default_rng(8).standard_normal((6, 6, 4))

        def prog(comm):
            g = CartGrid(comm, grid_dims)
            dt = DistTensor.from_global(g, x)
            u_local, eig = dist_mode_svd(dt, mode, rank=3)
            start, stop = block_range(
                x.shape[mode], grid_dims[mode], g.coords[mode]
            )
            return u_local, eig.values, (start, stop)

        expected = eigendecompose(gram(x, mode))
        n = int(np.prod(grid_dims))
        for u_local, values, (start, stop) in spmd(n, prog):
            np.testing.assert_allclose(values, expected.values, atol=1e-8)
            np.testing.assert_allclose(
                np.abs(u_local), np.abs(expected.leading(3)[start:stop]),
                atol=1e-7,
            )

    def test_singular_values_accurate_below_gram_floor(self):
        # Construct a matrixized tensor with sigma ~ 1e-9 tail: Gram loses
        # it (1e-18 eigenvalues below roundoff), TSQR keeps it.
        x = low_rank_tensor((12, 8, 8), (3, 8, 8), seed=9)
        x = x + 1e-9 * np.random.default_rng(0).standard_normal(x.shape)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            _, eig = dist_mode_svd(dt, 0, rank=3)
            return eig.values

        values = spmd(4, prog)[0]
        sv = np.linalg.svd(unfold(x, 0), compute_uv=False)
        np.testing.assert_allclose(values, sv**2, rtol=1e-6)
        # The tail singular values are resolved at their true ~1e-9 scale.
        assert 1e-20 < values[5] < 1e-14

    def test_threshold_selection(self):
        x = low_rank_tensor((8, 6, 4), (2, 3, 2), seed=10, noise=1e-9)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 2))
            dt = DistTensor.from_global(g, x)
            norm_sq = dt.norm_sq()
            u_local, _ = dist_mode_svd(
                dt, 0, threshold=(1e-7**2) * norm_sq / 3
            )
            return u_local.shape[1]

        assert set(spmd(4, prog).values) == {2}

    def test_validation(self):
        x = np.zeros((4, 4))

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_global(g, x)
            dist_mode_svd(dt, 0)

        with pytest.raises(SpmdError, match="exactly one"):
            spmd(4, prog)


class TestSvdSthosvd:
    def test_matches_gram_method_on_benign_data(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=11, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2), method="svd")
            return t.to_tucker()

        seq = sthosvd(x, ranks=(3, 3, 2))
        for tucker in spmd(6, prog):
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(), atol=1e-8
            )

    def test_matches_sequential_svd_method_ranks(self):
        x = low_rank_tensor((12, 8, 6), (3, 2, 2), seed=12, noise=1e-9)
        seq = sthosvd(x, tol=1e-8, method="svd")

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, tol=1e-8, method="svd")
            return t.ranks

        for ranks in spmd(4, prog):
            assert ranks == seq.ranks

    def test_ledger_uses_svd_section(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=13, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 1))
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=(3, 3, 2), method="svd")
            return None

        res = spmd(2, prog)
        sections = res.ledger.section_times()
        assert "svd" in sections
        assert "gram" not in sections

    def test_unknown_method(self):
        x = np.zeros((4, 4))

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=(2, 2), method="cholesky")

        with pytest.raises(SpmdError, match="unknown method"):
            spmd(4, prog)
