"""TSQR and Gram-free factor-computation tests (the Sec. IX extension)."""

import numpy as np
import pytest

from repro.core import sthosvd
from repro.distributed import DistTensor, dist_mode_svd, dist_sthosvd, tsqr_r
from repro.distributed.layout import block_range, block_ranges
from repro.distributed.tsqr import tsqr_tree
from repro.mpi import CartGrid, SpmdError
from repro.tensor import gram, low_rank_tensor, unfold
from repro.tensor.eig import _fix_signs, eigendecompose
from tests.conftest import recon_atol, spmd, suite_compute_dtype


class TestTsqrR:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
    def test_r_matches_sequential_qr(self, p):
        full = np.random.default_rng(5).standard_normal((7 * p, 5))
        rows = block_ranges(7 * p, p)

        def prog(comm):
            start, stop = rows[comm.rank]
            return tsqr_r(comm, full[start:stop])

        res = spmd(p, prog)
        expected = np.linalg.qr(full, mode="r")
        signs = np.sign(np.diag(expected))
        signs[signs == 0] = 1
        expected = signs[:, None] * expected
        for r in res:
            np.testing.assert_allclose(r, expected, atol=1e-10)

    def test_rtr_equals_gram(self):
        full = np.random.default_rng(6).standard_normal((20, 4))
        rows = block_ranges(20, 4)

        def prog(comm):
            start, stop = rows[comm.rank]
            return tsqr_r(comm, full[start:stop])

        r = spmd(4, prog)[0]
        np.testing.assert_allclose(r.T @ r, full.T @ full, atol=1e-10)

    def test_short_local_slabs(self):
        # Local slabs with fewer rows than columns must still combine.
        full = np.random.default_rng(7).standard_normal((6, 5))
        rows = block_ranges(6, 3)

        def prog(comm):
            start, stop = rows[comm.rank]
            return tsqr_r(comm, full[start:stop])

        r = spmd(3, prog)[0]
        np.testing.assert_allclose(r.T @ r, full.T @ full, atol=1e-10)

    def test_rejects_non_matrix(self):
        def prog(comm):
            tsqr_r(comm, np.zeros(5))

        with pytest.raises(SpmdError):
            spmd(2, prog)

    def test_rejects_unknown_tree(self):
        def prog(comm):
            tsqr_r(comm, np.zeros((4, 2)), tree="ternary")

        with pytest.raises(SpmdError, match="unknown TSQR tree"):
            spmd(2, prog)

    def test_tree_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_TSQR_TREE", raising=False)
        assert tsqr_tree() == "binary"
        monkeypatch.setenv("REPRO_TSQR_TREE", "butterfly")
        assert tsqr_tree() == "butterfly"
        assert tsqr_tree("binary") == "binary"  # kwarg beats the env
        monkeypatch.setenv("REPRO_TSQR_TREE", "bogus")
        with pytest.raises(ValueError, match="unknown TSQR tree"):
            tsqr_tree()


class TestButterflyTree:
    """The butterfly performs the same folds in the same bracketing as the
    eliminate-and-broadcast tree, so the two variants must agree *bitwise*
    on every rank — including non-power-of-two sizes, where the truncated
    butterfly fans the finished R out to the ranks it leaves incomplete."""

    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    @pytest.mark.parametrize("overlap", [True, False])
    def test_bitwise_parity_with_binary(self, p, overlap):
        full = np.random.default_rng(40 + p).standard_normal((6 * p + 1, 5))
        rows = block_ranges(6 * p + 1, p)

        def prog(comm, tree):
            start, stop = rows[comm.rank]
            return tsqr_r(comm, full[start:stop], tree=tree, overlap=overlap)

        binary = spmd(p, prog, "binary")
        butterfly = spmd(p, prog, "butterfly")
        bits = {r.tobytes() for r in binary.values} | {
            r.tobytes() for r in butterfly.values
        }
        assert len(bits) == 1  # every rank, both trees: identical bytes
        expected = np.linalg.qr(full, mode="r")
        signs = np.sign(np.diag(expected))
        signs[signs == 0] = 1
        np.testing.assert_allclose(
            butterfly.values[0], signs[:, None] * expected, atol=1e-10
        )

    @pytest.mark.parametrize("p", [3, 5])
    def test_parity_with_short_local_slabs(self, p):
        # Fewer global rows than columns: every local R is short, so the
        # trees stack true (unpadded) shapes all the way to the final pad.
        full = np.random.default_rng(50 + p).standard_normal((p + 2, 6))
        rows = block_ranges(p + 2, p)

        def prog(comm, tree):
            start, stop = rows[comm.rank]
            return tsqr_r(comm, full[start:stop], tree=tree)

        binary = spmd(p, prog, "binary")
        butterfly = spmd(p, prog, "butterfly")
        assert len(
            {r.tobytes() for r in binary.values}
            | {r.tobytes() for r in butterfly.values}
        ) == 1
        r = butterfly.values[0]
        assert r.shape == (6, 6)  # padded to n x n
        np.testing.assert_allclose(r.T @ r, full.T @ full, atol=1e-10)


class TestTsqrFlopsAccounting:
    """Tree nodes charge the *true* stacked row count: zero-padded short
    R factors used to inflate every fold to ``2 (2n) n^2``."""

    N = 4

    def test_binary_charges_true_stacked_shapes(self):
        # m0=2 rows (short: R is 2x4), m1=7 rows (full: R is 4x4).
        full = np.random.default_rng(60).standard_normal((9, self.N))

        def prog(comm):
            start, stop = (0, 2) if comm.rank == 0 else (2, 9)
            tsqr_r(comm, full[start:stop], tree="binary")

        res = spmd(2, prog)
        n = self.N
        # Rank 0: local QR of 2 rows + fold of the true 2+4 stacked rows
        # (the padded tree would have charged 2*(2n)*n^2 = 2*8*n^2 here).
        assert res.ledger.rank_costs(0).flops == 2 * 2 * n * n + 2 * (2 + 4) * n * n
        # Rank 1: local QR only (it is eliminated in round one).
        assert res.ledger.rank_costs(1).flops == 2 * 7 * n * n

    def test_butterfly_charges_true_stacked_shapes(self):
        full = np.random.default_rng(61).standard_normal((9, self.N))

        def prog(comm):
            start, stop = (0, 2) if comm.rank == 0 else (2, 9)
            tsqr_r(comm, full[start:stop], tree="butterfly")

        res = spmd(2, prog)
        n = self.N
        fold = 2 * (2 + 4) * n * n  # both ranks fold the same true stack
        assert res.ledger.rank_costs(0).flops == 2 * 2 * n * n + fold
        assert res.ledger.rank_costs(1).flops == 2 * 7 * n * n + fold


class TestDistModeSvd:
    @pytest.mark.parametrize("grid_dims", [(2, 3, 2), (1, 1, 1), (3, 2, 1)])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_sequential_spectrum(self, grid_dims, mode):
        x = np.random.default_rng(8).standard_normal((6, 6, 4))

        def prog(comm):
            g = CartGrid(comm, grid_dims)
            dt = DistTensor.from_global(g, x)
            u_local, eig = dist_mode_svd(dt, mode, rank=3)
            start, stop = block_range(
                x.shape[mode], grid_dims[mode], g.coords[mode]
            )
            return u_local, eig.values, (start, stop)

        expected = eigendecompose(gram(x, mode))
        n = int(np.prod(grid_dims))
        for u_local, values, (start, stop) in spmd(n, prog):
            np.testing.assert_allclose(values, expected.values, atol=1e-8)
            np.testing.assert_allclose(
                np.abs(u_local), np.abs(expected.leading(3)[start:stop]),
                atol=1e-7,
            )

    def test_singular_values_accurate_below_gram_floor(self):
        # Construct a matrixized tensor with sigma ~ 1e-9 tail: Gram loses
        # it (1e-18 eigenvalues below roundoff), TSQR keeps it.
        x = low_rank_tensor((12, 8, 8), (3, 8, 8), seed=9)
        x = x + 1e-9 * np.random.default_rng(0).standard_normal(x.shape)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            _, eig = dist_mode_svd(dt, 0, rank=3)
            return eig.values

        values = spmd(4, prog)[0]
        sv = np.linalg.svd(unfold(x, 0), compute_uv=False)
        np.testing.assert_allclose(values, sv**2, rtol=1e-6)
        # The tail singular values are resolved at their true ~1e-9 scale.
        assert 1e-20 < values[5] < 1e-14

    def test_threshold_selection(self):
        x = low_rank_tensor((8, 6, 4), (2, 3, 2), seed=10, noise=1e-9)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 2))
            dt = DistTensor.from_global(g, x)
            norm_sq = dt.norm_sq()
            u_local, _ = dist_mode_svd(
                dt, 0, threshold=(1e-7**2) * norm_sq / 3
            )
            return u_local.shape[1]

        assert set(spmd(4, prog).values) == {2}

    def test_validation(self):
        x = np.zeros((4, 4))

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_global(g, x)
            dist_mode_svd(dt, 0)

        with pytest.raises(SpmdError, match="exactly one"):
            spmd(4, prog)


class TestSvdSthosvd:
    def test_matches_gram_method_on_benign_data(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=11, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2), method="svd")
            return t.to_tucker()

        seq = sthosvd(x, ranks=(3, 3, 2))
        for tucker in spmd(6, prog):
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(),
                atol=recon_atol(),
            )

    def test_matches_sequential_svd_method_ranks(self):
        x = low_rank_tensor((12, 8, 6), (3, 2, 2), seed=12, noise=1e-9)
        seq = sthosvd(x, tol=1e-8, method="svd")

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, tol=1e-8, method="svd")
            return t.ranks

        for ranks in spmd(4, prog):
            if suite_compute_dtype() == "float64":
                assert ranks == seq.ranks
            else:
                # tol=1e-8 sits far below the float32 noise floor: the
                # narrow sweep cannot resolve tails that small and keeps
                # extra (noise-level) directions rather than dropping any.
                assert all(r >= rs for r, rs in zip(ranks, seq.ranks))

    def test_ledger_uses_svd_section(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=13, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 1))
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=(3, 3, 2), method="svd")
            return None

        res = spmd(2, prog)
        sections = res.ledger.section_times()
        assert "svd" in sections
        assert "gram" not in sections

    def test_unknown_method(self):
        x = np.zeros((4, 4))

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=(2, 2), method="cholesky")

        with pytest.raises(SpmdError, match="unknown method"):
            spmd(4, prog)


def _old_style_mode_svd(dt, mode, rank):
    """The pre-pipeline slab assembly: C-ordered slab, blocking ring, one
    transposed strided assignment per arriving block — the double-copy
    construction the F-ordered assembly replaced.  Kept as the regression
    reference: the single-copy path must reproduce its bits exactly."""
    jn = dt.global_shape[mode]
    col = dt.grid.mode_column(mode)
    pn, my_pn = col.size, col.rank
    row_start, row_stop = block_range(jn, pn, my_pn)
    local_unf = dt.local_unfolding(mode)
    base, rem = divmod(local_unf.shape[1], pn)
    keep_start = my_pn * base + min(my_pn, rem)
    keep_stop = keep_start + base + (1 if my_pn < rem else 0)
    keep = slice(keep_start, keep_stop)

    slab = np.zeros((keep_stop - keep_start, jn))
    slab[:, row_start:row_stop] = local_unf[:, keep].T
    for i in range(1, pn):
        dst = (my_pn - i) % pn
        src = (my_pn + i) % pn
        w = col.sendrecv(dt.local, dest=dst, source=src, tag=("refsvd", i))
        w_arr = np.asarray(w)
        w_unf = np.reshape(
            np.moveaxis(w_arr, mode, 0), (w_arr.shape[mode], -1), order="F"
        )
        w_rows = block_range(jn, pn, src)
        slab[:, w_rows[0] : w_rows[1]] = w_unf[:, keep].T

    r = tsqr_r(dt.comm, slab)
    _, sing, vt = np.linalg.svd(r)
    vectors = _fix_signs(vt.T)
    u = vectors[:, :rank]
    return np.array(u[row_start:row_stop], copy=True), sing**2


class TestSlabAssemblyBitIdentity:
    """The F-ordered single-copy slab assembly is a layout change only:
    factors and spectra must be *bitwise* identical to the old C-ordered
    double-copy construction."""

    @pytest.mark.parametrize("grid_dims", [(2, 2, 1), (4, 1, 1), (1, 3, 2)])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_double_copy_assembly(self, grid_dims, mode):
        # Uneven extents so short slabs and ragged keep-ranges appear.
        x = np.random.default_rng(71).standard_normal((7, 6, 5))

        def prog(comm):
            g = CartGrid(comm, grid_dims)
            dt = DistTensor.from_global(g, x)
            u_new, eig = dist_mode_svd(dt, mode, rank=3)
            u_ref, values_ref = _old_style_mode_svd(dt, mode, rank=3)
            return (
                u_new.tobytes() == u_ref.tobytes(),
                eig.values.tobytes() == values_ref.tobytes(),
            )

        for u_same, v_same in spmd(int(np.prod(grid_dims)), prog):
            assert u_same and v_same
