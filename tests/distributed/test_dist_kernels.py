"""Parallel kernel tests: Alg. 3 (TTM), Alg. 4 (Gram), Alg. 5 (Evecs).

Every kernel is compared against its sequential reference on multiple grids,
modes, strategies, and uneven distributions.
"""

import numpy as np
import pytest

from repro.distributed import DistTensor, dist_evecs, dist_gram, dist_ttm
from repro.distributed.layout import block_range
from repro.mpi import CartGrid, SpmdError
from repro.tensor import gram, ttm
from repro.tensor.eig import eigendecompose
from tests.conftest import spmd


def _x(shape=(6, 9, 4), seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


def _v_local(dt, v, mode):
    sl = dt.local_slices[mode]
    return np.ascontiguousarray(v[:, sl])


class TestDistTtm:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("strategy", ["blocked", "reduce_scatter", "auto"])
    def test_matches_sequential(self, mode, strategy):
        x = _x((6, 9, 4))
        grid_dims = (2, 3, 2)
        k = 6  # divisible by every grid extent, allows reduce_scatter

        def prog(comm):
            g = CartGrid(comm, grid_dims)
            dt = DistTensor.from_global(g, x)
            v = np.random.default_rng(42).standard_normal((k, x.shape[mode]))
            z = dist_ttm(dt, _v_local(dt, v, mode), mode, k, strategy=strategy)
            return z.to_global(), v

        res = spmd(12, prog)
        z_global, v = res[0]
        np.testing.assert_allclose(z_global, ttm(x, v, mode), atol=1e-10)

    def test_transposed_factor_direction(self):
        # The decomposition direction: V = U^T supplied as U_local.T.
        x = _x((8, 6, 4))
        u = np.linalg.qr(np.random.default_rng(1).standard_normal((8, 3)))[0]

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            sl = dt.local_slices[0]
            z = dist_ttm(dt, u[sl].T.copy(), 0, 3)
            return z.to_global()

        for z in spmd(4, prog):
            np.testing.assert_allclose(z, ttm(x, u, 0, transpose=True), atol=1e-10)

    def test_uneven_blocks(self):
        x = _x((7, 5, 3))

        def prog(comm):
            g = CartGrid(comm, (3, 1, 1))
            dt = DistTensor.from_global(g, x)
            v = np.random.default_rng(2).standard_normal((4, 7))
            z = dist_ttm(dt, _v_local(dt, v, 0), 0, 4, strategy="blocked")
            return z.to_global(), v

        z, v = spmd(3, prog)[0]
        np.testing.assert_allclose(z, ttm(x, v, 0), atol=1e-10)

    def test_single_proc_mode_no_comm(self):
        x = _x((6, 4))

        def prog(comm):
            g = CartGrid(comm, (1, 2))
            dt = DistTensor.from_global(g, x)
            v = np.random.default_rng(3).standard_normal((3, 6))
            z = dist_ttm(dt, v, 0, 3)
            return z.to_global(), v

        z, v = spmd(2, prog)[0]
        np.testing.assert_allclose(z, ttm(x, v, 0), atol=1e-10)

    def test_reduce_scatter_requires_divisibility(self):
        x = _x((6, 4))

        def prog(comm):
            g = CartGrid(comm, (2, 1))
            dt = DistTensor.from_global(g, x)
            v = np.zeros((3, 3))
            dist_ttm(dt, v, 0, 3, strategy="reduce_scatter")

        with pytest.raises(SpmdError, match="requires"):
            spmd(2, prog)

    def test_output_dim_below_grid_extent_rejected(self):
        x = _x((8, 4))

        def prog(comm):
            g = CartGrid(comm, (4, 1))
            dt = DistTensor.from_global(g, x)
            dist_ttm(dt, np.zeros((2, 2)), 0, 2)

        with pytest.raises(SpmdError, match="smaller than grid extent"):
            spmd(4, prog)

    def test_v_local_shape_checked(self):
        x = _x((6, 4))

        def prog(comm):
            g = CartGrid(comm, (2, 1))
            dt = DistTensor.from_global(g, x)
            dist_ttm(dt, np.zeros((3, 5)), 0, 3)  # wrong column count

        with pytest.raises(SpmdError, match="columns"):
            spmd(2, prog)

    def test_unknown_strategy(self):
        x = _x((6, 4))

        def prog(comm):
            g = CartGrid(comm, (2, 1))
            dt = DistTensor.from_global(g, x)
            dist_ttm(dt, np.zeros((3, 3)), 0, 3, strategy="magic")

        with pytest.raises(SpmdError, match="unknown strategy"):
            spmd(2, prog)


class TestDistGram:
    @pytest.mark.parametrize("grid_dims", [(2, 3, 2), (1, 6, 2), (3, 2, 2)])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_sequential(self, grid_dims, mode):
        x = _x((6, 6, 4), seed=4)

        def prog(comm):
            g = CartGrid(comm, grid_dims)
            dt = DistTensor.from_global(g, x)
            s_rows = dist_gram(dt, mode)
            start, stop = block_range(
                x.shape[mode], grid_dims[mode], g.coords[mode]
            )
            return s_rows, (start, stop)

        res = spmd(12, prog)
        expected = gram(x, mode)
        for s_rows, (start, stop) in res:
            np.testing.assert_allclose(s_rows, expected[start:stop], atol=1e-9)

    def test_pn_equal_one_symmetric_path(self):
        x = _x((5, 8), seed=5)

        def prog(comm):
            g = CartGrid(comm, (1, 4))
            dt = DistTensor.from_global(g, x)
            return dist_gram(dt, 0)

        for s in spmd(4, prog):
            np.testing.assert_allclose(s, gram(x, 0), atol=1e-9)

    def test_uneven_ring(self):
        x = _x((7, 6), seed=6)

        def prog(comm):
            g = CartGrid(comm, (3, 2))
            dt = DistTensor.from_global(g, x)
            s_rows = dist_gram(dt, 0)
            start, stop = block_range(7, 3, g.coords[0])
            return s_rows, (start, stop)

        expected = gram(x, 0)
        for s_rows, (start, stop) in spmd(6, prog):
            np.testing.assert_allclose(s_rows, expected[start:stop], atol=1e-9)

    def test_replicated_across_row(self):
        x = _x((6, 6), seed=7)

        def prog(comm):
            g = CartGrid(comm, (2, 3))
            dt = DistTensor.from_global(g, x)
            s_rows = dist_gram(dt, 0)
            # All ranks with the same mode-0 coordinate must agree bitwise.
            row = g.mode_row(0)
            peers = row.allgather(s_rows)
            return all(np.array_equal(p, s_rows) for p in peers)

        assert all(spmd(6, prog).values)


class TestDistEvecs:
    def test_matches_sequential_eig(self):
        x = _x((6, 9, 4), seed=8)
        mode = 0

        def prog(comm):
            g = CartGrid(comm, (2, 3, 2))
            dt = DistTensor.from_global(g, x)
            s_rows = dist_gram(dt, mode)
            u_local, eig = dist_evecs(dt, s_rows, mode, rank=3)
            start, stop = block_range(6, 2, g.coords[mode])
            return u_local, eig.values, (start, stop)

        expected = eigendecompose(gram(x, mode))
        for u_local, values, (start, stop) in spmd(12, prog):
            np.testing.assert_allclose(values, expected.values, atol=1e-9)
            np.testing.assert_allclose(
                u_local, expected.leading(3)[start:stop], atol=1e-8
            )

    def test_threshold_rank_selection(self):
        x = _x((6, 8), seed=9)
        # Pick the threshold so the expected rank is deterministic.
        expected_eig = eigendecompose(gram(x, 0))
        threshold = float(expected_eig.tail_sums()[4]) + 1e-9  # rank 4

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_global(g, x)
            s_rows = dist_gram(dt, 0)
            u_local, _ = dist_evecs(dt, s_rows, 0, threshold=threshold)
            return u_local.shape[1]

        assert set(spmd(4, prog).values) == {4}

    def test_requires_exactly_one_selector(self):
        x = _x((6, 8))

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_global(g, x)
            s_rows = dist_gram(dt, 0)
            dist_evecs(dt, s_rows, 0)

        with pytest.raises(SpmdError, match="exactly one"):
            spmd(4, prog)

    def test_s_rows_shape_checked(self):
        x = _x((6, 8))

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_global(g, x)
            dist_evecs(dt, np.zeros((3, 5)), 0, rank=2)

        with pytest.raises(SpmdError, match="does not match"):
            spmd(4, prog)


class TestReduceScatterLayout:
    def test_mode_front_no_copy_for_mode_zero(self, rng):
        # The reduce-scatter strategy historically ascontiguousarray-copied
        # the moveaxis view unconditionally; for mode 0 (the Fortran TTM
        # output itself) the view *is* the array and must pass through.
        from repro.distributed.ttm import _mode_front

        w = np.asfortranarray(rng.standard_normal((8, 5, 3)))
        front = _mode_front(w, 0)
        assert front is w or np.shares_memory(front, w)

    def test_mode_front_copies_interior_mode(self, rng):
        from repro.distributed.ttm import _mode_front

        w = np.asfortranarray(rng.standard_normal((8, 5, 3)))
        front = _mode_front(w, 1)
        assert front.shape == (5, 8, 3)
        assert front.flags.c_contiguous or front.flags.f_contiguous
        np.testing.assert_array_equal(front, np.moveaxis(w, 1, 0))

    @pytest.mark.parametrize("mode", [0, 1])
    def test_reduce_scatter_results_unchanged(self, mode):
        # End-to-end guard for the copy skip: same bits as the blocked
        # strategy's output on an evenly divisible problem.
        x = _x((8, 6, 4), seed=44)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            v = np.random.default_rng(5).standard_normal((2, x.shape[mode]))
            rs = dist_ttm(dt, _v_local(dt, v, mode), mode, 2,
                          strategy="reduce_scatter")
            bl = dist_ttm(dt, _v_local(dt, v, mode), mode, 2,
                          strategy="blocked")
            return rs.to_global(), bl.to_global(), v

        for rs, bl, v in spmd(4, prog):
            np.testing.assert_allclose(rs, ttm(x, v, mode), atol=1e-10)
            np.testing.assert_allclose(bl, ttm(x, v, mode), atol=1e-10)


class TestTtmOverlap:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_blocked_overlap_bit_identical(self, mode):
        x = _x((6, 9, 4), seed=45)

        def prog(comm):
            g = CartGrid(comm, (2, 3, 2))
            dt = DistTensor.from_global(g, x)
            v = np.random.default_rng(6).standard_normal((6, x.shape[mode]))
            on = dist_ttm(dt, _v_local(dt, v, mode), mode, 6,
                          strategy="blocked", overlap=True)
            off = dist_ttm(dt, _v_local(dt, v, mode), mode, 6,
                           strategy="blocked", overlap=False)
            return on.local.tobytes() == off.local.tobytes()

        assert all(spmd(12, prog).values)

    def test_uneven_blocks_overlap(self):
        x = _x((7, 5, 3), seed=46)

        def prog(comm):
            g = CartGrid(comm, (3, 1, 1))
            dt = DistTensor.from_global(g, x)
            v = np.random.default_rng(7).standard_normal((5, 7))
            z = dist_ttm(dt, _v_local(dt, v, 0), 0, 5, strategy="blocked",
                         overlap=True)
            return z.to_global(), v

        z, v = spmd(3, prog)[0]
        np.testing.assert_allclose(z, ttm(x, v, 0), atol=1e-10)
