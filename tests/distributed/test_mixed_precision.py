"""Mixed-precision accuracy contracts of the distributed ST-HOSVD.

Property-style sweeps over shapes, ranks and tolerances check the
error-split contract of :mod:`repro.core.precision`: ``mixed`` delivers
the user's tolerance, ``float32`` delivers the documented budget
(truncation error plus the single-precision noise floor), and outputs are
always float64 whatever the compute dtype.
"""

import numpy as np
import pytest

from repro.core.precision import (
    FLOAT32_NOISE_FLOOR,
    float32_error_budget,
    kernel_dtype,
    resolve_compute_dtype,
    split_tolerance,
)
from repro.distributed import DistTensor, dist_hooi, dist_sthosvd
from repro.mpi import CartGrid
from repro.tensor import low_rank_tensor
from tests.conftest import spmd


def _normalized_err(x, tucker):
    return float(
        np.linalg.norm(x - tucker.reconstruct()) / np.linalg.norm(x)
    )


def _factorize(x, grid, **kwargs):
    def prog(comm):
        g = CartGrid(comm, grid)
        dt = DistTensor.from_global(g, x)
        t = dist_sthosvd(dt, **kwargs)
        tucker = t.to_tucker()
        return tucker, t.error_estimate(), t.ranks

    return spmd(int(np.prod(grid)), prog)[0]


class TestPolicyHelpers:
    def test_split_tolerance_quadrature(self):
        for tol in (1e-4, 1e-2, 0.3):
            trunc, prec = split_tolerance(tol)
            assert 0 < trunc < tol and 0 < prec < tol
            assert trunc**2 + prec**2 == pytest.approx(tol**2)

    def test_float32_budget_dominates_tol_and_floor(self):
        for tol in (1e-6, 1e-3, 0.2):
            budget = float32_error_budget(tol)
            assert budget >= tol
            assert budget >= FLOAT32_NOISE_FLOOR

    def test_kernel_dtype_mapping(self):
        assert kernel_dtype("float64") == np.float64
        assert kernel_dtype("float32") == np.float32
        assert kernel_dtype("mixed") == np.float32

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown compute dtype"):
            resolve_compute_dtype("float16")


class TestMixedMeetsTolerance:
    """``mixed`` delivers ``error <= tol`` across the tolerance range."""

    @pytest.mark.parametrize(
        "shape, grid, true_ranks, tol",
        [
            ((8, 6, 4), (2, 3, 2), (3, 2, 2), 0.05),
            ((8, 6, 4), (2, 1, 2), (3, 2, 2), 1e-3),
            ((12, 8, 6), (2, 2, 1), (4, 3, 2), 1e-5),
            ((7, 5, 6), (1, 1, 2), (3, 2, 3), 1e-2),
        ],
    )
    def test_error_within_tolerance(self, shape, grid, true_ranks, tol):
        x = low_rank_tensor(shape, true_ranks, seed=31, noise=tol / 10)
        tucker, est, _ = _factorize(
            x, grid, tol=tol, compute_dtype="mixed"
        )
        assert _normalized_err(x, tucker) <= tol
        # The driver's own tail estimate honors the budget too.
        assert est <= tol

    def test_tight_tolerance_triggers_refinement(self):
        # tol far below the float32 noise floor: the precision-share gate
        # must fire and the float64 sweep must recover full accuracy.
        x = low_rank_tensor((8, 6, 4), (3, 2, 2), seed=32, noise=1e-8)
        tucker, _, _ = _factorize(
            x, (2, 3, 2), tol=1e-6, compute_dtype="mixed"
        )
        err = _normalized_err(x, tucker)
        assert err <= 1e-6
        # Well below what an unrefined float32 sweep could deliver.
        assert err < FLOAT32_NOISE_FLOOR / 10

    def test_loose_tolerance_skips_refinement(self):
        # At a loose tolerance the float32 estimate fits the precision
        # share: no float64 sweep runs, so the mixed run keeps the narrow
        # bandwidth win over float64 (modeled words, defect-measurement
        # allreduces included).
        x = low_rank_tensor((8, 6, 4), (3, 2, 2), seed=33, noise=0.02)

        def prog(comm, dtype):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, tol=0.3, compute_dtype=dtype)
            return None

        words = {
            dtype: spmd(6, prog, dtype).ledger.total_words()
            for dtype in ("mixed", "float64")
        }
        assert words["mixed"] < words["float64"]


class TestFloat32Budget:
    """Pure ``float32`` stays within the documented error budget."""

    @pytest.mark.parametrize("tol", [1e-2, 1e-4])
    def test_error_within_budget(self, tol):
        x = low_rank_tensor((8, 6, 4), (3, 2, 2), seed=41, noise=tol / 10)
        tucker, _, _ = _factorize(
            x, (2, 3, 2), tol=tol, compute_dtype="float32"
        )
        assert _normalized_err(x, tucker) <= float32_error_budget(tol)

    def test_fixed_ranks_within_noise_floor(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=42, noise=0.0)
        tucker, _, ranks = _factorize(
            x, (2, 3, 2), ranks=(3, 3, 2), compute_dtype="float32"
        )
        assert ranks == (3, 3, 2)
        # Exactly representable low-rank input: the only error is
        # single-precision roundoff.
        assert _normalized_err(x, tucker) <= 4 * FLOAT32_NOISE_FLOOR


class TestOutputDtypes:
    """Deliverables are float64 for every compute dtype."""

    @pytest.mark.parametrize("dtype", ["float64", "float32", "mixed"])
    def test_sthosvd_outputs_float64(self, dtype):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=51, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 2))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2), compute_dtype=dtype)
            return (
                str(t.core.local.dtype),
                [str(np.asarray(f).dtype) for f in t.factors_local],
            )

        for core_dt, factor_dts in spmd(4, prog):
            assert core_dt == "float64"
            assert factor_dts == ["float64"] * 3

    @pytest.mark.parametrize("dtype", ["float32", "mixed"])
    def test_hooi_outputs_float64(self, dtype):
        x = low_rank_tensor((8, 6, 4), (4, 3, 2), seed=52, noise=0.1)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            res = dist_hooi(
                dt, ranks=(3, 2, 2), max_iterations=2, compute_dtype=dtype
            )
            t = res.decomposition
            return (
                str(t.core.local.dtype),
                [str(np.asarray(f).dtype) for f in t.factors_local],
            )

        for core_dt, factor_dts in spmd(4, prog):
            assert core_dt == "float64"
            assert factor_dts == ["float64"] * 3


class TestFloat64IsBitExact:
    def test_explicit_float64_matches_default(self):
        """compute_dtype="float64" is the historical pipeline, bit for bit."""
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=61, noise=0.02)

        def prog(comm, dtype):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2), compute_dtype=dtype)
            tucker = t.to_tucker()
            return (
                np.asarray(tucker.core.data).tobytes(),
                [np.asarray(f).tobytes() for f in tucker.factors],
            )

        explicit = spmd(6, prog, "float64")[0]
        default = spmd(6, prog, "float64")[0]
        assert explicit[0] == default[0]
        assert explicit[1] == default[1]

    def test_narrow_words_halve_ring_traffic(self):
        """The Gram ring ships half the modeled words under float32."""
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=62, noise=0.02)

        def prog(comm, dtype):
            g = CartGrid(comm, (4, 1, 1))
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=(4, 3, 2), compute_dtype=dtype)
            return None

        words = {}
        for dtype in ("float64", "float32"):
            res = spmd(4, prog, dtype)
            words[dtype] = res.ledger.total_words()
        assert words["float32"] < 0.75 * words["float64"]
