"""DistTucker subtensor reconstruction and HOOI-with-SVD tests."""

import numpy as np
import pytest

from repro.core import hooi
from repro.distributed import DistTensor, dist_hooi, dist_sthosvd
from repro.mpi import CartGrid, SpmdError
from repro.tensor import low_rank_tensor
from tests.conftest import spmd


class TestDistSubtensor:
    def test_matches_full_reconstruction(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=50, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 3, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2))
            sub = t.reconstruct_subtensor([slice(1, 5), None, 2])
            full = t.to_tucker().reconstruct()
            return np.allclose(sub.squeeze(-1), full[1:5, :, 2], atol=1e-10)

        assert all(spmd(6, prog).values)

    def test_identical_on_all_ranks(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=51, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 2))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 3, 2))
            return t.reconstruct_subtensor([0, None, None])

        res = spmd(4, prog)
        for sub in res.values[1:]:
            np.testing.assert_array_equal(sub, res[0])


class TestDistHooiSvd:
    def test_svd_method_matches_gram_history(self):
        x = low_rank_tensor((8, 6, 4), (4, 3, 2), seed=52, noise=0.1)

        def run(method):
            def prog(comm):
                g = CartGrid(comm, (2, 2, 1))
                dt = DistTensor.from_global(g, x)
                res = dist_hooi(
                    dt, ranks=(3, 2, 2), max_iterations=3,
                    improvement_tol=0.0, method=method,
                )
                return res.residual_history

            return spmd(4, prog)[0]

        gram_hist = run("gram")
        svd_hist = run("svd")
        np.testing.assert_allclose(svd_hist, gram_hist, rtol=1e-6, atol=1e-9)

    def test_svd_method_matches_sequential(self):
        x = low_rank_tensor((8, 6, 4), (4, 3, 2), seed=53, noise=0.1)
        seq = hooi(x, ranks=(3, 2, 2), max_iterations=2, improvement_tol=0.0)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 2))
            dt = DistTensor.from_global(g, x)
            res = dist_hooi(
                dt, ranks=(3, 2, 2), max_iterations=2,
                improvement_tol=0.0, method="svd",
            )
            return res.decomposition.to_tucker()

        for tucker in spmd(4, prog):
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(), atol=1e-7
            )

    def test_unknown_method(self):
        x = np.zeros((4, 4))

        def prog(comm):
            g = CartGrid(comm, (2, 2))
            dt = DistTensor.from_global(g, x)
            dist_hooi(dt, ranks=(2, 2), method="lanczos")

        with pytest.raises(SpmdError, match="unknown method"):
            spmd(4, prog)
