"""Block-distribution layout tests (paper Sec. IV)."""

import pytest

from repro.distributed.layout import (
    block_range,
    block_ranges,
    block_size,
    local_block,
    local_shape,
)


class TestBlockRange:
    def test_even_division(self):
        assert block_ranges(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_uneven_division_larger_blocks_first(self):
        assert block_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_covers_everything_exactly(self):
        for total in (1, 5, 17, 100):
            for n in range(1, min(total, 9) + 1):
                ranges = block_ranges(total, n)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == total
                for (a, b), (c, d) in zip(ranges, ranges[1:]):
                    assert b == c
                    assert b > a and d > c  # non-empty

    def test_sizes_differ_by_at_most_one(self):
        sizes = [block_size(17, 5, i) for i in range(5)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 17

    def test_single_block(self):
        assert block_range(7, 1, 0) == (0, 7)

    def test_rejects_empty_blocks(self):
        with pytest.raises(ValueError, match="non-empty"):
            block_range(3, 4, 0)

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError, match="out of range"):
            block_range(10, 3, 3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            block_range(0, 1, 0)


class TestLocalBlock:
    def test_slices(self):
        slices = local_block((8, 9), (2, 3), (1, 2))
        assert slices == (slice(4, 8), slice(6, 9))

    def test_shape(self):
        assert local_shape((8, 9), (2, 3), (0, 0)) == (4, 3)

    def test_uneven_shape(self):
        # 9 over 2: blocks of 5 and 4.
        assert local_shape((9, 4), (2, 1), (0, 0)) == (5, 4)
        assert local_shape((9, 4), (2, 1), (1, 0)) == (4, 4)

    def test_order_mismatch(self):
        with pytest.raises(ValueError, match="differ in order"):
            local_block((8, 9), (2,), (0, 0))

    def test_blocks_tile_tensor(self):
        import itertools

        import numpy as np

        shape, grid = (7, 5), (3, 2)
        seen = np.zeros(shape, dtype=int)
        for coords in itertools.product(range(3), range(2)):
            seen[local_block(shape, grid, coords)] += 1
        assert (seen == 1).all()
