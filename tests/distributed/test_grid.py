"""Processor-grid selection tests (Sec. VIII-B heuristics)."""

import pytest

from repro.distributed import choose_grid
from repro.perfmodel import EDISON
from repro.util.validation import prod


class TestChooseGrid:
    def test_uses_all_processors(self):
        grid = choose_grid(24, (200, 200, 200, 200), ranks=(20,) * 4)
        assert prod(grid) == 24

    def test_prefers_p1_equal_one(self):
        # The paper's observation: the best grids put no processors in the
        # first (most expensive) mode.
        grid = choose_grid(24, (384, 384, 384, 384), ranks=(96,) * 4)
        assert grid[0] == 1

    def test_respects_rank_feasibility(self):
        # Grid extents must not exceed anticipated ranks.
        grid = choose_grid(8, (100, 100), ranks=(4, 100))
        assert grid[0] <= 4

    def test_default_rank_guess(self):
        grid = choose_grid(6, (60, 60, 60))
        assert prod(grid) == 6

    def test_single_processor(self):
        assert choose_grid(1, (10, 10)) == (1, 1)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="no feasible grid"):
            choose_grid(64, (2, 2), ranks=(2, 2))

    def test_rank_shape_mismatch(self):
        with pytest.raises(ValueError):
            choose_grid(4, (10, 10), ranks=(2,))

    def test_machine_parameter_accepted(self):
        grid = choose_grid(12, (48, 48, 48), ranks=(12, 12, 12), machine=EDISON)
        assert prod(grid) == 12
