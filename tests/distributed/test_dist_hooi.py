"""Parallel HOOI tests against the sequential reference."""

import numpy as np
import pytest

from repro.core import hooi
from repro.distributed import DistTensor, dist_hooi, dist_sthosvd
from repro.mpi import CartGrid
from repro.tensor import low_rank_tensor
from tests.conftest import spmd, suite_compute_dtype


class TestAgreement:
    @pytest.mark.parametrize("grid_dims", [(2, 2, 1), (1, 1, 1), (2, 1, 2)])
    def test_residual_history_matches_sequential(self, grid_dims):
        x = low_rank_tensor((8, 6, 4), (4, 3, 2), seed=1, noise=0.1)
        iters = 4
        seq = hooi(x, ranks=(3, 2, 2), max_iterations=iters, improvement_tol=0.0)

        def prog(comm):
            g = CartGrid(comm, grid_dims)
            dt = DistTensor.from_global(g, x)
            res = dist_hooi(
                dt, ranks=(3, 2, 2), max_iterations=iters, improvement_tol=0.0
            )
            return res.residual_history

        n = int(np.prod(grid_dims))
        # A narrowed suite runs the float32 init path, so the first
        # iterates start ~sqrt(eps_f32) away from the sequential ones and
        # the float64 sweeps contract onto the same history (measured
        # 6e-7 relative at entry 0, 1e-12 by entry 4).
        rtol = 1e-8 if suite_compute_dtype() == "float64" else 1e-5
        for hist in spmd(n, prog):
            np.testing.assert_allclose(
                hist, seq.residual_history, rtol=rtol, atol=1e-10
            )

    def test_reconstruction_matches_sequential(self):
        x = low_rank_tensor((8, 6, 4), (4, 3, 2), seed=2, noise=0.1)
        seq = hooi(x, ranks=(3, 2, 2), max_iterations=3, improvement_tol=0.0)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            res = dist_hooi(
                dt, ranks=(3, 2, 2), max_iterations=3, improvement_tol=0.0
            )
            return res.decomposition.to_tucker()

        for tucker in spmd(4, prog):
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(), atol=1e-8
            )

    def test_monotone_residuals(self):
        x = low_rank_tensor((8, 6, 4), (4, 3, 2), seed=3, noise=0.2)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            res = dist_hooi(
                dt, ranks=(3, 2, 2), max_iterations=5, improvement_tol=0.0
            )
            h = np.array(res.residual_history)
            return bool(np.all(np.diff(h) <= 1e-9 * h[0] + 1e-12))

        assert all(spmd(4, prog).values)

    def test_convergence_flag(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=4)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 1))
            dt = DistTensor.from_global(g, x)
            res = dist_hooi(dt, ranks=(3, 3, 2), max_iterations=10)
            return res.converged, res.n_iterations

        for converged, iters in spmd(2, prog):
            assert converged
            assert iters <= 2

    def test_reuses_init(self):
        x = low_rank_tensor((8, 6, 4), (4, 3, 2), seed=5, noise=0.1)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1))
            dt = DistTensor.from_global(g, x)
            init = dist_sthosvd(dt, ranks=(3, 2, 2))
            res = dist_hooi(dt, init=init, max_iterations=2, improvement_tol=0.0)
            return res.ranks, res.error_estimate()

        seq = hooi(x, ranks=(3, 2, 2), max_iterations=2, improvement_tol=0.0)
        x_norm = float(np.linalg.norm(x.ravel()))
        for ranks, est in spmd(4, prog):
            assert ranks == (3, 2, 2)
            assert est == pytest.approx(seq.error_estimate(x_norm), rel=1e-6)
