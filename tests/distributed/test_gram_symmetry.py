"""Symmetry-exploiting distributed Gram tests (paper's future-work item)."""

import numpy as np
import pytest

from repro.distributed import DistTensor, dist_gram
from repro.distributed.layout import block_range
from repro.mpi import CartGrid
from repro.tensor import gram
from tests.conftest import spmd


def _x(shape=(6, 6, 4), seed=20):
    return np.random.default_rng(seed).standard_normal(shape)


class TestSymmetricGram:
    @pytest.mark.parametrize("grid_dims", [(2, 3, 2), (3, 2, 2), (1, 6, 2)])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_plain_gram(self, grid_dims, mode):
        x = _x()

        def prog(comm):
            g = CartGrid(comm, grid_dims)
            dt = DistTensor.from_global(g, x)
            s_sym = dist_gram(dt, mode, exploit_symmetry=True)
            start, stop = block_range(
                x.shape[mode], grid_dims[mode], g.coords[mode]
            )
            return s_sym, (start, stop)

        expected = gram(x, mode)
        for s_sym, (start, stop) in spmd(12, prog):
            np.testing.assert_allclose(s_sym, expected[start:stop], atol=1e-9)

    @pytest.mark.parametrize("pn", [2, 3, 4, 5])
    def test_even_and_odd_ring_lengths(self, pn):
        # Both parities of P_n exercise different pairing logic.
        x = _x((10, 4), seed=21)

        def prog(comm):
            g = CartGrid(comm, (pn, 1))
            dt = DistTensor.from_global(g, x)
            s = dist_gram(dt, 0, exploit_symmetry=True)
            start, stop = block_range(10, pn, g.coords[0])
            return s, (start, stop)

        expected = gram(x, 0)
        for s, (start, stop) in spmd(pn, prog):
            np.testing.assert_allclose(s, expected[start:stop], atol=1e-9)

    def test_saves_flops(self):
        x = _x((12, 8), seed=22)

        def run(exploit):
            def prog(comm):
                g = CartGrid(comm, (4, 1))
                dt = DistTensor.from_global(g, x)
                dist_gram(dt, 0, exploit_symmetry=exploit)
                return None

            return spmd(4, prog).ledger.total_flops()

        plain, sym = run(False), run(True)
        # Close to half: diagonal blocks are slightly over half-counted.
        assert sym < 0.75 * plain

    def test_uneven_rows(self):
        x = _x((7, 6), seed=23)

        def prog(comm):
            g = CartGrid(comm, (3, 2))
            dt = DistTensor.from_global(g, x)
            s = dist_gram(dt, 0, exploit_symmetry=True)
            start, stop = block_range(7, 3, g.coords[0])
            return s, (start, stop)

        expected = gram(x, 0)
        for s, (start, stop) in spmd(6, prog):
            np.testing.assert_allclose(s, expected[start:stop], atol=1e-9)


class TestSymmetryPathParity:
    """Dedicated parity suite: the symmetric path must agree with the
    default ring on the same distribution — across odd/even ring lengths,
    uneven block ranges, higher-order grids, and (via the package-level
    ``spmd_backend`` sweep) both executor backends."""

    @pytest.mark.parametrize("pn", [2, 3, 4, 5, 6])
    def test_matches_default_path_even_and_odd_rings(self, pn):
        # 13 rows over pn ranks: uneven block ranges for every pn tested.
        x = _x((13, 6), seed=31)

        def prog(comm):
            g = CartGrid(comm, (pn, 1))
            dt = DistTensor.from_global(g, x)
            plain = dist_gram(dt, 0, exploit_symmetry=False)
            sym = dist_gram(dt, 0, exploit_symmetry=True)
            return plain, sym

        for plain, sym in spmd(pn, prog):
            np.testing.assert_allclose(sym, plain, atol=1e-9)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_default_path_3d_grid(self, mode):
        x = _x((7, 6, 5), seed=32)

        def prog(comm):
            g = CartGrid(comm, (3, 2, 1))
            dt = DistTensor.from_global(g, x)
            plain = dist_gram(dt, mode)
            sym = dist_gram(dt, mode, exploit_symmetry=True)
            return plain, sym

        for plain, sym in spmd(6, prog):
            np.testing.assert_allclose(sym, plain, atol=1e-9)

    @pytest.mark.parametrize("exploit", [False, True])
    def test_overlap_knob_is_bit_identical(self, exploit):
        # The pipelined schedule reorders communication only: for a fixed
        # path the result bits cannot depend on the knob.
        x = _x((9, 5), seed=33)

        def prog(comm):
            g = CartGrid(comm, (4, 1))
            dt = DistTensor.from_global(g, x)
            on = dist_gram(dt, 0, exploit_symmetry=exploit, overlap=True)
            off = dist_gram(dt, 0, exploit_symmetry=exploit, overlap=False)
            return on.tobytes(), off.tobytes()

        for on, off in spmd(4, prog):
            assert on == off

    def test_replicated_across_row(self):
        x = _x((6, 6), seed=34)

        def prog(comm):
            g = CartGrid(comm, (2, 3))
            dt = DistTensor.from_global(g, x)
            s_rows = dist_gram(dt, 0, exploit_symmetry=True)
            row = g.mode_row(0)
            peers = row.allgather(s_rows)
            return all(np.array_equal(p, s_rows) for p in peers)

        assert all(spmd(6, prog).values)
