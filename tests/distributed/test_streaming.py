"""Distributed streaming compressor tests (repro.distributed.streaming)."""

import numpy as np
import pytest

from repro.core import normalized_rms
from repro.core.streaming import StreamingTucker
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import local_block
from repro.distributed.streaming import DistStreamingTucker
from repro.mpi import CartGrid, SpmdError
from repro.tensor import low_rank_tensor
from repro.util.validation import prod
from tests.conftest import spmd


def _stream_distributed(x, grid_dims, tol, chunk):
    """Run the distributed streamer on grid_dims; returns per-rank Tucker."""
    spatial = x.shape[:-1]

    def prog(comm):
        grid = CartGrid(comm, grid_dims)
        streamer = DistStreamingTucker(grid, spatial, tol=tol)
        spatial_slices = local_block(
            spatial, grid_dims[:-1], grid.coords[:-1]
        )
        for t0 in range(0, x.shape[-1], chunk):
            block = x[spatial_slices + (slice(t0, t0 + chunk),)]
            streamer.update(block)
        return streamer.finalize()

    return spmd(prod(grid_dims), prog)


class TestErrorGuarantee:
    @pytest.mark.parametrize("grid_dims", [(1, 1, 1), (2, 2, 1), (2, 3, 1)])
    def test_error_within_tolerance(self, grid_dims):
        x = low_rank_tensor((8, 9, 12), (3, 4, 4), seed=110, noise=0.005)
        res = _stream_distributed(x, grid_dims, tol=0.05, chunk=3)
        for t in res:
            assert t.shape == x.shape
            assert normalized_rms(x, t.reconstruct()) <= 0.05

    def test_identical_on_all_ranks(self):
        x = low_rank_tensor((8, 6, 10), (3, 3, 3), seed=111, noise=0.005)
        res = _stream_distributed(x, (2, 2, 1), tol=0.05, chunk=4)
        for t in res.values[1:]:
            np.testing.assert_allclose(
                t.reconstruct(), res[0].reconstruct(), atol=1e-10
            )

    def test_basis_growth_mid_stream(self):
        # Second half lives in a new subspace: the distributed streamer
        # must expand its bases and still meet the budget.
        first = low_rank_tensor((8, 6, 6), (2, 2, 3), seed=112)
        second = low_rank_tensor((8, 6, 6), (5, 4, 3), seed=113)
        x = np.concatenate([first, second], axis=-1)
        res = _stream_distributed(x, (2, 1, 1), tol=1e-3, chunk=6)
        for t in res:
            assert normalized_rms(x, t.reconstruct()) <= 1e-3

    def test_matches_sequential_streamer_quality(self):
        x = low_rank_tensor((8, 9, 12), (3, 4, 4), seed=114, noise=0.01)
        tol, chunk = 0.05, 4
        seq = StreamingTucker(x.shape[:-1], tol=tol)
        for t0 in range(0, x.shape[-1], chunk):
            seq.update(x[..., t0 : t0 + chunk])
        seq_err = normalized_rms(x, seq.finalize().reconstruct())
        res = _stream_distributed(x, (2, 1, 1), tol=tol, chunk=chunk)
        dist_err = normalized_rms(x, res[0].reconstruct())
        # Same algorithm, same budgets: comparable quality (exact equality
        # is not required — min_rank flooring and fp order may differ).
        assert dist_err <= max(tol, 3 * seq_err)


class TestValidation:
    def test_time_mode_must_not_be_partitioned(self):
        def prog(comm):
            grid = CartGrid(comm, (1, 1, 2))
            DistStreamingTucker(grid, (4, 4), tol=0.1)

        with pytest.raises(SpmdError, match="time mode"):
            spmd(2, prog)

    def test_grid_order_checked(self):
        def prog(comm):
            grid = CartGrid(comm, (2, 1))
            DistStreamingTucker(grid, (4, 4), tol=0.1)

        with pytest.raises(SpmdError, match="grid order"):
            spmd(2, prog)

    def test_wrong_local_block_rejected(self):
        def prog(comm):
            grid = CartGrid(comm, (2, 1, 1))
            streamer = DistStreamingTucker(grid, (8, 4), tol=0.1)
            streamer.update(np.zeros((3, 4, 2)))  # should be (4, 4, t)

        with pytest.raises(SpmdError, match="does not match"):
            spmd(2, prog)

    def test_update_after_finalize(self):
        x = low_rank_tensor((6, 6, 4), (2, 2, 2), seed=115)

        def prog(comm):
            grid = CartGrid(comm, (1, 1, 1))
            streamer = DistStreamingTucker(grid, (6, 6), tol=0.1)
            streamer.update(x[..., :2])
            streamer.finalize()
            streamer.update(x[..., 2:])

        with pytest.raises(SpmdError, match="finalized"):
            spmd(1, prog)
