"""Bit-identity acceptance for the pipelined TSQR/SVD path.

The SVD-method driver (``dist_sthosvd(method="svd")``) must produce
bit-identical factors, core, ranks and ledger whatever the transport
schedule: communication/computation overlap on or off, binary or
butterfly TSQR tree, thread or process backend.  Only *when*
communication is initiated (and, across trees, *which route* the
triangles take) may change — never the data or the fold bracketing.
"""

import numpy as np
import pytest

from repro.distributed import (
    OVERLAP_ENV_VAR,
    TSQR_TREE_ENV_VAR,
    DistTensor,
    dist_mode_svd,
    dist_sthosvd,
)
from repro.mpi import CartGrid, run_spmd, shutdown_worker_pools
from repro.tensor import low_rank_tensor
from tests.conftest import spmd

GRID = (2, 2, 1)
N_RANKS = 4


@pytest.fixture(autouse=True)
def spmd_backend():
    """Override the package-level sweep: these tests pick their backends
    explicitly (the sweep would square the config matrix)."""
    return None


def _svd_prog(x, **kwargs):
    def prog(comm):
        g = CartGrid(comm, GRID)
        dt = DistTensor.from_global(g, x)
        t = dist_sthosvd(dt, ranks=(3, 3, 2), method="svd", **kwargs)
        tucker = t.to_tucker()
        return tucker.core, tuple(tucker.factors), t.ranks

    return prog


def _assert_same_bits(a, b):
    assert a[0].tobytes() == b[0].tobytes()  # core
    for fa, fb in zip(a[1], b[1]):
        assert fa.tobytes() == fb.tobytes()
    assert a[2] == b[2]  # selected ranks


class TestSvdPathBitIdentity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_overlap_and_tree_sweep(self, backend, monkeypatch):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=23, noise=0.03)
        prog = _svd_prog(x)
        results = {}
        for overlap in ("1", "0"):
            for tree in ("binary", "butterfly"):
                # Fresh pool so process workers inherit the knobs.
                shutdown_worker_pools()
                monkeypatch.setenv(OVERLAP_ENV_VAR, overlap)
                monkeypatch.setenv(TSQR_TREE_ENV_VAR, tree)
                results[overlap, tree] = run_spmd(
                    N_RANKS, prog, backend=backend
                )
        shutdown_worker_pools()
        base = results["1", "binary"]
        for res in results.values():
            for base_val, val in zip(base.values, res.values):
                _assert_same_bits(base_val, val)
        # Overlap moves charges in time, never in size: for a fixed tree
        # the ledgers must match exactly with the knob on and off.  (The
        # trees themselves route different messages, so ledgers are only
        # compared within a tree.)
        for tree in ("binary", "butterfly"):
            on, off = results["1", tree], results["0", tree]
            assert on.ledger.summary() == off.ledger.summary()
            for rank in range(N_RANKS):
                a = on.ledger.rank_costs(rank)
                b = off.ledger.rank_costs(rank)
                assert (a.time, a.words_sent, a.messages, a.flops) == (
                    b.time, b.words_sent, b.messages, b.flops
                )

    @pytest.mark.parametrize("tree", ["binary", "butterfly"])
    def test_backends_bit_identical(self, tree):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=24, noise=0.02)
        prog = _svd_prog(x, tsqr_tree=tree)
        by_backend = {
            name: run_spmd(N_RANKS, prog, backend=name)
            for name in ("thread", "process")
        }
        for t_val, p_val in zip(
            by_backend["thread"].values, by_backend["process"].values
        ):
            _assert_same_bits(t_val, p_val)
        thread = by_backend["thread"].ledger
        process = by_backend["process"].ledger
        assert thread.summary() == process.summary()
        for rank in range(N_RANKS):
            a, b = thread.rank_costs(rank), process.rank_costs(rank)
            assert (a.time, a.words_sent, a.messages, a.flops) == (
                b.time, b.words_sent, b.messages, b.flops
            )


def _mode_svd_symmetric_prog(comm):
    """A fully even configuration (even blocks, power-of-two grid and
    butterfly): every rank must charge the identical cost."""
    g = CartGrid(comm, GRID)
    x = np.arange(8.0 * 6 * 4).reshape(8, 6, 4) / 100.0
    dt = DistTensor.from_global(g, x)
    u_local, _ = dist_mode_svd(dt, 0, rank=3, tree="butterfly")
    return u_local.shape


class TestSvdLedgerSymmetry:
    def test_butterfly_mode_svd_charges_are_rank_symmetric(self):
        res = spmd(N_RANKS, _mode_svd_symmetric_prog, backend="process")
        rows = [res.ledger.rank_costs(r) for r in range(N_RANKS)]
        reference = (
            rows[0].time, rows[0].words_sent, rows[0].messages, rows[0].flops
        )
        for rank, row in enumerate(rows):
            assert (
                row.time, row.words_sent, row.messages, row.flops
            ) == pytest.approx(reference), f"rank {rank} diverged"
