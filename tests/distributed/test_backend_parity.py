"""Thread vs. process backend parity on the full distributed stack.

The acceptance bar for the executor-backend layer: a 4-rank distributed
ST-HOSVD must produce *bit-identical* Tucker factors and core, and an
identical cost ledger, no matter which backend executed the ranks.  Both
backends run the very same deterministic rank code (reductions fold in
group-rank order), so any divergence is a transport bug, not roundoff.
"""

import numpy as np
import pytest

from repro.core import sthosvd
from repro.distributed import OVERLAP_ENV_VAR, DistTensor, dist_sthosvd
from repro.mpi import SUM, CartGrid, run_spmd, shutdown_worker_pools
from repro.tensor import low_rank_tensor
from tests.conftest import recon_atol

GRID = (1, 2, 2)
N_RANKS = 4


@pytest.fixture(autouse=True)
def spmd_backend():
    """Override the package-level parameterization: every test here runs
    both backends explicitly, so the env-var sweep would only double it."""
    return None


def _factors_prog(x, **kwargs):
    def prog(comm):
        g = CartGrid(comm, GRID)
        dt = DistTensor.from_global(g, x)
        t = dist_sthosvd(dt, **kwargs)
        tucker = t.to_tucker()
        return tucker.core, tuple(tucker.factors), t.ranks

    return prog


def _run_both(x, **kwargs):
    prog = _factors_prog(x, **kwargs)
    return {
        name: run_spmd(N_RANKS, prog, backend=name)
        for name in ("thread", "process")
    }


class TestBitIdenticalResults:
    def test_fixed_rank_sthosvd(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=11, noise=0.02)
        by_backend = _run_both(x, ranks=(3, 3, 2))
        for t_val, p_val in zip(
            by_backend["thread"].values, by_backend["process"].values
        ):
            t_core, t_factors, t_ranks = t_val
            p_core, p_factors, p_ranks = p_val
            assert t_ranks == p_ranks == (3, 3, 2)
            assert t_core.tobytes() == p_core.tobytes()
            for tf, pf in zip(t_factors, p_factors):
                assert tf.tobytes() == pf.tobytes()

    def test_tolerance_based_sthosvd(self):
        x = low_rank_tensor((8, 6, 4), (3, 2, 2), seed=12, noise=0.05)
        by_backend = _run_both(x, tol=0.1)
        t0 = by_backend["thread"][0]
        p0 = by_backend["process"][0]
        assert t0[2] == p0[2]  # same truncation decisions
        assert t0[0].tobytes() == p0[0].tobytes()

    def test_matches_sequential_reference(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=11, noise=0.02)
        seq = sthosvd(x, ranks=(3, 3, 2)).decomposition.reconstruct()
        by_backend = _run_both(x, ranks=(3, 3, 2))
        for res in by_backend.values():
            core, factors, _ = res[0]
            from repro.core import TuckerTensor

            recon = TuckerTensor(core=core, factors=factors).reconstruct()
            # Backends stay bit-identical to each other under every
            # dtype; agreement with the float64 sequential reference
            # loosens when the suite runs narrow.
            np.testing.assert_allclose(recon, seq, atol=recon_atol())


def _nine_collectives(comm, x):
    """All nine collectives (uneven payloads), bit-comparable results."""
    comm.barrier()
    out = [comm.bcast({"a": x, "r": comm.rank} if comm.rank == 1 else None,
                      root=1)["a"].tobytes()]
    g = comm.gather(x[: comm.rank + 4] * comm.rank, root=2)
    out.append(None if g is None else [v.tobytes() for v in g])
    out.append([v.tobytes() for v in comm.allgather(x * (comm.rank + 1))])
    s = comm.scatter(
        [x[: 7 * (n + 1)] + n for n in range(comm.size)]
        if comm.rank == 0 else None,
        root=0,
    )
    out.append(s.tobytes())
    r = comm.reduce(x + comm.rank, op=lambda a, b: a + b, root=3)
    out.append(None if r is None else r.tobytes())
    out.append(comm.allreduce(x * 0.3).tobytes())
    out.append(
        comm.reduce_scatter_block(
            np.outer(np.arange(float(2 * comm.size)), x[:6]) + comm.rank
        ).tobytes()
    )
    out.append(
        [v.tobytes()
         for v in comm.alltoall([x[: comm.rank + j + 1] * j
                                 for j in range(comm.size)])]
    )
    return out


class TestAllCollectivesParity:
    """Window-riding collectives: same bits and charges as the thread
    backend's in-process relay, even under uneven payloads."""

    def test_results_and_ledgers_match(self):
        x = np.random.default_rng(21).standard_normal(64)
        results = {
            name: run_spmd(N_RANKS, _nine_collectives, x, backend=name)
            for name in ("thread", "process")
        }
        assert results["thread"].values == results["process"].values
        t, p = results["thread"].ledger, results["process"].ledger
        assert t.summary() == p.summary()
        for rank in range(N_RANKS):
            assert t.rank_costs(rank).time == p.rank_costs(rank).time
            assert t.rank_costs(rank).words_sent == p.rank_costs(rank).words_sent
            assert t.rank_costs(rank).messages == p.rank_costs(rank).messages


def _nonblocking_battery(comm, x):
    """Deferred p2p + all three non-blocking collectives, pipelined and
    with uneven payloads; returns bit-comparable results."""
    out = []
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    # Two isendrecv hops in flight at once (the dist_gram ring pattern).
    reqs = [
        comm.isendrecv(x[: 5 * (comm.rank + 1)] * i, dest=right, source=left,
                       tag=i)
        for i in (1, 2)
    ]
    out.append([r.wait().tobytes() for r in reqs])
    send_req = comm.isend({"r": comm.rank, "x": x[:9]}, dest=right, tag=7)
    got = comm.irecv(source=left, tag=7).wait()
    send_req.wait()
    out.append((got["r"], got["x"].tobytes()))
    # Pipelined non-blocking reductions deeper than the double buffer.
    nb = [
        comm.ireduce(x[:6] * (comm.rank + 1) + i, op=SUM, root=i % comm.size)
        for i in range(3)
    ]
    nb.append(comm.iallreduce(x * (comm.rank + 1), op=SUM))
    nb.append(
        comm.ireduce_scatter_block(
            np.outer(np.arange(float(2 * comm.size)), x[:7]) + comm.rank,
            op=SUM,
        )
    )
    for req in nb:
        value = req.wait()
        out.append(None if value is None else np.asarray(value).tobytes())
    return out


class TestNonblockingParity:
    """Deferred requests: same bits and charges on both backends (the
    process backend completes them over double-buffered windows, the
    thread backend over the p2p relay)."""

    def test_results_and_ledgers_match(self):
        x = np.random.default_rng(33).standard_normal(48)
        results = {
            name: run_spmd(N_RANKS, _nonblocking_battery, x, backend=name)
            for name in ("thread", "process")
        }
        assert results["thread"].values == results["process"].values
        t, p = results["thread"].ledger, results["process"].ledger
        assert t.summary() == p.summary()
        for rank in range(N_RANKS):
            assert t.rank_costs(rank).time == p.rank_costs(rank).time
            assert t.rank_costs(rank).words_sent == p.rank_costs(rank).words_sent
            assert t.rank_costs(rank).messages == p.rank_costs(rank).messages


class TestOverlapBitIdentity:
    """The acceptance bar for the overlap knob: a 4-rank distributed
    ST-HOSVD must produce bit-identical factors, core and ledger with
    ``REPRO_SPMD_OVERLAP`` on and off, on both backends (the knob only
    moves when communication is initiated, never what is computed)."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_dist_sthosvd_overlap_on_off(self, backend, monkeypatch):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=17, noise=0.03)
        prog = _factors_prog(x, ranks=(3, 3, 2))
        by_mode = {}
        for mode in ("1", "0"):
            # Fresh pool so process workers inherit the right env.
            shutdown_worker_pools()
            monkeypatch.setenv(OVERLAP_ENV_VAR, mode)
            by_mode[mode] = run_spmd(N_RANKS, prog, backend=backend)
        shutdown_worker_pools()
        on, off = by_mode["1"], by_mode["0"]
        for on_val, off_val in zip(on.values, off.values):
            assert on_val[0].tobytes() == off_val[0].tobytes()  # core
            for f_on, f_off in zip(on_val[1], off_val[1]):
                assert f_on.tobytes() == f_off.tobytes()
            assert on_val[2] == off_val[2]  # ranks
        assert on.ledger.summary() == off.ledger.summary()
        for rank in range(N_RANKS):
            a, b = on.ledger.rank_costs(rank), off.ledger.rank_costs(rank)
            assert (a.time, a.words_sent, a.messages, a.flops) == (
                b.time, b.words_sent, b.messages, b.flops
            )


class TestIdenticalLedgers:
    def test_event_counts_and_modeled_time(self):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=11, noise=0.02)
        by_backend = _run_both(x, ranks=(3, 3, 2))
        thread = by_backend["thread"].ledger
        process = by_backend["process"].ledger
        assert thread.summary() == process.summary()
        assert thread.section_times() == process.section_times()
        for rank in range(N_RANKS):
            t_row = thread.rank_costs(rank)
            p_row = process.rank_costs(rank)
            assert t_row.messages == p_row.messages
            assert t_row.words_sent == p_row.words_sent
            assert t_row.flops == p_row.flops
            assert t_row.time == p_row.time
            assert dict(t_row.by_section) == dict(p_row.by_section)
