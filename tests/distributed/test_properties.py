"""Property-based tests for the distributed layer.

The fundamental invariant of the whole parallel design: for *any* shape,
grid, and data, the distributed algorithms compute exactly what the
sequential reference computes.  Hypothesis explores shapes/grids including
uneven divisions the unit tests don't enumerate.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import sthosvd
from repro.distributed import DistTensor, dist_gram, dist_sthosvd, dist_ttm
from repro.distributed.layout import block_range
from repro.mpi import CartGrid
from repro.tensor import gram, ttm
from repro.util.seeding import rng_for
from repro.util.validation import prod
from tests.conftest import recon_atol, spmd


@st.composite
def problems(draw):
    """(shape, grid) pairs with every grid extent feasible for its mode."""
    order = draw(st.integers(2, 3))
    shape = []
    grid = []
    total_ranks = 1
    for _ in range(order):
        s = draw(st.integers(2, 7))
        p = draw(st.integers(1, min(3, s)))
        if total_ranks * p > 12:
            p = 1
        shape.append(s)
        grid.append(p)
        total_ranks *= p
    return tuple(shape), tuple(grid)


@given(problem=problems(), seed=st.integers(0, 2**16), mode=st.integers(0, 2))
@settings(max_examples=20, deadline=None)
def test_dist_ttm_matches_sequential(problem, seed, mode):
    shape, grid = problem
    mode = mode % len(shape)
    x = rng_for(seed, "dttm", shape).standard_normal(shape)
    k = max(grid[mode], 2)
    v = rng_for(seed, "dttm-v", shape, mode).standard_normal((k, shape[mode]))

    def prog(comm):
        g = CartGrid(comm, grid)
        dt = DistTensor.from_global(g, x)
        sl = dt.local_slices[mode]
        z = dist_ttm(dt, np.ascontiguousarray(v[:, sl]), mode, k,
                     strategy="blocked")
        return z.to_global()

    result = spmd(prod(grid), prog)[0]
    np.testing.assert_allclose(result, ttm(x, v, mode), atol=1e-9)


@given(problem=problems(), seed=st.integers(0, 2**16), mode=st.integers(0, 2))
@settings(max_examples=20, deadline=None)
def test_dist_gram_matches_sequential(problem, seed, mode):
    shape, grid = problem
    mode = mode % len(shape)
    x = rng_for(seed, "dgram", shape).standard_normal(shape)

    def prog(comm):
        g = CartGrid(comm, grid)
        dt = DistTensor.from_global(g, x)
        s_rows = dist_gram(dt, mode)
        start, stop = block_range(shape[mode], grid[mode], g.coords[mode])
        return s_rows, (start, stop)

    expected = gram(x, mode)
    for s_rows, (start, stop) in spmd(prod(grid), prog):
        np.testing.assert_allclose(s_rows, expected[start:stop], atol=1e-8)


@given(problem=problems(), seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_dist_sthosvd_matches_sequential(problem, seed):
    shape, grid = problem
    # Ranks: feasible (>= grid extent, <= dim).
    ranks = tuple(max(p, min(s, 2)) for s, p in zip(shape, grid))
    x = rng_for(seed, "dst", shape).standard_normal(shape)
    seq = sthosvd(x, ranks=ranks)

    def prog(comm):
        g = CartGrid(comm, grid)
        dt = DistTensor.from_global(g, x)
        t = dist_sthosvd(dt, ranks=ranks)
        return t.to_tucker()

    tucker = spmd(prod(grid), prog)[0]
    np.testing.assert_allclose(
        tucker.reconstruct(), seq.decomposition.reconstruct(),
        atol=recon_atol(1e-7),
    )


@given(problem=problems(), seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_round_trip_distribution(problem, seed):
    shape, grid = problem
    x = rng_for(seed, "rt", shape).standard_normal(shape)

    def prog(comm):
        g = CartGrid(comm, grid)
        return DistTensor.from_global(g, x).to_global()

    for recovered in spmd(prod(grid), prog):
        np.testing.assert_array_equal(recovered, x)
