"""CLI validate-subcommand tests."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import TuckerTensor, sthosvd
from repro.io import save_tucker
from repro.tensor import low_rank_tensor


@pytest.fixture
def clean_model(tmp_path):
    x = low_rank_tensor((10, 8, 6), (3, 3, 2), seed=41, noise=0.01)
    t = sthosvd(x, ranks=(3, 3, 2)).decomposition
    model = tmp_path / "m.npz"
    save_tucker(model, t)
    src = tmp_path / "x.npy"
    np.save(src, x)
    return model, src, t


class TestValidateCommand:
    def test_clean_model_passes(self, clean_model, capsys):
        model, _, _ = clean_model
        assert main(["validate", str(model)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_against_original(self, clean_model, capsys):
        model, src, _ = clean_model
        assert main(["validate", str(model), "--against", str(src)]) == 0
        out = capsys.readouterr().out
        assert "core residual" in out
        assert "relative error" in out

    def test_narrowed_dtype_model_held_to_float32_bar(
        self, tmp_path, capsys
    ):
        # A model compressed under --dtype mixed carries float32-level
        # orthonormality defect; validate reads the recorded dtype and
        # widens the bar instead of flagging a correct model.
        x = low_rank_tensor((10, 8, 6), (3, 3, 2), seed=41, noise=0.01)
        src = tmp_path / "x.npy"
        np.save(src, x)
        model = tmp_path / "m32.npz"
        assert main([
            "compress", str(src), str(model), "--ranks", "3", "3", "2",
            "--parallel", "2", "--dtype", "mixed",
        ]) == 0
        capsys.readouterr()
        assert main(["validate", str(model), "--against", str(src)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "dtype bar" in out and "mixed" in out

    def test_broken_model_fails(self, clean_model, tmp_path, capsys):
        _, _, t = clean_model
        broken = TuckerTensor(
            core=t.core, factors=tuple(2.0 * f for f in t.factors)
        )
        path = tmp_path / "broken.npz"
        save_tucker(path, broken)
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "ISSUES FOUND" in out
        assert "orthonormality" in out
