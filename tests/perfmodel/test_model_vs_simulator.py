"""Cross-validation: analytic cost model vs the simulated MPI's ledger.

The point of keeping both is that the model (paper Secs. V-VI) can predict
paper-scale runs the simulator cannot execute, while the simulator measures
actual byte/flop traffic of real (small) executions.  These tests pin the
two together: for evenly divisible problems on the ideal EDISON machine,
the per-kernel flop counts agree exactly and the modeled times agree to
within the slack the model's idealizations allow.
"""

import numpy as np
import pytest

from repro.distributed import DistTensor, dist_gram, dist_sthosvd, dist_ttm
from repro.mpi import CartGrid
from repro.perfmodel import EDISON, gram_cost, sthosvd_cost, ttm_cost
from repro.tensor import low_rank_tensor
from repro.util.validation import prod
from tests.conftest import spmd


SHAPE = (8, 8, 8)
RANKS = (4, 4, 4)
GRID = (2, 2, 2)
P = prod(GRID)


def _x():
    return low_rank_tensor(SHAPE, RANKS, seed=3, noise=0.05)


class TestTtmAgreement:
    def test_flops_match_model_exactly(self):
        x = _x()
        mode, k = 0, 4
        model = ttm_cost(SHAPE, mode, k, GRID, EDISON)

        def prog(comm):
            g = CartGrid(comm, GRID)
            dt = DistTensor.from_global(g, x)
            v = np.random.default_rng(0).standard_normal((k, SHAPE[mode]))
            sl = dt.local_slices[mode]
            dist_ttm(dt, v[:, sl].copy(), mode, k, strategy="blocked")
            return None

        res = spmd(P, prog, machine=EDISON)
        # Model flops are per processor.
        measured = res.ledger.total_flops() / P
        assert measured == pytest.approx(model.flops)

    def test_words_within_model_bound(self):
        # The naive collective implementations move at least the modeled
        # traffic; tree algorithms would move exactly the model amount.
        x = _x()
        model = ttm_cost(SHAPE, 0, 4, GRID, EDISON)

        def prog(comm):
            g = CartGrid(comm, GRID)
            dt = DistTensor.from_global(g, x)
            v = np.random.default_rng(0).standard_normal((4, 8))
            sl = dt.local_slices[0]
            dist_ttm(dt, v[:, sl].copy(), 0, 4, strategy="blocked")
            return None

        res = spmd(P, prog, machine=EDISON)
        assert res.ledger.total_words() >= model.words * P * 0.5


class TestGramAgreement:
    def test_flops_match_model_exactly(self):
        x = _x()
        mode = 1
        model = gram_cost(SHAPE, mode, GRID, EDISON)

        def prog(comm):
            g = CartGrid(comm, GRID)
            dt = DistTensor.from_global(g, x)
            dist_gram(dt, mode)
            return None

        res = spmd(P, prog, machine=EDISON)
        measured = res.ledger.total_flops() / P
        assert measured == pytest.approx(model.flops)

    def test_symmetric_fast_path_halves_flops(self):
        x = _x()
        grid = (1, 4, 2)

        def prog(comm):
            g = CartGrid(comm, grid)
            dt = DistTensor.from_global(g, x)
            dist_gram(dt, 0)
            return None

        res = spmd(8, prog, machine=EDISON)
        full = gram_cost(SHAPE, 0, grid, EDISON).flops
        measured = res.ledger.total_flops() / 8
        # P0 == 1 exploits symmetry: n(n+1)k instead of 2 n^2 k.
        assert measured == pytest.approx(full * (SHAPE[0] + 1) / (2 * SHAPE[0]))


class TestSthosvdAgreement:
    def test_total_flops_match(self):
        x = _x()
        model = sthosvd_cost(SHAPE, RANKS, GRID, EDISON)

        def prog(comm):
            g = CartGrid(comm, GRID)
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=RANKS, ttm_strategy="blocked")
            return None

        res = spmd(P, prog, machine=EDISON)
        measured = res.ledger.total_flops() / P
        # The model counts gram/evecs/ttm; the driver also charges the
        # initial norm computation (2 J/P flops) — subtract it.
        norm_flops = 2 * prod(SHAPE) / P
        assert measured - norm_flops == pytest.approx(model.flops, rel=1e-6)

    def test_modeled_time_same_order_of_magnitude(self):
        # Times cannot match exactly (naive vs tree collectives, uneven
        # charging), but must agree within a small factor for the model to
        # be a usable predictor.
        x = _x()
        model = sthosvd_cost(SHAPE, RANKS, GRID, EDISON)

        def prog(comm):
            g = CartGrid(comm, GRID)
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=RANKS, ttm_strategy="blocked")
            return None

        res = spmd(P, prog, machine=EDISON)
        measured = res.ledger.modeled_time()
        assert model.time / 5 < measured < model.time * 5

    def test_per_kernel_breakdown_ranks_consistently(self):
        # Gram must dominate TTM in both the model and the measurement for
        # a problem where I/R = 4 (paper Sec. VIII-B reasoning).
        shape, ranks, grid = (16, 16, 16), (4, 4, 4), (2, 2, 2)
        x = low_rank_tensor(shape, ranks, seed=4, noise=0.05)
        model = sthosvd_cost(shape, ranks, grid, EDISON)

        def prog(comm):
            g = CartGrid(comm, grid)
            dt = DistTensor.from_global(g, x)
            dist_sthosvd(dt, ranks=ranks, ttm_strategy="blocked")
            return None

        res = spmd(8, prog, machine=EDISON)
        sections = res.ledger.section_times()
        assert model.kernel_time("gram") > model.kernel_time("ttm")
        assert sections["gram"] > sections["ttm"]
