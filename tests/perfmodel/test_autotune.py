"""Autotuner golden-decision tests: plan_sthosvd and refine_machine.

The planner is a pure function of (shape, ranks, grid, machine), so its
decisions are pinned here as goldens: if a model change flips one, that
is a deliberate retune and the test documents it.
"""

import pytest

from repro.config import RuntimeConfig
from repro.perfmodel import (
    EDISON,
    ExecutionPlan,
    plan_sthosvd,
    refine_machine,
    sthosvd_cost,
)

# The committed kernel benchmark's ST-HOSVD case: (24,16,12) -> (6,4,4)
# on a 2x2x1 grid.  Small enough that overlap's extra non-blocking
# messages cost more than the communication they could hide.
BENCH_SHAPE = (24, 16, 12)
BENCH_RANKS = (6, 4, 4)
BENCH_GRID = (2, 2, 1)


class TestGoldenDecisions:
    def test_bench_case_disables_overlap(self):
        plan = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID, machine=EDISON
        )
        assert plan.config.overlap is False
        assert "hideable" in plan.decisions["overlap"]

    def test_bench_case_picks_butterfly(self):
        plan = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID, machine=EDISON
        )
        assert plan.config.tsqr_tree == "butterfly"
        assert plan.config.ttm_batch_lead == 32

    def test_large_case_enables_overlap(self):
        plan = plan_sthosvd(
            (200, 200, 200, 200),
            ranks=(20, 20, 20, 20),
            n_ranks=16,
            machine=EDISON,
        )
        assert plan.config.overlap is True
        assert plan.grid == (1, 1, 1, 16)

    def test_serial_grid_keeps_binary_tree(self):
        plan = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=(1, 1, 1), machine=EDISON
        )
        assert plan.config.tsqr_tree == "binary"
        assert plan.config.overlap is False

    def test_dispatch_bound_loop_widens_batch_lead(self):
        # mode_order puts mode 2 first, so its block loop runs over the
        # full 8*8 = 64 leading columns of tiny dgemms.
        plan = plan_sthosvd(
            (8, 8, 4),
            ranks=(2, 2, 2),
            grid=(1, 1, 1),
            machine=EDISON,
            mode_order=(2, 0, 1),
        )
        assert plan.config.ttm_batch_lead == 64
        assert "batching" in plan.decisions["ttm_batch_lead"]


class TestPlanMechanics:
    def test_returns_execution_plan_with_predicted_cost(self):
        plan = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID, machine=EDISON
        )
        assert isinstance(plan, ExecutionPlan)
        expected = sthosvd_cost(BENCH_SHAPE, BENCH_RANKS, BENCH_GRID, EDISON)
        assert plan.predicted.time == pytest.approx(expected.time)

    def test_base_config_knobs_survive(self):
        base = RuntimeConfig(backend="process", sanitize=1, window_slot=4096)
        plan = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID,
            machine=EDISON, base=base,
        )
        assert plan.config.backend == "process"
        assert plan.config.sanitize == 1
        assert plan.config.window_slot == 4096
        # ... while the decided knobs are the plan's, not the base's.
        assert plan.config.overlap is False

    def test_deterministic(self):
        a = plan_sthosvd(BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID)
        b = plan_sthosvd(BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID)
        assert a.config == b.config
        assert a.decisions == b.decisions

    def test_describe_mentions_every_decision(self):
        plan = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID, machine=EDISON
        )
        text = plan.describe()
        assert "grid: 2x2x1" in text
        for knob in ("overlap", "tsqr_tree", "ttm_batch_lead"):
            assert knob in text
        assert "predicted time" in text

    def test_rank_surrogate_with_tol(self):
        plan = plan_sthosvd(
            BENCH_SHAPE, tol=1e-2, grid=BENCH_GRID, machine=EDISON
        )
        assert isinstance(plan.config, RuntimeConfig)

    def test_config_is_json_replayable(self):
        plan = plan_sthosvd(BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID)
        assert RuntimeConfig.from_json(plan.config.to_json()) == plan.config


class TestValidation:
    def test_rejects_both_tol_and_ranks(self):
        with pytest.raises(ValueError, match="at most one"):
            plan_sthosvd(BENCH_SHAPE, ranks=BENCH_RANKS, tol=1e-2, grid=BENCH_GRID)

    def test_requires_exactly_one_of_n_ranks_or_grid(self):
        with pytest.raises(ValueError, match="exactly one"):
            plan_sthosvd(BENCH_SHAPE, ranks=BENCH_RANKS)
        with pytest.raises(ValueError, match="exactly one"):
            plan_sthosvd(
                BENCH_SHAPE, ranks=BENCH_RANKS, n_ranks=4, grid=BENCH_GRID
            )

    def test_rejects_mismatched_ranks(self):
        with pytest.raises(ValueError, match="ranks"):
            plan_sthosvd(BENCH_SHAPE, ranks=(6, 4), grid=BENCH_GRID)

    def test_rejects_mismatched_grid(self):
        with pytest.raises(ValueError, match="grid"):
            plan_sthosvd(BENCH_SHAPE, ranks=BENCH_RANKS, grid=(2, 2))

    def test_rejects_bad_mode_order(self):
        with pytest.raises(ValueError, match="permutation"):
            plan_sthosvd(
                BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID,
                mode_order=(0, 0, 1),
            )


class TestRefineMachine:
    def test_scales_all_constants_uniformly(self):
        refined = refine_machine(EDISON, modeled_seconds=1.0, measured_seconds=2.0)
        assert refined.alpha == pytest.approx(2 * EDISON.alpha)
        assert refined.beta == pytest.approx(2 * EDISON.beta)
        assert refined.gamma == pytest.approx(2 * EDISON.gamma)
        assert "refined" in refined.name

    def test_refined_machine_preserves_decisions(self):
        # A uniform rescale preserves every ratio the planner compares,
        # so the plan must not change.
        refined = refine_machine(EDISON, 1.0, 3.7)
        a = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID, machine=EDISON
        )
        b = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID, machine=refined
        )
        assert a.config == b.config

    def test_prediction_matches_measurement_after_refinement(self):
        plan = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID, machine=EDISON
        )
        measured = 10.0
        refined = refine_machine(EDISON, plan.predicted.time, measured)
        replanned = plan_sthosvd(
            BENCH_SHAPE, ranks=BENCH_RANKS, grid=BENCH_GRID, machine=refined
        )
        assert replanned.predicted.time == pytest.approx(measured)

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError, match="modeled"):
            refine_machine(EDISON, 0.0, 1.0)
        with pytest.raises(ValueError, match="measured"):
            refine_machine(EDISON, 1.0, -1.0)
