"""MachineSpec tests."""

import pytest

from repro.perfmodel import EDISON, EDISON_CALIBRATED, MachineSpec, UNIT


class TestMachineSpec:
    def test_peak_flops(self):
        assert EDISON.peak_flops == pytest.approx(19.2e9)

    def test_zero_gamma_has_no_peak(self):
        m = MachineSpec(alpha=1, beta=1, gamma=0)
        with pytest.raises(ValueError):
            m.peak_flops

    def test_rejects_negative_constants(self):
        with pytest.raises(ValueError):
            MachineSpec(alpha=-1, beta=1, gamma=1)

    def test_with_efficiency(self):
        derated = EDISON.with_efficiency(0.5)
        assert derated.gamma == pytest.approx(2 * EDISON.gamma)
        assert "eff" in derated.name

    def test_with_efficiency_validation(self):
        with pytest.raises(ValueError):
            EDISON.with_efficiency(0.0)
        with pytest.raises(ValueError):
            EDISON.with_efficiency(1.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            EDISON.alpha = 0.0


class TestBlasEfficiency:
    def test_ideal_machine_is_one(self):
        assert UNIT.blas_efficiency(1, 1, 1) == 1.0

    def test_calibration_point(self):
        # The calibration: ~200x200x(big) GEMM at 67% of peak.
        eff = EDISON_CALIBRATED.blas_efficiency(200, 1e6, 200)
        assert eff == pytest.approx(2 / 3, rel=0.01)

    def test_small_blocks_slow(self):
        big = EDISON_CALIBRATED.blas_efficiency(500, 500, 500)
        small = EDISON_CALIBRATED.blas_efficiency(8, 8, 8)
        assert small < 0.2 < 0.7 < big

    def test_monotone_in_each_dim(self):
        e1 = EDISON_CALIBRATED.blas_efficiency(10, 100, 100)
        e2 = EDISON_CALIBRATED.blas_efficiency(20, 100, 100)
        assert e2 > e1

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            EDISON_CALIBRATED.blas_efficiency(0, 10, 10)

    def test_flop_time_scales_with_efficiency(self):
        ideal = EDISON_CALIBRATED.flop_time(1e9)
        derated = EDISON_CALIBRATED.flop_time(1e9, (10, 10, 10))
        assert derated > ideal

    def test_flop_time_rejects_negative(self):
        with pytest.raises(ValueError):
            UNIT.flop_time(-1)
