"""Scaling-predictor tests (Figs. 8-9 machinery)."""

import pytest

from repro.perfmodel import (
    EDISON,
    EDISON_CALIBRATED,
    grid_sweep,
    mode_order_sweep,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.perfmodel.scaling import candidate_grids, enumerate_grids
from repro.util.validation import prod


class TestEnumerateGrids:
    def test_counts_factorizations(self):
        # 12 into 2 ordered factors: 1x12, 2x6, 3x4, 4x3, 6x2, 12x1.
        assert len(enumerate_grids(12, 2)) == 6

    def test_products_correct(self):
        for g in enumerate_grids(24, 3):
            assert prod(g) == 24

    def test_single_mode(self):
        assert enumerate_grids(7, 1) == [(7,)]

    def test_validation(self):
        with pytest.raises(ValueError):
            enumerate_grids(0, 2)


class TestCandidateGrids:
    def test_feasibility_filter(self):
        grids = candidate_grids(16, (4, 4, 100))
        assert all(g[0] <= 4 and g[1] <= 4 for g in grids)

    def test_limit_respected(self):
        grids = candidate_grids(64, (64, 64, 64), max_candidates=5)
        assert len(grids) == 5

    def test_infeasible(self):
        with pytest.raises(ValueError, match="no feasible"):
            candidate_grids(101, (10, 10))


class TestGridSweep:
    def test_fig8a_shape(self):
        points = grid_sweep(
            (384,) * 4, (96,) * 4,
            [(1, 1, 16, 24), (6, 4, 4, 4)],
            EDISON,
        )
        assert len(points) == 2
        assert points[0].label == "1x1x16x24"
        b = points[0].breakdown()
        assert set(b) == {"gram", "evecs", "ttm"}

    def test_paper_grid_ranking(self):
        # Paper Fig. 8a: grids with P1 = 1 beat grids with P1 = 6 by > 2x.
        good, bad = grid_sweep(
            (384,) * 4, (96,) * 4,
            [(1, 1, 16, 24), (6, 4, 4, 4)],
            EDISON_CALIBRATED,
        )
        assert bad.time > 1.5 * good.time


class TestModeOrderSweep:
    def test_all_permutations_by_default(self):
        points = mode_order_sweep((8, 8, 8), (2, 2, 2), (1, 1, 1), EDISON)
        assert len(points) == 6

    def test_fig8b_best_order_starts_with_high_compression_mode(self):
        # Paper Fig. 8b: 25x250^3 -> 10x10x100^2; the optimal order starts
        # with mode 2 (1-indexed), the highest-compression mode.
        points = mode_order_sweep(
            (25, 250, 250, 250), (10, 10, 100, 100), (2, 2, 2, 2),
            EDISON_CALIBRATED,
        )
        best = min(points, key=lambda p: p.time)
        assert best.label.startswith("2")


class TestStrongScaling:
    def test_times_decrease(self):
        points = strong_scaling_curve(
            (200,) * 4, (20,) * 4, [24, 96, 384], EDISON, max_candidates=10
        )
        times = [p.sthosvd_time for p in points]
        assert times[0] > times[1] > times[2]

    def test_explicit_grids(self):
        points = strong_scaling_curve(
            (64,) * 3, (8,) * 3, [8],
            EDISON,
            grids_by_p={8: [(1, 2, 4), (2, 2, 2)]},
        )
        assert points[0].grid in {(1, 2, 4), (2, 2, 2)}

    def test_grid_product_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not use"):
            strong_scaling_curve(
                (64,) * 3, (8,) * 3, [8], EDISON, grids_by_p={8: [(1, 2, 2)]}
            )


class TestWeakScaling:
    def test_paper_configuration(self):
        points = weak_scaling_curve([1, 2], EDISON)
        assert points[0].n_procs == 24
        assert points[1].n_procs == 24 * 16
        assert points[1].grid in {
            (1, 1, 16, 24), (2, 2, 8, 12), (2, 4, 6, 8),
        }

    def test_gflops_per_core_below_peak(self):
        for p in weak_scaling_curve([1, 3], EDISON_CALIBRATED):
            assert 0 < p.gflops_per_core("sthosvd") < 19.2
            assert 0 < p.gflops_per_core("hooi") < 19.2

    def test_single_node_matches_paper_efficiency(self):
        # Paper: 66% of peak for ST-HOSVD on one node (the calibration
        # anchors the dominant GEMM, whole-run efficiency lands nearby).
        pt = weak_scaling_curve([1], EDISON_CALIBRATED)[0]
        eff = pt.gflops_per_core("sthosvd") / 19.2
        assert 0.4 < eff < 0.8

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            weak_scaling_curve([0], EDISON)

    def test_extrapolation_beyond_paper_range_allowed(self):
        # The paper stops at k = 6; the model may extrapolate.
        assert weak_scaling_curve([7], EDISON)[0].n_procs == 24 * 7**4

    def test_unknown_algorithm(self):
        pt = weak_scaling_curve([1], EDISON)[0]
        with pytest.raises(ValueError):
            pt.gflops_per_core("cp-als")
