"""Algorithm-level cost model tests (paper Sec. VI)."""

import pytest

from repro.perfmodel import (
    AlgorithmCost,
    hooi_iteration_cost,
    sthosvd_cost,
    sthosvd_memory_bound,
)
from repro.perfmodel.machine import EDISON, UNIT
from repro.util.validation import prod


class TestSthosvdCost:
    def test_one_step_per_kernel_per_mode(self):
        c = sthosvd_cost((8, 8, 8), (2, 2, 2), (1, 1, 1), UNIT)
        kernels = [k for k, _, _ in c.steps]
        assert kernels == ["gram", "evecs", "ttm"] * 3

    def test_flops_independent_of_grid(self):
        # The grid changes communication, never flops (Sec. VIII-B).
        a = sthosvd_cost((16, 16, 16), (4, 4, 4), (1, 1, 8), UNIT)
        b = sthosvd_cost((16, 16, 16), (4, 4, 4), (2, 2, 2), UNIT)
        assert a.flops * prod((1, 1, 8)) == pytest.approx(b.flops * 8)

    def test_working_tensor_shrinks(self):
        # The first Gram dominates: it sees the full tensor; later modes see
        # truncated ones (factor I/R smaller each step).
        c = sthosvd_cost((100, 100), (10, 10), (1, 1), UNIT)
        gram_steps = [s for s in c.steps if s[0] == "gram"]
        assert gram_steps[0][2].flops > 5 * gram_steps[1][2].flops

    def test_first_gram_vs_first_ttm_ratio(self):
        # Sec. VIII-B: the first Gram is more expensive than the first TTM
        # by a factor of ~ I1/R1 in flops.
        shape, ranks = (384,) * 4, (96,) * 4
        c = sthosvd_cost(shape, ranks, (1, 1, 16, 24), EDISON)
        first_gram = next(s[2] for s in c.steps if s[0] == "gram")
        first_ttm = next(s[2] for s in c.steps if s[0] == "ttm")
        assert first_gram.flops / first_ttm.flops == pytest.approx(
            shape[0] / ranks[0]
        )

    def test_mode_order_changes_cost(self):
        # On the calibrated machine (which models the skinny-GEMM penalty of
        # starting with the small mode), processing the highest-compression
        # mode first wins — the paper's Fig. 8b observation.  On an ideal
        # machine the pure flop count can prefer the small mode first.
        from repro.perfmodel import EDISON_CALIBRATED

        shape, ranks = (25, 250, 250, 250), (10, 10, 100, 100)
        natural = sthosvd_cost(shape, ranks, (2, 2, 2, 2), EDISON_CALIBRATED)
        best = sthosvd_cost(shape, ranks, (2, 2, 2, 2), EDISON_CALIBRATED,
                            mode_order=(1, 0, 2, 3))
        assert best.time < natural.time

    def test_invalid_order(self):
        with pytest.raises(ValueError, match="permutation"):
            sthosvd_cost((8, 8), (2, 2), (1, 1), UNIT, mode_order=(0, 0))

    def test_rank_exceeds_dim(self):
        with pytest.raises(ValueError):
            sthosvd_cost((8, 8), (9, 2), (1, 1), UNIT)


class TestHooiIterationCost:
    def test_ttm_count_per_iteration(self):
        # N(N-1) TTMs in the inner loops plus one final core TTM.
        n = 4
        c = hooi_iteration_cost((16,) * n, (4,) * n, (1,) * n, UNIT)
        ttm_steps = [s for s in c.steps if s[0] == "ttm"]
        assert len(ttm_steps) == n * (n - 1) + 1

    def test_gram_and_evecs_once_per_mode(self):
        c = hooi_iteration_cost((16,) * 3, (4,) * 3, (1,) * 3, UNIT)
        assert len([s for s in c.steps if s[0] == "gram"]) == 3
        assert len([s for s in c.steps if s[0] == "evecs"]) == 3

    def test_ttm_order_option(self):
        inc = hooi_iteration_cost((8, 16, 32), (2, 2, 2), (1, 1, 1), UNIT)
        dec = hooi_iteration_cost(
            (8, 16, 32), (2, 2, 2), (1, 1, 1), UNIT, ttm_order="decreasing"
        )
        # Different chain orders give different costs in general.
        assert inc.time != dec.time

    def test_unknown_ttm_order(self):
        with pytest.raises(ValueError):
            hooi_iteration_cost((8, 8), (2, 2), (1, 1), UNIT, ttm_order="random")

    def test_algorithm_cost_addition(self):
        a = sthosvd_cost((8, 8), (2, 2), (1, 1), UNIT)
        b = hooi_iteration_cost((8, 8), (2, 2), (1, 1), UNIT)
        combined = a + b
        assert combined.time == pytest.approx(a.time + b.time)
        assert len(combined.steps) == len(a.steps) + len(b.steps)


class TestMemoryBound:
    def test_eq2_formula(self):
        # 2 I/P + sum Rn In / Pn + max In^2 + max Rn In.
        shape, ranks, grid = (8, 10), (2, 3), (2, 1)
        expected = (
            2 * 80 / 2 + (2 * 8 / 2 + 3 * 10 / 1) + 100 + 30
        )
        assert sthosvd_memory_bound(shape, ranks, grid) == pytest.approx(expected)

    def test_paper_claim_three_times_data(self):
        # "given adequate memory, e.g., three times the size of the data":
        # for typical compression the bound is < 3 I/P.
        shape, ranks, grid = (200,) * 4, (20,) * 4, (1, 1, 4, 6)
        bound = sthosvd_memory_bound(shape, ranks, grid)
        data = prod(shape) / prod(grid)
        assert bound < 3 * data
