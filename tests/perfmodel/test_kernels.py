"""Kernel-cost formula tests (paper Sec. V)."""

import math

import pytest

from repro.perfmodel import (
    KernelCost,
    evecs_cost,
    evecs_memory,
    gram_cost,
    gram_memory,
    ttm_cost,
    ttm_memory,
)
from repro.perfmodel.machine import UNIT


class TestKernelCost:
    def test_time_is_sum_of_components(self):
        c = KernelCost(flop_time=1, bw_time=2, lat_time=3)
        assert c.time == 6

    def test_addition_accumulates(self):
        a = KernelCost(flop_time=1, flops=10, memory_words=100)
        b = KernelCost(flop_time=2, flops=20, memory_words=50)
        c = a + b
        assert c.flop_time == 3
        assert c.flops == 30
        assert c.memory_words == 100  # max, not sum

    def test_scaled(self):
        c = KernelCost(flop_time=1, bw_time=1, flops=5).scaled(3)
        assert c.flop_time == 3 and c.flops == 15


class TestTtmCost:
    def test_flops_formula(self):
        # 2 J K / P per processor.
        c = ttm_cost((8, 8, 8), 0, 4, (2, 2, 2), UNIT)
        assert c.flops == pytest.approx(2 * 512 * 4 / 8)

    def test_no_comm_when_pn_one(self):
        c = ttm_cost((8, 8), 0, 4, (1, 4), UNIT)
        assert c.bw_time == 0
        assert c.lat_time == 0

    def test_bandwidth_formula(self):
        # beta (Pn - 1) Jhat K / P with unit beta.
        c = ttm_cost((8, 8), 0, 4, (4, 2), UNIT)
        assert c.bw_time == pytest.approx((4 - 1) * 8 * 4 / 8)

    def test_latency_formula(self):
        c = ttm_cost((8, 8), 0, 4, (4, 1), UNIT)
        assert c.lat_time == pytest.approx(4 * math.log2(4))

    def test_memory_matches_m_ttm(self):
        assert ttm_cost((8, 8), 0, 4, (2, 2), UNIT).memory_words == pytest.approx(
            ttm_memory((8, 8), 0, 4, (2, 2))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ttm_cost((8, 8), 0, 0, (2, 2), UNIT)
        with pytest.raises(ValueError):
            ttm_cost((8, 8), 0, 4, (2,), UNIT)


class TestGramCost:
    def test_flops_formula(self):
        # 2 Jn J / P.
        c = gram_cost((8, 8, 8), 1, (2, 2, 2), UNIT)
        assert c.flops == pytest.approx(2 * 8 * 512 / 8)

    def test_ring_cost(self):
        # 2 (Pn-1) (alpha + beta J/P): ring send+recv per iteration.
        c = gram_cost((8, 8), 0, (4, 1), UNIT)
        ring = 2 * 3 * (1 + 64 / 4)
        # all-reduce over Phat=1 is free.
        assert c.bw_time + c.lat_time == pytest.approx(ring)

    def test_allreduce_cost_when_pn_one(self):
        # Only the all-reduce across P procs: 2 alpha log P + 2 beta (P-1) Jn^2 / P.
        c = gram_cost((8, 8), 0, (1, 4), UNIT)
        expected = 2 * math.log2(4) + 2 * 3 * 64 / 4
        assert c.bw_time + c.lat_time == pytest.approx(expected)

    def test_memory_matches_m_gram(self):
        assert gram_cost((8, 8), 0, (2, 2), UNIT).memory_words == pytest.approx(
            gram_memory((8, 8), 0, (2, 2))
        )


class TestEvecsCost:
    def test_flops_are_paper_constant(self):
        c = evecs_cost(6, 3, 2, UNIT)
        assert c.flop_time == pytest.approx(10 / 3 * 216)

    def test_allgather_term(self):
        c = evecs_cost(8, 4, 4, UNIT)
        assert c.lat_time == pytest.approx(math.log2(4))
        assert c.bw_time == pytest.approx(3 / 4 * 64)

    def test_no_comm_single_proc(self):
        c = evecs_cost(8, 4, 1, UNIT)
        assert c.bw_time == 0 and c.lat_time == 0

    def test_memory(self):
        assert evecs_cost(8, 4, 2, UNIT).memory_words == pytest.approx(
            evecs_memory(8, 4, 2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            evecs_cost(0, 1, 1, UNIT)
