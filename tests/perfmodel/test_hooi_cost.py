"""Tests for the composed HOOI cost model."""

import pytest

from repro.perfmodel import (
    hooi_cost,
    hooi_iteration_cost,
    sthosvd_cost,
)
from repro.perfmodel.machine import UNIT


class TestHooiCost:
    def test_composition(self):
        shape, ranks, grid = (16,) * 3, (4,) * 3, (1, 2, 2)
        init = sthosvd_cost(shape, ranks, grid, UNIT)
        per_iter = hooi_iteration_cost(shape, ranks, grid, UNIT)
        total = hooi_cost(shape, ranks, grid, UNIT, n_iterations=3)
        assert total.time == pytest.approx(init.time + 3 * per_iter.time)
        assert total.flops == pytest.approx(init.flops + 3 * per_iter.flops)

    def test_without_init(self):
        shape, ranks, grid = (16,) * 3, (4,) * 3, (1, 1, 4)
        per_iter = hooi_iteration_cost(shape, ranks, grid, UNIT)
        total = hooi_cost(
            shape, ranks, grid, UNIT, n_iterations=2, include_init=False
        )
        assert total.time == pytest.approx(2 * per_iter.time)

    def test_zero_iterations_is_init_only(self):
        shape, ranks, grid = (8,) * 2, (2,) * 2, (1, 2)
        init = sthosvd_cost(shape, ranks, grid, UNIT)
        total = hooi_cost(shape, ranks, grid, UNIT, n_iterations=0)
        assert total.time == pytest.approx(init.time)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            hooi_cost((8, 8), (2, 2), (1, 1), UNIT, n_iterations=-1)

    def test_step_counts(self):
        n = 3
        total = hooi_cost((8,) * n, (2,) * n, (1,) * n, UNIT, n_iterations=2)
        # init: 3 kernels per mode; each iteration: N(N-1)+1 ttm + N gram +
        # N evecs.
        init_steps = 3 * n
        iter_steps = n * (n - 1) + 1 + 2 * n
        assert len(total.steps) == init_steps + 2 * iter_steps
