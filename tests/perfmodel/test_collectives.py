"""Table I cost-formula tests."""

import math

import pytest

from repro.perfmodel import (
    allgather_cost,
    allreduce_cost,
    bcast_cost,
    reduce_cost,
    reduce_scatter_cost,
    send_recv_cost,
)
from repro.perfmodel.machine import UNIT, MachineSpec


class TestFormulas:
    """On the unit machine the formulas reduce to simple arithmetic."""

    def test_send_recv(self):
        assert send_recv_cost(10, UNIT) == 11.0

    def test_allgather(self):
        # log2(8) + 7/8 * 16.
        assert allgather_cost(8, 16, UNIT) == pytest.approx(3 + 14)

    def test_reduce_drops_gamma_by_default(self):
        assert reduce_cost(4, 8, UNIT) == pytest.approx(2 + 6)

    def test_reduce_with_gamma(self):
        m = MachineSpec(alpha=1, beta=1, gamma=1, charge_reduce_flops=True)
        assert reduce_cost(4, 8, m) == pytest.approx(2 + 12)

    def test_allreduce(self):
        # 2 log2(4) + 2 * 3/4 * 8.
        assert allreduce_cost(4, 8, UNIT) == pytest.approx(4 + 12)

    def test_allreduce_with_gamma(self):
        m = MachineSpec(alpha=1, beta=1, gamma=1, charge_reduce_flops=True)
        assert allreduce_cost(4, 8, m) == pytest.approx(4 + 18)

    def test_reduce_scatter_matches_reduce(self):
        assert reduce_scatter_cost(8, 64, UNIT) == reduce_cost(8, 64, UNIT)

    def test_bcast(self):
        assert bcast_cost(8, 16, UNIT) == pytest.approx(3 + 14)


class TestEdgeCases:
    @pytest.mark.parametrize(
        "fn",
        [allgather_cost, reduce_cost, allreduce_cost, reduce_scatter_cost, bcast_cost],
    )
    def test_single_rank_free(self, fn):
        assert fn(1, 1000, UNIT) == 0.0

    def test_zero_words_latency_only(self):
        assert allreduce_cost(4, 0, UNIT) == pytest.approx(2 * math.log2(4))

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            send_recv_cost(-1, UNIT)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            allgather_cost(0, 10, UNIT)

    def test_scaling_with_p(self):
        # Bandwidth term saturates at W; latency grows with log P.
        small = allgather_cost(2, 100, UNIT)
        large = allgather_cost(1024, 100, UNIT)
        assert large > small
        assert large < math.log2(1024) + 100 + 1
