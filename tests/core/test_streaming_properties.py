"""Property-based tests for the streaming compressor.

The central guarantee — final error <= tol regardless of how the time axis
is chopped into slabs — must hold for arbitrary partitions, tolerances, and
data, including rank growth mid-stream.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import normalized_rms
from repro.core.streaming import StreamingTucker
from repro.tensor import low_rank_tensor
from repro.util.seeding import rng_for


@st.composite
def partitions(draw):
    """A random chop of n_steps into positive chunks."""
    n_steps = draw(st.integers(4, 16))
    chunks = []
    remaining = n_steps
    while remaining > 0:
        c = draw(st.integers(1, remaining))
        chunks.append(c)
        remaining -= c
    return n_steps, chunks


@given(
    part=partitions(),
    seed=st.integers(0, 2**16),
    tol=st.sampled_from([0.3, 0.1, 0.02]),
)
@settings(max_examples=25, deadline=None)
def test_error_budget_for_any_partition(part, seed, tol):
    n_steps, chunks = part
    x = low_rank_tensor(
        (7, 6, n_steps), (3, 3, min(4, n_steps)), seed=seed, noise=0.01
    )
    streamer = StreamingTucker((7, 6), tol=tol)
    t0 = 0
    for c in chunks:
        streamer.update(x[..., t0 : t0 + c])
        t0 += c
    t = streamer.finalize()
    assert t.shape == x.shape
    assert normalized_rms(x, t.reconstruct()) <= tol * (1 + 1e-9)


@given(part=partitions(), seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_rank_growth_triggered_by_new_content(part, seed):
    # Data whose second half lives in a different subspace must grow the
    # bases when the new content arrives.
    n_steps, chunks = part
    rng = rng_for(seed, "stream-grow")
    first = low_rank_tensor((8, 6, n_steps), (2, 2, min(3, n_steps)), seed=seed)
    second = low_rank_tensor(
        (8, 6, n_steps), (5, 4, min(3, n_steps)), seed=seed + 1
    )
    x = np.concatenate([first, second], axis=-1)
    streamer = StreamingTucker((8, 6), tol=1e-3)
    streamer.update(first)
    ranks_before = streamer.current_ranks
    streamer.update(second)
    ranks_after = streamer.current_ranks
    assert all(b >= a for a, b in zip(ranks_before, ranks_after))
    t = streamer.finalize()
    assert normalized_rms(x, t.reconstruct()) <= 1e-3
