"""Tests for decomposition validation (repro.core.diagnostics)."""

import numpy as np
import pytest

from repro.core import sthosvd
from repro.core.diagnostics import check_orthonormal, validate_tucker
from repro.core.tucker import TuckerTensor
from repro.tensor import low_rank_tensor, random_factor, random_tensor


def _good(seed=0):
    x = low_rank_tensor((8, 7, 6), (3, 3, 2), seed=seed, noise=0.02)
    return x, sthosvd(x, ranks=(3, 3, 2)).decomposition


class TestCheckOrthonormal:
    def test_zero_for_orthonormal(self):
        assert check_orthonormal(random_factor(8, 3, seed=1)) < 1e-12

    def test_large_for_scaled(self):
        assert check_orthonormal(2 * random_factor(8, 3, seed=1)) > 1.0

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            check_orthonormal(np.zeros(4))


class TestValidateTucker:
    def test_clean_decomposition_passes(self):
        x, t = _good()
        report = validate_tucker(t, x)
        assert report.ok
        assert max(report.orthonormality_errors) < 1e-10
        assert report.core_residual < 1e-10
        assert report.norm_identity_gap < 1e-10
        assert report.relative_error == pytest.approx(
            t.relative_error(x), rel=1e-9
        )

    def test_without_reference_tensor(self):
        _, t = _good()
        report = validate_tucker(t)
        assert report.ok
        assert report.core_residual is None
        assert report.relative_error is None

    def test_detects_bad_factor(self):
        x, t = _good()
        factors = list(t.factors)
        factors[0] = factors[0] * 1.5  # break orthonormality
        broken = TuckerTensor(core=t.core, factors=tuple(factors))
        report = validate_tucker(broken, x)
        assert not report.ok
        assert any("orthonormality" in i for i in report.issues)

    def test_detects_wrong_core(self):
        x, t = _good()
        wrong = TuckerTensor(
            core=t.core + 0.1 * random_tensor(t.ranks, seed=2),
            factors=t.factors,
        )
        report = validate_tucker(wrong, x)
        assert not report.ok
        assert any("optimal projection" in i for i in report.issues)

    def test_shape_mismatch(self):
        _, t = _good()
        with pytest.raises(ValueError, match="does not match"):
            validate_tucker(t, np.zeros((2, 2, 2)))

    def test_zero_tensor_rejected(self):
        _, t = _good()
        with pytest.raises(ValueError, match="zero tensor"):
            validate_tucker(t, np.zeros(t.shape))

    def test_rejects_non_tucker(self):
        with pytest.raises(TypeError):
            validate_tucker(np.zeros((2, 2)))
