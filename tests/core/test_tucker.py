"""TuckerTensor object tests: reconstruction, subtensors, accounting."""

import numpy as np
import pytest

from repro.core import TuckerTensor
from repro.tensor import multi_ttm, random_factor, random_tensor


def _random_tucker(shape=(6, 7, 8), ranks=(2, 3, 4), seed=0):
    core = random_tensor(ranks, seed=seed)
    factors = tuple(
        random_factor(s, r, seed=seed + n) for n, (s, r) in enumerate(zip(shape, ranks))
    )
    return TuckerTensor(core=core, factors=factors)


class TestConstruction:
    def test_shapes_and_ranks(self):
        t = _random_tucker()
        assert t.shape == (6, 7, 8)
        assert t.ranks == (2, 3, 4)
        assert t.order == 3

    def test_factor_count_mismatch(self):
        with pytest.raises(ValueError, match="factors"):
            TuckerTensor(core=np.zeros((2, 2)), factors=(np.zeros((4, 2)),))

    def test_factor_column_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            TuckerTensor(
                core=np.zeros((2, 3)),
                factors=(np.zeros((4, 2)), np.zeros((5, 2))),
            )

    def test_factor_must_be_matrix(self):
        with pytest.raises(ValueError, match="matrix"):
            TuckerTensor(core=np.zeros((2,)), factors=(np.zeros(2),))


class TestReconstruction:
    def test_matches_multi_ttm(self):
        t = _random_tucker()
        expected = multi_ttm(t.core, list(t.factors), transpose=False)
        np.testing.assert_allclose(t.reconstruct(), expected, atol=1e-12)

    def test_subtensor_matches_full(self):
        t = _random_tucker()
        full = t.reconstruct()
        sub = t.reconstruct_subtensor([slice(1, 4), None, slice(2, 6)])
        np.testing.assert_allclose(sub, full[1:4, :, 2:6], atol=1e-12)

    def test_subtensor_integer_index(self):
        t = _random_tucker()
        full = t.reconstruct()
        sub = t.reconstruct_subtensor([2, None, None])
        np.testing.assert_allclose(sub[0], full[2], atol=1e-12)

    def test_subtensor_negative_integer(self):
        t = _random_tucker()
        full = t.reconstruct()
        sub = t.reconstruct_subtensor([-1, None, None])
        np.testing.assert_allclose(sub[0], full[-1], atol=1e-12)

    def test_subtensor_fancy_index(self):
        t = _random_tucker()
        full = t.reconstruct()
        sub = t.reconstruct_subtensor([[0, 2, 5], None, None])
        np.testing.assert_allclose(sub, full[[0, 2, 5]], atol=1e-12)

    def test_subtensor_strided(self):
        t = _random_tucker()
        full = t.reconstruct()
        sub = t.reconstruct_subtensor([None, slice(0, None, 2), None])
        np.testing.assert_allclose(sub, full[:, ::2, :], atol=1e-12)

    def test_subtensor_wrong_count(self):
        with pytest.raises(ValueError, match="one index per mode"):
            _random_tucker().reconstruct_subtensor([None])

    def test_subtensor_empty_selection(self):
        with pytest.raises(ValueError, match="empty"):
            _random_tucker().reconstruct_subtensor([slice(0, 0), None, None])

    def test_subtensor_index_out_of_range(self):
        with pytest.raises(IndexError):
            _random_tucker().reconstruct_subtensor([99, None, None])


class TestNormsAndErrors:
    def test_core_norm_equals_reconstruction_norm(self):
        # Orthonormal factors preserve norms.
        t = _random_tucker()
        assert t.core_norm() == pytest.approx(
            np.linalg.norm(t.reconstruct().ravel())
        )

    def test_relative_error_zero_for_exact(self):
        t = _random_tucker()
        x = t.reconstruct()
        assert t.relative_error(x) < 1e-12

    def test_relative_error_shape_check(self):
        with pytest.raises(ValueError, match="does not match"):
            _random_tucker().relative_error(np.zeros((2, 2, 2)))

    def test_relative_error_zero_tensor(self):
        with pytest.raises(ValueError, match="zero tensor"):
            _random_tucker().relative_error(np.zeros((6, 7, 8)))

    def test_residual_norm_sq_identity(self):
        # ||X - X~||^2 = ||X||^2 - ||G||^2 when G is the optimal core.
        t = _random_tucker()
        x = t.reconstruct() + 0.0
        # Add a component orthogonal to the factor subspaces.
        assert t.residual_norm_sq(t.core_norm() ** 2) == pytest.approx(0.0)


class TestCompressionAccounting:
    def test_storage_words(self):
        t = _random_tucker(shape=(6, 7, 8), ranks=(2, 3, 4))
        assert t.storage_words == 2 * 3 * 4 + 6 * 2 + 7 * 3 + 8 * 4

    def test_compression_ratio_formula(self):
        t = _random_tucker(shape=(6, 7, 8), ranks=(2, 3, 4))
        assert t.compression_ratio == pytest.approx(
            (6 * 7 * 8) / (24 + 12 + 21 + 32)
        )
