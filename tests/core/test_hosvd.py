"""T-HOSVD baseline tests (paper Sec. II-B)."""

import numpy as np
import pytest

from repro.core import hosvd, sthosvd
from repro.tensor import low_rank_tensor, random_tensor


class TestHosvd:
    def test_recovers_exact_low_rank(self):
        # tol above sqrt(machine eps): Gram tails below that are roundoff.
        x = low_rank_tensor((8, 9, 10), (2, 3, 4), seed=1)
        res = hosvd(x, tol=1e-6)
        assert res.ranks == (2, 3, 4)
        assert res.decomposition.relative_error(x) < 1e-6

    def test_error_bound_holds(self):
        # eq. (3): true error <= sqrt(sum of truncated tails) <= eps.
        x = low_rank_tensor((10, 11, 12), (5, 5, 5), seed=2, noise=0.2)
        res = hosvd(x, tol=0.05)
        true_err = res.decomposition.relative_error(x)
        assert true_err <= res.error_estimate() + 1e-12
        assert true_err <= 0.05

    def test_sthosvd_error_not_worse_than_bound(self):
        # ST-HOSVD satisfies the same eps guarantee as T-HOSVD.
        x = low_rank_tensor((10, 11, 12), (5, 5, 5), seed=3, noise=0.2)
        tv = hosvd(x, tol=0.05)
        st = sthosvd(x, tol=0.05)
        assert st.decomposition.relative_error(x) <= 0.05
        assert tv.decomposition.relative_error(x) <= 0.05

    def test_eigenvalues_are_of_original_tensor(self):
        # T-HOSVD spectra come from X itself in every mode (unlike ST-HOSVD,
        # whose later modes see the shrunken tensor).
        from repro.tensor import gram
        from repro.tensor.eig import eigendecompose

        x = random_tensor((6, 7, 8), seed=4)
        res = hosvd(x, ranks=(3, 3, 3))
        for n in range(3):
            expected = eigendecompose(gram(x, n)).values
            np.testing.assert_allclose(res.eigenvalues[n], expected, atol=1e-10)

    def test_prescribed_ranks(self):
        x = random_tensor((6, 7, 8), seed=5)
        res = hosvd(x, ranks=(2, 3, 4))
        assert res.ranks == (2, 3, 4)

    def test_factors_orthonormal(self):
        x = random_tensor((6, 7), seed=6)
        res = hosvd(x, ranks=(3, 3))
        for f in res.decomposition.factors:
            np.testing.assert_allclose(f.T @ f, np.eye(3), atol=1e-10)

    def test_validation(self):
        x = random_tensor((4, 5), seed=0)
        with pytest.raises(ValueError, match="exactly one"):
            hosvd(x)
        with pytest.raises(ValueError):
            hosvd(x, tol=-1.0)
        with pytest.raises(ValueError):
            hosvd(x, ranks=(9, 2))

    def test_sthosvd_at_least_as_accurate_for_same_ranks(self):
        # With equal ranks, ST-HOSVD error <= T-HOSVD error on typical data
        # is not guaranteed, but both must be within the combined tail bound.
        x = low_rank_tensor((10, 10, 10), (4, 4, 4), seed=7, noise=0.3)
        ranks = (3, 3, 3)
        tv = hosvd(x, ranks=ranks)
        st = sthosvd(x, ranks=ranks)
        bound = tv.error_estimate()
        assert st.decomposition.relative_error(x) <= bound + 1e-12
        assert tv.decomposition.relative_error(x) <= bound + 1e-12
