"""Property-based tests for the core Tucker algorithms.

Invariants checked on random shapes/data:

* ST-HOSVD with tol=eps always satisfies the eq. (3) error guarantee.
* The ST-HOSVD error estimate (eigenvalue tails) equals the true error.
* HOOI's fit history is monotone nonincreasing.
* Compression ratio accounting is consistent between the formula and the
  TuckerTensor object.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import compression_ratio, hooi, sthosvd
from repro.tensor import low_rank_tensor
from repro.util.seeding import rng_for

orders = st.integers(2, 3)


@st.composite
def problems(draw):
    order = draw(orders)
    shape = tuple(draw(st.integers(4, 8)) for _ in range(order))
    ranks = tuple(draw(st.integers(1, s - 1)) for s in shape)
    seed = draw(st.integers(0, 2**16))
    noise = draw(st.sampled_from([0.0, 0.01, 0.2]))
    return shape, ranks, seed, noise


@given(problem=problems(), eps=st.sampled_from([0.5, 0.1, 0.02]))
@settings(max_examples=30, deadline=None)
def test_sthosvd_error_guarantee(problem, eps):
    shape, ranks, seed, noise = problem
    x = low_rank_tensor(shape, ranks, seed=seed, noise=noise)
    res = sthosvd(x, tol=eps)
    assert res.decomposition.relative_error(x) <= eps * (1 + 1e-9)


@given(problem=problems())
@settings(max_examples=30, deadline=None)
def test_sthosvd_estimate_is_exact(problem):
    shape, ranks, seed, noise = problem
    x = low_rank_tensor(shape, ranks, seed=seed, noise=noise)
    res = sthosvd(x, tol=0.1)
    true_err = res.decomposition.relative_error(x)
    # Tight agreement except at the double-precision Gram floor (~1e-7).
    assert abs(res.error_estimate() - true_err) <= 1e-6 + 1e-4 * true_err


@given(problem=problems())
@settings(max_examples=20, deadline=None)
def test_hooi_monotone(problem):
    shape, ranks, seed, noise = problem
    x = low_rank_tensor(shape, ranks, seed=seed, noise=noise)
    target = tuple(max(1, r - 1) for r in ranks)
    res = hooi(x, ranks=target, max_iterations=4, improvement_tol=0.0)
    h = np.array(res.residual_history)
    # Monotone up to roundoff in ||X||^2 (residuals are differences of
    # squared norms, so their noise floor is ~eps * ||X||^2).
    x_norm_sq = float(np.linalg.norm(x.ravel()) ** 2)
    assert np.all(np.diff(h) <= 1e-9 * h[0] + 1e-12 * x_norm_sq)


@given(problem=problems())
@settings(max_examples=30, deadline=None)
def test_compression_accounting_consistent(problem):
    shape, ranks, seed, noise = problem
    x = low_rank_tensor(shape, ranks, seed=seed, noise=noise)
    res = sthosvd(x, ranks=ranks)
    t = res.decomposition
    assert t.compression_ratio == compression_ratio(t.shape, t.ranks)


@given(problem=problems())
@settings(max_examples=20, deadline=None)
def test_subtensor_agrees_with_full_reconstruction(problem):
    shape, ranks, seed, noise = problem
    x = low_rank_tensor(shape, ranks, seed=seed, noise=noise)
    t = sthosvd(x, ranks=ranks).decomposition
    full = t.reconstruct()
    spec = [slice(0, max(1, s // 2)) for s in shape]
    sub = t.reconstruct_subtensor(spec)
    np.testing.assert_allclose(sub, full[tuple(spec)], atol=1e-9)
