"""Error-metric tests (normalized RMS, mode-wise curves, eq. 3 bound)."""

import numpy as np
import pytest

from repro.core import (
    compression_ratio,
    error_bound,
    max_abs_error,
    modewise_error_curves,
    normalized_rms,
    sthosvd,
)
from repro.core.errors import mode_eigenvalues
from repro.tensor import low_rank_tensor, random_tensor


class TestNormalizedRms:
    def test_zero_for_identical(self, rng):
        x = rng.standard_normal((4, 5))
        assert normalized_rms(x, x) == 0.0

    def test_scale_invariant(self, rng):
        x = rng.standard_normal((4, 5))
        y = x + 0.01 * rng.standard_normal((4, 5))
        assert normalized_rms(10 * x, 10 * y) == pytest.approx(
            normalized_rms(x, y)
        )

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            normalized_rms(rng.standard_normal((2, 2)), rng.standard_normal((3,)))

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalized_rms(np.zeros((3, 3)), np.ones((3, 3)))


class TestMaxAbsError:
    def test_locates_max(self, rng):
        x = rng.standard_normal((4, 5))
        y = x.copy()
        y[2, 3] += 7.0
        assert max_abs_error(x, y) == pytest.approx(7.0)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros((2,)), np.zeros((3,)))


class TestModewiseCurves:
    def test_monotone_decreasing(self):
        x = low_rank_tensor((8, 9, 10), (4, 4, 4), seed=1, noise=0.1)
        for curve in modewise_error_curves(x):
            assert np.all(np.diff(curve) <= 1e-12)

    def test_endpoints(self):
        x = random_tensor((6, 7), seed=2)
        curves = modewise_error_curves(x)
        for n, curve in enumerate(curves):
            assert curve.shape == (x.shape[n] + 1,)
            # Rank 0 discards everything: error = 1; full rank: error = 0.
            assert curve[0] == pytest.approx(1.0)
            assert curve[-1] == pytest.approx(0.0, abs=1e-8)

    def test_accepts_precomputed_eigenvalues(self):
        x = random_tensor((5, 6), seed=3)
        eigs = mode_eigenvalues(x)
        a = modewise_error_curves(x)
        b = modewise_error_curves(x, eigenvalues=eigs)
        for ca, cb in zip(a, b):
            np.testing.assert_allclose(ca, cb)

    def test_low_rank_mode_drops_at_rank(self):
        x = low_rank_tensor((10, 10), (3, 7), seed=4)
        curves = modewise_error_curves(x)
        assert curves[0][3] < 1e-7  # mode 0 is exactly rank 3

    def test_zero_tensor_rejected(self):
        with pytest.raises(ValueError):
            modewise_error_curves(np.zeros((3, 3)))


class TestErrorBound:
    def test_bounds_true_sthosvd_error(self):
        x = low_rank_tensor((10, 11, 12), (5, 5, 5), seed=5, noise=0.2)
        eigs = mode_eigenvalues(x)
        ranks = (4, 4, 4)
        res = sthosvd(x, ranks=ranks)
        bound = error_bound(eigs, ranks, float(np.linalg.norm(x.ravel())))
        assert res.decomposition.relative_error(x) <= bound + 1e-12

    def test_zero_at_full_rank(self):
        x = random_tensor((5, 6), seed=6)
        eigs = mode_eigenvalues(x)
        bound = error_bound(eigs, (5, 6), float(np.linalg.norm(x.ravel())))
        assert bound == pytest.approx(0.0, abs=1e-7)

    def test_validation(self):
        x = random_tensor((5, 6), seed=7)
        eigs = mode_eigenvalues(x)
        with pytest.raises(ValueError):
            error_bound(eigs, (5,), 1.0)
        with pytest.raises(ValueError):
            error_bound(eigs, (5, 7), 1.0)
        with pytest.raises(ValueError):
            error_bound(eigs, (5, 6), 0.0)


class TestCompressionRatio:
    def test_paper_formula(self):
        # C = prod(I) / (prod(R) + sum I_n R_n).
        assert compression_ratio((10, 10), (2, 2)) == pytest.approx(
            100 / (4 + 20 + 20)
        )

    def test_no_compression_at_full_rank_is_below_one(self):
        # Storing core + factors at full rank costs more than the data.
        assert compression_ratio((8, 8), (8, 8)) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            compression_ratio((4, 4), (5, 2))
        with pytest.raises(ValueError):
            compression_ratio((4, 4), (2,))
