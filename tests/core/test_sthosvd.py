"""ST-HOSVD tests (Alg. 1): exact recovery, error control, orderings."""

import numpy as np
import pytest

from repro.core import greedy_flops_order, greedy_ratio_order, sthosvd
from repro.tensor import low_rank_tensor, random_tensor


class TestExactRecovery:
    def test_recovers_exact_low_rank(self):
        # tol must stay above sqrt(machine eps): the Gram method cannot
        # resolve smaller tails (the paper's working assumption, Sec. II-B).
        x = low_rank_tensor((8, 9, 10), (2, 3, 4), seed=1)
        res = sthosvd(x, tol=1e-6)
        assert res.ranks == (2, 3, 4)
        assert res.decomposition.relative_error(x) < 1e-6

    def test_prescribed_ranks(self):
        x = low_rank_tensor((8, 9, 10), (2, 3, 4), seed=1)
        res = sthosvd(x, ranks=(2, 3, 4))
        assert res.decomposition.relative_error(x) < 1e-10

    def test_full_ranks_reproduce_input(self, rng):
        x = rng.standard_normal((5, 6, 7))
        res = sthosvd(x, ranks=(5, 6, 7))
        np.testing.assert_allclose(res.decomposition.reconstruct(), x, atol=1e-9)

    def test_order_one_tensor(self, rng):
        x = rng.standard_normal(10)
        res = sthosvd(x, ranks=(1,))
        assert res.decomposition.reconstruct().shape == (10,)


class TestErrorControl:
    @pytest.mark.parametrize("eps", [1e-1, 1e-2, 1e-3])
    def test_error_below_tolerance(self, eps):
        x = low_rank_tensor((10, 11, 12), (5, 5, 5), seed=2, noise=0.3)
        res = sthosvd(x, tol=eps)
        assert res.decomposition.relative_error(x) <= eps

    def test_error_estimate_matches_true_error(self):
        # For ST-HOSVD the eigenvalue-tail estimate is exact (ref [22]).
        x = low_rank_tensor((10, 11, 12), (5, 5, 5), seed=3, noise=0.1)
        res = sthosvd(x, tol=1e-2)
        true_err = res.decomposition.relative_error(x)
        assert res.error_estimate() == pytest.approx(true_err, rel=1e-6)

    def test_tighter_tol_higher_ranks(self):
        x = low_rank_tensor((10, 11, 12), (4, 4, 4), seed=4, noise=0.2)
        loose = sthosvd(x, tol=1e-1)
        tight = sthosvd(x, tol=1e-3)
        assert all(t >= l for t, l in zip(tight.ranks, loose.ranks))

    def test_factors_orthonormal(self):
        x = random_tensor((6, 7, 8), seed=5)
        res = sthosvd(x, tol=1e-1)
        for f in res.decomposition.factors:
            np.testing.assert_allclose(f.T @ f, np.eye(f.shape[1]), atol=1e-10)

    def test_core_is_projection(self):
        # G = X x {U^T} for the returned factors.
        from repro.tensor import multi_ttm

        x = random_tensor((6, 7, 8), seed=6)
        res = sthosvd(x, ranks=(3, 3, 3))
        expected = multi_ttm(x, list(res.decomposition.factors), transpose=True)
        np.testing.assert_allclose(res.decomposition.core, expected, atol=1e-10)


class TestModeOrders:
    def test_any_order_same_error_scale(self):
        x = low_rank_tensor((8, 9, 10), (3, 3, 3), seed=7, noise=0.05)
        errs = []
        for order in [(0, 1, 2), (2, 1, 0), (1, 0, 2)]:
            res = sthosvd(x, ranks=(3, 3, 3), mode_order=order)
            errs.append(res.decomposition.relative_error(x))
            assert res.mode_order == order
        assert max(errs) - min(errs) < 0.05

    def test_natural_order_string(self):
        x = random_tensor((4, 5), seed=8)
        res = sthosvd(x, ranks=(2, 2), mode_order="natural")
        assert res.mode_order == (0, 1)

    def test_invalid_order_string(self):
        with pytest.raises(ValueError, match="unknown mode_order"):
            sthosvd(random_tensor((4, 5), seed=0), ranks=(2, 2), mode_order="best")

    def test_invalid_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            sthosvd(random_tensor((4, 5), seed=0), ranks=(2, 2), mode_order=(0, 0))


class TestSvdMethod:
    def test_svd_matches_gram_on_benign_data(self):
        x = low_rank_tensor((8, 9, 10), (3, 3, 3), seed=9, noise=0.05)
        g = sthosvd(x, ranks=(3, 3, 3), method="gram")
        s = sthosvd(x, ranks=(3, 3, 3), method="svd")
        np.testing.assert_allclose(
            g.decomposition.reconstruct(), s.decomposition.reconstruct(), atol=1e-8
        )

    def test_svd_handles_tiny_tolerances(self):
        # Gram squares the condition number; SVD keeps ~1e-8-size tails
        # resolvable (the paper's Sec. IX improvement).
        x = low_rank_tensor((12, 12, 12), (3, 3, 3), seed=10, noise=1e-7)
        res = sthosvd(x, tol=1e-6, method="svd")
        assert res.ranks == (3, 3, 3)
        assert res.decomposition.relative_error(x) <= 1e-6

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            sthosvd(random_tensor((4, 4), seed=0), ranks=(2, 2), method="qr")


class TestValidation:
    def test_requires_exactly_one_selector(self):
        x = random_tensor((4, 5), seed=0)
        with pytest.raises(ValueError, match="exactly one"):
            sthosvd(x)
        with pytest.raises(ValueError, match="exactly one"):
            sthosvd(x, tol=0.1, ranks=(2, 2))

    def test_nonpositive_tol(self):
        with pytest.raises(ValueError):
            sthosvd(random_tensor((4, 5), seed=0), tol=0.0)

    def test_rank_exceeds_dim(self):
        with pytest.raises(ValueError, match="exceeds dimension"):
            sthosvd(random_tensor((4, 5), seed=0), ranks=(5, 5))

    def test_wrong_rank_count(self):
        with pytest.raises(ValueError):
            sthosvd(random_tensor((4, 5), seed=0), ranks=(2,))


class TestOrderingHeuristics:
    def test_greedy_ratio_sorts_by_compression(self):
        order = greedy_ratio_order((10, 100, 20), (5, 10, 10))
        # Ratios: 2, 10, 2 -> mode 1 first (smallest R/I), then ties by index.
        assert order[0] == 1

    def test_greedy_flops_prefers_cheap_first_step(self):
        # A small mode with big compression shrinks everything after it.
        order = greedy_flops_order((25, 250, 250, 250), (10, 10, 100, 100))
        assert order[0] in (0, 1)  # the two highest-compression modes

    def test_heuristics_return_permutations(self):
        for fn in (greedy_flops_order, greedy_ratio_order):
            order = fn((6, 7, 8), (2, 2, 2))
            assert sorted(order) == [0, 1, 2]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            greedy_flops_order((4, 5), (2,))
        with pytest.raises(ValueError):
            greedy_ratio_order((4, 5), (2,))
