"""Streaming ST-HOSVD tests (repro.core.streaming)."""

import numpy as np
import pytest

from repro.core import normalized_rms, sthosvd
from repro.core.streaming import StreamingTucker
from repro.data import hcci_proxy, center_and_scale
from repro.tensor import low_rank_tensor


def _stream(x, tol, chunk=4):
    spatial = x.shape[:-1]
    st = StreamingTucker(spatial, tol=tol)
    for t0 in range(0, x.shape[-1], chunk):
        st.update(x[..., t0 : t0 + chunk])
    return st


class TestErrorGuarantee:
    @pytest.mark.parametrize("tol", [0.2, 0.05, 0.01])
    def test_error_within_tolerance(self, tol):
        x = low_rank_tensor((10, 9, 24), (4, 4, 6), seed=90, noise=0.001)
        st = _stream(x, tol)
        t = st.finalize()
        assert normalized_rms(x, t.reconstruct()) <= tol

    def test_single_step_updates(self):
        x = low_rank_tensor((8, 8, 12), (3, 3, 4), seed=91, noise=0.001)
        st = _stream(x, tol=0.05, chunk=1)
        t = st.finalize()
        assert normalized_rms(x, t.reconstruct()) <= 0.05

    def test_one_big_slab_equals_batch_quality(self):
        x = low_rank_tensor((10, 9, 16), (3, 3, 4), seed=92, noise=0.01)
        st = _stream(x, tol=0.05, chunk=16)
        streamed = st.finalize()
        batch = sthosvd(x, tol=0.05).decomposition
        assert (
            normalized_rms(x, streamed.reconstruct())
            <= max(0.05, 2 * normalized_rms(x, batch.reconstruct()))
        )

    def test_combustion_proxy(self):
        ds = hcci_proxy(shape=(16, 16, 8, 20))
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        st = _stream(x, tol=1e-2, chunk=5)
        t = st.finalize()
        assert normalized_rms(x, t.reconstruct()) <= 1e-2


class TestRankBehaviour:
    def test_ranks_comparable_to_batch(self):
        x = low_rank_tensor((12, 10, 20), (4, 3, 5), seed=93, noise=0.001)
        st = _stream(x, tol=0.01)
        t = st.finalize()
        batch = sthosvd(x, tol=0.01)
        for rs, rb, dim in zip(t.ranks, batch.ranks, x.shape):
            assert rs <= min(dim, 3 * max(rb, 1))

    def test_bases_grow_monotonically(self):
        x = low_rank_tensor((10, 9, 24), (5, 4, 8), seed=94, noise=0.001)
        spatial = x.shape[:-1]
        st = StreamingTucker(spatial, tol=0.01)
        ranks_history = []
        for t0 in range(0, 24, 4):
            st.update(x[..., t0 : t0 + 4])
            ranks_history.append(st.current_ranks)
        for a, b in zip(ranks_history, ranks_history[1:]):
            assert all(rb >= ra for ra, rb in zip(a, b))

    def test_exact_low_rank_stays_at_true_rank(self):
        # Data exactly rank (3, 3) spatially: bases must not exceed it
        # (up to one extra direction from budget slack).
        x = low_rank_tensor((12, 10, 20), (3, 3, 20), seed=95)
        st = _stream(x, tol=1e-4)
        assert all(r <= 4 for r in st.current_ranks)

    def test_n_steps_counts(self):
        x = low_rank_tensor((6, 6, 10), (2, 2, 3), seed=96)
        st = _stream(x, tol=0.1, chunk=3)
        assert st.n_steps == 10


class TestEdgeCases:
    def test_single_step_shape_accepted(self):
        x = low_rank_tensor((6, 6, 4), (2, 2, 2), seed=97)
        st = StreamingTucker((6, 6), tol=0.1)
        st.update(x[..., 0])  # no time axis
        st.update(x[..., 1:])
        t = st.finalize()
        assert t.shape == (6, 6, 4)

    def test_zero_leading_slabs(self):
        x = low_rank_tensor((6, 6, 6), (2, 2, 2), seed=98)
        st = StreamingTucker((6, 6), tol=0.1)
        st.update(np.zeros((6, 6, 2)))
        st.update(x[..., :4])
        t = st.finalize()
        assert t.shape == (6, 6, 6)
        full = np.concatenate([np.zeros((6, 6, 2)), x[..., :4]], axis=-1)
        assert normalized_rms(full, t.reconstruct()) <= 0.1

    def test_zero_interior_slab(self):
        x = low_rank_tensor((6, 6, 4), (2, 2, 2), seed=99)
        st = StreamingTucker((6, 6), tol=0.1)
        st.update(x[..., :2])
        st.update(np.zeros((6, 6, 3)))
        st.update(x[..., 2:])
        t = st.finalize()
        assert t.shape == (6, 6, 7)

    def test_wrong_spatial_shape_rejected(self):
        st = StreamingTucker((6, 6), tol=0.1)
        with pytest.raises(ValueError, match="does not match"):
            st.update(np.zeros((5, 6, 2)))

    def test_update_after_finalize_rejected(self):
        st = StreamingTucker((4, 4), tol=0.1)
        st.update(np.ones((4, 4, 2)))
        st.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            st.update(np.ones((4, 4, 1)))

    def test_finalize_without_data_rejected(self):
        st = StreamingTucker((4, 4), tol=0.1)
        with pytest.raises(RuntimeError, match="no data"):
            st.finalize()

    def test_all_zero_stream_rejected(self):
        st = StreamingTucker((4, 4), tol=0.1)
        st.update(np.zeros((4, 4, 3)))
        with pytest.raises(ValueError, match="identically zero"):
            st.finalize()

    def test_invalid_tol(self):
        with pytest.raises(ValueError):
            StreamingTucker((4, 4), tol=0.0)
