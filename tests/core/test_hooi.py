"""HOOI tests (Alg. 2): monotone fit, convergence, init reuse."""

import numpy as np
import pytest

from repro.core import hooi, sthosvd
from repro.tensor import low_rank_tensor, random_tensor


class TestFitBehaviour:
    def test_residual_monotone_nonincreasing(self):
        x = low_rank_tensor((10, 11, 12), (4, 4, 4), seed=1, noise=0.2)
        res = hooi(x, ranks=(3, 3, 3), max_iterations=10, improvement_tol=0.0)
        h = np.array(res.residual_history)
        assert np.all(np.diff(h) <= 1e-9 * h[0])

    def test_improves_or_matches_sthosvd(self):
        x = low_rank_tensor((10, 11, 12), (4, 4, 4), seed=2, noise=0.3)
        st = sthosvd(x, ranks=(2, 2, 2))
        ho = hooi(x, init=st, max_iterations=10)
        assert (
            ho.decomposition.relative_error(x)
            <= st.decomposition.relative_error(x) + 1e-12
        )

    def test_exact_data_immediate_convergence(self):
        x = low_rank_tensor((8, 9, 10), (2, 3, 4), seed=3)
        res = hooi(x, ranks=(2, 3, 4), max_iterations=10)
        assert res.converged
        assert res.n_iterations <= 2
        assert res.residual_history[-1] < 1e-16

    def test_fit_identity_matches_true_residual(self):
        # ||X||^2 - ||G||^2 == ||X - reconstruction||^2 (Alg. 2 line 10).
        x = low_rank_tensor((9, 10, 11), (4, 4, 4), seed=4, noise=0.15)
        res = hooi(x, ranks=(3, 3, 3), max_iterations=4, improvement_tol=0.0)
        true_res_sq = (
            np.linalg.norm((x - res.decomposition.reconstruct()).ravel()) ** 2
        )
        assert res.residual_history[-1] == pytest.approx(true_res_sq, rel=1e-8)

    def test_error_estimate(self):
        x = low_rank_tensor((9, 10, 11), (3, 3, 3), seed=5, noise=0.1)
        res = hooi(x, ranks=(2, 2, 2), max_iterations=3)
        x_norm = float(np.linalg.norm(x.ravel()))
        assert res.error_estimate(x_norm) == pytest.approx(
            res.decomposition.relative_error(x), rel=1e-6
        )


class TestConvergenceControls:
    def test_max_iterations_respected(self):
        x = random_tensor((8, 9, 10), seed=6)
        res = hooi(x, ranks=(3, 3, 3), max_iterations=2, improvement_tol=0.0)
        assert res.n_iterations == 2
        assert not res.converged

    def test_zero_iterations_returns_init(self):
        x = random_tensor((8, 9, 10), seed=7)
        st = sthosvd(x, ranks=(3, 3, 3))
        res = hooi(x, init=st, max_iterations=0)
        np.testing.assert_array_equal(res.decomposition.core, st.decomposition.core)
        assert res.n_iterations == 0

    def test_improvement_tol_stops_early(self):
        x = low_rank_tensor((8, 9, 10), (3, 3, 3), seed=8, noise=0.01)
        res = hooi(x, ranks=(3, 3, 3), max_iterations=50, improvement_tol=1e-6)
        assert res.converged
        assert res.n_iterations < 50

    def test_negative_controls_rejected(self):
        x = random_tensor((4, 5), seed=0)
        with pytest.raises(ValueError):
            hooi(x, ranks=(2, 2), max_iterations=-1)
        with pytest.raises(ValueError):
            hooi(x, ranks=(2, 2), improvement_tol=-0.1)


class TestInitHandling:
    def test_init_shape_mismatch(self):
        x = random_tensor((6, 7), seed=9)
        st = sthosvd(random_tensor((5, 7), seed=9), ranks=(2, 2))
        with pytest.raises(ValueError, match="does not match input"):
            hooi(x, init=st)

    def test_init_result_attached(self):
        x = random_tensor((6, 7), seed=10)
        res = hooi(x, ranks=(2, 2), max_iterations=1)
        assert res.init is not None
        assert res.init.ranks == (2, 2)

    def test_ranks_fixed_by_init(self):
        x = random_tensor((6, 7, 8), seed=11)
        res = hooi(x, tol=0.5, max_iterations=2)
        assert res.ranks == res.init.ranks

    def test_factors_stay_orthonormal(self):
        x = random_tensor((6, 7, 8), seed=12)
        res = hooi(x, ranks=(3, 3, 3), max_iterations=3, improvement_tol=0.0)
        for f in res.decomposition.factors:
            np.testing.assert_allclose(f.T @ f, np.eye(f.shape[1]), atol=1e-10)
