"""Fault-spec grammar, determinism, and retry-policy units (no SPMD runs)."""

import pytest

from repro.faults import (
    FAULTS_ENV_VAR,
    FaultClause,
    FaultSpec,
    RetryPolicy,
    resolve_faults,
)
from repro.mpi.errors import RankDeadError, SpmdError


@pytest.fixture(autouse=True)
def spmd_backend():
    """Shadow the package sweep: nothing here launches ranks."""
    return None


class TestGrammar:
    def test_minimal_clause(self):
        spec = FaultSpec.parse("kind=crash")
        (clause,) = spec.clauses
        assert clause.kind == "crash"
        assert clause.rank is None and clause.site is None
        assert clause.nth == 1 and clause.p == 1.0 and clause.attempt == 1

    def test_full_clause(self):
        spec = FaultSpec.parse(
            "rank=2:site=allreduce:nth=3:kind=exception:p=0.5:seed=9"
        )
        (c,) = spec.clauses
        assert (c.rank, c.site, c.nth, c.kind, c.p, c.seed) == (
            2, "allreduce", 3, "exception", 0.5, 9
        )

    def test_multiple_clauses(self):
        spec = FaultSpec.parse(
            "rank=0:site=send:kind=delay,rank=1:site=recv:kind=exception"
        )
        assert len(spec.clauses) == 2
        assert spec.clauses[0].kind == "delay"
        assert spec.clauses[1].site == "recv"

    def test_roundtrip_through_str(self):
        spec = FaultSpec.parse("rank=1:site=fence:nth=2:kind=crash:p=0.25")
        assert FaultSpec.parse(str(spec)) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "rank=1",  # no kind
            "kind=explode",  # unknown kind
            "kind=crash:bogus=1",  # unknown field
            "kind=crash:kind=delay",  # duplicate field
            "kind=crash:p=1.5",  # p out of range
            "kind=crash:nth=0",  # nth must be >= 1
            "kind=crash:rank=x",  # non-integer rank
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_clause_filtering(self):
        spec = FaultSpec.parse("rank=1:kind=crash;rank=2:kind=delay")
        assert [c.kind for c in spec.clauses_for(1, 1)] == ["crash"]
        assert [c.kind for c in spec.clauses_for(2, 1)] == ["delay"]
        assert spec.clauses_for(0, 1) == []

    def test_resource_kinds_parse_and_roundtrip(self):
        spec = FaultSpec.parse(
            "rank=0:site=arena:nth=2:kind=enospc,"
            "rank=1:site=allreduce:kind=stall"
        )
        assert [c.kind for c in spec.clauses] == ["enospc", "stall"]
        assert spec.clauses[0].site == "arena"
        assert FaultSpec.parse(str(spec)) == spec

    def test_attempt_gating_defaults_to_first(self):
        spec = FaultSpec.parse("rank=0:kind=crash")
        assert spec.clauses_for(0, 1)
        assert not spec.clauses_for(0, 2)
        sticky = FaultSpec.parse("rank=0:kind=crash:attempt=2")
        assert not sticky.clauses_for(0, 1)
        assert sticky.clauses_for(0, 2)


class TestResolve:
    def test_none_without_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert resolve_faults(None) is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "rank=1:site=send:kind=delay")
        spec = resolve_faults(None)
        assert spec is not None and spec.clauses[0].site == "send"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "rank=1:kind=crash")
        spec = resolve_faults("rank=2:kind=delay")
        assert spec.clauses[0].rank == 2

    def test_spec_passthrough(self):
        spec = FaultSpec.parse("kind=delay")
        assert resolve_faults(spec) is spec

    def test_type_error(self):
        with pytest.raises(TypeError):
            resolve_faults(42)


class TestDeterminism:
    def test_chance_is_reproducible(self):
        c = FaultClause(kind="crash", p=0.5, seed=3)
        draws = [c.chance(1, "allreduce", h) for h in range(10)]
        again = [c.chance(1, "allreduce", h) for h in range(10)]
        assert draws == again
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_chance_varies_with_seed_and_site(self):
        a = FaultClause(kind="crash", p=0.5, seed=1)
        b = FaultClause(kind="crash", p=0.5, seed=2)
        assert [a.chance(0, "send", h) for h in range(8)] != [
            b.chance(0, "send", h) for h in range(8)
        ]
        assert [a.chance(0, "send", h) for h in range(8)] != [
            a.chance(0, "recv", h) for h in range(8)
        ]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)

    def test_exponential_backoff(self):
        p = RetryPolicy(max_attempts=4, backoff=0.1)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.4)

    def test_retries_rank_death_by_default(self):
        p = RetryPolicy(max_attempts=3)
        dead = SpmdError({1: RankDeadError("rank 1 died", dead_rank=1)})
        plain = SpmdError({0: ValueError("boom")})
        assert p.should_retry(dead, 1)
        assert p.should_retry(dead, 2)
        assert not p.should_retry(dead, 3)  # attempts exhausted
        assert not p.should_retry(plain, 1)

    def test_custom_retry_on(self):
        p = RetryPolicy(max_attempts=2, retry_on=(ValueError,))
        assert p.should_retry(SpmdError({0: ValueError("x")}), 1)
        assert not p.should_retry(
            SpmdError({1: RankDeadError("d", dead_rank=1)}), 1
        )
