"""Every test in this package runs under both executor backends."""

from tests.backend_param import spmd_backend  # noqa: F401
