"""Fault injection semantics, on both backends (package-wide sweep)."""

import time

import numpy as np
import pytest

from repro.faults import RetryPolicy
from repro.mpi import FaultInjectedError, SpmdError
from tests.conftest import spmd


def _allreduce_prog(comm):
    total = comm.allreduce(np.full(4, float(comm.rank + 1)))
    return float(total[0])


def _two_collectives(comm):
    comm.barrier()
    return float(comm.allreduce(np.ones(2))[0])


class TestExceptionFaults:
    def test_targets_one_rank_at_one_site(self):
        with pytest.raises(SpmdError) as exc_info:
            spmd(3, _allreduce_prog, faults="rank=1:site=allreduce:kind=exception")
        failures = exc_info.value.failures
        assert isinstance(failures[1], FaultInjectedError)
        assert "site 'allreduce'" in str(failures[1])

    def test_nth_counts_per_site(self):
        # barrier is hit first; nth=1 on allreduce must skip it and fire
        # on the first allreduce.
        with pytest.raises(SpmdError) as exc_info:
            spmd(
                2,
                _two_collectives,
                faults="rank=0:site=allreduce:nth=1:kind=exception",
            )
        assert isinstance(exc_info.value.failures[0], FaultInjectedError)

    def test_unmatched_site_never_fires(self):
        res = spmd(2, _two_collectives, faults="rank=0:site=alltoall:kind=exception")
        assert res.values == [2.0, 2.0]

    def test_p_zero_never_fires(self):
        res = spmd(2, _allreduce_prog, faults="kind=exception:p=0.0")
        assert res.values == [3.0, 3.0]

    def test_dispatch_site_fires_before_user_code(self):
        with pytest.raises(SpmdError) as exc_info:
            spmd(2, _allreduce_prog, faults="rank=1:site=dispatch:kind=exception")
        assert isinstance(exc_info.value.failures[1], FaultInjectedError)

    def test_env_var_injection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "rank=0:site=allreduce:kind=exception")
        with pytest.raises(SpmdError):
            spmd(2, _allreduce_prog)

    def test_probabilistic_faults_are_deterministic(self):
        def outcome():
            try:
                spmd(2, _allreduce_prog, faults="kind=exception:p=0.5:seed=11")
                return "ok"
            except SpmdError as exc:
                return tuple(sorted(exc.failures))

        first = outcome()
        assert all(outcome() == first for _ in range(3))


class TestDelayFaults:
    def test_delay_slows_but_completes(self):
        t0 = time.monotonic()
        res = spmd(
            2,
            _allreduce_prog,
            faults="rank=0:site=allreduce:kind=delay:delay=0.3",
        )
        elapsed = time.monotonic() - t0
        assert res.values == [3.0, 3.0]
        assert elapsed >= 0.3


class TestRetryIntegration:
    def test_retry_recovers_from_injected_failure(self):
        # The clause applies to attempt 1 only (default), so attempt 2
        # runs clean.
        policy = RetryPolicy(
            max_attempts=2, backoff=0.01, retry_on=(FaultInjectedError,)
        )
        res = spmd(
            2,
            _allreduce_prog,
            faults="rank=0:site=allreduce:kind=exception",
            retry=policy,
        )
        assert res.values == [3.0, 3.0]

    def test_sticky_fault_exhausts_attempts(self):
        policy = RetryPolicy(
            max_attempts=2, backoff=0.01, retry_on=(FaultInjectedError,)
        )
        with pytest.raises(SpmdError):
            spmd(
                2,
                _allreduce_prog,
                faults="rank=0:site=allreduce:kind=exception:attempt=*",
                retry=policy,
            )

    def test_no_retry_without_policy(self):
        with pytest.raises(SpmdError):
            spmd(2, _allreduce_prog, faults="rank=0:kind=exception")


class TestResourceFaults:
    """The ``enospc``/``stall`` kinds at the injector level (SPMD-level
    degradation behaviour lives in tests/resources)."""

    def test_enospc_raises_real_errno_at_nth_hit(self):
        import errno

        from repro.faults import FaultInjector, FaultSpec

        inj = FaultInjector(
            FaultSpec.parse("rank=0:site=arena:nth=2:kind=enospc"), rank=0
        )
        inj.fire("arena")  # hit #1: armed for the next one
        with pytest.raises(OSError) as exc_info:
            inj.fire("arena")
        assert exc_info.value.errno == errno.ENOSPC
        inj.fire("arena")  # hit #3: nth=2 is one-shot

    def test_enospc_respects_rank_and_site(self):
        from repro.faults import FaultInjector, FaultSpec

        spec = FaultSpec.parse("rank=1:site=window:kind=enospc")
        other_rank = FaultInjector(spec, rank=0)
        other_rank.fire("window")  # clause targets rank 1: no-op
        hit_rank = FaultInjector(spec, rank=1)
        hit_rank.fire("arena")  # wrong site: hits counted, nothing fires
        with pytest.raises(OSError):
            hit_rank.fire("window")

    def test_stall_without_deadline_degrades_to_delay(self):
        from repro.faults import FaultInjector, FaultSpec

        inj = FaultInjector(
            FaultSpec.parse("rank=0:site=fence:kind=stall:delay=0.05"), rank=0
        )
        t0 = time.monotonic()
        inj.fire("fence")
        assert time.monotonic() - t0 >= 0.05

    def test_stall_with_deadline_raises_deadline_error(self):
        from repro.faults import FaultInjector, FaultSpec
        from repro.mpi.errors import DeadlineExceededError
        from repro.resources import set_active_deadline

        inj = FaultInjector(
            FaultSpec.parse("rank=0:site=fence:kind=stall"), rank=0
        )
        previous = set_active_deadline((time.monotonic() + 0.1, 0.1))
        try:
            with pytest.raises(DeadlineExceededError, match="injected stall"):
                inj.fire("fence")
        finally:
            set_active_deadline(previous)
