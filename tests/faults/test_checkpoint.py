"""Checkpoint/restart for ``dist_sthosvd``: per-mode commit, resume, recovery.

The SPMD tests run under both backends via the package sweep — the
collective sequence is backend-independent, so ``site=allreduce:nth=4``
interrupts the run at the same algorithmic point everywhere.  The final
class is the issue's acceptance scenario and is process-backend only
(it SIGKILLs a rank).
"""

import os

import numpy as np
import pytest

from repro.faults import RetryPolicy
from repro.io import (
    checkpoint_digest,
    clear_checkpoint,
    clear_checkpoint_step,
    commit_checkpoint_meta,
    load_checkpoint_state,
    read_checkpoint_meta,
    save_checkpoint_state,
)
from repro.mpi import SpmdError
from tests.conftest import spmd

SHAPE = (12, 10, 8)
GRID = (2, 2, 1)
RANKS = (4, 4, 4)
N_RANKS = 4

#: Interrupts the run after exactly two committed modes (deterministic,
#: identical on both backends: hit counts follow the collective sequence).
MID_RUN_FAULT = "rank=1:site=allreduce:nth=4:kind=exception"


def _sthosvd_prog(comm, ckpt):
    from repro.distributed import DistTensor, dist_sthosvd
    from repro.mpi import CartGrid

    grid = CartGrid(comm, GRID)
    full = np.random.default_rng(7).standard_normal(SHAPE)
    dt = DistTensor.from_global(grid, full)
    res = dist_sthosvd(dt, ranks=RANKS, checkpoint=ckpt)
    return (
        [np.ascontiguousarray(f) for f in res.factors_local],
        np.ascontiguousarray(res.core.local),
    )


def _reference_prog(comm):
    return _sthosvd_prog(comm, None)


class TestCheckpointStore:
    """Direct unit coverage of the tucker_io checkpoint helpers."""

    def test_state_roundtrip(self, tmp_path):
        local = np.arange(24.0).reshape(2, 3, 4)
        factors = {0: np.eye(3), 2: np.ones((4, 2))}
        eigs = {0: np.array([3.0, 1.0]), 2: np.array([2.0])}
        save_checkpoint_state(
            tmp_path, step=1, rank=0, local=local,
            global_shape=(4, 3, 4), factors=factors, eigenvalues=eigs,
        )
        state = load_checkpoint_state(tmp_path, step=1, rank=0)
        assert (state["local"] == local).all()
        assert state["global_shape"] == (4, 3, 4)
        assert set(state["factors"]) == {0, 2}
        assert (state["factors"][2] == factors[2]).all()
        assert (state["eigenvalues"][0] == eigs[0]).all()

    def test_no_partial_files_on_disk(self, tmp_path):
        save_checkpoint_state(
            tmp_path, 0, 0, np.zeros(2), (2,), {}, {},
        )
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))

    def test_meta_roundtrip_and_clear(self, tmp_path):
        assert read_checkpoint_meta(tmp_path) is None
        commit_checkpoint_meta(tmp_path, "abc", 2, 4, (0, 1, 2))
        meta = read_checkpoint_meta(tmp_path)
        assert meta["digest"] == "abc"
        assert meta["completed"] == 2
        assert meta["order"] == [0, 1, 2]
        clear_checkpoint(tmp_path)
        assert read_checkpoint_meta(tmp_path) is None

    def test_clear_step_is_selective(self, tmp_path):
        for step in (0, 1):
            save_checkpoint_state(tmp_path, step, 0, np.zeros(2), (2,), {}, {})
        clear_checkpoint_step(tmp_path, 0)
        names = os.listdir(tmp_path)
        assert "m0_r0.npz" not in names and "m1_r0.npz" in names

    def test_digest_is_order_insensitive_and_value_sensitive(self):
        a = checkpoint_digest({"x": 1, "y": [2, 3]})
        b = checkpoint_digest({"y": [2, 3], "x": 1})
        c = checkpoint_digest({"x": 1, "y": [2, 4]})
        assert a == b and a != c


class TestCheckpointProtocol:
    def test_mid_run_failure_leaves_committed_state(self, tmp_path):
        ckpt = tmp_path / "ck"
        with pytest.raises(SpmdError):
            spmd(N_RANKS, _sthosvd_prog, str(ckpt), faults=MID_RUN_FAULT)
        meta = read_checkpoint_meta(ckpt)
        assert meta is not None and meta["completed"] == 2
        # Only the newest step survives; superseded step files are retired.
        names = sorted(os.listdir(ckpt))
        assert names == [f"m1_r{r}.npz" for r in range(N_RANKS)] + ["meta.json"]

    def test_resume_uses_saved_state_not_recomputation(self, tmp_path):
        ckpt = tmp_path / "ck"
        with pytest.raises(SpmdError):
            spmd(N_RANKS, _sthosvd_prog, str(ckpt), faults=MID_RUN_FAULT)
        # Poison the committed factor of mode 0 in every rank's step
        # file: if the relaunch really resumes, the tampered factor must
        # flow through to the result untouched (completed modes are
        # never recomputed).
        tampered = {}
        for rank in range(N_RANKS):
            state = load_checkpoint_state(ckpt, 1, rank)
            state["factors"][0] = state["factors"][0] + 1000.0
            tampered[rank] = state["factors"][0]
            save_checkpoint_state(
                ckpt, 1, rank, state["local"], state["global_shape"],
                state["factors"], state["eigenvalues"],
            )
        res = spmd(N_RANKS, _sthosvd_prog, str(ckpt))
        for rank in range(N_RANKS):
            factors, _ = res.values[rank]
            assert (factors[0] == tampered[rank]).all()

    def test_digest_mismatch_refuses_resume(self, tmp_path):
        ckpt = tmp_path / "ck"
        with pytest.raises(SpmdError):
            spmd(N_RANKS, _sthosvd_prog, str(ckpt), faults=MID_RUN_FAULT)

        def other_params(comm, path):
            from repro.distributed import DistTensor, dist_sthosvd
            from repro.mpi import CartGrid

            grid = CartGrid(comm, GRID)
            full = np.random.default_rng(7).standard_normal(SHAPE)
            dt = DistTensor.from_global(grid, full)
            return dist_sthosvd(dt, ranks=(3, 3, 3), checkpoint=path)

        with pytest.raises(SpmdError, match="different parameters"):
            spmd(N_RANKS, other_params, str(ckpt))

    def test_successful_run_clears_the_store(self, tmp_path):
        ckpt = tmp_path / "ck"
        spmd(N_RANKS, _sthosvd_prog, str(ckpt))
        assert read_checkpoint_meta(ckpt) is None
        assert not [n for n in os.listdir(ckpt) if n.endswith(".npz")]

    def test_interrupted_then_resumed_matches_uninjected(self, tmp_path):
        ref = spmd(N_RANKS, _reference_prog).values
        ckpt = tmp_path / "ck"
        with pytest.raises(SpmdError):
            spmd(N_RANKS, _sthosvd_prog, str(ckpt), faults=MID_RUN_FAULT)
        res = spmd(N_RANKS, _sthosvd_prog, str(ckpt))
        for rank in range(N_RANKS):
            ref_factors, ref_core = ref[rank]
            factors, core = res.values[rank]
            for a, b in zip(ref_factors, factors):
                assert (a == b).all()
            assert (ref_core == core).all()


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a Linux /dev/shm"
)
class TestAcceptance:
    """The issue's acceptance scenario: SIGKILL + retry + checkpoint."""

    @pytest.fixture(autouse=True)
    def spmd_backend(self):
        return None  # shadow the sweep: SIGKILL is process-backend only

    def test_crash_retry_checkpoint_bit_identical(self, tmp_path):
        from repro.mpi import run_spmd

        ref = run_spmd(N_RANKS, _reference_prog, backend="process").values
        ckpt = tmp_path / "ck"
        res = run_spmd(
            N_RANKS,
            _sthosvd_prog,
            str(ckpt),
            backend="process",
            faults="rank=1:site=allreduce:nth=4:kind=crash",
            retry=RetryPolicy(max_attempts=3, backoff=0.01),
        )
        for rank in range(N_RANKS):
            ref_factors, ref_core = ref[rank]
            factors, core = res.values[rank]
            for a, b in zip(ref_factors, factors):
                assert (a == b).all()
            assert (ref_core == core).all()
        # The retried launch completed, so the store must be cleared.
        assert read_checkpoint_meta(ckpt) is None
