"""Rank-death detection: crash faults, prompt failure, clean reclamation.

Everything here is process-backend-specific (SIGKILL needs a real
process), so the package's backend sweep is shadowed and the backend is
passed explicitly.
"""

import os
import time

import numpy as np
import pytest

from repro.faults import RetryPolicy
from repro.mpi import (
    FaultInjectedError,
    RankDeadError,
    SpmdError,
    run_spmd,
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a Linux /dev/shm"
)


@pytest.fixture(autouse=True)
def spmd_backend():
    """Shadow the package sweep: SIGKILL semantics are process-only."""
    return None


def _allreduce_prog(comm):
    total = comm.allreduce(np.full(4, float(comm.rank + 1)))
    return float(total[0])


def _sum_prog(comm):
    return float(comm.allreduce(np.ones(8))[0])


class TestRankDeath:
    def test_survivors_fail_promptly_with_dead_rank_named(self):
        t0 = time.monotonic()
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                4,
                _allreduce_prog,
                backend="process",
                timeout=60.0,
                faults="rank=1:site=allreduce:kind=crash",
            )
        elapsed = time.monotonic() - t0
        # Detection must be event-driven (seconds), nowhere near the 60 s
        # deadlock timeout the survivors would otherwise burn.
        assert elapsed < 20.0
        failures = exc_info.value.failures
        assert isinstance(failures[1], RankDeadError)
        assert failures[1].dead_rank == 1
        assert failures[1].exitcode == -9  # SIGKILL
        assert "SIGKILL" in str(failures[1])

    def test_death_error_names_last_collective(self):
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                3,
                _allreduce_prog,
                backend="process",
                faults="rank=2:site=allreduce:kind=crash",
            )
        assert "allreduce" in str(exc_info.value.failures[2])

    def test_dispatch_crash_detected(self):
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                2,
                _sum_prog,
                backend="process",
                faults="rank=0:site=dispatch:kind=crash",
            )
        assert isinstance(exc_info.value.failures[0], RankDeadError)

    def test_pool_recovers_after_death(self):
        with pytest.raises(SpmdError):
            run_spmd(
                3,
                _sum_prog,
                backend="process",
                faults="rank=0:site=allreduce:kind=crash",
            )
        res = run_spmd(3, _sum_prog, backend="process")
        assert res.values == [3.0, 3.0, 3.0]

    def test_fork_mode_death_detected(self):
        captured = {}

        def prog(comm):  # closure: rides the fork-per-run fallback
            captured["ran"] = True
            return _sum_prog(comm)

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                3,
                prog,
                backend="process",
                faults="rank=1:site=allreduce:kind=crash",
            )
        assert isinstance(exc_info.value.failures[1], RankDeadError)
        assert exc_info.value.failures[1].dead_rank == 1

    def test_retry_policy_relaunches_after_death(self):
        res = run_spmd(
            4,
            _sum_prog,
            backend="process",
            faults="rank=2:site=allreduce:kind=crash",
            retry=RetryPolicy(max_attempts=3, backoff=0.01),
        )
        assert res.values == [4.0] * 4

    def test_retry_exhaustion_surfaces_death(self):
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                2,
                _sum_prog,
                backend="process",
                faults="rank=0:site=allreduce:kind=crash:attempt=*",
                retry=RetryPolicy(max_attempts=2, backoff=0.01),
            )
        assert isinstance(exc_info.value.failures[0], RankDeadError)

    def test_sanitizer_does_not_mask_rank_death(self):
        # Under REPRO_SANITIZE=1 the survivors' sanitizer finalization
        # must not swallow or replace the RankDeadError diagnosis.
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                3,
                _allreduce_prog,
                backend="process",
                sanitize=1,
                faults="rank=1:site=allreduce:kind=crash",
            )
        assert any(
            isinstance(e, RankDeadError)
            for e in exc_info.value.failures.values()
        )

    def test_thread_backend_crash_degrades_to_exception(self):
        # SIGKILL would take the whole test process down on the thread
        # backend; kind=crash must degrade to FaultInjectedError there.
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                2,
                _sum_prog,
                backend="thread",
                faults="rank=1:site=allreduce:kind=crash",
            )
        assert isinstance(exc_info.value.failures[1], FaultInjectedError)
