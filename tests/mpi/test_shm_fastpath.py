"""Shared-memory fast path: rank pool, segment arena, zero-copy, windows.

Everything here targets the process backend explicitly (the thread backend
has no shared-memory machinery), so the package-level backend sweep is
shadowed out.  Rank functions that should ride the warm pool are defined
at module scope — the pool pickles them by reference; closures exercise
the fork fallback.
"""

import os

import numpy as np
import pytest

from repro.mpi import (
    ProcessBackend,
    SpmdError,
    SUM,
    run_spmd,
    shutdown_worker_pools,
)
from repro.mpi.backends import POOL_ENV_VAR, _POOLS
from repro.mpi.process_transport import (
    ARENA_ENV_VAR,
    HUGE_MIN_BYTES,
    HUGEPAGE_STATS,
    HUGEPAGES_ENV_VAR,
    SegmentArena,
    ShmArrayView,
    WINDOW_SLOT_ENV_VAR,
    WINDOWS_ENV_VAR,
    _bucket_of,
    _HP_DIR_CACHE,
    attach_segment,
    create_segment,
    hugepage_dir,
    segment_backing,
)


@pytest.fixture(autouse=True)
def spmd_backend():
    """Shadow the package sweep: every test names its backend."""
    return None


@pytest.fixture(autouse=True)
def fastpath_env(monkeypatch):
    """Pin the fast-path knobs to their defaults: this suite tests the
    fast path itself, so the CI leg that exports the 0s (to exercise the
    fallback paths elsewhere) must not reach it."""
    for var in (POOL_ENV_VAR, ARENA_ENV_VAR, WINDOWS_ENV_VAR,
                WINDOW_SLOT_ENV_VAR, HUGEPAGES_ENV_VAR):
        monkeypatch.delenv(var, raising=False)
    _HP_DIR_CACHE.clear()
    yield
    _HP_DIR_CACHE.clear()


@pytest.fixture(autouse=True)
def fresh_pools():
    """Isolate each test's warm workers (and leave none behind)."""
    shutdown_worker_pools()
    yield
    shutdown_worker_pools()


def _pid(comm):
    return os.getpid()


def _gather_big(comm, x):
    gathered = comm.allgather(x)
    return float(gathered[(comm.rank + 1) % comm.size][0])


def _recv_properties(comm):
    if comm.rank == 0:
        comm.send(np.arange(4096.0), dest=1)
        return None
    arr = comm.recv(source=0)
    return (
        type(arr).__name__,
        bool(arr.flags.writeable),
        float(arr[17]),
        arr.copy().flags.writeable,
    )


def _boom(comm):
    raise RuntimeError(f"boom from rank {comm.rank}")


class TestRankPool:
    def test_workers_are_reused_across_runs(self):
        first = run_spmd(2, _pid, backend="process").values
        second = run_spmd(2, _pid, backend="process").values
        assert first == second
        assert os.getpid() not in first

    def test_pools_keyed_by_world_size(self):
        two = run_spmd(2, _pid, backend="process").values
        three = run_spmd(3, _pid, backend="process").values
        assert set(two).isdisjoint(three)
        assert set(_POOLS) == {2, 3}

    def test_closures_fall_back_to_fork(self):
        captured = {"flag": True}

        def prog(comm):  # closure: not picklable by reference
            return (os.getpid(), captured["flag"])

        first = run_spmd(2, prog, backend="process").values
        second = run_spmd(2, prog, backend="process").values
        assert all(flag for _, flag in first)
        # Fresh forks each run: no warm pids survive.
        assert {pid for pid, _ in first}.isdisjoint(
            pid for pid, _ in second
        )

    def test_pool_env_opt_out(self, monkeypatch):
        monkeypatch.setenv(POOL_ENV_VAR, "0")
        first = run_spmd(2, _pid, backend="process").values
        second = run_spmd(2, _pid, backend="process").values
        assert set(first).isdisjoint(second)
        assert not _POOLS

    def test_pool_constructor_opt_out(self):
        backend = ProcessBackend(pool=False)
        first = run_spmd(2, _pid, backend=backend).values
        second = run_spmd(2, _pid, backend=backend).values
        assert set(first).isdisjoint(second)

    def test_failure_flags_pool_for_recycle(self):
        warm = run_spmd(2, _pid, backend="process").values
        with pytest.raises(SpmdError, match="boom"):
            run_spmd(2, _boom, backend="process")
        # A failed run no longer retires the pool: it is flagged for a
        # surgical recycle (drain + health check) before its next use.
        assert 2 in _POOLS and _POOLS[2].needs_recycle
        recycled = run_spmd(2, _pid, backend="process").values
        # No worker died, so the same warm workers serve the next run.
        assert set(recycled) == set(warm)

    def test_pooled_runs_with_array_args(self):
        x = np.random.default_rng(3).standard_normal(2048)
        res1 = run_spmd(2, _gather_big, x, backend="process")
        res2 = run_spmd(2, _gather_big, x, backend="process")
        assert res1.values == res2.values == [x[0], x[0]]

    def test_shutdown_is_idempotent(self):
        run_spmd(2, _pid, backend="process")
        shutdown_worker_pools()
        shutdown_worker_pools()
        assert not _POOLS

    def test_function_defined_after_fork_falls_back(self):
        import sys

        run_spmd(2, _pid, backend="process")  # warm the pool
        # A function installed at module scope *after* the workers forked
        # pickles by reference in the parent but cannot resolve in the
        # warm workers; the run must fall back to fork-per-run (which
        # inherits the definition), not raise.
        mod = sys.modules[_pid.__module__]

        def late(comm):
            return ("late", os.getpid())

        late.__module__ = mod.__name__
        late.__qualname__ = "late_defined_fn"
        mod.late_defined_fn = late
        try:
            res = run_spmd(2, late, backend="process")
        finally:
            del mod.late_defined_fn
        assert [v[0] for v in res.values] == ["late", "late"]
        assert os.getpid() not in [v[1] for v in res.values]
        assert 2 not in _POOLS  # the stale pool was retired


class TestZeroCopyReceive:
    def test_large_recv_is_a_readonly_shm_view(self):
        got = run_spmd(2, _recv_properties, backend="process")[1]
        name, writeable, val, copy_writeable = got
        assert name == "ShmArrayView"
        assert not writeable  # the segment may be reused once released
        assert val == 17.0
        assert copy_writeable  # an explicit copy is private and mutable

    def test_thread_backend_recv_stays_plain(self):
        got = run_spmd(2, _recv_properties, backend="thread")[1]
        assert got[0] == "ndarray"
        assert got[1]  # writable private copy

    def test_view_data_survives_sender_exit(self):
        # The fork-mode sender tears down its arena on exit; the
        # receiver's view must keep the segment alive regardless.
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.full(1000, 7.0), dest=1)
                comm.barrier()
                return None
            arr = comm.recv(source=0)
            comm.barrier()  # sender finishes (and cleans up) before we read
            return float(arr.sum())

        assert run_spmd(2, prog, backend="process", timeout=20.0)[1] == 7000.0


class TestSegmentArena:
    def test_bucket_rounding(self):
        assert _bucket_of(1) == 4096
        assert _bucket_of(4096) == 4096
        assert _bucket_of(4097) == 8192
        assert _bucket_of(1 << 20) == 1 << 20

    def test_acquire_reuses_recycled_segment(self):
        arena = SegmentArena(enabled=True)
        shm = arena.acquire(1000)
        name = shm.name
        arena.recycle(shm)
        again = arena.acquire(2000)  # same 4 KiB bucket
        try:
            assert again.name == name
            assert arena.created == 1 and arena.reused == 1
        finally:
            arena.recycle(again)
            arena.teardown()

    def test_disabled_arena_unlinks_on_recycle(self):
        arena = SegmentArena(enabled=False)
        shm = arena.acquire(1000)
        name = shm.name
        arena.recycle(shm)
        assert not os.path.exists(f"/dev/shm/{name}")
        arena.teardown()

    def test_recycle_respects_byte_budget(self, monkeypatch):
        from repro.mpi import process_transport as pt

        monkeypatch.setattr(pt, "_ARENA_MAX_FREE_BYTES", 8192)
        arena = SegmentArena(enabled=True)
        kept = [arena.acquire(4096), arena.acquire(4096)]
        over = arena.acquire(4096)
        for s in kept:
            arena.recycle(s)  # fills the 8 KiB budget
        name = over.name
        arena.recycle(over)  # over budget: unlinked, not pooled
        assert not os.path.exists(f"/dev/shm/{name}")
        arena.teardown()

    def test_teardown_unlinks_pooled_segments(self):
        arena = SegmentArena(enabled=True)
        names = []
        segs = [arena.acquire(n) for n in (100, 5000, 100)]
        for s in segs:
            names.append(s.name)
            arena.recycle(s)
        arena.teardown()
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")


def _windows_enabled_prog(comm):
    return comm._transport.windows_enabled


def _window_rounds(comm):
    """Run all nine collectives once; report the window round counters."""
    comm.barrier()
    comm.bcast(comm.rank if comm.rank == 0 else None, root=0)
    comm.gather(comm.rank, root=0)
    comm.allgather(comm.rank)
    comm.reduce(float(comm.rank), SUM, root=0)
    comm.allreduce(float(comm.rank), SUM)
    comm.reduce_scatter_block(np.arange(float(2 * comm.size)), SUM)
    comm.scatter(list(range(comm.size)) if comm.rank == 0 else None, root=0)
    comm.alltoall([comm.rank * 10 + j for j in range(comm.size)])
    # 8 exchanges through the P-slot window (scatter is a root-writes
    # round on it), 1 through the P×P matrix (alltoall only).
    return comm._win.seq, comm._mwin.seq


def _window_slots(comm):
    comm.allreduce(comm.rank, SUM)  # scalar first exchange
    small = comm._win.slot_bytes
    comm.allreduce(np.arange(6000.0), SUM)  # ~48 KiB forces growth
    return small, comm._win.slot_bytes


def _collective_battery(comm, x):
    comm.barrier()
    total = comm.allreduce(x, SUM)
    gathered = comm.allgather(x * (comm.rank + 1))
    seen = comm.bcast({"arr": x, "tag": comm.rank} if comm.rank == 1 else None,
                      root=1)
    block = comm.reduce_scatter_block(
        np.outer(np.arange(float(2 * comm.size)), x[:5]) + comm.rank, SUM
    )
    at_root = comm.gather(x * (comm.rank + 2), root=1)
    folded = comm.reduce(x + comm.rank, SUM, root=2)
    mine = comm.scatter(
        # Uneven slices, small first: the P×P window opens small and must
        # grow when the full-size alltoall rows arrive next.
        [x[: n + 3] * n for n in range(comm.size)] if comm.rank == 0 else None,
        root=0,
    )
    swapped = comm.alltoall(
        [x * (j + 1) + comm.rank for j in range(comm.size)]
    )
    sub = comm.split(color=comm.rank % 2)
    sub_total = sub.allreduce(float(comm.rank))
    return (
        total.tobytes(),
        [g.tobytes() for g in gathered],
        seen["arr"].tobytes(),
        seen["tag"],
        block.tobytes(),
        None if at_root is None else [g.tobytes() for g in at_root],
        None if folded is None else folded.tobytes(),
        mine.tobytes(),
        [s.tobytes() for s in swapped],
        sub_total,
    )


class TestCollectiveWindows:
    def test_windows_used_by_default_and_disableable(self, monkeypatch):
        assert run_spmd(2, _windows_enabled_prog, backend="process")[0]
        shutdown_worker_pools()
        monkeypatch.setenv(WINDOWS_ENV_VAR, "0")
        assert not run_spmd(2, _windows_enabled_prog, backend="process")[0]

    @pytest.mark.parametrize("n", [1024, 80_000])  # fits / forces growth
    def test_windowed_results_match_p2p_and_thread(self, monkeypatch, n):
        x = np.random.default_rng(11).standard_normal(n)
        p = 4
        windowed = run_spmd(p, _collective_battery, x, backend="process")
        shutdown_worker_pools()
        monkeypatch.setenv(WINDOWS_ENV_VAR, "0")
        p2p = run_spmd(p, _collective_battery, x, backend="process")
        threaded = run_spmd(p, _collective_battery, x, backend="thread")
        assert windowed.values == p2p.values == threaded.values
        assert (
            windowed.ledger.summary()
            == p2p.ledger.summary()
            == threaded.ledger.summary()
        )

    def test_all_nine_collectives_ride_the_windows(self):
        assert run_spmd(3, _window_rounds, backend="process").values == [
            (8, 1)
        ] * 3

    def test_first_exchange_sizes_the_window(self):
        # Scalar-only traffic gets a page-sized slot; array traffic gets
        # the bucket covering its first payload — not a fixed 256 KiB.
        small, big = run_spmd(2, _window_slots, backend="process")[0]
        assert small == 4096
        assert big == 65536  # 4096 doubles up to cover ~48 KiB packed

    def test_window_slot_knob_pins_initial_slot(self):
        backend = ProcessBackend(window_slot=1 << 17)
        res = run_spmd(2, _window_slots, backend=backend)
        assert res[0] == (1 << 17, 1 << 17)

    def test_windows_knob_overrides_env(self):
        # Constructor knob beats the (unset => enabled) environment.
        backend = ProcessBackend(windows=False)
        assert not run_spmd(2, _windows_enabled_prog, backend=backend)[0]
        assert run_spmd(
            2, _windows_enabled_prog, backend=ProcessBackend(windows=True)
        )[0]

    def test_window_growth_preserves_fortran_order(self):
        f_big = np.asfortranarray(
            np.random.default_rng(5).standard_normal((300, 300))
        )

        def prog(comm):
            out = comm.bcast(f_big if comm.rank == 0 else None, root=0)
            return (out.flags.f_contiguous, out.tobytes() == f_big.tobytes())

        for f_cont, same in run_spmd(3, prog, backend="process").values:
            assert f_cont and same


def _window_backing(comm):
    """One multi-MiB collective + one multi-MiB p2p message; report which
    substrate mapped the window and whether the receive stayed zero-copy."""
    x = np.arange(float(1 << 19)) + comm.rank  # 4 MiB payload
    total = comm.allreduce(x, SUM)
    if comm.rank == 0:
        comm.send(x, dest=1)
        view_kind = None
    elif comm.rank == 1:
        arr = comm.recv(source=0)
        view_kind = type(arr).__name__
    else:
        view_kind = None
    return float(total[0]), comm._win.backing, view_kind


class TestHugePages:
    """Huge-page backing for windows and arena segments.

    The directory form of ``REPRO_SPMD_HUGEPAGES`` points the substrate at
    an ordinary directory, which exercises the identical file-backed
    mapping path (create, attach-by-name, unlink, fallback) without
    reserved huge pages; the real-hugetlbfs test runs when the host
    provides pages and skips cleanly otherwise.
    """

    def test_knob_off_forces_shm(self, monkeypatch):
        monkeypatch.setenv(HUGEPAGES_ENV_VAR, "0")
        _HP_DIR_CACHE.clear()
        seg = create_segment(HUGE_MIN_BYTES)
        try:
            assert segment_backing(seg) == "shm"
        finally:
            seg.close()
            seg.unlink()

    def test_small_segments_stay_on_shm(self, tmp_path, monkeypatch):
        monkeypatch.setenv(HUGEPAGES_ENV_VAR, str(tmp_path))
        _HP_DIR_CACHE.clear()
        seg = create_segment(HUGE_MIN_BYTES // 2)
        try:
            assert segment_backing(seg) == "shm"
        finally:
            seg.close()
            seg.unlink()
        assert not list(tmp_path.iterdir())

    def test_directory_override_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(HUGEPAGES_ENV_VAR, str(tmp_path))
        _HP_DIR_CACHE.clear()
        before = HUGEPAGE_STATS["mapped"]
        seg = create_segment(HUGE_MIN_BYTES + 1)
        assert segment_backing(seg) == "hugetlb"
        assert HUGEPAGE_STATS["mapped"] == before + 1
        assert seg.size >= HUGE_MIN_BYTES + 1
        np.frombuffer(seg.buf, np.float64, 64)[:] = np.arange(64.0)
        attached = attach_segment(seg.name)
        assert segment_backing(attached) == "hugetlb"
        assert np.frombuffer(attached.buf, np.float64, 64)[17] == 17.0
        attached.close()
        seg.close()
        seg.unlink()
        assert not list(tmp_path.iterdir())  # unlink removed the file

    def test_mmap_failure_falls_back_to_shm(self, tmp_path, monkeypatch):
        from repro.mpi import process_transport as pt

        monkeypatch.setenv(HUGEPAGES_ENV_VAR, str(tmp_path))
        _HP_DIR_CACHE.clear()

        class ExhaustedSegment:
            def __init__(self, *args, **kwargs):
                # Real mmap failures carry an errno; the fallback routes
                # on it (anything else is a bug and must re-raise).
                import errno

                raise OSError(errno.ENOMEM, "Cannot allocate memory")

        monkeypatch.setattr(pt, "HugePageSegment", ExhaustedSegment)
        before = HUGEPAGE_STATS["fallbacks"]
        seg = create_segment(HUGE_MIN_BYTES)
        try:
            assert segment_backing(seg) == "shm"
            assert HUGEPAGE_STATS["fallbacks"] == before + 1
        finally:
            seg.close()
            seg.unlink()

    def test_windows_and_arena_ride_hugepages_spmd(self, tmp_path, monkeypatch):
        monkeypatch.setenv(HUGEPAGES_ENV_VAR, str(tmp_path))
        res = run_spmd(3, _window_backing, backend="process")
        for total, backing, view_kind in res.values:
            assert total == 3.0  # 0 + 1 + 2 on element 0
            assert backing == "hugetlb"
        # The 4 MiB p2p payload travelled through a huge arena segment and
        # still arrived as a zero-copy view.
        assert res.values[1][2] == "ShmArrayView"
        shutdown_worker_pools()
        assert not list(tmp_path.iterdir())  # nothing leaked in the "mount"

    def test_invalid_knob_values_are_rejected(self, tmp_path, monkeypatch):
        # A typo'd path or an unknown mode is a configuration error, not
        # a silent fallback to plain shm.
        for bad in (str(tmp_path / "nonexistent"), "hugepages-dir", "2"):
            monkeypatch.setenv(HUGEPAGES_ENV_VAR, bad)
            _HP_DIR_CACHE.clear()
            with pytest.raises(ValueError, match="REPRO_SPMD_HUGEPAGES"):
                hugepage_dir()

    def test_reaper_unlinks_dead_creators_only(self, tmp_path, monkeypatch):
        from repro.mpi.process_transport import (
            _HUGE_PREFIX,
            reap_stale_hugepage_segments,
        )

        monkeypatch.setenv(HUGEPAGES_ENV_VAR, str(tmp_path))
        _HP_DIR_CACHE.clear()
        live = create_segment(HUGE_MIN_BYTES)  # this process: must survive
        # Forge a segment whose creating pid cannot exist.
        dead_pid = int(open("/proc/sys/kernel/pid_max").read()) + 7
        dead_name = f"{_HUGE_PREFIX}{dead_pid}_deadbeef"
        (tmp_path / dead_name).write_bytes(b"x" * 64)
        other_run = f"{_HUGE_PREFIX}{dead_pid + 1}_cafe"  # not in our pid set
        (tmp_path / other_run).write_bytes(b"x" * 64)
        (tmp_path / "unrelated.txt").write_bytes(b"keep me")
        removed = reap_stale_hugepage_segments({dead_pid, os.getpid()})
        assert removed == [dead_name]
        assert not (tmp_path / dead_name).exists()
        # Scoped to the passed worker pids: another run's leak is not ours
        # to judge, and non-segment files are never touched.
        assert (tmp_path / other_run).exists()
        assert (tmp_path / "unrelated.txt").exists()
        assert (tmp_path / live.name).exists()  # own pid always skipped
        live.close()
        live.unlink()
        (tmp_path / other_run).unlink()
        (tmp_path / "unrelated.txt").unlink()

    def test_real_hugetlbfs_when_available(self, monkeypatch):
        monkeypatch.setenv(HUGEPAGES_ENV_VAR, "auto")
        _HP_DIR_CACHE.clear()
        if hugepage_dir() is None:
            pytest.skip("no writable hugetlbfs mount with reserved pages")
        seg = create_segment(HUGE_MIN_BYTES)
        try:
            assert segment_backing(seg) == "hugetlb"
            np.frombuffer(seg.buf, np.float64, 8)[:] = 1.5
            assert bytes(seg.buf[:8]) == np.float64(1.5).tobytes()
        finally:
            seg.close()
            seg.unlink()
