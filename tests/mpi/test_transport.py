"""Unit tests for the in-process message transport."""

import threading

import pytest

from repro.mpi.errors import DeadlockError
from repro.mpi.transport import Transport


class TestBasicDelivery:
    def test_put_then_get(self):
        t = Transport()
        t.put("k", 42)
        assert t.get("k") == 42

    def test_fifo_per_mailbox(self):
        t = Transport()
        for i in range(5):
            t.put("k", i)
        assert [t.get("k") for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_distinct_keys_isolated(self):
        t = Transport()
        t.put("a", 1)
        t.put("b", 2)
        assert t.get("b") == 2
        assert t.get("a") == 1

    def test_pending_counts_undelivered(self):
        t = Transport()
        assert t.pending() == 0
        t.put("x", 1)
        t.put("y", 2)
        assert t.pending() == 2
        t.get("x")
        assert t.pending() == 1

    def test_mailbox_cleanup_after_drain(self):
        t = Transport()
        t.put("k", 1)
        t.get("k")
        assert t.pending() == 0


class TestBlockingBehaviour:
    def test_get_blocks_until_put(self):
        t = Transport(timeout=5.0)
        received = []

        def consumer():
            received.append(t.get("k"))

        thread = threading.Thread(target=consumer)
        thread.start()
        t.put("k", "hello")
        thread.join(timeout=5)
        assert received == ["hello"]

    def test_timeout_raises_deadlock(self):
        t = Transport(timeout=0.05)
        with pytest.raises(DeadlockError, match="timed out"):
            t.get("never")

    def test_abort_wakes_waiter(self):
        t = Transport(timeout=30.0)
        errors = []

        def consumer():
            try:
                t.get("k")
            except DeadlockError as exc:
                errors.append(exc)

        thread = threading.Thread(target=consumer)
        thread.start()
        t.abort(RuntimeError("boom"))
        thread.join(timeout=5)
        assert len(errors) == 1
        assert "boom" in str(errors[0])

    def test_aborted_transport_rejects_future_gets(self):
        t = Transport()
        t.abort(RuntimeError("dead"))
        with pytest.raises(DeadlockError):
            t.get("anything")


class TestValidation:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            Transport(timeout=0)
