"""Stress tests: larger rank counts, message storms, deep communicator trees.

The simulator must stay deterministic and deadlock-free under load — these
are the conditions the distributed algorithms create at scale (many
interleaved collectives on different sub-communicators).
"""

import numpy as np
import pytest

from repro.mpi import SUM, CartGrid
from tests.conftest import spmd


class TestScaleStress:
    def test_24_ranks_allreduce(self):
        # One node of Edison: the paper's base configuration.
        def prog(comm):
            return float(comm.allreduce(np.array([1.0]), SUM)[0])

        assert spmd(24, prog).values == [24.0] * 24

    def test_message_storm_ordering(self):
        # 200 messages per pair, all tags interleaved: FIFO per tag holds.
        def prog(comm):
            n = 200
            if comm.rank == 0:
                for i in range(n):
                    comm.send(i, dest=1, tag=i % 5)
                return None
            out = {t: [] for t in range(5)}
            for i in range(n):
                out[i % 5].append(comm.recv(source=0, tag=i % 5))
            return all(v == sorted(v) for v in out.values())

        assert spmd(2, prog)[1]

    def test_interleaved_subcommunicator_collectives(self):
        # Rows and columns of a grid run collectives back to back; tag
        # spaces must not collide.
        def prog(comm):
            g = CartGrid(comm, (4, 6))
            row = g.mode_row(0)
            col = g.mode_column(0)
            results = []
            for i in range(10):
                results.append(col.allreduce(comm.rank + i, SUM))
                results.append(row.allreduce(comm.rank * i, SUM))
            return results

        first = spmd(24, prog).values
        second = spmd(24, prog).values
        assert first == second  # determinism under load

    def test_deep_split_tree(self):
        # Repeated halving: world -> halves -> quarters -> ...
        def prog(comm):
            current = comm
            labels = []
            while current.size > 1:
                color = current.rank >= current.size // 2
                labels.append(int(color))
                current = current.split(color=int(color))
            return labels

        res = spmd(16, prog)
        # Every rank's path is its rank's binary representation (MSB first).
        for rank, labels in enumerate(res):
            assert len(labels) == 4
            assert int("".join(map(str, labels)), 2) == rank

    def test_concurrent_ring_exchanges(self):
        # Simultaneous sendrecv rings on every row of a grid.
        def prog(comm):
            g = CartGrid(comm, (3, 4))
            row = g.mode_row(0)
            acc = comm.rank
            for _ in range(row.size):
                acc = row.sendrecv(
                    acc, dest=(row.rank + 1) % row.size,
                    source=(row.rank - 1) % row.size,
                )
            return acc

        res = spmd(12, prog)
        # After size hops around the ring each value returns home.
        assert res.values == list(range(12))

    def test_large_payload_allgather(self):
        def prog(comm):
            chunk = np.full(50_000, float(comm.rank))
            gathered = comm.allgather(chunk)
            return sum(float(g[0]) for g in gathered)

        assert spmd(8, prog).values == [28.0] * 8
