"""Collective-operation tests against local references."""

import numpy as np
import pytest

from repro.mpi import MAX, MIN, PROD, SUM, CommunicatorError, SpmdError
from tests.conftest import spmd


class TestBcast:
    def test_scalar(self):
        def prog(comm):
            value = "payload" if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        assert spmd(4, prog).values == ["payload"] * 4

    def test_nonzero_root(self):
        def prog(comm):
            value = comm.rank if comm.rank == 2 else None
            return comm.bcast(value, root=2)

        assert spmd(4, prog).values == [2] * 4

    def test_array_not_aliased(self):
        def prog(comm):
            arr = np.zeros(3) if comm.rank == 0 else None
            out = comm.bcast(arr, root=0)
            out += comm.rank  # mutating my copy must not affect others
            return out

        res = spmd(3, prog)
        for rank, arr in enumerate(res.values):
            np.testing.assert_array_equal(arr, np.full(3, float(rank)))

    def test_single_rank(self):
        def prog(comm):
            return comm.bcast(7)

        assert spmd(1, prog).values == [7]


class TestGatherScatter:
    def test_gather_to_root(self):
        def prog(comm):
            return comm.gather(comm.rank**2, root=0)

        res = spmd(4, prog)
        assert res[0] == [0, 1, 4, 9]
        assert res[1] is None

    def test_gather_nonzero_root(self):
        def prog(comm):
            return comm.gather(comm.rank, root=3)

        res = spmd(4, prog)
        assert res[3] == [0, 1, 2, 3]

    def test_scatter(self):
        def prog(comm):
            values = [i * 10 for i in range(comm.size)] if comm.rank == 1 else None
            return comm.scatter(values, root=1)

        assert spmd(3, prog).values == [0, 10, 20]

    def test_scatter_wrong_length(self):
        def prog(comm):
            values = [1] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        with pytest.raises(SpmdError):
            spmd(2, prog)

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(comm.rank + 1)

        res = spmd(5, prog)
        for values in res:
            assert values == [1, 2, 3, 4, 5]

    def test_allgather_arrays_independent(self):
        def prog(comm):
            out = comm.allgather(np.array([float(comm.rank)]))
            out[0] += 100.0  # mutate my copy
            return out[0][0]

        # Every rank mutated only its own copy of rank 0's entry.
        assert spmd(3, prog).values == [100.0, 100.0, 100.0]


class TestReductions:
    def test_allreduce_sum_scalar(self):
        def prog(comm):
            return comm.allreduce(comm.rank + 1, SUM)

        assert spmd(4, prog).values == [10] * 4

    def test_allreduce_array(self):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), SUM)

        res = spmd(3, prog)
        for arr in res:
            np.testing.assert_array_equal(arr, np.full(3, 3.0))

    def test_reduce_max_min_prod(self):
        def prog(comm):
            return (
                comm.reduce(comm.rank, MAX, root=0),
                comm.reduce(comm.rank + 1, MIN, root=0),
                comm.reduce(comm.rank + 1, PROD, root=0),
            )

        res = spmd(4, prog)
        assert res[0] == (3, 1, 24)
        assert res[2] == (None, None, None)

    def test_reduce_deterministic_order(self):
        # Folding in rank order must be bitwise reproducible.
        def prog(comm):
            contribution = np.array([0.1 * (comm.rank + 1) ** 3])
            return comm.allreduce(contribution, SUM)[0]

        first = spmd(5, prog).values
        second = spmd(5, prog).values
        assert first == second

    def test_reduce_scatter_block(self):
        def prog(comm):
            arr = np.arange(8, dtype=np.float64) + comm.rank
            block = comm.reduce_scatter_block(arr, SUM)
            return block

        res = spmd(4, prog)
        total = sum(np.arange(8.0) + r for r in range(4))
        for rank, block in enumerate(res):
            np.testing.assert_array_equal(block, total[rank * 2 : rank * 2 + 2])

    def test_reduce_scatter_requires_divisibility(self):
        def prog(comm):
            return comm.reduce_scatter_block(np.zeros(5), SUM)

        with pytest.raises(SpmdError):
            spmd(2, prog)

    def test_reduce_scatter_rejects_non_array(self):
        def prog(comm):
            return comm.reduce_scatter_block([1, 2], SUM)

        with pytest.raises(SpmdError):
            spmd(2, prog)


class TestAlltoall:
    def test_exchange(self):
        def prog(comm):
            values = [f"{comm.rank}->{j}" for j in range(comm.size)]
            return comm.alltoall(values)

        res = spmd(3, prog)
        for j, received in enumerate(res):
            assert received == [f"{i}->{j}" for i in range(3)]

    def test_wrong_length(self):
        def prog(comm):
            return comm.alltoall([0])

        with pytest.raises(SpmdError):
            spmd(3, prog)


class TestBarrier:
    def test_barrier_completes(self):
        def prog(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(spmd(4, prog).values)


class TestSplitAndDup:
    def test_split_even_odd(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            total = sub.allreduce(comm.rank, SUM)
            return sub.size, total

        res = spmd(6, prog)
        for rank, (size, total) in enumerate(res):
            assert size == 3
            assert total == (0 + 2 + 4 if rank % 2 == 0 else 1 + 3 + 5)

    def test_split_with_key_reorders(self):
        def prog(comm):
            # Reverse rank order within the new communicator.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = spmd(4, prog)
        assert res.values == [3, 2, 1, 0]

    def test_split_undefined_color(self):
        def prog(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            if sub is None:
                return "excluded"
            return sub.size

        res = spmd(3, prog)
        assert res[0] == "excluded"
        assert res[1] == res[2] == 2

    def test_dup_isolates_tag_space(self):
        def prog(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.send("world", dest=1, tag=0)
                dup.send("dup", dest=1, tag=0)
                return None
            # Receive from the dup first: messages must not cross.
            from_dup = dup.recv(source=0, tag=0)
            from_world = comm.recv(source=0, tag=0)
            return from_dup, from_world

        assert spmd(2, prog)[1] == ("dup", "world")

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 2)
            pair_sum = half.allreduce(comm.rank, SUM)
            return half.size, pair_sum

        res = spmd(4, prog)
        assert res.values == [(2, 1), (2, 1), (2, 5), (2, 5)]


class TestNonblockingCollectives:
    """ireduce / iallreduce / ireduce_scatter_block: deferred completion
    with bit-identical results and charges to the blocking ops."""

    def test_ireduce_matches_reduce_bitwise(self):
        def prog(comm):
            value = np.arange(6.0) * (comm.rank + 1)
            nb = comm.ireduce(value, SUM, root=1).wait()
            blocking = comm.reduce(value, SUM, root=1)
            if comm.rank == 1:
                return nb.tobytes(), blocking.tobytes()
            return nb, blocking  # both None off-root

        for nb, blocking in spmd(4, prog):
            assert nb == blocking

    def test_iallreduce_matches_allreduce_bitwise(self):
        def prog(comm):
            value = np.arange(8.0) + comm.rank
            nb = comm.iallreduce(value, SUM).wait()
            blocking = comm.allreduce(value, SUM)
            return nb.tobytes() == blocking.tobytes()

        assert all(spmd(4, prog).values)

    def test_ireduce_scatter_block_matches_blocking(self):
        def prog(comm):
            arr = np.outer(np.arange(float(2 * comm.size)), np.arange(5.0))
            arr = arr + comm.rank
            nb = comm.ireduce_scatter_block(arr, SUM).wait()
            blocking = comm.reduce_scatter_block(arr, SUM)
            return nb.tobytes() == blocking.tobytes()

        assert all(spmd(3, prog).values)

    def test_other_ops_and_roots(self):
        def prog(comm):
            out = []
            for op in (MAX, MIN, PROD):
                got = comm.iallreduce(float(comm.rank + 1), op).wait()
                out.append(got)
            for root in range(comm.size):
                r = comm.ireduce(comm.rank, SUM, root=root).wait()
                out.append(r)
            return out

        p = 3
        for rank, got in enumerate(spmd(p, prog)):
            assert got[:3] == [3.0, 1.0, 6.0]
            expected = [3 if root == rank else None for root in range(p)]
            assert got[3:] == expected

    def test_pipelined_posts_force_completion(self):
        # More outstanding requests than window buffers: the third post
        # must transparently complete the first, and user-side waits stay
        # idempotent (cached values).  The repeat-wait check only runs
        # unsanitized: under REPRO_SANITIZE a second user wait is a
        # RequestStateError by design.
        def prog(comm):
            reqs = [
                comm.ireduce(np.full(4, float(comm.rank + i)), SUM, root=0)
                for i in range(5)
            ]
            values = [req.wait() for req in reqs]
            if comm.sanitizer is None:
                again = [req.wait() for req in reqs]  # cached
                assert all(
                    (a is b) or np.array_equal(a, b)
                    for a, b in zip(values, again)
                )
            if comm.rank == 0:
                return [v[0] for v in values]
            return values

        p = 4
        res = spmd(p, prog)
        base = sum(range(p)) * 1.0
        assert res[0] == [base + p * i for i in range(5)]
        assert res[1] == [None] * 5

    def test_window_growth_mid_pipeline(self):
        # A later round's payload outgrows the slots sized by the first
        # round: the round is replayed on a grown window collectively.
        def prog(comm):
            small = comm.iallreduce(np.arange(4.0)).wait()
            big = comm.iallreduce(np.full(60_000, float(comm.rank))).wait()
            small2 = comm.iallreduce(np.arange(3.0) * comm.rank).wait()
            return small.tobytes(), float(big[0]), small2.tobytes()

        p = 4
        res = spmd(p, prog)
        expected_big = float(sum(range(p)))
        assert all(v[1] == expected_big for v in res.values)
        assert len({v[0] for v in res.values}) == 1
        assert len({v[2] for v in res.values}) == 1

    def test_interleaved_with_blocking_collectives(self):
        # A non-blocking request may stay outstanding across unrelated
        # blocking collectives; SPMD ordering keeps everything matched.
        def prog(comm):
            req = comm.ireduce(np.full(5, float(comm.rank)), SUM, root=2)
            token = comm.bcast("mid" if comm.rank == 0 else None, root=0)
            gathered = comm.allgather(comm.rank)
            reduced = req.wait()
            comm.barrier()
            return token, gathered, None if reduced is None else reduced[0]

        p = 4
        res = spmd(p, prog)
        for rank, (token, gathered, reduced) in enumerate(res.values):
            assert token == "mid" and gathered == list(range(p))
            assert reduced == (float(sum(range(p))) if rank == 2 else None)

    def test_single_rank(self):
        def prog(comm):
            a = comm.ireduce(np.arange(3.0), SUM).wait()
            b = comm.iallreduce(np.arange(2.0), SUM).wait()
            c = comm.ireduce_scatter_block(np.arange(4.0).reshape(2, 2), SUM)
            return a.tolist(), b.tolist(), c.wait().tolist()

        a, b, c = spmd(1, prog)[0]
        assert a == [0.0, 1.0, 2.0]
        assert b == [0.0, 1.0]
        assert c == [[0.0, 1.0], [2.0, 3.0]]

    def test_ireduce_invalid_root(self):
        def prog(comm):
            comm.ireduce(1.0, SUM, root=9)

        with pytest.raises(SpmdError, match="root=9 out of range"):
            spmd(2, prog)

    def test_ireduce_scatter_block_validates_at_post(self):
        def prog(comm):
            comm.ireduce_scatter_block(np.arange(5.0), SUM)

        with pytest.raises(SpmdError, match="not divisible"):
            spmd(2, prog)

    def test_sub_communicator_nonblocking(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            got = sub.iallreduce(np.full(3, float(comm.rank))).wait()
            return got[0]

        res = spmd(4, prog)
        assert res.values == [2.0, 4.0, 2.0, 4.0]
