"""Backend conformance suite: every executor backend, same semantics.

Each test here receives the ``spmd_backend`` parameterization from
``conftest.py`` and passes it explicitly to ``run_spmd(backend=...)``, so
the suite pins the contract both backends must satisfy: point-to-point and
collective results, poisoning/fail-fast on rank error, deadlock timeout,
cost-ledger contents, and backend selection/resolution rules.
"""

import os
import time

import numpy as np
import pytest

from repro.mpi import (
    BACKEND_ENV_VAR,
    DeadlockError,
    ProcessBackend,
    RankDeadError,
    SpmdError,
    ThreadBackend,
    available_backends,
    resolve_backend,
    run_spmd,
    SUM,
)


def _pid_prog(comm):
    return os.getpid()


class TestSelection:
    def test_available_backends(self):
        assert set(available_backends()) >= {"thread", "process"}

    def test_resolve_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "thread"

    def test_resolve_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert resolve_backend(None).name == "process"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert resolve_backend("thread").name == "thread"

    def test_instance_passthrough(self):
        backend = ThreadBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown SPMD backend"):
            resolve_backend("smoke-signals")

    def test_run_spmd_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown SPMD backend"):
            run_spmd(2, lambda comm: None, backend="smoke-signals")

    def test_env_var_reaches_run_spmd(self, spmd_backend):
        # conftest sets REPRO_SPMD_BACKEND; no backend= passed here.
        pids = set(run_spmd(2, _pid_prog).values)
        if spmd_backend == "process":
            assert os.getpid() not in pids and len(pids) == 2
        else:
            assert pids == {os.getpid()}


class ExplicitBackends:
    """Shadow the package autouse parameterization for classes whose tests
    name their backends explicitly (running them twice adds nothing)."""

    @pytest.fixture(autouse=True)
    def spmd_backend(self):
        return None


class TestExecutionModel(ExplicitBackends):
    def test_process_ranks_are_processes(self):
        pids = run_spmd(3, _pid_prog, backend="process").values
        assert len(set(pids)) == 3
        assert os.getpid() not in pids

    def test_thread_ranks_share_the_process(self):
        pids = run_spmd(3, _pid_prog, backend="thread").values
        assert set(pids) == {os.getpid()}


class TestConformance:
    def test_values_in_rank_order(self, spmd_backend):
        res = run_spmd(4, lambda comm: comm.rank * 11, backend=spmd_backend)
        assert res.values == [0, 11, 22, 33]

    def test_shared_and_rank_args(self, spmd_backend):
        res = run_spmd(
            3,
            lambda comm, shared, mine: (shared, mine),
            "s",
            rank_args=[("a",), ("b",), ("c",)],
            backend=spmd_backend,
        )
        assert res.values == [("s", "a"), ("s", "b"), ("s", "c")]

    def test_p2p_small_object(self, spmd_backend):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"n": 1, "tag": "x"}, dest=1)
                return None
            return comm.recv(source=0)

        res = run_spmd(2, prog, backend=spmd_backend)
        assert res[1] == {"n": 1, "tag": "x"}

    def test_p2p_large_array_roundtrip(self, spmd_backend):
        # Large enough to take the shared-memory path under the process
        # backend; values must survive bit-exactly either way.
        payload = np.random.default_rng(7).standard_normal((64, 64))

        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1)
                return None
            return comm.recv(source=0)

        res = run_spmd(2, prog, backend=spmd_backend)
        assert res[1].tobytes() == payload.tobytes()

    def test_p2p_fortran_order_and_exotic_dtypes(self, spmd_backend):
        f_order = np.asfortranarray(np.arange(400.0).reshape(20, 20))
        ints = np.arange(200, dtype=np.int32)
        bools = np.tile([True, False], 200)

        def prog(comm):
            if comm.rank == 0:
                for obj in (f_order, ints, bools):
                    comm.send(obj, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(3)]

        got = run_spmd(2, prog, backend=spmd_backend)[1]
        np.testing.assert_array_equal(got[0], f_order)
        assert got[1].dtype == np.int32
        np.testing.assert_array_equal(got[1], ints)
        assert got[2].dtype == np.bool_
        np.testing.assert_array_equal(got[2], bools)

    def test_structured_dtype_keeps_fields(self, spmd_backend):
        rec = np.zeros(100, dtype=[("a", "f8"), ("b", "i4")])
        rec["a"] = np.arange(100.0)
        rec["b"] = np.arange(100)

        def prog(comm):
            if comm.rank == 0:
                comm.send(rec, dest=1)
                return None
            return comm.recv(source=0)

        got = run_spmd(2, prog, backend=spmd_backend)[1]
        assert got.dtype == rec.dtype
        np.testing.assert_array_equal(got["a"], rec["a"])
        np.testing.assert_array_equal(got["b"], rec["b"])

    def test_object_dtype_arrays_survive(self, spmd_backend):
        objs = np.array([{"i": i} for i in range(64)], dtype=object)

        def prog(comm):
            if comm.rank == 0:
                comm.send(objs, dest=1)
                return None
            return comm.recv(source=0)

        got = run_spmd(2, prog, backend=spmd_backend)[1]
        assert got.dtype == np.dtype(object)
        assert list(got) == list(objs)

    def test_compute_time_does_not_count_against_timeout(self, spmd_backend):
        # The receive timeout bounds *blocking*, not rank runtime: a rank
        # that computes for longer than the timeout and only then
        # communicates must complete on every backend.
        def prog(comm):
            time.sleep(0.8)
            return comm.sendrecv(
                comm.rank,
                dest=(comm.rank + 1) % comm.size,
                source=(comm.rank - 1) % comm.size,
            )

        res = run_spmd(2, prog, timeout=0.3, backend=spmd_backend)
        assert res.values == [1, 0]

    def test_timeout_restarts_on_transport_activity(self, spmd_backend):
        # The deadlock timeout detects a *silent* transport.  A rank may
        # wait longer than the timeout for a slow peer as long as other
        # traffic keeps arriving (thread transport: cond.wait restarts on
        # every notify; process transport must match).
        def prog(comm):
            if comm.rank == 0:
                got = comm.recv(source=2)
                for _ in range(6):
                    comm.recv(source=1, tag=5)
                return got
            if comm.rank == 1:
                for _ in range(6):
                    time.sleep(0.15)
                    comm.send("chatter", dest=0, tag=5)
                return None
            time.sleep(1.2)
            comm.send("late", dest=0)
            return None

        res = run_spmd(3, prog, timeout=0.6, backend=spmd_backend)
        assert res[0] == "late"

    def test_nested_container_payloads(self, spmd_backend):
        big = np.ones((32, 32))

        def prog(comm):
            if comm.rank == 0:
                comm.send(
                    {"arrays": [big, big * 2], "pair": (big * 3, "label")},
                    dest=1,
                )
                return None
            return comm.recv(source=0)

        got = run_spmd(2, prog, backend=spmd_backend)[1]
        np.testing.assert_array_equal(got["arrays"][1], big * 2)
        np.testing.assert_array_equal(got["pair"][0], big * 3)
        assert got["pair"][1] == "label"

    def test_collectives_agree_with_local_math(self, spmd_backend):
        p = 4
        data = [np.full(100, float(r + 1)) for r in range(p)]

        def prog(comm):
            total = comm.allreduce(data[comm.rank], SUM)
            everyone = comm.allgather(comm.rank)
            swapped = comm.alltoall([comm.rank * 10 + j for j in range(p)])
            block = comm.reduce_scatter_block(
                np.arange(float(p * 2)) + comm.rank, SUM
            )
            return float(total[0]), everyone, swapped, block.tolist()

        res = run_spmd(p, prog, backend=spmd_backend)
        for rank, (total, everyone, swapped, block) in enumerate(res):
            assert total == 10.0
            assert everyone == [0, 1, 2, 3]
            assert swapped == [j * 10 + rank for j in range(p)]
            expected = [
                sum(2 * rank + i + r for r in range(p)) for i in range(2)
            ]
            assert block == expected

    def test_subcommunicator_split(self, spmd_backend):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.allreduce(comm.rank)

        res = run_spmd(4, prog, backend=spmd_backend)
        assert res.values == [2, 4, 2, 4]

    def test_poisoning_fails_fast(self, spmd_backend):
        # Rank 0 dies immediately; rank 1 blocks on a receive with a long
        # timeout.  Poisoning must unblock rank 1 well before the timeout
        # and the error must carry only the primary failure.
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("original failure")
            comm.recv(source=0)

        start = time.monotonic()
        with pytest.raises(SpmdError, match="original failure") as exc_info:
            run_spmd(2, prog, timeout=30.0, backend=spmd_backend)
        assert time.monotonic() - start < 10.0
        assert set(exc_info.value.failures) == {0}

    def test_deadlock_timeout(self, spmd_backend):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1)  # never sent

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=0.3, backend=spmd_backend)
        assert any(
            isinstance(e, DeadlockError)
            for e in exc_info.value.failures.values()
        )

    def test_all_rank_failures_reported(self, spmd_backend):
        def prog(comm):
            raise KeyError(f"rank{comm.rank}")

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(3, prog, backend=spmd_backend)
        assert set(exc_info.value.failures) == {0, 1, 2}

    def test_ledger_charges_recorded(self, spmd_backend):
        def prog(comm):
            with comm.section("work"):
                comm.add_flops(1000)
            comm.allreduce(np.ones(64))
            return None

        res = run_spmd(2, prog, backend=spmd_backend)
        assert res.ledger.total_flops() == 2000
        assert res.ledger.total_messages() == 2
        assert "work" in res.ledger.section_times()
        assert res.modeled_time > 0


class TestCrossBackendParity(ExplicitBackends):
    """The two backends must be observationally indistinguishable."""

    def _run_everywhere(self, prog, n=4, **kwargs):
        return {
            name: run_spmd(n, prog, backend=name, **kwargs)
            for name in ("thread", "process")
        }

    def test_bitwise_identical_allreduce(self):
        data = [
            np.random.default_rng(r).standard_normal(257) for r in range(4)
        ]

        def prog(comm):
            return comm.allreduce(data[comm.rank], SUM)

        by_backend = self._run_everywhere(prog)
        for a, b in zip(
            by_backend["thread"].values, by_backend["process"].values
        ):
            assert a.tobytes() == b.tobytes()

    def test_identical_ledger_event_counts(self):
        def prog(comm):
            comm.bcast(np.ones(50), root=0)
            comm.allgather(comm.rank)
            comm.send(comm.rank, dest=(comm.rank + 1) % comm.size)
            comm.recv(source=(comm.rank - 1) % comm.size)
            comm.add_flops(123)
            return None

        by_backend = self._run_everywhere(prog)
        thread, process = by_backend["thread"], by_backend["process"]
        assert thread.ledger.summary() == process.ledger.summary()
        assert thread.ledger.section_times() == process.ledger.section_times()
        for rank in range(4):
            t_row = thread.ledger.rank_costs(rank)
            p_row = process.ledger.rank_costs(rank)
            assert t_row.messages == p_row.messages
            assert t_row.words_sent == p_row.words_sent
            assert t_row.flops == p_row.flops
            assert t_row.time == p_row.time


class TestProcessBackendRestrictions(ExplicitBackends):
    def test_unpicklable_return_value_fails_that_rank(self):
        def prog(comm):
            if comm.rank == 1:
                return lambda: None  # not picklable
            return comm.rank

        with pytest.raises(SpmdError, match="cannot send back") as exc_info:
            run_spmd(2, prog, backend="process")
        assert set(exc_info.value.failures) == {1}

    def test_parent_state_is_not_mutated(self):
        # Under fork, rank mutations of captured objects stay in the child.
        box = {"touched": False}

        def prog(comm):
            box["touched"] = True

        run_spmd(2, prog, backend="process")
        assert box["touched"] is False

    def test_backend_instance_accepted(self):
        res = run_spmd(2, _pid_prog, backend=ProcessBackend())
        assert len(set(res.values)) == 2

    def test_clean_exit_without_report_detected(self, monkeypatch):
        # A rank whose process dies with exit code 0 before reporting
        # (os._exit in rank code, a native library pulling the plug) must
        # surface as a failure, not hang the parent forever.
        from repro.mpi import backends

        monkeypatch.setattr(backends, "_EXIT_REPORT_GRACE", 0.5)

        def prog(comm):
            if comm.rank == 1:
                os._exit(0)
            return comm.rank

        with pytest.raises(SpmdError, match="before reporting") as exc_info:
            run_spmd(2, prog, backend="process", timeout=60.0)
        failure = exc_info.value.failures[1]
        assert isinstance(failure, RankDeadError)
        assert failure.dead_rank == 1
        assert failure.exitcode == 0
