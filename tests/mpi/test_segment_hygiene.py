"""Segment hygiene: nothing leaks — segments, windows, or pooled workers.

Shared-memory names live in ``/dev/shm`` on Linux, so leak checking is
direct: snapshot the directory, hammer the process backend (healthy runs,
rank failures, deadlock timeouts — through the arena, the zero-copy views
and the collective windows), tear the pools down, and require the
snapshot to match.  Worker hygiene is checked the same way through
``multiprocessing.active_children``.
"""

import gc
import multiprocessing
import os

import numpy as np
import pytest

from repro.mpi import (
    SUM,
    RankDeadError,
    SpmdError,
    run_spmd,
    shutdown_worker_pools,
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a Linux /dev/shm"
)


@pytest.fixture(autouse=True)
def spmd_backend():
    """Shadow the package sweep: everything here is process-backend."""
    return None


def _segments() -> set[str]:
    # psm_: multiprocessing auto-names; rps_: the runtime's explicitly
    # named segments (transport payloads, status boards); rphp_:
    # hugepage-backed segments.
    return {
        n
        for n in os.listdir("/dev/shm")
        if n.startswith(("psm_", "rps_", "rphp_"))
    }


def _children() -> int:
    return len(multiprocessing.active_children())


@pytest.fixture(autouse=True)
def clean_slate():
    shutdown_worker_pools()
    gc.collect()
    before_segments = _segments()
    before_children = _children()
    yield
    shutdown_worker_pools()
    gc.collect()
    leaked = _segments() - before_segments
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    assert _children() == before_children, "leaked worker processes"


def _healthy(comm, x):
    view = comm.sendrecv(
        x, dest=(comm.rank + 1) % comm.size, source=(comm.rank - 1) % comm.size
    )
    total = comm.allreduce(x, SUM)
    gathered = comm.allgather(x[:100])
    block = comm.reduce_scatter_block(
        np.tile(x[: 2 * comm.size, None], (1, 50)), SUM
    )
    return float(view[0] + total[0] + gathered[0][0] + block[0][0])


def _unmatched_sender(comm):
    # Deliberately leaves undelivered messages in flight: the executor
    # must reclaim their segments when the run ends.
    comm.send(np.arange(3000.0), dest=(comm.rank + 1) % comm.size, tag=99)
    return comm.rank


def _crash_mid_collective(comm, x):
    if comm.rank == 1:
        raise RuntimeError("induced failure")
    comm.allgather(x)  # poisoned mid-window for the survivors
    return None


def _deadlock(comm):
    if comm.rank == 0:
        comm.recv(source=1)  # never sent
    return None


class TestSegmentHygiene:
    def test_healthy_runs_leak_nothing(self):
        x = np.random.default_rng(0).standard_normal(4096)
        for _ in range(3):  # pooled, warm after the first
            run_spmd(4, _healthy, x, backend="process")

    def test_unmatched_sends_are_reclaimed(self):
        for _ in range(2):
            res = run_spmd(3, _unmatched_sender, backend="process")
            assert res.values == [0, 1, 2]

    def test_rank_failure_leaks_nothing(self):
        x = np.random.default_rng(1).standard_normal(50_000)
        with pytest.raises(SpmdError, match="induced failure"):
            run_spmd(3, _crash_mid_collective, x, backend="process")

    def test_fork_mode_failure_leaks_nothing(self):
        big = np.random.default_rng(2).standard_normal(50_000)

        def prog(comm):  # closure: rides the fork fallback
            if comm.rank == 0:
                raise ValueError("fork-mode failure")
            comm.bcast(big, root=1)

        with pytest.raises(SpmdError, match="fork-mode failure"):
            run_spmd(3, prog, backend="process", timeout=10.0)

    def test_deadlock_timeout_leaks_nothing(self):
        with pytest.raises(SpmdError):
            run_spmd(2, _deadlock, backend="process", timeout=0.4)

    def test_sigkill_during_fence_leaks_nothing(self):
        # A rank SIGKILLed while its siblings are inside a collective
        # window fence: survivors must fail fast with RankDeadError and
        # the parent must reclaim the dead rank's segments + the window.
        from repro.config import RuntimeConfig

        x = np.random.default_rng(3).standard_normal(4096)
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                4,
                _healthy,
                x,
                backend="process",
                faults="rank=1:site=fence:kind=crash",
                # The fence site only exists on the windowed path: pin
                # windows on even when the environment turns them off.
                config=RuntimeConfig(),
            )
        assert any(
            isinstance(e, RankDeadError)
            for e in exc_info.value.failures.values()
        )
        # The pool must come back clean for the next run.
        res = run_spmd(4, _healthy, x, backend="process")
        assert np.isfinite(res.values[0])

    def test_sigkill_during_arena_send_leaks_nothing(self):
        # A rank SIGKILLed mid-send, after staging its payload in the
        # arena: the staged segment belongs to the dead process and must
        # be swept by the crash audit, not orphaned.
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                3,
                _unmatched_sender,
                backend="process",
                faults="rank=2:site=send:kind=crash",
            )
        assert any(
            isinstance(e, RankDeadError)
            for e in exc_info.value.failures.values()
        )
        res = run_spmd(3, _unmatched_sender, backend="process")
        assert res.values == [0, 1, 2]

    def test_budget_exhausted_run_leaks_nothing(self):
        # A budget small enough that every window/arena allocation is
        # denied: the run degrades to the p2p/pickle paths and still
        # must leave /dev/shm exactly as it found it.
        from repro.config import RuntimeConfig

        x = np.random.default_rng(4).standard_normal(4096)
        res = run_spmd(
            4,
            _healthy,
            x,
            backend="process",
            config=RuntimeConfig(shm_budget=4096),
        )
        assert res.resources is not None and res.resources.degraded

    def test_sigkill_mid_degradation_leaks_nothing(self):
        # A rank dies while the world is running degraded (tiny budget):
        # the crash audit must sweep whatever the denied-then-degraded
        # allocation path did manage to create.
        from repro.config import RuntimeConfig

        x = np.random.default_rng(5).standard_normal(4096)
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                4,
                _healthy,
                x,
                backend="process",
                config=RuntimeConfig(shm_budget=4096),
                faults="rank=1:site=allreduce:kind=crash",
            )
        assert any(
            isinstance(e, RankDeadError)
            for e in exc_info.value.failures.values()
        )
        res = run_spmd(4, _healthy, x, backend="process")
        assert np.isfinite(res.values[0])

    def test_deadline_abort_leaks_nothing(self):
        # Deadline blown mid-collective on every rank: teardown still
        # reclaims windows and staged segments.
        x = np.random.default_rng(6).standard_normal(4096)
        with pytest.raises(SpmdError):
            run_spmd(
                4,
                _healthy,
                x,
                backend="process",
                faults="rank=1:site=allreduce:kind=stall",
                deadline=1.0,
            )

    def test_pool_teardown_reaps_workers(self):
        # Force pooling: the claim under test is that *warm workers* are
        # reaped, regardless of any REPRO_SPMD_POOL=0 in the environment
        # (the CI fallback leg runs this whole suite with the pool off).
        from repro.mpi import ProcessBackend

        run_spmd(2, _unmatched_sender, backend=ProcessBackend(pool=True))
        assert _children() >= 2  # warm workers alive
        shutdown_worker_pools()
        assert _children() == 0
