"""Ledger-symmetry property suite: collectives charge rank-independent costs.

The paper's model is bulk-synchronous — a collective completes on every
member simultaneously and charges each of them the same closed-form tree
cost.  This suite pins that property for all nine collectives: identical
(seconds, words, messages) on every rank, under both executor backends,
with the shared-memory windows on and off, including *uneven* payloads
(where historical bugs lived: non-root ``scatter`` extrapolating its own
slice, ``gather``/``allgather`` extrapolating ``my_words * P``,
``alltoall`` charging its own row).

Backends come from the package-level ``spmd_backend`` sweep; the window
toggle is a local parameterization (pools are recycled around each test
so workers observe the right environment).  Rank functions live at module
scope so the process runs ride the warm pool.
"""

import numpy as np
import pytest

from repro.mpi import SUM, shutdown_worker_pools
from repro.mpi.process_transport import WINDOWS_ENV_VAR
from tests.conftest import spmd_unit


@pytest.fixture(params=["1", "0"], ids=["windows", "p2p"], autouse=True)
def window_mode(request, monkeypatch, spmd_backend):
    """Sweep the window fast path on/off (process backend only)."""
    if spmd_backend == "thread" and request.param == "0":
        pytest.skip("thread backend has no windows; one sweep suffices")
    shutdown_worker_pools()  # drop workers forked under the old env
    monkeypatch.setenv(WINDOWS_ENV_VAR, request.param)
    yield request.param
    shutdown_worker_pools()


def _uneven(rank: int, scale: int = 1) -> np.ndarray:
    """A per-rank array whose word count depends on the rank."""
    return np.arange(float(scale * (rank + 1) + 1)) + rank


def _barrier(comm):
    comm.barrier()


def _bcast(comm):
    comm.bcast(_uneven(2, 5) if comm.rank == comm.size - 1 else None,
               root=comm.size - 1)


def _gather_even(comm):
    comm.gather(np.full(6, float(comm.rank)), root=0)


def _gather_uneven(comm):
    comm.gather(_uneven(comm.rank), root=1)


def _allgather_even(comm):
    comm.allgather(np.full(5, float(comm.rank)))


def _allgather_uneven(comm):
    comm.allgather(_uneven(comm.rank))


def _scatter_even(comm):
    values = None
    if comm.rank == 0:
        values = [np.full(4, float(i)) for i in range(comm.size)]
    comm.scatter(values, root=0)


def _scatter_uneven(comm):
    values = None
    if comm.rank == 1:
        values = [_uneven(i, 3) for i in range(comm.size)]
    comm.scatter(values, root=1)


def _reduce(comm):
    comm.reduce(np.full(7, float(comm.rank)), SUM, root=comm.size - 1)


def _reduce_uneven(comm):
    # NumPy's SUM broadcasts, so a scalar on rank 0 against arrays
    # elsewhere is legal; the charge must still be the largest
    # contribution on every member.
    v = np.float64(2.0) if comm.rank == 0 else np.arange(8.0) + comm.rank
    comm.reduce(v, SUM, root=1)


def _allreduce(comm):
    comm.allreduce(np.full(3, float(comm.rank)), SUM)


def _allreduce_uneven(comm):
    v = np.float64(1.5) if comm.rank == comm.size - 1 else (
        np.arange(6.0) * comm.rank
    )
    comm.allreduce(v, SUM)


def _reduce_scatter_block(comm):
    comm.reduce_scatter_block(
        np.arange(float(3 * comm.size)) + comm.rank, SUM
    )


def _alltoall_even(comm):
    comm.alltoall([np.full(4, float(10 * comm.rank + j))
                   for j in range(comm.size)])


def _alltoall_uneven(comm):
    # Both per-pair sizes and per-rank row totals differ.
    comm.alltoall([_uneven(comm.rank + j) for j in range(comm.size)])


def _ireduce(comm):
    comm.ireduce(np.full(7, float(comm.rank)), SUM, root=comm.size - 1).wait()


def _ireduce_uneven(comm):
    v = np.float64(2.0) if comm.rank == 0 else np.arange(8.0) + comm.rank
    comm.ireduce(v, SUM, root=1).wait()


def _iallreduce(comm):
    comm.iallreduce(np.full(3, float(comm.rank)), SUM).wait()


def _iallreduce_uneven(comm):
    v = np.float64(1.5) if comm.rank == comm.size - 1 else (
        np.arange(6.0) * comm.rank
    )
    comm.iallreduce(v, SUM).wait()


def _ireduce_scatter_block(comm):
    comm.ireduce_scatter_block(
        np.arange(float(3 * comm.size)) + comm.rank, SUM
    ).wait()


def _ireduce_pipelined(comm):
    # Deeper than the double buffer: posts 3 and 4 force-complete rounds
    # 1 and 2; the user waits must still charge exactly once each.
    reqs = [
        comm.ireduce(np.full(5, float(comm.rank + i)), SUM, root=i % comm.size)
        for i in range(4)
    ]
    for req in reqs:
        req.wait()


def _isendrecv_ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.isendrecv(np.arange(5.0) + comm.rank, dest=right, source=left).wait()


def _isend_irecv_ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    send_req = comm.isend(np.full(6, float(comm.rank)), dest=right)
    recv_req = comm.irecv(source=left)
    recv_req.wait()
    send_req.wait()


COLLECTIVES = [
    _barrier,
    _bcast,
    _gather_even,
    _gather_uneven,
    _allgather_even,
    _allgather_uneven,
    _scatter_even,
    _scatter_uneven,
    _reduce,
    _reduce_uneven,
    _allreduce,
    _allreduce_uneven,
    _reduce_scatter_block,
    _alltoall_even,
    _alltoall_uneven,
    _ireduce,
    _ireduce_uneven,
    _iallreduce,
    _iallreduce_uneven,
    _ireduce_scatter_block,
    _ireduce_pipelined,
    _isendrecv_ring,
    _isend_irecv_ring,
]

#: (blocking, non-blocking) pairs that must charge identically: deferred
#: completion moves *when* the charge lands, never what is charged.
NONBLOCKING_PAIRS = [
    (_reduce, _ireduce),
    (_reduce_uneven, _ireduce_uneven),
    (_allreduce, _iallreduce),
    (_allreduce_uneven, _iallreduce_uneven),
    (_reduce_scatter_block, _ireduce_scatter_block),
]


@pytest.mark.parametrize("prog", COLLECTIVES, ids=lambda f: f.__name__.strip("_"))
@pytest.mark.parametrize("p", [3, 4])
def test_collective_charges_are_rank_independent(prog, p):
    res = spmd_unit(p, prog)
    rows = [res.ledger.rank_costs(r) for r in range(p)]
    reference = (rows[0].time, rows[0].words_sent, rows[0].messages)
    for rank, row in enumerate(rows):
        assert (row.time, row.words_sent, row.messages) == pytest.approx(
            reference
        ), f"rank {rank} charged {row} != rank 0's {reference} in {prog.__name__}"


@pytest.mark.parametrize(
    "blocking_prog,nb_prog",
    NONBLOCKING_PAIRS,
    ids=lambda f: f.__name__.strip("_") if callable(f) else f,
)
def test_nonblocking_charges_equal_blocking(blocking_prog, nb_prog):
    p = 4
    blocking = spmd_unit(p, blocking_prog)
    nonblocking = spmd_unit(p, nb_prog)
    for rank in range(p):
        b = blocking.ledger.rank_costs(rank)
        nb = nonblocking.ledger.rank_costs(rank)
        assert (b.time, b.words_sent, b.messages) == (
            nb.time, nb.words_sent, nb.messages
        ), f"rank {rank}: {nb_prog.__name__} diverged from {blocking_prog.__name__}"


def _sendrecv_ring_uneven(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.sendrecv(_uneven(comm.rank, 2), dest=right, source=left)


def _isendrecv_ring_uneven(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.isendrecv(_uneven(comm.rank, 2), dest=right, source=left).wait()


def test_isendrecv_charges_equal_sendrecv():
    # Uneven per-rank payloads: each rank's deferred exchange must charge
    # exactly what its blocking one did (send leg from the sent words,
    # recv leg from the *received* words).
    blocking = spmd_unit(4, _sendrecv_ring_uneven)
    deferred = spmd_unit(4, _isendrecv_ring_uneven)
    for rank in range(4):
        b = blocking.ledger.rank_costs(rank)
        d = deferred.ledger.rank_costs(rank)
        assert (b.time, b.words_sent, b.messages) == (
            d.time, d.words_sent, d.messages
        )


def _ring_pipelined(comm):
    # The shared mode-column ring pipeline (dist_gram / dist_mode_svd):
    # every hop ships the same payload, all hops posted up front.
    from repro.distributed import mode_ring_hops, ring_exchange

    hops = mode_ring_hops(comm.size, comm.rank, tag="ring")
    payload = np.arange(6.0) + comm.rank
    for _hop, _w in ring_exchange(comm, payload, hops, pipelined=True):
        pass


def _ring_blocking(comm):
    from repro.distributed import mode_ring_hops, ring_exchange

    hops = mode_ring_hops(comm.size, comm.rank, tag="ring")
    payload = np.arange(6.0) + comm.rank
    for _hop, _w in ring_exchange(comm, payload, hops, pipelined=False):
        pass


def _butterfly_overlapped(comm):
    # Power-of-two butterfly TSQR with equal local slabs: every rank runs
    # the identical exchange/fold schedule, so charges must be symmetric.
    from repro.distributed import tsqr_r

    local = np.arange(12.0).reshape(4, 3) + comm.rank
    tsqr_r(comm, local, tree="butterfly", overlap=True)


def _butterfly_blocking(comm):
    from repro.distributed import tsqr_r

    local = np.arange(12.0).reshape(4, 3) + comm.rank
    tsqr_r(comm, local, tree="butterfly", overlap=False)


@pytest.mark.parametrize(
    "prog", [_ring_pipelined, _ring_blocking],
    ids=lambda f: f.__name__.strip("_"),
)
@pytest.mark.parametrize("p", [3, 4])
def test_ring_exchange_charges_are_rank_independent(prog, p):
    res = spmd_unit(p, prog)
    rows = [res.ledger.rank_costs(r) for r in range(p)]
    reference = (rows[0].time, rows[0].words_sent, rows[0].messages)
    for rank, row in enumerate(rows):
        assert (row.time, row.words_sent, row.messages) == pytest.approx(
            reference
        ), f"rank {rank} charged {row} != rank 0's {reference}"


def test_ring_pipelining_does_not_move_charges():
    pipelined = spmd_unit(4, _ring_pipelined)
    blocking = spmd_unit(4, _ring_blocking)
    for rank in range(4):
        a = pipelined.ledger.rank_costs(rank)
        b = blocking.ledger.rank_costs(rank)
        assert (a.time, a.words_sent, a.messages) == (
            b.time, b.words_sent, b.messages
        )


@pytest.mark.parametrize(
    "prog", [_butterfly_overlapped, _butterfly_blocking],
    ids=lambda f: f.__name__.strip("_"),
)
@pytest.mark.parametrize("p", [2, 4])
def test_butterfly_charges_are_rank_independent_at_powers_of_two(prog, p):
    # Non-power-of-two butterflies are legitimately asymmetric (skipped
    # rounds, fix-up fan-out), like the binary tree always was; at
    # power-of-two sizes the schedule is identical on every rank and the
    # charges must be too — flops included (equal slabs fold equal stacks).
    res = spmd_unit(p, prog)
    rows = [res.ledger.rank_costs(r) for r in range(p)]
    reference = (
        rows[0].time, rows[0].words_sent, rows[0].messages, rows[0].flops
    )
    for rank, row in enumerate(rows):
        assert (
            row.time, row.words_sent, row.messages, row.flops
        ) == pytest.approx(reference), f"rank {rank} diverged"


@pytest.mark.parametrize("p", [2, 3, 4, 5])
def test_butterfly_overlap_does_not_move_charges(p):
    overlapped = spmd_unit(p, _butterfly_overlapped)
    blocking = spmd_unit(p, _butterfly_blocking)
    for rank in range(p):
        a = overlapped.ledger.rank_costs(rank)
        b = blocking.ledger.rank_costs(rank)
        assert (a.time, a.words_sent, a.messages, a.flops) == (
            b.time, b.words_sent, b.messages, b.flops
        )


def _allgather_f32(comm):
    comm.allgather(np.full(8, float(comm.rank), dtype=np.float32))


def _allreduce_f32(comm):
    comm.allreduce(np.full(8, float(comm.rank), dtype=np.float32), SUM)


def _ring_f32(comm):
    from repro.distributed import mode_ring_hops, ring_exchange

    hops = mode_ring_hops(comm.size, comm.rank, tag="ring32")
    payload = (np.arange(8.0) + comm.rank).astype(np.float32)
    for _hop, _w in ring_exchange(comm, payload, hops, pipelined=True):
        pass


NARROW_COLLECTIVES = [_allgather_f32, _allreduce_f32, _ring_f32]


@pytest.mark.parametrize(
    "prog", NARROW_COLLECTIVES, ids=lambda f: f.__name__.strip("_")
)
@pytest.mark.parametrize("p", [3, 4])
def test_narrowed_word_charges_are_rank_independent(prog, p):
    # float32 payloads ship half-width words through windows and relays
    # alike; the tree-cost charge must stay identical on every member.
    res = spmd_unit(p, prog)
    rows = [res.ledger.rank_costs(r) for r in range(p)]
    reference = (rows[0].time, rows[0].words_sent, rows[0].messages)
    for rank, row in enumerate(rows):
        assert (row.time, row.words_sent, row.messages) == pytest.approx(
            reference
        ), f"rank {rank} charged {row} != rank 0's {reference} in {prog.__name__}"


def _allgather_f64_8(comm):
    comm.allgather(np.full(8, float(comm.rank)))


def test_narrowed_words_charge_half_of_float64():
    # 8 float32 elements are 4 words (ceil(32 bytes / 8)); the same count
    # of float64 elements is 8.  Latency and message counts are identical,
    # so on the unit machine only the word charge moves.
    narrow = spmd_unit(4, _allgather_f32)
    wide = spmd_unit(4, _allgather_f64_8)
    for rank in range(4):
        n = narrow.ledger.rank_costs(rank)
        w = wide.ledger.rank_costs(rank)
        assert n.messages == w.messages
        assert 2 * n.words_sent == w.words_sent


def _sub_communicator_battery(comm):
    # Collectives on split-off communicators must stay symmetric within
    # each group as well (each group has its own window generation).
    sub = comm.split(color=comm.rank % 2)
    sub.gather(_uneven(sub.rank), root=0)
    sub.alltoall([_uneven(sub.rank + j) for j in range(sub.size)])
    sub.barrier()


def test_sub_communicator_collectives_stay_symmetric():
    res = spmd_unit(4, _sub_communicator_battery)
    rows = [res.ledger.rank_costs(r) for r in range(4)]
    # Groups {0,2} and {1,3} ran identical programs on equal-sized groups
    # with rank-symmetric payloads... but payloads depend on *group* rank,
    # so symmetry must hold within each parity class.
    for a, b in ((0, 2), (1, 3)):
        assert (rows[a].time, rows[a].words_sent, rows[a].messages) == (
            rows[b].time, rows[b].words_sent, rows[b].messages
        )
