"""Ledger-symmetry property suite: collectives charge rank-independent costs.

The paper's model is bulk-synchronous — a collective completes on every
member simultaneously and charges each of them the same closed-form tree
cost.  This suite pins that property for all nine collectives: identical
(seconds, words, messages) on every rank, under both executor backends,
with the shared-memory windows on and off, including *uneven* payloads
(where historical bugs lived: non-root ``scatter`` extrapolating its own
slice, ``gather``/``allgather`` extrapolating ``my_words * P``,
``alltoall`` charging its own row).

Backends come from the package-level ``spmd_backend`` sweep; the window
toggle is a local parameterization (pools are recycled around each test
so workers observe the right environment).  Rank functions live at module
scope so the process runs ride the warm pool.
"""

import numpy as np
import pytest

from repro.mpi import SUM, shutdown_worker_pools
from repro.mpi.process_transport import WINDOWS_ENV_VAR
from tests.conftest import spmd_unit


@pytest.fixture(params=["1", "0"], ids=["windows", "p2p"], autouse=True)
def window_mode(request, monkeypatch, spmd_backend):
    """Sweep the window fast path on/off (process backend only)."""
    if spmd_backend == "thread" and request.param == "0":
        pytest.skip("thread backend has no windows; one sweep suffices")
    shutdown_worker_pools()  # drop workers forked under the old env
    monkeypatch.setenv(WINDOWS_ENV_VAR, request.param)
    yield request.param
    shutdown_worker_pools()


def _uneven(rank: int, scale: int = 1) -> np.ndarray:
    """A per-rank array whose word count depends on the rank."""
    return np.arange(float(scale * (rank + 1) + 1)) + rank


def _barrier(comm):
    comm.barrier()


def _bcast(comm):
    comm.bcast(_uneven(2, 5) if comm.rank == comm.size - 1 else None,
               root=comm.size - 1)


def _gather_even(comm):
    comm.gather(np.full(6, float(comm.rank)), root=0)


def _gather_uneven(comm):
    comm.gather(_uneven(comm.rank), root=1)


def _allgather_even(comm):
    comm.allgather(np.full(5, float(comm.rank)))


def _allgather_uneven(comm):
    comm.allgather(_uneven(comm.rank))


def _scatter_even(comm):
    values = None
    if comm.rank == 0:
        values = [np.full(4, float(i)) for i in range(comm.size)]
    comm.scatter(values, root=0)


def _scatter_uneven(comm):
    values = None
    if comm.rank == 1:
        values = [_uneven(i, 3) for i in range(comm.size)]
    comm.scatter(values, root=1)


def _reduce(comm):
    comm.reduce(np.full(7, float(comm.rank)), SUM, root=comm.size - 1)


def _reduce_uneven(comm):
    # NumPy's SUM broadcasts, so a scalar on rank 0 against arrays
    # elsewhere is legal; the charge must still be the largest
    # contribution on every member.
    v = np.float64(2.0) if comm.rank == 0 else np.arange(8.0) + comm.rank
    comm.reduce(v, SUM, root=1)


def _allreduce(comm):
    comm.allreduce(np.full(3, float(comm.rank)), SUM)


def _allreduce_uneven(comm):
    v = np.float64(1.5) if comm.rank == comm.size - 1 else (
        np.arange(6.0) * comm.rank
    )
    comm.allreduce(v, SUM)


def _reduce_scatter_block(comm):
    comm.reduce_scatter_block(
        np.arange(float(3 * comm.size)) + comm.rank, SUM
    )


def _alltoall_even(comm):
    comm.alltoall([np.full(4, float(10 * comm.rank + j))
                   for j in range(comm.size)])


def _alltoall_uneven(comm):
    # Both per-pair sizes and per-rank row totals differ.
    comm.alltoall([_uneven(comm.rank + j) for j in range(comm.size)])


COLLECTIVES = [
    _barrier,
    _bcast,
    _gather_even,
    _gather_uneven,
    _allgather_even,
    _allgather_uneven,
    _scatter_even,
    _scatter_uneven,
    _reduce,
    _reduce_uneven,
    _allreduce,
    _allreduce_uneven,
    _reduce_scatter_block,
    _alltoall_even,
    _alltoall_uneven,
]


@pytest.mark.parametrize("prog", COLLECTIVES, ids=lambda f: f.__name__.strip("_"))
@pytest.mark.parametrize("p", [3, 4])
def test_collective_charges_are_rank_independent(prog, p):
    res = spmd_unit(p, prog)
    rows = [res.ledger.rank_costs(r) for r in range(p)]
    reference = (rows[0].time, rows[0].words_sent, rows[0].messages)
    for rank, row in enumerate(rows):
        assert (row.time, row.words_sent, row.messages) == pytest.approx(
            reference
        ), f"rank {rank} charged {row} != rank 0's {reference} in {prog.__name__}"


def _sub_communicator_battery(comm):
    # Collectives on split-off communicators must stay symmetric within
    # each group as well (each group has its own window generation).
    sub = comm.split(color=comm.rank % 2)
    sub.gather(_uneven(sub.rank), root=0)
    sub.alltoall([_uneven(sub.rank + j) for j in range(sub.size)])
    sub.barrier()


def test_sub_communicator_collectives_stay_symmetric():
    res = spmd_unit(4, _sub_communicator_battery)
    rows = [res.ledger.rank_costs(r) for r in range(4)]
    # Groups {0,2} and {1,3} ran identical programs on equal-sized groups
    # with rank-symmetric payloads... but payloads depend on *group* rank,
    # so symmetry must hold within each parity class.
    for a, b in ((0, 2), (1, 3)):
        assert (rows[a].time, rows[a].words_sent, rows[a].messages) == (
            rows[b].time, rows[b].words_sent, rows[b].messages
        )
