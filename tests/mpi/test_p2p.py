"""Point-to-point communication tests for the simulated MPI."""

import numpy as np
import pytest

from repro.mpi import BufferMismatchError, CommunicatorError, SpmdError
from tests.conftest import spmd


class TestObjectSendRecv:
    def test_ping(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1)
                return None
            return comm.recv(source=0)

        res = spmd(2, prog)
        assert res[1] == {"x": 1}

    def test_tags_demultiplex(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            # Receive in reverse tag order.
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return first, second

        assert spmd(2, prog)[1] == ("a", "b")

    def test_message_ordering_same_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(10)]

        assert spmd(2, prog)[1] == list(range(10))

    def test_array_payload_copied(self):
        def prog(comm):
            if comm.rank == 0:
                arr = np.ones(4)
                comm.send(arr, dest=1)
                arr[:] = -1  # must not affect the receiver
                return None
            return comm.recv(source=0)

        np.testing.assert_array_equal(spmd(2, prog)[1], np.ones(4))

    def test_invalid_dest_raises(self):
        def prog(comm):
            comm.send(1, dest=5)

        with pytest.raises(SpmdError, match="dest=5 out of range"):
            spmd(2, prog)


class TestBufferSendRecv:
    def test_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6, dtype=np.float64), dest=1)
                return None
            buf = np.empty(6)
            comm.Recv(buf, source=0)
            return buf

        np.testing.assert_array_equal(spmd(2, prog)[1], np.arange(6.0))

    def test_shape_compatible_reshape(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6, dtype=np.float64).reshape(2, 3), dest=1)
                return None
            buf = np.empty((3, 2))
            comm.Recv(buf, source=0)
            return buf

        # Same element count: data is linearized into the buffer.
        assert spmd(2, prog)[1].size == 6

    def test_dtype_mismatch(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(3, dtype=np.float64), dest=1)
                return None
            buf = np.empty(3, dtype=np.int64)
            comm.Recv(buf, source=0)

        with pytest.raises(SpmdError) as exc_info:
            spmd(2, prog)
        assert any(
            isinstance(e, BufferMismatchError)
            for e in exc_info.value.failures.values()
        )

    def test_size_mismatch(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(3), dest=1)
                return None
            buf = np.empty(5)
            comm.Recv(buf, source=0)

        with pytest.raises(SpmdError):
            spmd(2, prog)

    def test_send_rejects_non_array(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send([1, 2, 3], dest=1)
            else:
                comm.recv(source=0)

        with pytest.raises(SpmdError):
            spmd(2, prog)


class TestSendrecv:
    def test_ring_shift_no_deadlock(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        res = spmd(4, prog)
        assert res.values == [3, 0, 1, 2]

    def test_self_exchange(self):
        def prog(comm):
            return comm.sendrecv("me", dest=comm.rank, source=comm.rank)

        assert spmd(2, prog).values == ["me", "me"]


class TestNonblocking:
    def test_isend_irecv(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(99, dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            assert not req.test()
            value = req.wait()
            assert req.test()
            return value

        assert spmd(2, prog)[1] == 99

    def test_isend_completes_at_wait_not_post(self):
        # Deferred completion: the request is not done after posting...
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(6.0), dest=1)
                assert not req.test()
                # ...but the payload is already staged (eager protocol):
                # the receiver can match the message before we wait.
                token = comm.recv(source=1)
                assert token == "received"
                req.wait()
                assert req.test()
                return None
            value = comm.recv(source=0)
            comm.send("received", dest=0)
            return value

        np.testing.assert_array_equal(spmd(2, prog)[1], np.arange(6.0))

    def test_isend_charge_lands_at_wait(self):
        # An unwaited isend must not have charged the ledger yet; the
        # waited one must charge exactly what a blocking send does.
        from tests.conftest import spmd_unit

        def prog(comm):
            if comm.rank == 0:
                before = comm.ledger.rank_costs(comm.world_rank).messages
                req = comm.isend(np.arange(8.0), dest=1)
                posted = comm.ledger.rank_costs(comm.world_rank).messages
                req.wait()
                after = comm.ledger.rank_costs(comm.world_rank).messages
                return before, posted, after
            comm.recv(source=0)
            return None

        before, posted, after = spmd_unit(2, prog)[0]
        assert posted == before  # nothing charged at post
        assert after == before + 1  # exactly one message at completion

    def test_isendrecv_ring_shift(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            req = comm.isendrecv(comm.rank, dest=right, source=left)
            assert not req.test()
            return req.wait()

        res = spmd(4, prog)
        assert res.values == [3, 0, 1, 2]

    def test_isendrecv_matches_blocking_sendrecv(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            payload = np.arange(5.0) + comm.rank
            a = comm.isendrecv(payload, dest=right, source=left, tag=1).wait()
            b = comm.sendrecv(payload, dest=right, source=left, tag=2)
            return np.asarray(a).tobytes(), np.asarray(b).tobytes()

        for a, b in spmd(3, prog):
            assert a == b

    def test_pipelined_ring_all_hops_in_flight(self):
        # The dist_gram pattern: every hop's exchange is posted before
        # the previous hop's wait; per-tag mailboxes keep them matched.
        def prog(comm):
            p = comm.size
            reqs = [
                comm.isendrecv(
                    (comm.rank, i),
                    dest=(comm.rank - i) % p,
                    source=(comm.rank + i) % p,
                    tag=i,
                )
                for i in range(1, p)
            ]
            return [req.wait() for req in reqs]

        res = spmd(4, prog)
        for rank, hops in enumerate(res.values):
            for i, (src, hop) in enumerate(hops, start=1):
                assert src == (rank + i) % 4 and hop == i

    def test_isendrecv_uneven_sizes(self):
        # The two legs may carry different sizes (the recv leg must be
        # charged from the received payload, like blocking sendrecv).
        from tests.conftest import spmd_unit

        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            payload = np.arange(float(4 * (comm.rank + 1)))
            got = comm.isendrecv(payload, dest=right, source=left).wait()
            return got.size

        res = spmd_unit(3, prog)
        assert res.values == [12, 4, 8]
