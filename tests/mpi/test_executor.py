"""SPMD executor tests: results, failures, deadlock detection."""

import numpy as np
import pytest

from repro.mpi import DeadlockError, SpmdError, run_spmd
from tests.conftest import spmd


class TestResults:
    def test_values_in_rank_order(self):
        res = spmd(5, lambda comm: comm.rank * 2)
        assert res.values == [0, 2, 4, 6, 8]

    def test_iteration_and_indexing(self):
        res = spmd(3, lambda comm: comm.rank)
        assert list(res) == [0, 1, 2]
        assert res[2] == 2

    def test_shared_args(self):
        res = spmd(2, lambda comm, x, y: x + y + comm.rank, 10, 20)
        assert res.values == [30, 31]

    def test_rank_args(self):
        res = run_spmd(
            3,
            lambda comm, shared, mine: (shared, mine),
            "s",
            rank_args=[("a",), ("b",), ("c",)],
        )
        assert res.values == [("s", "a"), ("s", "b"), ("s", "c")]

    def test_rank_args_length_checked(self):
        with pytest.raises(ValueError, match="rank_args"):
            run_spmd(3, lambda comm: None, rank_args=[()])

    def test_nonpositive_ranks_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_single_rank(self):
        assert spmd(1, lambda comm: comm.size).values == [1]


class TestFailurePropagation:
    def test_one_rank_raises(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 broke")
            return "ok"

        with pytest.raises(SpmdError, match="rank 1 broke") as exc_info:
            spmd(3, prog)
        assert set(exc_info.value.failures) == {1}

    def test_blocked_peers_fail_fast_not_reported(self):
        # Rank 0 dies; rank 1 is blocked receiving from it.  The SpmdError
        # must surface rank 0's original exception, not rank 1's induced
        # deadlock.
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("original failure")
            comm.recv(source=0)

        with pytest.raises(SpmdError, match="original failure") as exc_info:
            spmd(2, prog)
        assert 0 in exc_info.value.failures
        assert 1 not in exc_info.value.failures

    def test_all_ranks_fail(self):
        def prog(comm):
            raise KeyError(f"rank{comm.rank}")

        with pytest.raises(SpmdError) as exc_info:
            spmd(3, prog)
        assert set(exc_info.value.failures) == {0, 1, 2}


class TestDeadlockDetection:
    def test_recv_without_send_times_out(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1)  # never sent
            return None

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=0.2)
        assert any(
            isinstance(e, DeadlockError) for e in exc_info.value.failures.values()
        )

    def test_mismatched_collective_order(self):
        # Rank 0 calls bcast, rank 1 calls allreduce: sequence numbers match
        # but phases/structure differ; rank 1 blocks and times out.
        def prog(comm):
            if comm.rank == 0:
                return comm.gather(1, root=1)
            return comm.recv(source=0, tag=99)

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=0.2)


class TestLedgerIntegration:
    def test_result_exposes_ledger(self):
        res = spmd(2, lambda comm: comm.allreduce(1.0))
        assert res.ledger.n_ranks == 2
        assert res.modeled_time > 0

    def test_flop_charging(self):
        def prog(comm):
            comm.add_flops(1000)
            return None

        res = spmd(2, prog)
        assert res.ledger.total_flops() == 2000
