"""Property-based tests (hypothesis) for the simulated MPI collectives.

Each collective must agree with the obvious local computation for arbitrary
array shapes, rank counts, and reduction operators.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi import MAX, MIN, PROD, SUM
from repro.util.seeding import rng_for
from tests.conftest import spmd

ranks = st.integers(1, 6)
lengths = st.integers(1, 20)
ops = st.sampled_from([SUM, MAX, MIN])


def _values(p, length, seed):
    rng = rng_for(seed, "mpi-prop", p, length)
    return [rng.standard_normal(length) for _ in range(p)]


@given(p=ranks, length=lengths, seed=st.integers(0, 2**16), op=ops)
@settings(max_examples=25, deadline=None)
def test_allreduce_matches_local_fold(p, length, seed, op):
    values = _values(p, length, seed)

    def prog(comm):
        return comm.allreduce(values[comm.rank], op)

    expected = values[0]
    for v in values[1:]:
        expected = op(expected, v)
    for result in spmd(p, prog):
        np.testing.assert_allclose(result, expected, atol=1e-12)


@given(p=ranks, length=lengths, seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_allgather_collects_everything_in_order(p, length, seed):
    values = _values(p, length, seed)

    def prog(comm):
        return comm.allgather(values[comm.rank])

    for result in spmd(p, prog):
        assert len(result) == p
        for r, v in zip(result, values):
            np.testing.assert_array_equal(r, v)


@given(p=ranks, seed=st.integers(0, 2**16), root=st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_bcast_from_any_root(p, seed, root):
    root = root % p
    payload = rng_for(seed, "bcast", p).standard_normal(7)

    def prog(comm):
        value = payload if comm.rank == root else None
        return comm.bcast(value, root=root)

    for result in spmd(p, prog):
        np.testing.assert_array_equal(result, payload)


@given(p=st.integers(2, 6), blocks=st.integers(1, 4), seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_reduce_scatter_equals_reduce_then_slice(p, blocks, seed):
    total = p * blocks
    arrays = _values(p, total, seed)

    def prog(comm):
        return comm.reduce_scatter_block(arrays[comm.rank], SUM)

    expected_total = np.sum(arrays, axis=0)
    results = spmd(p, prog)
    for rank, block in enumerate(results):
        np.testing.assert_allclose(
            block, expected_total[rank * blocks : (rank + 1) * blocks],
            atol=1e-12,
        )


@given(p=st.integers(2, 6), seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_ring_sendrecv_is_permutation(p, seed):
    values = [float(v) for v in rng_for(seed, "ring", p).standard_normal(p)]

    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(values[comm.rank], dest=right, source=left)

    results = spmd(p, prog).values
    assert sorted(results) == sorted(values)
    for rank, received in enumerate(results):
        assert received == values[(rank - 1) % p]


@given(
    p=st.integers(2, 6),
    colors=st.lists(st.integers(0, 2), min_size=6, max_size=6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=20, deadline=None)
def test_split_partitions_exactly(p, colors, seed):
    colors = colors[:p]

    def prog(comm):
        sub = comm.split(color=colors[comm.rank])
        return sorted(sub.allgather(comm.rank))

    results = spmd(p, prog)
    for rank, members in enumerate(results):
        expected = sorted(r for r in range(p) if colors[r] == colors[rank])
        assert members == expected
