"""Cartesian grid communicator tests (paper Sec. IV geometry)."""

import numpy as np
import pytest

from repro.mpi import SUM, CartGrid, CommunicatorError, SpmdError
from tests.conftest import spmd


class TestGeometry:
    def test_coords_roundtrip(self):
        def prog(comm):
            g = CartGrid(comm, (2, 3, 2))
            assert g.rank_of(g.coords) == comm.rank
            assert g.coords_of(comm.rank) == g.coords
            return g.coords

        res = spmd(12, prog)
        assert sorted(res.values) == sorted(
            (i, j, k) for i in range(2) for j in range(3) for k in range(2)
        )

    def test_c_order_linearization(self):
        def prog(comm):
            g = CartGrid(comm, (2, 3))
            return g.coords

        res = spmd(6, prog)
        # Rank 0 -> (0,0), rank 1 -> (0,1), ..., rank 5 -> (1,2).
        assert res.values == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_size_mismatch_raises(self):
        def prog(comm):
            CartGrid(comm, (2, 2))

        with pytest.raises(SpmdError):
            spmd(6, prog)

    def test_shifted_wraps(self):
        def prog(comm):
            g = CartGrid(comm, (4,))
            return g.shifted(0, 1), g.shifted(0, -1)

        res = spmd(4, prog)
        assert res.values == [(1, 3), (2, 0), (3, 1), (0, 2)]

    def test_rank_of_validates(self):
        def prog(comm):
            g = CartGrid(comm, (2, 2))
            g.rank_of((2, 0))

        with pytest.raises(SpmdError):
            spmd(4, prog)


class TestSubCommunicators:
    def test_mode_column_rank_is_coordinate(self):
        def prog(comm):
            g = CartGrid(comm, (2, 3))
            col = g.mode_column(1)
            return col.rank == g.coords[1] and col.size == 3

        assert all(spmd(6, prog).values)

    def test_mode_row_size(self):
        def prog(comm):
            g = CartGrid(comm, (2, 3, 2))
            return g.mode_row(1).size

        assert set(spmd(12, prog).values) == {4}

    def test_column_sum_isolates_columns(self):
        def prog(comm):
            g = CartGrid(comm, (2, 2))
            col = g.mode_column(0)  # varies first coordinate
            return col.allreduce(comm.rank, SUM)

        res = spmd(4, prog)
        # Grid: rank0=(0,0) rank1=(0,1) rank2=(1,0) rank3=(1,1).
        # mode-0 columns: {0,2} and {1,3}.
        assert res.values == [2, 4, 2, 4]

    def test_row_sum_isolates_rows(self):
        def prog(comm):
            g = CartGrid(comm, (2, 2))
            row = g.mode_row(0)  # fixes first coordinate
            return row.allreduce(comm.rank, SUM)

        res = spmd(4, prog)
        assert res.values == [1, 1, 5, 5]

    def test_sub_communicators_cached(self):
        def prog(comm):
            g = CartGrid(comm, (2, 2))
            return g.mode_column(0) is g.mode_column(0)

        assert all(spmd(4, prog).values)

    def test_row_and_column_overlap_exactly_self(self):
        def prog(comm):
            g = CartGrid(comm, (2, 3, 2))
            col = g.mode_column(1)
            row = g.mode_row(1)
            col_members = set(col.allgather(comm.rank))
            row_members = set(row.allgather(comm.rank))
            return col_members & row_members == {comm.rank}

        assert all(spmd(12, prog).values)

    def test_invalid_mode(self):
        def prog(comm):
            g = CartGrid(comm, (2, 2))
            g.mode_column(2)

        with pytest.raises(SpmdError):
            spmd(4, prog)

    def test_degenerate_extent_one(self):
        def prog(comm):
            g = CartGrid(comm, (1, 4))
            return g.mode_column(0).size, g.mode_row(0).size

        assert set(spmd(4, prog).values) == {(1, 4)}
