"""Cost-ledger accounting tests, including unit-machine hand counts."""

import math

import numpy as np
import pytest

from repro.mpi import SUM, CostLedger
from repro.perfmodel.machine import UNIT, MachineSpec
from tests.conftest import spmd_unit


class TestLedgerBasics:
    def test_charge_time_accumulates(self):
        ledger = CostLedger(2, UNIT)
        ledger.charge_time(0, 1.5)
        ledger.charge_time(0, 0.5)
        assert ledger.rank_costs(0).time == 2.0
        assert ledger.rank_costs(1).time == 0.0

    def test_modeled_time_is_max_over_ranks(self):
        ledger = CostLedger(3, UNIT)
        ledger.charge_time(0, 1.0)
        ledger.charge_time(2, 5.0)
        assert ledger.modeled_time() == 5.0

    def test_charge_flops_uses_gamma(self):
        machine = MachineSpec(alpha=0, beta=0, gamma=2.0)
        ledger = CostLedger(1, machine)
        ledger.charge_flops(0, 10)
        assert ledger.rank_costs(0).time == 20.0
        assert ledger.total_flops() == 10

    def test_negative_charges_rejected(self):
        ledger = CostLedger(1, UNIT)
        with pytest.raises(ValueError):
            ledger.charge_time(0, -1.0)
        with pytest.raises(ValueError):
            ledger.charge_flops(0, -5)

    def test_memory_high_water_mark(self):
        ledger = CostLedger(1, UNIT)
        ledger.note_memory(0, 100)
        ledger.note_memory(0, 50)
        assert ledger.rank_costs(0).peak_memory_words == 100

    def test_invalid_n_ranks(self):
        with pytest.raises(ValueError):
            CostLedger(0, UNIT)


class TestSections:
    def test_default_section(self):
        ledger = CostLedger(1, UNIT)
        ledger.charge_time(0, 1.0)
        assert ledger.section_times() == {"other": 1.0}

    def test_nested_sections_innermost_wins(self):
        ledger = CostLedger(1, UNIT)
        with ledger.section("outer"):
            ledger.charge_time(0, 1.0)
            with ledger.section("inner"):
                ledger.charge_time(0, 2.0)
            ledger.charge_time(0, 4.0)
        times = ledger.section_times()
        assert times["outer"] == 5.0
        assert times["inner"] == 2.0

    def test_section_times_max_over_ranks(self):
        ledger = CostLedger(2, UNIT)
        with ledger.section("work"):
            ledger.charge_time(0, 1.0)
            ledger.charge_time(1, 3.0)
        assert ledger.section_times()["work"] == 3.0


class TestCollectiveCharging:
    """Verify the Table I formulas are charged on actual communication."""

    def test_allreduce_charge_matches_formula(self):
        p, words = 4, 10

        def prog(comm):
            comm.allreduce(np.zeros(words), SUM)
            return None

        res = spmd_unit(p, prog)
        # Unit machine: cost = 2 * 1 * log2(P) + 2 * (P-1)/P * W per rank.
        expected = 2 * math.log2(p) + 2 * (p - 1) / p * words
        assert res.ledger.rank_costs(0).time == pytest.approx(expected)

    def test_send_recv_charge(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(8), dest=1)
            else:
                comm.recv(source=0)
            return None

        res = spmd_unit(2, prog)
        # alpha + beta*W = 1 + 8 on each side.
        assert res.ledger.rank_costs(0).time == pytest.approx(9.0)
        assert res.ledger.rank_costs(1).time == pytest.approx(9.0)

    def test_allgather_charge(self):
        p = 8

        def prog(comm):
            comm.allgather(np.zeros(4))
            return None

        res = spmd_unit(p, prog)
        total_words = 4 * p
        expected = math.log2(p) + (p - 1) / p * total_words
        assert res.ledger.rank_costs(3).time == pytest.approx(expected)

    def test_words_counter_tracks_array_sizes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(16), dest=1)  # 16 words
            else:
                comm.recv(source=0)
            return None

        res = spmd_unit(2, prog)
        assert res.ledger.rank_costs(0).words_sent == 16

    def test_words_counter_recurses_into_dicts(self):
        # Regression: dict payloads used to fall through to the scalar
        # case and charge a single word, undercharging every collective
        # that moves a dict (factor exchanges, metadata broadcasts).
        def prog(comm):
            if comm.rank == 0:
                comm.send(
                    {"factor": np.zeros(16), "mode": 2, "tags": [1, 2]},
                    dest=1,
                )
            else:
                comm.recv(source=0)
            return None

        res = spmd_unit(2, prog)
        # 16 words for the array + 1 for the scalar + 2 for the list.
        assert res.ledger.rank_costs(0).words_sent == 19

    def test_words_of_nested_containers(self):
        from repro.mpi.comm import _words_of

        assert _words_of({"a": np.zeros(8), "b": {"c": np.zeros(4)}}) == 12
        assert _words_of({}) == 1
        assert _words_of({"x": 1}) == 1
        assert _words_of([np.zeros(2), (np.zeros(3), 5)]) == 6

    def test_sendrecv_uneven_legs_charge_their_own_sizes(self):
        # Regression: the receive leg used to be charged with the cost of
        # the *sent* payload, double-charging the send cost whenever the
        # two legs carried different sizes.
        def prog(comm):
            mine = np.zeros(8 if comm.rank == 0 else 24)
            other = comm.sendrecv(mine, dest=1 - comm.rank, source=1 - comm.rank)
            return other.size

        res = spmd_unit(2, prog)
        assert res.values == [24, 8]
        # Each rank: send leg alpha+beta*own + recv leg alpha+beta*theirs.
        expected = (1 + 8) + (1 + 24)
        for rank in range(2):
            row = res.ledger.rank_costs(rank)
            assert row.time == pytest.approx(expected)
            assert row.words_sent == 8 + 24
            assert row.messages == 2

    def test_sendrecv_even_legs_unchanged(self):
        def prog(comm):
            comm.sendrecv(np.zeros(4), dest=1 - comm.rank, source=1 - comm.rank)
            return None

        res = spmd_unit(2, prog)
        for rank in range(2):
            assert res.ledger.rank_costs(rank).time == pytest.approx(2 * (1 + 4))

    def test_alltoall_rounds_fractional_words_up(self):
        # Regression: 7 words across 4 ranks used to charge W/P = 1.75
        # words per message; the model counts whole words, so the share
        # must be ceil(7/4) = 2.
        p = 4

        def prog(comm):
            values = [np.zeros(1) for _ in range(comm.size)]
            values[0] = np.zeros(4)  # row total 7 words on every rank
            comm.alltoall(values)
            return None

        res = spmd_unit(p, prog)
        expected = (p - 1) * (1 + 2)  # (P-1) * (alpha + beta * ceil(7/4))
        for rank in range(p):
            assert res.ledger.rank_costs(rank).time == pytest.approx(expected)

    def test_scatter_uneven_payloads_charge_the_roots_total(self):
        # Regression: non-roots used to extrapolate their own slice
        # (my_words * P), diverging from the root's exact sum under
        # uneven payloads.
        p, sizes = 3, (1, 9, 2)

        def prog(comm):
            values = (
                [np.zeros(n) for n in sizes] if comm.rank == 0 else None
            )
            comm.scatter(values, root=0)
            return None

        res = spmd_unit(p, prog)
        total = sum(sizes)
        expected = math.log2(p) + (p - 1) / p * total  # bcast tree cost
        for rank in range(p):
            row = res.ledger.rank_costs(rank)
            assert row.time == pytest.approx(expected)
            assert row.words_sent == total

    def test_size_one_collectives_free(self):
        def prog(comm):
            comm.allreduce(np.zeros(100), SUM)
            comm.allgather(1)
            comm.bcast(2)
            return None

        res = spmd_unit(1, prog)
        assert res.ledger.modeled_time() == 0.0

    def test_summary_keys(self):
        res = spmd_unit(2, lambda comm: comm.allreduce(1.0))
        summary = res.ledger.summary()
        assert set(summary) == {
            "modeled_time",
            "total_flops",
            "total_words",
            "total_messages",
        }
