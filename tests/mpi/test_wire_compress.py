"""Compressed-communication knob: ``REPRO_WIRE_COMPRESS`` ring-hop downcast.

When enabled, float64 point-to-point payloads (``sendrecv``/``isendrecv``
— the Gram and TSQR ring hops) travel the wire as float32 and are upcast
on arrival: half the charged words, a deliberate ~1e-7 relative loss.
The knob is off by default, never touches collectives or non-float64
payloads, and both peers must charge the narrowed words identically.

The flag is resolved once per communicator (at ``run_spmd`` construction,
like every config knob), so each test sets the environment and recycles
the worker pools before launching.
"""

import numpy as np
import pytest

from repro.mpi import SUM, shutdown_worker_pools
from tests.conftest import spmd_unit


@pytest.fixture(params=["0", "1"], ids=["off", "on"])
def wire_mode(request, monkeypatch):
    shutdown_worker_pools()  # drop workers forked under the old env
    monkeypatch.setenv("REPRO_WIRE_COMPRESS", request.param)
    yield request.param
    shutdown_worker_pools()


def _ring_f64(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    payload = np.pi * (np.arange(8.0) + 1.0) + comm.rank
    received = comm.sendrecv(payload, dest=right, source=left)
    expected_exact = np.pi * (np.arange(8.0) + 1.0) + left
    return (
        str(received.dtype),
        bool(np.array_equal(received, expected_exact)),
        float(np.max(np.abs(received - expected_exact))),
    )


def _iring_f64(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    payload = np.pi * (np.arange(8.0) + 1.0) + comm.rank
    received = comm.isendrecv(payload, dest=right, source=left).wait()
    expected_exact = np.pi * (np.arange(8.0) + 1.0) + left
    return (
        str(received.dtype),
        bool(np.array_equal(received, expected_exact)),
        float(np.max(np.abs(received - expected_exact))),
    )


def _ring_nonfloat64(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    ints = comm.sendrecv(
        np.arange(6, dtype=np.int64) + comm.rank, dest=right, source=left
    )
    narrow = comm.sendrecv(
        (np.arange(6.0) + comm.rank).astype(np.float32),
        dest=right, source=left,
    )
    return (
        bool(np.array_equal(ints, np.arange(6, dtype=np.int64) + left)),
        str(narrow.dtype),
        bool(
            np.array_equal(
                narrow, (np.arange(6.0) + left).astype(np.float32)
            )
        ),
    )


def _allreduce_f64(comm):
    total = comm.allreduce(np.pi * (np.arange(5.0) + comm.rank), SUM)
    return total.tobytes()


class TestOffByDefault:
    def test_round_trip_is_bit_exact_without_the_knob(self):
        for dtype, exact, _err in spmd_unit(4, _ring_f64):
            assert dtype == "float64"
            assert exact


@pytest.mark.usefixtures("wire_mode")
class TestWireCompression:
    def test_round_trip_loss_matches_float32(self, wire_mode):
        for prog in (_ring_f64, _iring_f64):
            for dtype, exact, err in spmd_unit(4, prog):
                # Received payloads are always float64 for the caller.
                assert dtype == "float64"
                if wire_mode == "0":
                    assert exact
                else:
                    # Lossy by design, at exactly float32 resolution.
                    assert not exact
                    assert 0 < err < 1e-5

    def test_charges_halve_and_stay_symmetric(self, wire_mode):
        res = spmd_unit(4, _ring_f64)
        rows = [res.ledger.rank_costs(r) for r in range(4)]
        reference = (rows[0].time, rows[0].words_sent, rows[0].messages)
        for row in rows:
            assert (row.time, row.words_sent, row.messages) == pytest.approx(
                reference
            )
        # Both exchange legs are charged: 8 float64 elements in and out
        # are 16 words wide, 8 words narrowed.
        per_rank_words = rows[0].words_sent
        assert per_rank_words == (8 if wire_mode == "1" else 16)

    def test_non_float64_payloads_are_untouched(self):
        for ints_ok, narrow_dtype, narrow_ok in spmd_unit(4, _ring_nonfloat64):
            assert ints_ok
            assert narrow_dtype == "float32"
            assert narrow_ok

    def test_collectives_stay_bit_exact(self):
        blobs = spmd_unit(4, _allreduce_f64).values
        assert len(set(blobs)) == 1
        expected = sum(
            np.pi * (np.arange(5.0) + r) for r in range(4)
        ).tobytes()
        assert blobs[0] == expected
