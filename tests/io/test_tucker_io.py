"""Tucker container save/load tests."""

import os

import numpy as np
import pytest

from repro.core import TuckerTensor, sthosvd
from repro.io import load_tucker, save_tucker, stored_bytes
from repro.tensor import low_rank_tensor, random_factor, random_tensor


def _tucker(seed=0):
    core = random_tensor((2, 3, 4), seed=seed)
    factors = tuple(
        random_factor(s, r, seed=seed + i)
        for i, (s, r) in enumerate(zip((6, 7, 8), (2, 3, 4)))
    )
    return TuckerTensor(core=core, factors=factors)


class TestRoundtrip:
    def test_exact_roundtrip(self, tmp_path):
        t = _tucker()
        path = tmp_path / "model.npz"
        save_tucker(path, t, metadata={"eps": 1e-3, "dataset": "unit"})
        loaded, meta = load_tucker(path)
        np.testing.assert_array_equal(loaded.core, t.core)
        for a, b in zip(loaded.factors, t.factors):
            np.testing.assert_array_equal(a, b)
        assert meta == {"eps": 1e-3, "dataset": "unit"}

    def test_reconstruction_identical(self, tmp_path):
        x = low_rank_tensor((8, 9, 10), (3, 3, 3), seed=1, noise=0.05)
        t = sthosvd(x, ranks=(3, 3, 3)).decomposition
        path = tmp_path / "m.npz"
        save_tucker(path, t)
        loaded, _ = load_tucker(path)
        np.testing.assert_array_equal(loaded.reconstruct(), t.reconstruct())

    def test_default_empty_metadata(self, tmp_path):
        path = tmp_path / "m.npz"
        save_tucker(path, _tucker())
        _, meta = load_tucker(path)
        assert meta == {}

    def test_uncompressed_container(self, tmp_path):
        path = tmp_path / "m.npz"
        save_tucker(path, _tucker(), compressed=False)
        loaded, _ = load_tucker(path)
        assert loaded.ranks == (2, 3, 4)


class TestDiskAccounting:
    def test_compressed_smaller_than_raw(self, tmp_path):
        x = low_rank_tensor((16, 16, 16), (2, 2, 2), seed=2, noise=1e-6)
        t = sthosvd(x, ranks=(2, 2, 2)).decomposition
        path = tmp_path / "m.npz"
        save_tucker(path, t)
        assert stored_bytes(path) < x.nbytes / 10

    def test_stored_bytes_handles_npz_suffix(self, tmp_path):
        # np.savez appends .npz when missing; stored_bytes must find it.
        base = tmp_path / "model"
        save_tucker(base, _tucker())
        assert stored_bytes(base) > 0


class TestFailureModes:
    def test_rejects_non_tucker(self, tmp_path):
        with pytest.raises(TypeError, match="TuckerTensor"):
            save_tucker(tmp_path / "x.npz", np.zeros((2, 2)))

    def test_rejects_unserializable_metadata(self, tmp_path):
        with pytest.raises(TypeError, match="JSON"):
            save_tucker(tmp_path / "x.npz", _tucker(), metadata={"fn": len})

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a Tucker container"):
            load_tucker(path)

    def test_rejects_missing_factor(self, tmp_path):
        import json

        t = _tucker()
        meta = json.dumps(
            {
                "format_version": 1,
                "shape": list(t.shape),
                "ranks": list(t.ranks),
                "user": {},
            }
        )
        path = tmp_path / "broken.npz"
        np.savez(
            path,
            core=t.core,
            meta=np.frombuffer(meta.encode(), dtype=np.uint8),
            factor_0=t.factors[0],
            factor_1=t.factors[1],
            # factor_2 missing
        )
        with pytest.raises(ValueError, match="missing factor_2"):
            load_tucker(path)

    def test_rejects_wrong_version(self, tmp_path):
        import json

        t = _tucker()
        meta = json.dumps(
            {"format_version": 99, "shape": [1], "ranks": [1], "user": {}}
        )
        path = tmp_path / "v99.npz"
        np.savez(
            path,
            core=t.core,
            meta=np.frombuffer(meta.encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="unsupported container version"):
            load_tucker(path)
