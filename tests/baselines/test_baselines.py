"""Baseline compressor tests (PCA and Tucker1)."""

import numpy as np
import pytest

from repro.baselines import PcaCompressor, Tucker1Compressor
from repro.core import sthosvd
from repro.tensor import low_rank_tensor, random_tensor


class TestPcaCompressor:
    def test_exact_rank_recovery(self):
        x = low_rank_tensor((10, 8, 6), (3, 8, 6), seed=70)
        c = PcaCompressor(mode=0).compress(x, rank=3)
        assert c.relative_error(x) < 1e-10

    def test_tol_meets_budget(self):
        x = low_rank_tensor((10, 8, 6), (4, 8, 6), seed=71, noise=0.05)
        c = PcaCompressor(mode=0).compress(x, tol=0.05)
        assert c.relative_error(x) <= 0.05

    def test_storage_formula(self):
        x = random_tensor((10, 8, 6), seed=72)
        c = PcaCompressor(mode=0).compress(x, rank=2)
        assert c.storage_words == 2 * 10 + 2 + 2 * 48

    def test_rank_monotone_in_tol(self):
        x = low_rank_tensor((10, 8, 6), (5, 8, 6), seed=73, noise=0.1)
        loose = PcaCompressor(0).compress(x, tol=0.3)
        tight = PcaCompressor(0).compress(x, tol=0.01)
        assert tight.rank >= loose.rank

    def test_validation(self):
        x = random_tensor((6, 6), seed=74)
        comp = PcaCompressor(0)
        with pytest.raises(ValueError, match="exactly one"):
            comp.compress(x)
        with pytest.raises(ValueError):
            comp.compress(x, tol=-1.0)
        with pytest.raises(ValueError):
            comp.compress(x, rank=7)


class TestTucker1Compressor:
    def test_exact_rank_recovery(self):
        x = low_rank_tensor((10, 8, 6), (3, 8, 6), seed=75)
        c = Tucker1Compressor(mode=0).compress(x, rank=3)
        assert c.relative_error(x) < 1e-7

    def test_matches_pca_error_same_rank(self):
        # Tucker1 and PCA on the same mode/rank give the same subspace,
        # hence the same error.
        x = low_rank_tensor((10, 8, 6), (5, 8, 6), seed=76, noise=0.1)
        t1 = Tucker1Compressor(0).compress(x, rank=3)
        pca = PcaCompressor(0).compress(x, rank=3)
        assert t1.relative_error(x) == pytest.approx(
            pca.relative_error(x), rel=1e-6
        )

    def test_tucker1_stores_less_than_pca(self):
        # Tucker1's core is the projected tensor (R x I_hat); PCA stores
        # U, s, V — one extra length-R vector plus the I_n x R factor twice
        # effectively.  Tucker1 is never bigger.
        x = random_tensor((10, 8, 6), seed=77)
        t1 = Tucker1Compressor(0).compress(x, rank=3)
        pca = PcaCompressor(0).compress(x, rank=3)
        assert t1.storage_words <= pca.storage_words

    def test_to_tucker_roundtrip(self):
        x = random_tensor((6, 5, 4), seed=78)
        c = Tucker1Compressor(1).compress(x, rank=2)
        np.testing.assert_allclose(
            c.to_tucker().reconstruct(), c.reconstruct(), atol=1e-10
        )

    def test_tol_meets_budget(self):
        x = low_rank_tensor((10, 8, 6), (4, 8, 6), seed=79, noise=0.05)
        c = Tucker1Compressor(0).compress(x, tol=0.05)
        assert c.relative_error(x) <= 0.05


class TestTuckerBeatsBaselines:
    """The paper's core motivation: multilinear structure in *all* modes."""

    def test_tucker_compresses_more_at_equal_error(self):
        x = low_rank_tensor((12, 12, 12), (3, 3, 3), seed=80, noise=1e-6)
        eps = 1e-3
        tucker = sthosvd(x, tol=eps)
        best_baseline = max(
            PcaCompressor(mode).compress(x, tol=eps).compression_ratio
            for mode in range(3)
        )
        assert tucker.decomposition.compression_ratio > 3 * best_baseline
