"""Checklist: the paper's textual claims, one test each.

Beyond the figures and tables, the paper makes specific quantitative
statements in prose.  This module pins each to an executable check, with
the section quoted, so a reader can audit claim coverage in one place.
Claims about the physical Cray (absolute wall-clock) are checked against
the calibrated model — see EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.core import hooi, sthosvd
from repro.data import center_and_scale, load_dataset
from repro.perfmodel import (
    EDISON_CALIBRATED,
    UNIT,
    gram_cost,
    sthosvd_cost,
    sthosvd_memory_bound,
    ttm_cost,
)
from repro.tensor import low_rank_tensor, multi_ttm, ttm
from repro.util.validation import prod


class TestSectionI:
    def test_intro_size_arithmetic(self):
        """Sec. I: 512^3 grid x 64 variables x 128 steps = 8 TB doubles."""
        words = 512**3 * 64 * 128
        assert words * 8 == 8 * 1024**4  # exactly 8 TiB

    def test_compression_to_gigabytes_enables_transfer(self):
        """Sec. I: 'terabytes of data ... reduced to gigabytes or
        megabytes' — at the paper's SP eps=1e-2 ratio (5580x), 550 GB
        becomes ~100 MB."""
        assert 550e9 / 5580 < 150e6


class TestSectionII:
    def test_storage_dominated_by_core(self):
        """Sec. II-B: factor-matrix storage 'is generally negligible
        compared to the storage of the core'."""
        shape, ranks = (500, 500, 500, 11, 50), (81, 129, 127, 7, 32)
        core = prod(ranks)
        factors = sum(i * r for i, r in zip(shape, ranks))
        assert factors < 0.01 * core

    def test_optimal_core_given_factors(self):
        """Sec. II-B: 'the optimal core is given by G = X x {U^(n)T}'."""
        x = low_rank_tensor((8, 7, 6), (3, 3, 3), seed=1, noise=0.1)
        res = sthosvd(x, ranks=(2, 2, 2))
        t = res.decomposition
        # Any other core with the same factors reconstructs worse.
        rng = np.random.default_rng(0)
        for _ in range(3):
            other = t.core + 0.1 * rng.standard_normal(t.core.shape)
            worse = multi_ttm(other, list(t.factors), transpose=False)
            assert np.linalg.norm(x - worse) > np.linalg.norm(
                x - t.reconstruct()
            )

    def test_ttm_order_irrelevant(self):
        """Sec. II-A: 'The order of multiplications is irrelevant'."""
        x = np.random.default_rng(1).standard_normal((4, 5, 6))
        w = np.random.default_rng(2).standard_normal((2, 4))
        v = np.random.default_rng(3).standard_normal((3, 6))
        np.testing.assert_allclose(
            ttm(ttm(x, w, 0), v, 2), ttm(ttm(x, v, 2), w, 0), atol=1e-12
        )

    def test_fit_tracking_identity(self):
        """Alg. 2 line 10: '||X||^2 - ||G||^2 ... is equivalent to the fit
        of the model ||X - G x {U^(n)}||^2'."""
        x = low_rank_tensor((8, 7, 6), (4, 3, 3), seed=2, noise=0.2)
        res = hooi(x, ranks=(3, 2, 2), max_iterations=2, improvement_tol=0.0)
        fit = np.linalg.norm(x - res.decomposition.reconstruct()) ** 2
        assert res.residual_history[-1] == pytest.approx(fit, rel=1e-8)


class TestSectionVI:
    def test_memory_three_times_data(self):
        """Sec. I/III: the algorithm needs 'adequate memory, e.g., three
        times the size of the data' — eq. (2) stays under 3 I/P for the
        paper's strong-scaling configuration."""
        bound = sthosvd_memory_bound((200,) * 4, (20,) * 4, (1, 1, 4, 6))
        assert bound < 3 * 200**4 / 24

    def test_gram_bandwidth_factor_two_vs_ttm(self):
        """Sec. VI-A: 'Gram has a factor of 2 on the bandwidth cost'
        relative to TTM (and an I_n/R_n flop factor)."""
        shape, grid = (64, 64, 64), (4, 2, 2)
        g = gram_cost(shape, 0, grid, UNIT)
        t = ttm_cost(shape, 0, 16, grid, UNIT)
        # Ring words = 2 (Pn-1) J/P; TTM words = (Pn-1) Jhat K / P.  With
        # K = Jn the ratio of the ring term alone is exactly 2.
        t_full = ttm_cost(shape, 0, shape[0], grid, UNIT)
        ring_words = 2 * (grid[0] - 1) * prod(shape) / prod(grid)
        assert g.words >= ring_words  # ring + all-reduce
        assert ring_words == pytest.approx(2 * t_full.words)
        # Flop factor I_n / R_n.
        assert g.flops / t.flops == pytest.approx(shape[0] / 16)

    def test_first_iteration_dominates(self):
        """Sec. VIII-B: 'the initial iteration consumes at least half of
        the overall running time' for most grids."""
        cost = sthosvd_cost((384,) * 4, (96,) * 4, (1, 1, 16, 24),
                            EDISON_CALIBRATED)
        first_mode_time = sum(
            c.time for kernel, mode, c in cost.steps if mode == 0
        )
        assert first_mode_time > 0.5 * cost.time

    def test_first_gram_vs_ttm_factor(self):
        """Sec. VIII-B: 'the first Gram is more expensive than the first
        TTM by a factor of at least I1/R1 = 4'."""
        cost = sthosvd_cost((384,) * 4, (96,) * 4, (1, 1, 16, 24),
                            EDISON_CALIBRATED)
        gram0 = next(c for k, m, c in cost.steps if k == "gram" and m == 0)
        ttm0 = next(c for k, m, c in cost.steps if k == "ttm" and m == 0)
        assert gram0.flops / ttm0.flops >= 4.0


class TestSectionVII:
    @pytest.fixture(scope="class")
    def hcci(self):
        ds = load_dataset("HCCI", shape=(24, 24, 12, 20))
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        return x

    def test_50_to_75_percent_reduction_at_1e6(self, hcci):
        """Sec. I: 'reduce the data by 50-75% with normalized RMS errors
        less than 1e-6' (SVD method; proxy scale gives the lower end)."""
        res = sthosvd(hcci, tol=1e-6, method="svd")
        assert res.decomposition.compression_ratio > 1.9  # >= ~50% reduction
        assert res.decomposition.relative_error(hcci) < 1e-6

    def test_999_percent_reduction_at_1e2(self, hcci):
        """Sec. I: 'by 99.9% and more with normalized RMS errors less than
        1e-2' — the full-size datasets reach 1000x; the small proxy must
        still exceed 95% reduction."""
        res = sthosvd(hcci, tol=1e-2)
        assert res.decomposition.compression_ratio > 20
        assert res.decomposition.relative_error(hcci) <= 1e-2

    def test_hooi_little_improvement(self, hcci):
        """Sec. VII-C: 'HOOI iterations make little improvements on the
        ST-HOSVD initialization'."""
        st = sthosvd(hcci, tol=1e-3)
        ho = hooi(hcci, init=st, max_iterations=5)
        e_st = st.decomposition.relative_error(hcci)
        e_ho = ho.decomposition.relative_error(hcci)
        assert 0 <= (e_st - e_ho) / e_st < 0.1
