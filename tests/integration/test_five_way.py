"""Five-way integration tests — the paper's TJLR/SP data shape.

Order-5 tensors exercise index arithmetic (unfoldings, layouts, grids) that
order-3 tests can miss; the paper's headline datasets are 5-way.
"""

import numpy as np
import pytest

from repro.core import hooi, sthosvd
from repro.data import load_dataset, center_and_scale
from repro.distributed import DistTensor, dist_hooi, dist_sthosvd
from repro.mpi import CartGrid
from repro.tensor import low_rank_tensor
from tests.conftest import spmd


class TestFiveWaySequential:
    def test_sthosvd_exact_recovery(self):
        x = low_rank_tensor((6, 5, 4, 4, 3), (2, 2, 2, 2, 2), seed=100)
        res = sthosvd(x, tol=1e-6)
        assert res.ranks == (2, 2, 2, 2, 2)
        assert res.decomposition.relative_error(x) < 1e-6

    def test_hooi_five_way(self):
        x = low_rank_tensor(
            (6, 5, 4, 4, 3), (3, 3, 2, 2, 2), seed=101, noise=0.1
        )
        res = hooi(x, ranks=(2, 2, 2, 2, 2), max_iterations=3,
                   improvement_tol=0.0)
        h = np.array(res.residual_history)
        assert np.all(np.diff(h) <= 1e-9 * h[0] + 1e-12)

    def test_subtensor_reconstruction(self):
        x = low_rank_tensor((6, 5, 4, 4, 3), (2, 2, 2, 2, 2), seed=102)
        t = sthosvd(x, ranks=(2, 2, 2, 2, 2)).decomposition
        full = t.reconstruct()
        sub = t.reconstruct_subtensor([1, None, slice(0, 2), None, 2])
        np.testing.assert_allclose(
            sub.squeeze(0).squeeze(-1), full[1, :, 0:2, :, 2], atol=1e-10
        )


class TestFiveWayDistributed:
    def test_dist_sthosvd_matches_sequential(self):
        x = low_rank_tensor((6, 5, 4, 4, 3), (3, 2, 2, 2, 2), seed=103,
                            noise=0.02)
        seq = sthosvd(x, ranks=(3, 2, 2, 2, 2))

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1, 2, 1))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=(3, 2, 2, 2, 2))
            return t.to_tucker()

        for tucker in spmd(8, prog):
            np.testing.assert_allclose(
                tucker.reconstruct(), seq.decomposition.reconstruct(),
                atol=1e-8,
            )

    def test_dist_hooi_five_way(self):
        x = low_rank_tensor((6, 5, 4, 4, 3), (3, 2, 2, 2, 2), seed=104,
                            noise=0.1)
        seq = hooi(x, ranks=(2, 2, 2, 2, 2), max_iterations=2,
                   improvement_tol=0.0)

        def prog(comm):
            g = CartGrid(comm, (2, 1, 2, 1, 1))
            dt = DistTensor.from_global(g, x)
            res = dist_hooi(dt, ranks=(2, 2, 2, 2, 2), max_iterations=2,
                            improvement_tol=0.0)
            return res.residual_history

        for hist in spmd(4, prog):
            np.testing.assert_allclose(
                hist, seq.residual_history, rtol=1e-8, atol=1e-10
            )

    def test_sp_proxy_distributed_pipeline(self):
        ds = load_dataset("SP", shape=(12, 12, 12, 6, 8))
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        seq = sthosvd(x, tol=1e-2)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1, 1, 2))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, tol=1e-2)
            return t.ranks, t.error_estimate()

        for ranks, est in spmd(8, prog):
            assert ranks == seq.ranks
            assert est == pytest.approx(seq.error_estimate(), rel=1e-6)
