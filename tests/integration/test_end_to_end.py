"""End-to-end integration tests across subsystems.

These exercise the full pipelines a user would run: dataset -> normalize ->
compress (sequential and distributed) -> save -> load -> partially
reconstruct -> denormalize, plus the paper's headline claims at proxy scale.
"""

import numpy as np
import pytest

from repro.core import hooi, normalized_rms, sthosvd
from repro.data import center_and_scale, invert_scaling, load_dataset
from repro.distributed import DistTensor, dist_sthosvd
from repro.io import load_tucker, save_tucker
from repro.mpi import CartGrid
from tests.conftest import spmd


@pytest.fixture(scope="module")
def hcci_small():
    ds = load_dataset("HCCI", shape=(24, 24, 12, 20))
    x, info = center_and_scale(ds.tensor, ds.species_mode)
    return ds, x, info


class TestFullPipeline:
    def test_compress_save_load_extract(self, hcci_small, tmp_path):
        ds, x, info = hcci_small
        res = sthosvd(x, tol=1e-3)
        path = tmp_path / "hcci.npz"
        save_tucker(path, res.decomposition, metadata={"dataset": ds.name})
        loaded, meta = load_tucker(path)
        assert meta["dataset"] == "HCCI"

        # Extract one species slice without full reconstruction.
        slab = loaded.reconstruct_subtensor([None, None, 3, None]).squeeze(2)
        truth = x[:, :, 3, :]
        assert normalized_rms(truth, slab) < 5e-3

    def test_denormalized_reconstruction(self, hcci_small):
        ds, x, info = hcci_small
        res = sthosvd(x, tol=1e-3)
        physical = invert_scaling(res.decomposition.reconstruct(), info)
        rel = np.linalg.norm(physical - ds.tensor) / np.linalg.norm(ds.tensor)
        # Denormalization reintroduces per-species scales; error stays small.
        assert rel < 0.05

    def test_distributed_pipeline_agrees(self, hcci_small):
        ds, x, info = hcci_small
        seq = sthosvd(x, tol=1e-2)

        def prog(comm):
            g = CartGrid(comm, (2, 2, 1, 3))
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, tol=1e-2)
            return t.ranks, t.error_estimate()

        res = spmd(12, prog)
        for ranks, est in res:
            assert ranks == seq.ranks
            assert est == pytest.approx(seq.error_estimate(), rel=1e-6)

    def test_hooi_negligible_improvement_claim(self, hcci_small):
        # Paper Sec. VII-C: HOOI barely improves ST-HOSVD on combustion data.
        _, x, _ = hcci_small
        st = sthosvd(x, tol=1e-2)
        ho = hooi(x, init=st, max_iterations=3)
        e_st = st.decomposition.relative_error(x)
        e_ho = ho.decomposition.relative_error(x)
        assert e_ho <= e_st + 1e-12
        assert (e_st - e_ho) / e_st < 0.15  # "little improvement"


class TestCompressionClaims:
    def test_error_threshold_to_compression_tradeoff(self):
        # Fig. 1b/7 shape: compression grows monotonically as eps loosens.
        ds = load_dataset("SP", shape=(16, 16, 16, 8, 10))
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        ratios = []
        for eps in (1e-4, 1e-3, 1e-2):
            res = sthosvd(x, tol=eps, method="svd")
            assert res.decomposition.relative_error(x) <= eps
            ratios.append(res.decomposition.compression_ratio)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_subtensor_extraction_cost_scales_with_subset(self):
        # Sec. II-C: reconstructing k slices costs O(k/I) of the full cost.
        ds = load_dataset("SP", shape=(16, 16, 16, 8, 10))
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        t = sthosvd(x, tol=1e-2).decomposition
        sub = t.reconstruct_subtensor([None, None, None, None, 0])
        assert sub.size == x.size // 10


class TestCrossGridConsistency:
    def test_different_grids_same_answer(self):
        ds = load_dataset("HCCI", shape=(16, 16, 8, 12))
        x, _ = center_and_scale(ds.tensor, ds.species_mode)
        results = []
        for grid in [(1, 1, 1, 1), (2, 2, 1, 1), (2, 1, 2, 3)]:
            def prog(comm, g=grid):
                gr = CartGrid(comm, g)
                dt = DistTensor.from_global(gr, x)
                t = dist_sthosvd(dt, ranks=(6, 6, 4, 4))
                return t.to_tucker().reconstruct()

            results.append(spmd(int(np.prod(grid)), prog)[0])
        for rec in results[1:]:
            np.testing.assert_allclose(rec, results[0], atol=1e-8)
