"""Shared ``spmd_backend`` fixture: run a test package under every backend.

Imported by the ``conftest.py`` of each package whose tests should execute
under both executor backends (``tests/mpi``, ``tests/distributed``).  The
backend is selected through the ``REPRO_SPMD_BACKEND`` environment
variable, which ``run_spmd`` consults whenever no explicit ``backend=`` is
passed — exactly how a user would flip backends without touching code.
Tests that exercise thread-specific machinery can opt out with
``@pytest.mark.thread_only``.
"""

from __future__ import annotations

import pytest

from repro.mpi import BACKEND_ENV_VAR, available_backends


@pytest.fixture(params=sorted(available_backends()), autouse=True)
def spmd_backend(request, monkeypatch):
    backend = request.param
    if backend != "thread" and request.node.get_closest_marker("thread_only"):
        pytest.skip("thread-backend-only test")
    monkeypatch.setenv(BACKEND_ENV_VAR, backend)
    return backend
