"""CLI tests: the compress / info / reconstruct / extract workflow."""

import numpy as np
import pytest

from repro.cli import _parse_selection, main
from repro.io import load_tucker
from repro.tensor import low_rank_tensor


@pytest.fixture
def field(tmp_path):
    x = low_rank_tensor((12, 10, 8), (3, 3, 2), seed=40, noise=0.01)
    path = tmp_path / "field.npy"
    np.save(path, x)
    return path, x


class TestParseSelection:
    def test_colon_is_all(self):
        assert _parse_selection(":", 10) is None

    def test_index(self):
        assert _parse_selection("3", 10) == 3

    def test_negative_index(self):
        assert _parse_selection("-1", 10) == -1

    def test_range(self):
        assert _parse_selection("2:5", 10) == slice(2, 5, None)

    def test_strided(self):
        assert _parse_selection("0:10:2", 10) == slice(0, 10, 2)

    def test_open_ended(self):
        assert _parse_selection("3:", 10) == slice(3, None, None)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            _parse_selection("10", 10)

    def test_malformed(self):
        with pytest.raises(ValueError):
            _parse_selection("1:2:3:4", 10)


class TestCompress:
    def test_compress_with_tol(self, field, tmp_path, capsys):
        src, x = field
        out = tmp_path / "m.npz"
        assert main(["compress", str(src), str(out), "--tol", "1e-2"]) == 0
        t, meta = load_tucker(out)
        assert t.shape == x.shape
        assert meta["tol"] == 1e-2
        assert "ratio" in capsys.readouterr().out

    def test_compress_with_ranks(self, field, tmp_path):
        src, _ = field
        out = tmp_path / "m.npz"
        rc = main(
            ["compress", str(src), str(out), "--ranks", "3", "3", "2"]
        )
        assert rc == 0
        t, _ = load_tucker(out)
        assert t.ranks == (3, 3, 2)

    def test_compress_svd_method(self, field, tmp_path):
        src, _ = field
        out = tmp_path / "m.npz"
        assert main(
            ["compress", str(src), str(out), "--tol", "1e-3", "--method", "svd"]
        ) == 0

    def test_compress_with_normalization(self, field, tmp_path):
        src, _ = field
        out = tmp_path / "m.npz"
        rc = main(
            ["compress", str(src), str(out), "--tol", "1e-2",
             "--species-mode", "2"]
        )
        assert rc == 0
        _, meta = load_tucker(out)
        assert meta["normalized"]["species_mode"] == 2

    def test_compress_with_hooi(self, field, tmp_path):
        src, _ = field
        out = tmp_path / "m.npz"
        rc = main(
            ["compress", str(src), str(out), "--ranks", "2", "2", "2",
             "--hooi-iterations", "2"]
        )
        assert rc == 0

    def test_requires_exactly_one_selector(self, field, tmp_path, capsys):
        src, _ = field
        out = tmp_path / "m.npz"
        assert main(["compress", str(src), str(out)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_missing_input(self, tmp_path, capsys):
        rc = main(
            ["compress", str(tmp_path / "no.npy"), str(tmp_path / "m.npz"),
             "--tol", "0.1"]
        )
        assert rc == 2

    def test_timeout_requires_parallel(self, field, tmp_path, capsys):
        src, _ = field
        out = tmp_path / "m.npz"
        rc = main(
            ["compress", str(src), str(out), "--tol", "1e-2",
             "--timeout", "5"]
        )
        assert rc == 2
        assert "--timeout requires --parallel" in capsys.readouterr().err

    def test_timeout_must_be_positive(self, field, tmp_path, capsys):
        src, _ = field
        out = tmp_path / "m.npz"
        rc = main(
            ["compress", str(src), str(out), "--tol", "1e-2",
             "--parallel", "2", "--timeout", "-3"]
        )
        assert rc == 2
        assert "must be positive" in capsys.readouterr().err

    def test_injected_fault_prints_error_not_traceback(
        self, field, tmp_path, capsys, monkeypatch
    ):
        # A failed parallel run (here an injected fault) must surface as
        # the CLI's `error: ...` + exit 2 convention, never a traceback.
        monkeypatch.setenv(
            "REPRO_FAULTS", "rank=1:site=allreduce:kind=exception"
        )
        src, _ = field
        out = tmp_path / "m.npz"
        rc = main(
            ["compress", str(src), str(out), "--ranks", "3", "3", "2",
             "--parallel", "2"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "fault" in err


class TestInfoReconstructExtract:
    @pytest.fixture
    def model(self, field, tmp_path):
        src, x = field
        out = tmp_path / "m.npz"
        main(["compress", str(src), str(out), "--ranks", "3", "3", "2"])
        return out, x

    def test_info(self, model, capsys):
        path, x = model
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(12, 10, 8)" in out
        assert "(3, 3, 2)" in out

    def test_reconstruct(self, model, tmp_path):
        path, x = model
        out = tmp_path / "back.npy"
        assert main(["reconstruct", str(path), str(out)]) == 0
        back = np.load(out)
        # Residual is the injected white noise (~8% of signal norm here).
        assert np.linalg.norm(back - x) / np.linalg.norm(x) < 0.15

    def test_extract_slab(self, model, tmp_path):
        path, x = model
        out = tmp_path / "slab.npy"
        rc = main(
            ["extract", str(path), str(out), "--select", ":", "2:5", "0"]
        )
        assert rc == 0
        slab = np.load(out)
        assert slab.shape == (12, 3, 1)

    def test_extract_wrong_token_count(self, model, tmp_path, capsys):
        path, _ = model
        rc = main(
            ["extract", str(path), str(tmp_path / "s.npy"), "--select", ":"]
        )
        assert rc == 2
        assert "3 --select tokens" in capsys.readouterr().err

    def test_extract_bad_index(self, model, tmp_path, capsys):
        path, _ = model
        rc = main(
            ["extract", str(path), str(tmp_path / "s.npy"),
             "--select", "99", ":", ":"]
        )
        assert rc == 2
