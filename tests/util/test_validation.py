"""Unit tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_axis,
    check_positive_int,
    check_shape_like,
    prod,
)


class TestProd:
    def test_empty_is_one(self):
        assert prod([]) == 1

    def test_single(self):
        assert prod([7]) == 7

    def test_multiple(self):
        assert prod([2, 3, 5]) == 30

    def test_generator_input(self):
        assert prod(x for x in (4, 4)) == 16


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "flag")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")


class TestCheckAxis:
    def test_in_range(self):
        assert check_axis(2, 4) == 2

    def test_negative_axis_normalized(self):
        assert check_axis(-1, 3) == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_axis(3, 3)

    def test_too_negative(self):
        with pytest.raises(ValueError):
            check_axis(-4, 3)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_axis(False, 3)

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="mymode"):
            check_axis(9, 2, "mymode")


class TestCheckShapeLike:
    def test_tuple_passthrough(self):
        assert check_shape_like((2, 3)) == (2, 3)

    def test_list_converted(self):
        assert check_shape_like([4, 5, 6]) == (4, 5, 6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one mode"):
            check_shape_like(())

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError, match="positive"):
            check_shape_like((3, 0, 2))

    def test_rejects_negative_dim(self):
        with pytest.raises(ValueError):
            check_shape_like((-1, 2))

    def test_rejects_non_sequence(self):
        with pytest.raises(TypeError):
            check_shape_like(5)

    def test_numpy_ints_ok(self):
        import numpy as np

        assert check_shape_like(np.array([2, 3])) == (2, 3)
