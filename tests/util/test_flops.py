"""Unit tests for flop-count formulas (paper Sec. V conventions)."""

import pytest

from repro.util.flops import (
    eig_flops,
    gemm_flops,
    gram_flops,
    syrk_flops,
    ttm_flops,
)


class TestGemmFlops:
    def test_square(self):
        assert gemm_flops(10, 10, 10) == 2000

    def test_rectangular(self):
        assert gemm_flops(2, 3, 4) == 48


class TestSyrkFlops:
    def test_full_cost_default(self):
        assert syrk_flops(5, 7) == 2 * 25 * 7

    def test_symmetric_half(self):
        # n(n+1)k, just over half the full cost.
        assert syrk_flops(5, 7, exploit_symmetry=True) == 5 * 6 * 7

    def test_symmetry_saves_close_to_half(self):
        full = syrk_flops(100, 50)
        half = syrk_flops(100, 50, exploit_symmetry=True)
        assert 0.5 < half / full < 0.51


class TestEigFlops:
    def test_paper_constant(self):
        # (10/3) n^3 for n = 6: 720.
        assert eig_flops(6) == 720

    def test_cubic_growth(self):
        assert eig_flops(20) == pytest.approx(8 * eig_flops(10), rel=0.01)


class TestTtmFlops:
    def test_matches_gemm_view(self):
        # X of 4x5x6 times K x 5 in mode 1: gemm (K, 4*6, 5) = 2*K*120*...
        shape = (4, 5, 6)
        assert ttm_flops(shape, 1, 3) == gemm_flops(3, 24, 5)

    def test_independent_of_mode_for_cube(self):
        assert ttm_flops((8, 8, 8), 0, 2) == ttm_flops((8, 8, 8), 2, 2)

    def test_negative_mode(self):
        assert ttm_flops((4, 5), -1, 2) == ttm_flops((4, 5), 1, 2)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ttm_flops((4, 5), 2, 3)


class TestGramFlops:
    def test_matches_syrk(self):
        shape = (4, 5, 6)
        assert gram_flops(shape, 0) == syrk_flops(4, 30)

    def test_symmetric_variant(self):
        shape = (4, 5, 6)
        assert gram_flops(shape, 0, exploit_symmetry=True) == syrk_flops(
            4, 30, exploit_symmetry=True
        )
