"""Unit tests for deterministic seeding."""

import numpy as np

from repro.util.seeding import rng_for, spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(1, "a", 2) == spawn_seed(1, "a", 2)

    def test_distinct_keys_distinct_seeds(self):
        assert spawn_seed(1, "a") != spawn_seed(1, "b")

    def test_distinct_base_distinct_seeds(self):
        assert spawn_seed(1, "a") != spawn_seed(2, "a")

    def test_key_order_matters(self):
        assert spawn_seed(0, "x", "y") != spawn_seed(0, "y", "x")

    def test_fits_in_uint64(self):
        s = spawn_seed(123456789, "anything", 42, (1, 2))
        assert 0 <= s < 2**64


class TestRngFor:
    def test_reproducible_stream(self):
        a = rng_for(7, "test").standard_normal(10)
        b = rng_for(7, "test").standard_normal(10)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams(self):
        a = rng_for(7, "one").standard_normal(10)
        b = rng_for(7, "two").standard_normal(10)
        assert not np.allclose(a, b)
