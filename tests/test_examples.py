"""Smoke tests: the fast example scripts must run end to end.

The examples are user-facing deliverables; these tests execute the quick
ones in a subprocess and check their key output lines.  The two long-running
studies (combustion_compression, generate_paper_tables) are exercised via
the benchmark suite and repro.report tests instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(name: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "compression ratio" in out
    assert "partial" in out


def test_subtensor_analysis():
    out = _run("subtensor_analysis.py")
    assert "full tensor was never formed" in out


def test_parallel_compression():
    out = _run("parallel_compression.py")
    assert "agreement with sequential reference" in out
    assert "gram" in out


def test_custom_machine_study():
    out = _run("custom_machine_study.py")
    assert "edison-calibrated" in out
    assert "efficiency" in out


def test_streaming_compression():
    out = _run("streaming_compression.py")
    assert "streamed" in out
    assert "batch" in out
