"""Sanitizer tests run under both executor backends."""

from tests.backend_param import spmd_backend  # noqa: F401
