"""Runtime SPMD sanitizer: protocol, request and window checks.

Every failure-mode test asserts the diagnostic names the rank *and* the
call site — the whole point of the sanitizer is replacing a bare
deadlock timeout with an actionable message.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    SANITIZE_ENV_VAR,
    CollectiveCall,
    sanitize_level,
)
from repro.mpi import (
    SUM,
    CollectiveWindow,
    SpmdError,
    WindowProtocolError,
    run_spmd,
)
from tests.conftest import spmd


class TestLevelResolution:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        assert sanitize_level() == 0

    def test_env_sets_level(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "2")
        assert sanitize_level() == 2

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "2")
        assert sanitize_level(0) == 0

    def test_invalid_env_value(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "chatty")
        with pytest.raises(ValueError, match="REPRO_SANITIZE"):
            sanitize_level()

    def test_invalid_level(self):
        with pytest.raises(ValueError, match="sanitize level"):
            sanitize_level(3)

    def test_run_spmd_rejects_bad_level(self):
        with pytest.raises(ValueError, match="sanitize level"):
            run_spmd(2, lambda comm: None, sanitize=7)


class TestCleanRuns:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_all_collectives_clean(self, level):
        def prog(comm):
            x = comm.bcast(np.arange(3.0), root=0)
            g = comm.gather(comm.rank, root=0)
            ag = comm.allgather(comm.rank * 2)
            sc = comm.scatter(
                [i * 10 for i in range(comm.size)] if comm.rank == 1 else None,
                root=1,
            )
            r = comm.reduce(np.ones(2), SUM, root=0)
            ar = comm.allreduce(float(comm.rank))
            rs = comm.reduce_scatter_block(np.ones((comm.size, 2)))
            a2a = comm.alltoall([comm.rank] * comm.size)
            comm.barrier()
            req = comm.ireduce(np.full(2, 1.0), SUM, root=0)
            folded = req.wait()
            sub = comm.split(comm.rank % 2)
            sub_sum = sub.allreduce(1)
            return (x.sum(), g, ag, sc, r, ar, rs.sum(), a2a, folded, sub_sum)

        res = spmd(4, prog, sanitize=level)
        assert res[2][3] == 20  # rank 2's scatter piece
        assert res[0][5] == 6.0  # allreduce of ranks

    def test_ledger_identical_across_levels(self):
        def prog(comm):
            comm.allreduce(np.arange(64.0))
            comm.barrier()
            req = comm.iallreduce(np.ones(8))
            req.wait()
            return comm.allgather(comm.rank)

        times = {
            level: spmd(4, prog, sanitize=level).modeled_time
            for level in (0, 1, 2)
        }
        # The sanitizer's verification is uncharged: bit-identical
        # modeled time at every level.
        assert times[0] == times[1] == times[2]

    def test_sanitizer_exposed_on_comm(self):
        def prog(comm):
            return (
                comm.sanitizer is not None
                and comm.sanitizer.level,
                comm.split(0).sanitizer is comm.sanitizer,
            )

        assert spmd(2, prog, sanitize=2)[0] == (2, True)

        def prog_off(comm):
            return comm.sanitizer is None

        assert spmd(2, prog_off, sanitize=0)[0] is True


class TestCollectiveMismatch:
    def test_mismatched_ops_named_with_sites(self):
        def prog(comm):
            if comm.rank == 0:
                comm.bcast(1.0, root=0)
            else:
                comm.allreduce(1.0)

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, sanitize=1)
        msg = str(err.value)
        assert "CollectiveMismatchError" in msg
        assert "bcast#0" in msg and "allreduce#0" in msg
        assert "rank 0" in msg and "rank 1" in msg
        assert "test_sanitizer.py" in msg  # call sites, not runtime frames
        assert "diverged" in msg

    def test_reordered_collectives(self):
        def prog(comm):
            if comm.rank == 0:
                comm.bcast(1.0, root=0)
                comm.allreduce(2.0)
            else:
                comm.allreduce(2.0)
                comm.bcast(1.0, root=0)

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, sanitize=1)
        assert "reordered" in str(err.value)

    def test_mismatched_root(self):
        def prog(comm):
            comm.bcast(3.0, root=0 if comm.rank == 0 else 1)

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, sanitize=1)
        assert "root=0" in str(err.value) and "root=1" in str(err.value)

    def test_mismatched_reduce_op(self):
        from repro.mpi import MAX

        def prog(comm):
            comm.allreduce(1.0, SUM if comm.rank == 0 else MAX)

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, sanitize=1)
        msg = str(err.value)
        assert "op=SUM" in msg and "op=MAX" in msg

    def test_uneven_payloads_stay_legal(self):
        # gather/reduce tolerate per-rank shapes; the digest must not
        # include them (only reduce_scatter_block is shape-strict).
        def prog(comm):
            got = comm.gather(np.ones(comm.rank + 1), root=0)
            comm.reduce(np.ones(1) if comm.rank else np.ones((2, 1)), SUM, 0)
            return None if got is None else [g.size for g in got]

        assert spmd(3, prog, sanitize=2)[0] == [1, 2, 3]

    def test_nb_vs_blocking_collective_flagged(self):
        # MPI forbids matching a non-blocking collective with a blocking
        # one; here they also use different window protocols.
        def prog(comm):
            if comm.rank == 0:
                comm.allreduce(np.ones(2))
            else:
                comm.iallreduce(np.ones(2)).wait()

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, sanitize=1)
        msg = str(err.value)
        assert "allreduce#0" in msg and "iallreduce#0" in msg


class TestRequestLifetimes:
    def test_leaked_isend(self):
        def prog(comm):
            if comm.rank == 0:
                comm.isend(np.ones(4), dest=1)  # never waited
            else:
                comm.recv(0)

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, sanitize=1)
        msg = str(err.value)
        assert "RequestLeakError" in msg
        assert "isend" in msg and "never waited" in msg
        assert "test_sanitizer.py" in msg

    def test_leaked_ireduce(self):
        def prog(comm):
            comm.ireduce(np.ones(2), root=0)  # all ranks leak it

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, sanitize=1)
        assert "ireduce" in str(err.value)

    def test_double_wait(self):
        def prog(comm):
            peer = 1 - comm.rank
            req = comm.isendrecv(np.ones(2), dest=peer, source=peer)
            req.wait()
            req.wait()

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, sanitize=1)
        msg = str(err.value)
        assert "RequestStateError" in msg and "double wait" in msg

    def test_double_wait_legal_unsanitized(self):
        def prog(comm):
            peer = 1 - comm.rank
            req = comm.isendrecv(np.full(2, 7.0), dest=peer, source=peer)
            first = req.wait()
            again = req.wait()  # served from the cache
            return np.array_equal(first, again)

        assert all(spmd(2, prog, sanitize=0))

    def test_force_completion_is_not_a_user_wait(self):
        # More posts than window buffers: the runtime force-completes
        # old rounds internally; the user's single wait per request must
        # still be legal (and required) under the sanitizer.
        def prog(comm):
            reqs = [
                comm.ireduce(np.full(4, float(i)), SUM, root=0)
                for i in range(5)
            ]
            return [req.wait() is not None for req in reqs]

        res = spmd(4, prog, sanitize=2)
        assert res[0] == [True] * 5

    def test_deadlock_annotated_with_last_collective(self):
        # Subset participation across *different windows* cannot be
        # digest-checked; the timeout must carry the sanitizer context.
        def prog(comm):
            if comm.rank == 0:
                comm.bcast(1.0, root=0)
            # rank 1 returns without entering the collective

        with pytest.raises(SpmdError) as err:
            spmd(2, prog, timeout=2.0, sanitize=1)
        msg = str(err.value)
        assert "sanitizer: last collective" in msg
        assert "bcast#0" in msg


class TestWindowGenerationChecks:
    """Level-2 happens-before checks, driving the shm window directly."""

    def _pair(self, sanitize):
        win0 = CollectiveWindow.create(
            2, 0, 256, None, timeout=2.0, sanitize=sanitize
        )
        win1 = CollectiveWindow.attach(
            win0.name, 2, 1, 256, None, timeout=2.0, sanitize=sanitize
        )
        return win0, win1

    @staticmethod
    def _packed(obj):
        from repro.mpi.process_transport import pack_collective, packed_nbytes

        prefix, payload = pack_collective(obj)
        return prefix, payload, packed_nbytes(prefix, payload)

    def test_read_before_fence(self):
        win0, win1 = self._pair(sanitize=2)
        try:
            prefix, payload, nbytes = self._packed("hello")
            win0.begin(), win1.begin()
            win0.post_size_nowait(nbytes, digest=1)
            win1.post_size(nbytes, digest=1)
            win0.write(prefix, payload)
            win0.commit_nowait()
            # win1 never committed: reading now races its write.
            with pytest.raises(WindowProtocolError, match="read-before-fence"):
                win0.read(1)
        finally:
            win1.close()
            win0.close()

    def test_stale_slot_read(self):
        win0, win1 = self._pair(sanitize=2)
        try:
            prefix, payload, nbytes = self._packed("round1")
            # Round 1: both contribute properly.
            win0.begin(), win1.begin()
            win0.post_size_nowait(nbytes, digest=1)
            win1.post_size(nbytes, digest=1)
            win0.write(prefix, payload)
            win1.write(prefix, payload)
            win0.commit_nowait(), win1.commit_nowait()
            win0.wait_written()
            assert win0.read(1) == "round1"
            win0.finish(), win1.finish()
            # Round 2: rank 1 commits without writing its slot.
            win0.begin(), win1.begin()
            win0.post_size_nowait(nbytes, digest=1)
            win1.post_size(nbytes, digest=1)
            win0.write(prefix, payload)
            win0.commit_nowait(), win1.commit_nowait()
            win0.wait_written()
            with pytest.raises(WindowProtocolError, match="stale"):
                win0.read(1)
        finally:
            win1.close()
            win0.close()

    def test_unsanitized_window_skips_checks(self):
        win0, win1 = self._pair(sanitize=0)
        try:
            prefix, payload, nbytes = self._packed("ok")
            win0.begin(), win1.begin()
            win0.post_size_nowait(nbytes)
            win1.post_size(nbytes)
            win0.write(prefix, payload)
            win0.commit_nowait()
            # Level 0: the racy read of rank 1's uncommitted slot is not
            # intercepted — this rank just sees its own committed write.
            assert win0.read(0) == "ok"
        finally:
            win1.close()
            win0.close()

    def test_digest_mismatch_ranks(self):
        win0, win1 = self._pair(sanitize=1)
        try:
            win0.begin(), win1.begin()
            win0.post_size_nowait(8, digest=11)
            win1.post_size(8, digest=22)
            assert win0.digest_mismatch_ranks(11) == [1]
            assert win1.digest_mismatch_ranks(22) == [0]
        finally:
            win1.close()
            win0.close()


class TestSignatureModel:
    """Unit coverage of the signature/digest vocabulary."""

    def test_digest_ignores_shape_except_strict_ops(self):
        a = CollectiveCall("gather", 3, 0, 0, dtype="float64", shape="4")
        b = CollectiveCall("gather", 3, 1, 1, dtype="float64", shape="9")
        assert a.digest == b.digest
        c = CollectiveCall(
            "reduce_scatter_block", 3, 0, 0, dtype="float64", shape="4"
        )
        d = CollectiveCall(
            "reduce_scatter_block", 3, 1, 1, dtype="float64", shape="9"
        )
        assert c.digest != d.digest

    def test_digest_is_nonzero_63bit(self):
        for seq in range(50):
            digest = CollectiveCall("bcast", seq, 0, 0).digest
            assert 0 < digest < 2**63

    def test_wire_round_trip(self):
        sig = CollectiveCall(
            "reduce", 7, 1, 3, root=0, reduce_op="SUM",
            dtype="float64", shape="2x2", site="prog.py:10",
        )
        assert CollectiveCall.from_wire(sig.wire()) == sig


class TestCliFlag:
    def test_parser_accepts_sanitize(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["compress", "in.npy", "out.npz", "--parallel", "2",
             "--sanitize", "2"]
        )
        assert args.sanitize == 2

    def test_sanitize_requires_parallel(self, tmp_path):
        from repro.cli import main

        src = tmp_path / "x.npy"
        np.save(src, np.ones((4, 4)))
        rc = main(
            ["compress", str(src), str(tmp_path / "out.npz"), "--sanitize",
             "1"]
        )
        assert rc == 2
