"""repro-lint: every rule fires on its fixture, the repo lints clean."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, Finding, lint_paths, lint_source, main

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.thread_only  # pure AST work, no SPMD execution


def findings_for(fixture: str) -> list[Finding]:
    path = FIXTURES / fixture
    return lint_source(path.read_text(), str(path))


def codes_and_lines(findings: list[Finding]) -> list[tuple[str, int]]:
    return [(f.code, f.line) for f in findings]


def line_of(fixture: str, needle: str, occurrence: int = 1) -> int:
    hits = 0
    for lineno, text in enumerate(
        (FIXTURES / fixture).read_text().splitlines(), start=1
    ):
        if needle in text:
            hits += 1
            if hits == occurrence:
                return lineno
    raise AssertionError(f"{needle!r} (#{occurrence}) not in {fixture}")


class TestRules:
    def test_spmd001_rank_branch(self):
        fixture = "spmd001_rank_branch.py"
        found = findings_for(fixture)
        assert codes_and_lines(found) == [
            ("SPMD001", line_of(fixture, "comm.allreduce(data)")),
            ("SPMD001", line_of(fixture, "comm.barrier()")),
        ]
        assert "block forever" in found[0].message
        assert "allreduce" in found[0].message

    def test_spmd002_leaked_request(self):
        fixture = "spmd002_leaked_request.py"
        found = findings_for(fixture)
        assert codes_and_lines(found) == [
            ("SPMD002", line_of(fixture, "comm.isend(np.ones(4), dest=1)")),
            ("SPMD002", line_of(fixture, "req = comm.ireduce")),
        ]
        assert "isend" in found[0].message
        assert "never waited" in found[1].message or "discard" in found[1].message.lower()

    def test_spmd003_blocking_in_pipeline(self):
        fixture = "spmd003_blocking_in_pipeline.py"
        found = findings_for(fixture)
        assert [f.code for f in found] == ["SPMD003"]
        assert found[0].line == line_of(fixture, "comm.allreduce(np.sum(blocks[1]))")
        assert "outstanding" in found[0].message
        assert "ireduce" in found[0].message

    def test_spmd004_bare_except(self):
        fixture = "spmd004_bare_except.py"
        found = findings_for(fixture)
        assert codes_and_lines(found) == [
            ("SPMD004", line_of(fixture, "except:  # noqa: E722 - that is")),
        ]
        assert "transport" in found[0].message

    def test_spmd005_mutable_default(self):
        fixture = "spmd005_mutable_default.py"
        found = findings_for(fixture)
        assert [f.code for f in found] == ["SPMD005", "SPMD005"]
        assert found[0].line == line_of(fixture, "def list_default")
        assert found[1].line == line_of(fixture, "def ndarray_default")

    def test_spmd006_env_read(self):
        fixture = "spmd006_env_read.py"
        found = findings_for(fixture)
        assert [f.code for f in found] == ["SPMD006"] * 5
        assert [f.line for f in found] == [
            line_of(fixture, 'os.environ["REPRO_SPMD_BACKEND"]'),
            line_of(fixture, 'os.environ.get("REPRO_SANITIZE", "0")'),
            line_of(fixture, 'os.getenv("REPRO_FAULTS")'),
            line_of(fixture, 'getenv("REPRO_SPMD_POOL", "1")'),
            line_of(fixture, "os.environ.get(OVERLAP_ENV_VAR"),
        ]
        assert "REPRO_SPMD_BACKEND" in found[0].message
        assert "repro.config" in found[0].message
        assert "OVERLAP_ENV_VAR" in found[4].message

    def test_spmd006_exempts_the_config_package(self):
        src = 'import os\nLEVEL = os.environ.get("REPRO_SANITIZE", "0")\n'
        assert lint_source(src, "src/repro/config/runtime.py") == []
        assert [f.code for f in lint_source(src, "src/repro/other.py")] == [
            "SPMD006"
        ]

    def test_spmd007_shm_alloc(self):
        fixture = "spmd007_shm_alloc.py"
        found = findings_for(fixture)
        assert [f.code for f in found] == ["SPMD007"] * 6
        # Every create-spelled allocation in a non-exempt file is a
        # location finding; the errno-blind handler adds one more.  The
        # errno-routed and narrow-subclass handlers add none, and
        # attaching by name is never flagged.
        assert [f.line for f in found] == [
            line_of(fixture, "shared_memory.SharedMemory(create=True"),
            line_of(fixture, "return create_segment(nbytes)"),
            line_of(fixture, "return create_segment(nbytes)", 2),
            line_of(fixture, "except OSError:"),
            line_of(fixture, "return create_segment(nbytes)", 3),
            line_of(fixture, "shared_memory.SharedMemory(name=name, create"),
        ]
        assert "budget gate" in found[0].message
        assert "errno" in found[3].message

    def test_spmd007_exempts_the_gated_layers(self):
        src = (
            "from multiprocessing import shared_memory\n"
            "def alloc(n):\n"
            "    return shared_memory.SharedMemory(create=True, size=n)\n"
        )
        for exempt in (
            "src/repro/mpi/process_transport.py",
            "src/repro/resources/board.py",
            "src/repro/faults/status.py",
        ):
            assert lint_source(src, exempt) == []
        assert [f.code for f in lint_source(src, "src/repro/driver.py")] == [
            "SPMD007"
        ]

    def test_spmd007_errno_blind_handler_flagged_inside_layers(self):
        # The handler half of the rule applies everywhere, gated layers
        # included: exhaustion must never be silently swallowed.
        src = (
            "from multiprocessing import shared_memory\n"
            "def alloc(n):\n"
            "    try:\n"
            "        return shared_memory.SharedMemory(create=True, size=n)\n"
            "    except OSError:\n"
            "        return None\n"
        )
        found = lint_source(src, "src/repro/resources/board.py")
        assert [f.code for f in found] == ["SPMD007"]

    def test_spmd008_implicit_dtype(self):
        # The rule is scoped to the kernel and distributed trees, so the
        # fixture is linted under a synthetic in-scope path.
        fixture = "spmd008_implicit_dtype.py"
        src = (FIXTURES / fixture).read_text()
        found = lint_source(src, f"src/repro/distributed/{fixture}")
        assert [f.code for f in found] == ["SPMD008"] * 6
        assert [f.line for f in found] == [
            line_of(fixture, "np.empty(shape)  # flagged"),
            line_of(fixture, "np.zeros(shape)  # flagged"),
            line_of(fixture, "np.ones(shape)  # flagged"),
            line_of(fixture, "np.full(shape, 1.0)  # flagged"),
            line_of(fixture, "np.array([0.25, 0.5, 0.25])"),
            line_of(fixture, "np.asarray((1.0, 2.0))"),
        ]
        assert "float64" in found[0].message
        assert "match_dtype" in found[0].message

    def test_spmd008_fires_only_inside_scoped_trees(self):
        src = "import numpy as np\nbuf = np.zeros((4, 4))\n"
        for scoped in (
            "src/repro/distributed/gram.py",
            "src/repro/tensor/ttm.py",
        ):
            assert [f.code for f in lint_source(src, scoped)] == ["SPMD008"]
        for outside in (
            "src/repro/perfmodel/machine.py",
            "benchmarks/test_perf_kernels.py",
            str(FIXTURES / "spmd008_implicit_dtype.py"),
        ):
            assert lint_source(src, outside) == []

    def test_suppression_comments(self):
        assert findings_for("suppressed.py") == []

    def test_every_rule_has_a_firing_fixture(self):
        fired = set()
        for fixture in FIXTURES.glob("spmd*.py"):
            fired.update(f.code for f in findings_for(fixture.name))
            # Path-scoped rules (SPMD008) only fire inside the kernel and
            # distributed trees; lint each fixture there as well.
            fired.update(
                f.code
                for f in lint_source(
                    fixture.read_text(),
                    f"src/repro/distributed/{fixture.name}",
                )
            )
        assert fired == set(RULES)


class TestAnalyzerPrecision:
    """No false positives on the idioms the runtime itself relies on."""

    def test_paired_p2p_under_rank_branch_is_legal(self):
        src = (
            "def exchange(comm, data):\n"
            "    if comm.rank % 2 == 0:\n"
            "        comm.send(data, dest=comm.rank + 1)\n"
            "        return comm.recv(source=comm.rank + 1)\n"
            "    req = comm.isend(data, dest=comm.rank - 1)\n"
            "    out = comm.recv(source=comm.rank - 1)\n"
            "    req.wait()\n"
            "    return out\n"
        )
        assert lint_source(src, "x.py") == []

    def test_closure_capture_consumes_requests(self):
        src = (
            "def pipeline(comm, chunks):\n"
            "    reqs = [comm.isendrecv(c, dest=1, source=1) for c in chunks]\n"
            "    def _drain():\n"
            "        return [r.wait() for r in reqs]\n"
            "    return _drain\n"
        )
        assert lint_source(src, "x.py") == []

    def test_wait_in_loop_consumes(self):
        src = (
            "def staged(comm, parts):\n"
            "    pending = []\n"
            "    for part in parts:\n"
            "        pending.append(comm.ireduce(part, root=0))\n"
            "    for req in pending:\n"
            "        req.wait()\n"
            "    return comm.allreduce(1)\n"
        )
        assert lint_source(src, "x.py") == []

    def test_select_narrows_rules(self):
        fixture = FIXTURES / "spmd005_mutable_default.py"
        only_001 = lint_source(
            fixture.read_text(), str(fixture), select={"SPMD001"}
        )
        assert only_001 == []


class TestRepoIsClean:
    def test_src_and_benchmarks_lint_clean(self):
        findings, errors = lint_paths(
            [str(REPO / "src"), str(REPO / "benchmarks")]
        )
        assert errors == []
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCli:
    def test_exit_one_on_findings(self, capsys):
        rc = main([str(FIXTURES / "spmd001_rank_branch.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SPMD001" in out and "spmd001_rank_branch.py" in out

    def test_exit_zero_on_clean(self, capsys):
        rc = main([str(FIXTURES / "suppressed.py")])
        assert rc == 0

    def test_exit_two_on_missing_path(self, capsys):
        rc = main([str(FIXTURES / "does_not_exist.py")])
        assert rc == 2

    def test_exit_two_on_unknown_rule(self, capsys):
        rc = main(["--select", "SPMD999", str(FIXTURES)])
        assert rc == 2

    def test_json_output_schema(self, capsys):
        rc = main(["--json", str(FIXTURES / "spmd002_leaked_request.py")])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        for row in payload:
            assert set(row) == {"path", "line", "col", "code", "message"}

    def test_list_rules(self, capsys):
        rc = main(["--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_select_flag(self, capsys):
        rc = main(
            ["--select", "SPMD004", str(FIXTURES / "spmd004_bare_except.py")]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "SPMD004" in out and "SPMD005" not in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", "--list-rules"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "SPMD001" in proc.stdout
