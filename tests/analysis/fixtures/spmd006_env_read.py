"""Fixture: direct REPRO_* environment reads outside repro.config (SPMD006)."""

import os
from os import getenv

OVERLAP_ENV_VAR = "REPRO_SPMD_OVERLAP"


def subscript_read():
    return os.environ["REPRO_SPMD_BACKEND"]


def get_read():
    return os.environ.get("REPRO_SANITIZE", "0")


def getenv_read():
    return os.getenv("REPRO_FAULTS")


def bare_getenv_read():
    return getenv("REPRO_SPMD_POOL", "1")


def constant_name_read():
    return os.environ.get(OVERLAP_ENV_VAR, "1")


def write_is_fine(monkeypatch_style_value):
    # Stores and deletes are the legal test idiom: they set the user
    # surface; only *reads* bypass the resolver.
    os.environ["REPRO_SPMD_WINDOWS"] = monkeypatch_style_value
    os.environ.pop("REPRO_SPMD_WINDOWS", None)


def unrelated_read_is_fine():
    return os.environ.get("HOME", "/")
