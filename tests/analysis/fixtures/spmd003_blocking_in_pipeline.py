"""Fixture: blocking collective inside an overlap region (SPMD003)."""

import numpy as np


def broken_pipeline(comm, blocks):
    req = comm.ireduce(blocks[0], root=0)
    # Outstanding post + blocking collective: the allreduce fences every
    # rank while the ireduce round is half-posted.
    total = comm.allreduce(np.sum(blocks[1]))
    first = req.wait()
    return first, total


def drained_first_is_fine(comm, blocks):
    req = comm.ireduce(blocks[0], root=0)
    first = req.wait()
    total = comm.allreduce(np.sum(blocks[1]))
    return first, total


def branch_local_wait_is_fine(comm, blocks, fold):
    req = comm.ireduce(blocks[0], root=0)
    if fold:
        first = req.wait()
    else:
        first = req.wait()
    # Both arms waited: the merged state has nothing outstanding.
    total = comm.allreduce(np.sum(blocks[1]))
    return first, total
