"""Fixture: bare except swallowing transport failures (SPMD004)."""


def swallowed(comm, data):
    try:
        return comm.sendrecv(data, dest=0, source=0)
    except:  # noqa: E722 - that is the point of this fixture
        return None


def typed_handler_is_fine(comm, data):
    try:
        return comm.recv(source=0)
    except ValueError:
        return None


def bare_without_transport_is_fine(value):
    try:
        return int(value)
    except:  # noqa: E722 - ugly but not an SPMD hazard
        return 0
