"""Fixture: collective reached by a subset of ranks (SPMD001)."""


def broken(comm, data):
    if comm.rank == 0:
        # Only rank 0 enters the reduction: everyone else deadlocks.
        total = comm.allreduce(data)
    else:
        total = None
    return total


def also_broken(comm, data):
    if comm.Get_rank() % 2 == 0:
        comm.barrier()
    return data


def legal_root_asymmetry(comm, data):
    # Both paths reach the *same* collective: classic root/non-root
    # pairing, must not be flagged.
    if comm.rank == 0:
        out = comm.bcast(data, root=0)
    else:
        out = comm.bcast(None, root=0)
    return out
