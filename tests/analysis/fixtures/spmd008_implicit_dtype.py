"""SPMD008 fixture: implicit float64 allocations in a dtype-following layer.

Linted by the test suite under a synthetic ``src/repro/distributed/`` path
(the rule is scoped to the kernel and distributed trees); at its real
fixtures path it must produce nothing.
"""

import numpy as np


def bad_allocations(shape):
    a = np.empty(shape)  # flagged: dtype-less np.empty
    b = np.zeros(shape)  # flagged: dtype-less np.zeros
    c = np.ones(shape)  # flagged: dtype-less np.ones
    d = np.full(shape, 1.0)  # flagged: dtype-less np.full
    return a, b, c, d


def bad_literal_conversions():
    weights = np.array([0.25, 0.5, 0.25])  # flagged: literal without dtype
    pair = np.asarray((1.0, 2.0))  # flagged: literal without dtype
    return weights, pair


def clean_allocations(shape, arr):
    a = np.empty(shape, dtype=arr.dtype)  # dtype= keyword: clean
    b = np.zeros(shape, np.float32)  # positional dtype: clean
    c = np.full(shape, 0.0, np.float32)  # positional dtype: clean
    d = np.asarray(arr)  # conversion of a variable follows it: clean
    e = np.array([1.0, 2.0])  # repro-lint: disable=SPMD008
    return a, b, c, d, e
