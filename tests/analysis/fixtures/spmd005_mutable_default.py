"""Fixture: mutable default arguments (SPMD005)."""

import numpy as np


def list_default(comm, acc=[]):
    acc.append(comm.rank)
    return acc


def ndarray_default(comm, buf=np.zeros(4)):
    buf[comm.rank % 4] += 1.0
    return buf


def none_default_is_fine(comm, acc=None):
    if acc is None:
        acc = []
    acc.append(comm.rank)
    return acc
