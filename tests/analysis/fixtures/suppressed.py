"""Fixture: every violation suppressed inline — must lint clean."""

import numpy as np


def suppressed_branch(comm, data):
    if comm.rank == 0:
        total = comm.allreduce(data)  # repro-lint: disable=SPMD001
    else:
        total = None
    return total


def suppressed_leak(comm):
    comm.isend(np.ones(2), dest=1)  # repro-lint: disable=all
    return comm.recv(source=1)


def suppressed_default(comm, acc=[]):  # repro-lint: disable=SPMD005
    acc.append(comm.rank)
    return acc
