"""Fixture: ungated shm allocation / errno-blind handlers (SPMD007)."""

import errno
from multiprocessing import shared_memory

from repro.mpi.process_transport import create_segment


def direct_shared_memory(nbytes):
    # Allocating outside the transport bypasses the budget gate and the
    # crash audit's pid-prefixed naming.
    return shared_memory.SharedMemory(create=True, size=nbytes)


def direct_create_segment(nbytes):
    return create_segment(nbytes)


def blind_oserror_handler(nbytes):
    try:
        return create_segment(nbytes)
    except OSError:
        # Swallows ENOSPC/ENOMEM: the degradation ladder never sees it.
        return None


def errno_routed_handler_is_fine(nbytes):
    try:
        return create_segment(nbytes)
    except OSError as exc:
        if exc.errno not in (errno.ENOSPC, errno.ENOMEM):
            raise
        return None


def narrow_subclass_is_fine(name):
    try:
        return shared_memory.SharedMemory(name=name, create=True, size=64)
    except FileExistsError:
        return None


def attach_by_name_is_fine(name):
    # Attaching reserves nothing; only create=True allocates.
    return shared_memory.SharedMemory(name=name)
