"""Fixture: non-blocking requests that can never be waited (SPMD002)."""

import numpy as np


def discarded(comm):
    # Return value dropped at the call site: nothing holds the handle.
    comm.isend(np.ones(4), dest=1)
    return comm.recv(source=1)


def never_waited(comm):
    req = comm.ireduce(np.ones(8), root=0)
    return comm.rank  # req leaks: no wait on any path


def waited_is_fine(comm):
    req = comm.iallreduce(np.ones(2))
    return req.wait()


def escaped_is_fine(comm, bag):
    # Ownership transferred: whoever holds the bag waits.
    bag.append(comm.isendrecv(np.ones(2), dest=0, source=0))
    return bag
