"""Random tensor factory tests."""

import numpy as np
import pytest

from repro.tensor import low_rank_tensor, random_factor, random_tensor, unfold


class TestRandomTensor:
    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_tensor((3, 4), seed=1), random_tensor((3, 4), seed=1)
        )

    def test_seed_sensitivity(self):
        assert not np.allclose(
            random_tensor((3, 4), seed=1), random_tensor((3, 4), seed=2)
        )

    def test_fortran_ordered(self):
        assert random_tensor((3, 4, 5)).flags.f_contiguous


class TestRandomFactor:
    def test_orthonormal_columns(self):
        q = random_factor(10, 4, seed=3)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-12)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            random_factor(3, 5)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_factor(6, 3, seed=1), random_factor(6, 3, seed=1)
        )


class TestLowRankTensor:
    def test_exact_multilinear_rank(self):
        x = low_rank_tensor((8, 9, 10), (2, 3, 4), seed=0)
        for n, r in enumerate((2, 3, 4)):
            assert np.linalg.matrix_rank(unfold(x, n), tol=1e-10) == r

    def test_noise_makes_full_rank(self):
        x = low_rank_tensor((6, 7, 8), (2, 2, 2), seed=0, noise=0.1)
        assert np.linalg.matrix_rank(unfold(x, 0)) == 6

    def test_rank_exceeds_dim_rejected(self):
        with pytest.raises(ValueError, match="exceeds dimension"):
            low_rank_tensor((4, 4), (5, 2))

    def test_order_mismatch_rejected(self):
        with pytest.raises(ValueError):
            low_rank_tensor((4, 4, 4), (2, 2))

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            low_rank_tensor((4, 4), (2, 2), noise=-1.0)

    def test_norm_preserved_from_core(self):
        # Orthonormal factors preserve the core norm exactly.
        x = low_rank_tensor((8, 9), (3, 3), seed=5)
        from repro.tensor.random import random_tensor as rt

        core = rt((3, 3), seed=5)
        assert np.linalg.norm(x.ravel()) == pytest.approx(
            np.linalg.norm(core.ravel())
        )
