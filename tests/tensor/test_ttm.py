"""TTM kernel tests: identities from paper Sec. II-A."""

import numpy as np
import pytest

from repro.tensor import multi_ttm, ttm, ttm_blocked, unfold


class TestTtmBasics:
    def test_defining_identity(self, rng):
        # Y = X x_n V  <=>  Y_(n) = V X_(n).
        x = rng.standard_normal((4, 5, 6))
        v = rng.standard_normal((7, 5))
        y = ttm(x, v, 1)
        assert y.shape == (4, 7, 6)
        np.testing.assert_allclose(unfold(y, 1), v @ unfold(x, 1), atol=1e-12)

    def test_all_modes(self, rng):
        x = rng.standard_normal((3, 4, 5, 6))
        for n in range(4):
            v = rng.standard_normal((2, x.shape[n]))
            y = ttm(x, v, n)
            np.testing.assert_allclose(unfold(y, n), v @ unfold(x, n), atol=1e-12)

    def test_transpose_flag(self, rng):
        x = rng.standard_normal((4, 5, 6))
        u = rng.standard_normal((5, 3))  # I_n x R_n factor shape
        np.testing.assert_allclose(
            ttm(x, u, 1, transpose=True), ttm(x, u.T, 1), atol=1e-12
        )

    def test_identity_matrix_is_noop(self, rng):
        x = rng.standard_normal((4, 5))
        np.testing.assert_allclose(ttm(x, np.eye(5), 1), x, atol=1e-14)

    def test_commutativity_distinct_modes(self, rng):
        # X x_m W x_n V = X x_n V x_m W for m != n (paper Sec. II-A).
        x = rng.standard_normal((4, 5, 6))
        w = rng.standard_normal((3, 4))
        v = rng.standard_normal((2, 6))
        a = ttm(ttm(x, w, 0), v, 2)
        b = ttm(ttm(x, v, 2), w, 0)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_same_mode_composition(self, rng):
        # X x_n V x_n W = X x_n (W V).
        x = rng.standard_normal((4, 5))
        v = rng.standard_normal((3, 5))
        w = rng.standard_normal((2, 3))
        np.testing.assert_allclose(
            ttm(ttm(x, v, 1), w, 1), ttm(x, w @ v, 1), atol=1e-12
        )

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError, match="dimension mismatch"):
            ttm(rng.standard_normal((4, 5)), rng.standard_normal((3, 6)), 1)

    def test_rejects_non_matrix(self, rng):
        with pytest.raises(ValueError, match="must be 2-D"):
            ttm(rng.standard_normal((4, 5)), rng.standard_normal(5), 1)


class TestTtmBlocked:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_matches_tensordot_path(self, rng, mode):
        x = rng.standard_normal((3, 4, 5, 2))
        v = rng.standard_normal((6, x.shape[mode]))
        np.testing.assert_allclose(
            ttm_blocked(x, v, mode), ttm(x, v, mode), atol=1e-12
        )

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_transpose_matches(self, rng, mode):
        x = rng.standard_normal((4, 5, 6))
        u = rng.standard_normal((x.shape[mode], 3))
        np.testing.assert_allclose(
            ttm_blocked(x, u, mode, transpose=True),
            ttm(x, u, mode, transpose=True),
            atol=1e-12,
        )

    def test_output_fortran_ordered(self, rng):
        x = rng.standard_normal((3, 4, 5))
        y = ttm_blocked(x, rng.standard_normal((2, 4)), 1)
        assert y.flags.f_contiguous

    def test_c_ordered_input(self, rng):
        x = np.ascontiguousarray(rng.standard_normal((3, 4, 5)))
        v = rng.standard_normal((2, 4))
        np.testing.assert_allclose(ttm_blocked(x, v, 1), ttm(x, v, 1), atol=1e-12)


class TestMultiTtm:
    def test_order_invariance(self, rng):
        x = rng.standard_normal((3, 4, 5))
        mats = [rng.standard_normal((2, s)) for s in x.shape]
        a = multi_ttm(x, mats)
        b = multi_ttm(x, mats, order=[2, 0, 1])
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_skip_mode(self, rng):
        x = rng.standard_normal((3, 4, 5))
        mats = [rng.standard_normal((2, s)) for s in x.shape]
        y = multi_ttm(x, mats, skip=1)
        assert y.shape == (2, 4, 2)

    def test_none_entries_skipped(self, rng):
        x = rng.standard_normal((3, 4))
        y = multi_ttm(x, [None, rng.standard_normal((2, 4))])
        assert y.shape == (3, 2)

    def test_transpose_direction(self, rng):
        x = rng.standard_normal((4, 5))
        us = [rng.standard_normal((4, 2)), rng.standard_normal((5, 3))]
        y = multi_ttm(x, us, transpose=True)
        np.testing.assert_allclose(y, us[0].T @ x @ us[1], atol=1e-12)

    def test_wrong_count(self, rng):
        with pytest.raises(ValueError, match="one matrix per mode"):
            multi_ttm(rng.standard_normal((3, 4)), [np.eye(3)])

    def test_bad_order(self, rng):
        x = rng.standard_normal((3, 4))
        mats = [np.eye(3), np.eye(4)]
        with pytest.raises(ValueError, match="permutation"):
            multi_ttm(x, mats, order=[0, 0])


class TestTtmBlockedBatched:
    """The skinny-block fast path: batched/stacked dgemms instead of the
    per-sub-block Python loop, gated on block shape."""

    @pytest.mark.parametrize("shape,mode", [
        ((1, 24, 40), 1),    # lead == 1: single-dgemm collapse
        ((2, 24, 40), 1),    # small lead: stacked matmul
        ((3, 4, 5, 64), 2),  # interior mode, many skinny blocks
        ((64, 24, 3), 1),    # wide blocks: gate keeps the loop
    ])
    def test_batched_matches_loop(self, rng, shape, mode):
        x = rng.standard_normal(shape)
        v = rng.standard_normal((6, shape[mode]))
        loop = ttm_blocked(x, v, mode, batched=False)
        auto = ttm_blocked(x, v, mode)
        forced = ttm_blocked(x, v, mode, batched=True)
        np.testing.assert_allclose(auto, loop, atol=1e-12)
        np.testing.assert_allclose(forced, loop, atol=1e-12)
        np.testing.assert_allclose(loop, ttm(x, v, mode), atol=1e-12)

    def test_stacked_path_is_bit_identical_to_loop(self, rng):
        # lead > 1 batching runs the very same per-block dgemm from C, so
        # the bits must match the Python loop exactly.
        x = rng.standard_normal((2, 32, 128))
        v = rng.standard_normal((5, 32))
        assert ttm_blocked(x, v, 1, batched=True).tobytes() == ttm_blocked(
            x, v, 1, batched=False
        ).tobytes()

    def test_batched_transpose_direction(self, rng):
        x = rng.standard_normal((2, 16, 64))
        u = rng.standard_normal((16, 3))
        np.testing.assert_allclose(
            ttm_blocked(x, u, 1, transpose=True, batched=True),
            ttm(x, u, 1, transpose=True),
            atol=1e-12,
        )

    def test_batched_output_fortran_ordered(self, rng):
        for shape, mode in [((1, 8, 32), 1), ((2, 8, 32), 1)]:
            y = ttm_blocked(
                rng.standard_normal(shape), rng.standard_normal((4, 8)), mode,
                batched=True,
            )
            assert y.flags.f_contiguous

    def test_read_only_fortran_input_not_copied_or_written(self, rng):
        # The distributed hot path hands the kernel read-only shm-backed
        # views; the kernel must neither write to nor copy them.
        x = np.asfortranarray(rng.standard_normal((2, 12, 48)))
        x.flags.writeable = False
        v = rng.standard_normal((4, 12))
        np.testing.assert_allclose(
            ttm_blocked(x, v, 1), ttm(np.array(x), v, 1), atol=1e-12
        )
