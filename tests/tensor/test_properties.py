"""Property-based tests (hypothesis) for the tensor kernels.

These check the algebraic identities of paper Sec. II-A on arbitrary small
shapes rather than hand-picked ones: unfolding is a bijection, TTM respects
its matricized definition and commutes across distinct modes, orthonormal
projections never increase norms, and Gram matrices are PSD with trace
``||X||^2``.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tensor import fold, gram, multi_ttm, ttm, ttm_blocked, unfold
from repro.util.seeding import rng_for

# Small orders/dims keep each example fast; hypothesis explores the space.
shapes = st.lists(st.integers(1, 5), min_size=1, max_size=4).map(tuple)


def _tensor_for(shape, seed):
    return rng_for(seed, "prop", shape).standard_normal(shape)


@given(shape=shapes, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_unfold_fold_bijection(shape, seed):
    x = _tensor_for(shape, seed)
    for mode in range(len(shape)):
        np.testing.assert_array_equal(fold(unfold(x, mode), mode, shape), x)


@given(
    shape=shapes,
    seed=st.integers(0, 2**16),
    mode=st.integers(0, 3),
    new_dim=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_ttm_matches_matricized_definition(shape, seed, mode, new_dim):
    mode = mode % len(shape)
    x = _tensor_for(shape, seed)
    v = rng_for(seed, "mat", shape, mode).standard_normal((new_dim, shape[mode]))
    y = ttm(x, v, mode)
    np.testing.assert_allclose(unfold(y, mode), v @ unfold(x, mode), atol=1e-10)


@given(shape=shapes, seed=st.integers(0, 2**16), mode=st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_blocked_ttm_agrees(shape, seed, mode):
    mode = mode % len(shape)
    x = _tensor_for(shape, seed)
    v = rng_for(seed, "blk", shape, mode).standard_normal((3, shape[mode]))
    np.testing.assert_allclose(ttm_blocked(x, v, mode), ttm(x, v, mode), atol=1e-10)


@given(
    shape=st.lists(st.integers(1, 5), min_size=2, max_size=4).map(tuple),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_ttm_commutes_across_modes(shape, seed):
    x = _tensor_for(shape, seed)
    rng = rng_for(seed, "comm", shape)
    m, n = 0, len(shape) - 1
    w = rng.standard_normal((2, shape[m]))
    v = rng.standard_normal((3, shape[n]))
    a = ttm(ttm(x, w, m), v, n)
    b = ttm(ttm(x, v, n), w, m)
    np.testing.assert_allclose(a, b, atol=1e-10)


@given(shape=shapes, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_orthonormal_projection_never_increases_norm(shape, seed):
    x = _tensor_for(shape, seed)
    rng = rng_for(seed, "orth", shape)
    mats = []
    for s in shape:
        r = max(1, s - 1)
        q, _ = np.linalg.qr(rng.standard_normal((s, r)))
        mats.append(q)
    y = multi_ttm(x, mats, transpose=True)
    assert np.linalg.norm(y.ravel()) <= np.linalg.norm(x.ravel()) + 1e-10


@given(shape=shapes, seed=st.integers(0, 2**16), mode=st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_gram_psd_with_norm_trace(shape, seed, mode):
    mode = mode % len(shape)
    x = _tensor_for(shape, seed)
    s = gram(x, mode)
    np.testing.assert_array_equal(s, s.T)
    assert np.linalg.eigvalsh(s).min() >= -1e-8
    np.testing.assert_allclose(
        np.trace(s), np.linalg.norm(x.ravel()) ** 2, rtol=1e-10, atol=1e-12
    )


@given(
    shape=st.lists(st.integers(2, 5), min_size=1, max_size=3).map(tuple),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_full_rank_identity_reconstruction(shape, seed):
    # Projecting onto complete orthonormal bases and back is the identity.
    x = _tensor_for(shape, seed)
    rng = rng_for(seed, "full", shape)
    qs = [np.linalg.qr(rng.standard_normal((s, s)))[0] for s in shape]
    core = multi_ttm(x, qs, transpose=True)
    back = multi_ttm(core, qs, transpose=False)
    np.testing.assert_allclose(back, x, atol=1e-9)
