"""Unfolding/folding and Tensor wrapper tests (paper Sec. II-A layout)."""

import numpy as np
import pytest

from repro.tensor import Tensor, fold, unfold


class TestUnfold:
    def test_shape(self, rng):
        x = rng.standard_normal((3, 4, 5))
        assert unfold(x, 0).shape == (3, 20)
        assert unfold(x, 1).shape == (4, 15)
        assert unfold(x, 2).shape == (5, 12)

    def test_mode0_is_fortran_flatten(self, rng):
        # The paper's layout: the mode-1 unfolding of the stored tensor is
        # column-major, i.e. reshape of the Fortran buffer.
        x = np.asfortranarray(rng.standard_normal((3, 4, 5)))
        expected = x.reshape(3, 20, order="F")
        np.testing.assert_array_equal(unfold(x, 0), expected)

    def test_element_mapping(self, rng):
        # (i1, ..., iN) -> (i_n, sum_{k != n} i_k * prod_{m<k, m != n} I_m).
        x = rng.standard_normal((3, 4, 5, 2))
        mat = unfold(x, 2)
        strides = {0: 1, 1: 3, 3: 12}  # prod of earlier non-mode-2 dims
        for idx in [(0, 0, 0, 0), (2, 1, 3, 1), (1, 3, 4, 0), (2, 3, 4, 1)]:
            j = sum(idx[k] * strides[k] for k in strides)
            assert mat[idx[2], j] == x[idx]

    def test_negative_mode(self, rng):
        x = rng.standard_normal((3, 4, 5))
        np.testing.assert_array_equal(unfold(x, -1), unfold(x, 2))

    def test_invalid_mode(self, rng):
        with pytest.raises(ValueError):
            unfold(rng.standard_normal((2, 2)), 2)

    def test_vector_unfold(self):
        x = np.arange(4.0)
        np.testing.assert_array_equal(unfold(x, 0), x.reshape(4, 1))


class TestFold:
    def test_inverse_of_unfold_all_modes(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        for n in range(4):
            np.testing.assert_array_equal(fold(unfold(x, n), n, x.shape), x)

    def test_wrong_matrix_shape(self, rng):
        with pytest.raises(ValueError, match="does not match unfolding"):
            fold(rng.standard_normal((3, 5)), 0, (3, 4))

    def test_rejects_non_matrix(self, rng):
        with pytest.raises(ValueError, match="expects a matrix"):
            fold(rng.standard_normal((3, 4, 5)), 0, (3, 4, 5))


class TestTensorClass:
    def test_fortran_storage(self, rng):
        t = Tensor(rng.standard_normal((3, 4)))
        assert t.data.flags.f_contiguous

    def test_norm_matches_frobenius(self, rng):
        x = rng.standard_normal((4, 5, 6))
        assert Tensor(x).norm() == pytest.approx(np.linalg.norm(x.ravel()))

    def test_norm_equals_unfolding_frobenius(self, rng):
        # ||X|| = ||X_(1)||_F by definition.
        x = rng.standard_normal((4, 5, 6))
        t = Tensor(x)
        assert t.norm() == pytest.approx(np.linalg.norm(t.unfold(0)))

    def test_nrank_of_low_rank(self):
        from repro.tensor import low_rank_tensor

        x = low_rank_tensor((8, 9, 10), (2, 3, 4), seed=0)
        t = Tensor(x)
        assert (t.nrank(0), t.nrank(1), t.nrank(2)) == (2, 3, 4)

    def test_zeros_factory(self):
        t = Tensor.zeros((2, 3))
        assert t.shape == (2, 3)
        assert t.norm() == 0.0

    def test_from_unfolding_roundtrip(self, rng):
        x = rng.standard_normal((3, 4, 5))
        t = Tensor.from_unfolding(unfold(x, 1), 1, x.shape)
        assert t.allclose(x)

    def test_arithmetic(self, rng):
        x = rng.standard_normal((3, 3))
        t = Tensor(x)
        assert (t - t).norm() == 0.0
        assert (t + t).allclose(2 * x)
        assert t.scale_by(3.0).allclose(3 * x)

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            Tensor(np.float64(3.0))

    def test_array_protocol(self, rng):
        x = rng.standard_normal((2, 2))
        assert np.asarray(Tensor(x)).shape == (2, 2)

    def test_getitem(self, rng):
        x = rng.standard_normal((3, 4))
        assert Tensor(x)[1, 2] == x[1, 2]


class TestAsFContiguous:
    """Layout normalization for the blocked kernels: no copy — and no
    rewrapping — when the input already complies."""

    def test_identity_for_fortran_input(self):
        x = np.asfortranarray(np.arange(24.0).reshape(2, 3, 4))
        from repro.tensor import as_f_contiguous

        assert as_f_contiguous(x) is x

    def test_copies_c_ordered_input(self):
        from repro.tensor import as_f_contiguous

        x = np.ascontiguousarray(np.arange(24.0).reshape(2, 3, 4))
        y = as_f_contiguous(x)
        assert y.flags.f_contiguous
        assert not np.shares_memory(x, y)
        np.testing.assert_array_equal(x, y)

    def test_no_copy_for_shared_memory_backed_view(self):
        # Regression for the distributed receive path: an F-contiguous
        # read-only array whose base is a shared-memory segment must pass
        # through untouched — the zero-copy receive stays zero-copy.
        from multiprocessing import shared_memory

        from repro.tensor import as_f_contiguous

        shm = shared_memory.SharedMemory(create=True, size=24 * 8)
        try:
            arr = np.ndarray((2, 3, 4), dtype=np.float64, buffer=shm.buf,
                             order="F")
            arr[...] = np.arange(24.0).reshape(2, 3, 4)
            arr.flags.writeable = False
            out = as_f_contiguous(arr)
            assert out is arr
            assert np.shares_memory(out, arr)
            del arr, out
        finally:
            shm.close()
            shm.unlink()
