"""Eigensolver kernel and rank-selection tests (Alg. 1 line 5)."""

import numpy as np
import pytest

from repro.tensor import (
    eigendecompose,
    leading_eigenvectors,
    rank_from_tolerance,
)
from repro.tensor.eig import EigResult


def _spd_matrix(rng, n, eigenvalues=None):
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    if eigenvalues is None:
        eigenvalues = np.sort(rng.uniform(0.1, 10, n))[::-1]
    return q @ np.diag(eigenvalues) @ q.T, np.asarray(eigenvalues, float)


class TestEigendecompose:
    def test_recovers_spectrum(self, rng):
        s, lam = _spd_matrix(rng, 8)
        eig = eigendecompose(s)
        np.testing.assert_allclose(eig.values, np.sort(lam)[::-1], atol=1e-8)

    def test_decreasing_order(self, rng):
        eig = eigendecompose(_spd_matrix(rng, 10)[0])
        assert np.all(np.diff(eig.values) <= 1e-12)

    def test_eigen_equation(self, rng):
        s, _ = _spd_matrix(rng, 6)
        eig = eigendecompose(s)
        np.testing.assert_allclose(
            s @ eig.vectors, eig.vectors * eig.values, atol=1e-8
        )

    def test_orthonormal_vectors(self, rng):
        eig = eigendecompose(_spd_matrix(rng, 7)[0])
        np.testing.assert_allclose(
            eig.vectors.T @ eig.vectors, np.eye(7), atol=1e-10
        )

    def test_deterministic_signs(self, rng):
        s, _ = _spd_matrix(rng, 5)
        a = eigendecompose(s).vectors
        b = eigendecompose(s.copy()).vectors
        np.testing.assert_array_equal(a, b)
        # Largest-|entry| of each column is positive.
        for col in a.T:
            assert col[np.argmax(np.abs(col))] > 0

    def test_negative_roundoff_clipped(self, rng):
        # A singular PSD matrix may produce tiny negative eigenvalues.
        v = rng.standard_normal((6, 2))
        eig = eigendecompose(v @ v.T)
        assert np.all(eig.values >= 0)

    def test_rejects_nonsymmetric(self, rng):
        with pytest.raises(ValueError, match="not symmetric"):
            eigendecompose(rng.standard_normal((4, 4)))

    def test_rejects_nonsquare(self, rng):
        with pytest.raises(ValueError, match="square"):
            eigendecompose(rng.standard_normal((3, 4)))


class TestTailSums:
    def test_tail_structure(self):
        eig = EigResult(values=np.array([4.0, 2.0, 1.0]), vectors=np.eye(3))
        np.testing.assert_allclose(eig.tail_sums(), [7.0, 3.0, 1.0, 0.0])


class TestRankFromTolerance:
    def test_exact_thresholds(self):
        values = np.array([4.0, 2.0, 1.0, 0.5])
        # tails: r=0 -> 7.5, r=1 -> 3.5, r=2 -> 1.5, r=3 -> 0.5, r=4 -> 0.
        assert rank_from_tolerance(values, 3.5) == 1
        assert rank_from_tolerance(values, 3.4) == 2
        assert rank_from_tolerance(values, 0.5) == 3
        assert rank_from_tolerance(values, 0.0) == 4

    def test_huge_threshold_keeps_one(self):
        assert rank_from_tolerance(np.array([1.0, 0.1]), 100.0) == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            rank_from_tolerance(np.array([1.0]), -1.0)

    def test_rejects_matrix(self, rng):
        with pytest.raises(ValueError):
            rank_from_tolerance(rng.standard_normal((2, 2)), 1.0)


class TestLeadingEigenvectors:
    def test_by_rank(self, rng):
        s, _ = _spd_matrix(rng, 6)
        u, eig = leading_eigenvectors(s, rank=3)
        assert u.shape == (6, 3)
        np.testing.assert_array_equal(u, eig.vectors[:, :3])

    def test_by_threshold(self, rng):
        s, _ = _spd_matrix(rng, 6, eigenvalues=[8, 4, 2, 1, 0.5, 0.25])
        u, eig = leading_eigenvectors(s, threshold=1.8)
        # tail after rank 4 = 0.75 <= 1.8, after rank 3 = 1.75 <= 1.8.
        assert u.shape[1] == 3

    def test_requires_exactly_one_selector(self, rng):
        s, _ = _spd_matrix(rng, 4)
        with pytest.raises(ValueError, match="exactly one"):
            leading_eigenvectors(s)
        with pytest.raises(ValueError, match="exactly one"):
            leading_eigenvectors(s, rank=2, threshold=0.1)

    def test_rank_out_of_range(self, rng):
        s, _ = _spd_matrix(rng, 4)
        with pytest.raises(ValueError):
            leading_eigenvectors(s, rank=5)
        with pytest.raises(ValueError):
            leading_eigenvectors(s, rank=0)
