"""Layout claims of paper Sec. IV-C / Fig. 3b.

"Unfolding is a purely logical process and involves no data redistribution"
— locally this means the mode-1 unfolding of a Fortran-stored tensor is a
zero-copy view, and interior-mode unfoldings decompose into contiguous
sub-blocks that BLAS can process without a global permutation.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, unfold
from repro.util.validation import prod


class TestZeroCopyClaims:
    def test_mode0_unfolding_is_a_view(self, rng):
        x = np.asfortranarray(rng.standard_normal((4, 5, 6)))
        mat = unfold(x, 0)
        assert np.shares_memory(mat, x), "mode-0 unfolding must not copy"

    def test_tensor_class_mode0_view(self, rng):
        t = Tensor(rng.standard_normal((4, 5, 6)))
        assert np.shares_memory(t.unfold(0), t.data)

    def test_mode0_view_reflects_mutation(self, rng):
        x = np.asfortranarray(rng.standard_normal((3, 4)))
        mat = unfold(x, 0)
        x[1, 2] = 123.0
        assert mat[1, 2] == 123.0


class TestSubBlockStructure:
    """Fig. 3b: the mode-n unfolding is a series of contiguous sub-blocks."""

    @pytest.mark.parametrize("mode", [1, 2])
    def test_interior_mode_subblocks(self, rng, mode):
        shape = (3, 4, 5, 2)
        x = np.asfortranarray(rng.standard_normal(shape))
        lead = prod(shape[:mode])
        trail = prod(shape[mode + 1 :])
        # The Fortran buffer reshaped to (lead, I_n, trail) gives, for each
        # trailing index b, one contiguous sub-block whose transpose is a
        # block of consecutive columns of the unfolding.
        flat = x.reshape(lead, shape[mode], trail, order="F")
        mat = unfold(x, mode)
        for b in range(trail):
            np.testing.assert_array_equal(
                mat[:, b * lead : (b + 1) * lead], flat[:, :, b].T
            )
            assert np.shares_memory(flat[:, :, b], x)

    def test_last_mode_unfolding_is_row_major_buffer(self, rng):
        # Fig. 3b, n = N: the unfolding is the buffer read row-major.
        shape = (3, 4, 5)
        x = np.asfortranarray(rng.standard_normal(shape))
        mat = unfold(x, 2)
        np.testing.assert_array_equal(
            mat, x.reshape(-1, shape[2], order="F").T
        )

    def test_number_of_subblocks_matches_paper(self):
        # Paper's 2x2x2x2 example (Fig. 3b): "For n = 2, there are 4
        # subblocks of size 2 x 2.  For n = 3, there are 2 subblocks of
        # size 2 x 4."  Sub-block count = prod of trailing dims; sub-block
        # width = prod of leading dims.
        shape = (2, 2, 2, 2)
        # Paper mode 2 = index 1: 4 sub-blocks, each 2 (rows) x 2 (lead).
        assert prod(shape[2:]) == 4
        assert prod(shape[:1]) == 2
        # Paper mode 3 = index 2: 2 sub-blocks, each 2 (rows) x 4 (lead).
        assert prod(shape[3:]) == 2
        assert prod(shape[:2]) == 4


class TestTensorConvenienceMethods:
    def test_ttm_method(self, rng):
        from repro.tensor import ttm

        x = rng.standard_normal((4, 5))
        v = rng.standard_normal((3, 5))
        t = Tensor(x)
        np.testing.assert_allclose(t.ttm(v, 1).data, ttm(x, v, 1), atol=1e-12)

    def test_ttm_method_transpose(self, rng):
        x = rng.standard_normal((4, 5))
        u = rng.standard_normal((5, 2))
        t = Tensor(x)
        assert t.ttm(u, 1, transpose=True).shape == (4, 2)

    def test_gram_method(self, rng):
        from repro.tensor import gram

        x = rng.standard_normal((4, 5, 6))
        t = Tensor(x)
        np.testing.assert_allclose(t.gram(1), gram(x, 1), atol=1e-12)
