"""Gram-matrix kernel tests."""

import numpy as np
import pytest

from repro.tensor import gram, gram_blocked, unfold


class TestGram:
    def test_definition(self, rng):
        x = rng.standard_normal((4, 5, 6))
        for n in range(3):
            mat = unfold(x, n)
            np.testing.assert_allclose(gram(x, n), mat @ mat.T, atol=1e-10)

    def test_symmetric_exactly(self, rng):
        s = gram(rng.standard_normal((5, 6, 7)), 1)
        np.testing.assert_array_equal(s, s.T)

    def test_psd(self, rng):
        s = gram(rng.standard_normal((6, 7)), 0)
        eigvals = np.linalg.eigvalsh(s)
        assert eigvals.min() > -1e-10

    def test_trace_equals_norm_sq(self, rng):
        # trace(X_(n) X_(n)^T) = ||X||^2 for every mode.
        x = rng.standard_normal((4, 5, 6))
        norm_sq = np.linalg.norm(x.ravel()) ** 2
        for n in range(3):
            assert np.trace(gram(x, n)) == pytest.approx(norm_sq)

    def test_invalid_mode(self, rng):
        with pytest.raises(ValueError):
            gram(rng.standard_normal((3, 3)), 5)


class TestGramBlocked:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_matches_direct(self, rng, mode):
        x = rng.standard_normal((3, 4, 2, 5))
        np.testing.assert_allclose(
            gram_blocked(x, mode), gram(x, mode), atol=1e-10
        )

    def test_first_mode_single_block(self, rng):
        # For mode 0 there is one contiguous block; results must still match.
        x = rng.standard_normal((6, 35))
        np.testing.assert_allclose(gram_blocked(x, 0), gram(x, 0), atol=1e-10)


class TestGramBlockedAccumulator:
    def test_bit_identical_to_unblocked_sum(self, rng):
        # The preallocated in-place accumulator computes the same dgemm
        # per block and the same elementwise adds as the historical
        # per-iteration temporaries — bitwise equal by construction.
        x = rng.standard_normal((3, 8, 64))
        flat = np.reshape(np.asfortranarray(x), (3, 8, 64), order="F")
        s = np.zeros((8, 8))
        for b in range(64):
            block = flat[:, :, b]
            s += block.T @ block
        expected = (s + s.T) * 0.5
        assert gram_blocked(x, 1).tobytes() == expected.tobytes()

    def test_read_only_fortran_input(self, rng):
        x = np.asfortranarray(rng.standard_normal((2, 9, 32)))
        x.flags.writeable = False
        np.testing.assert_allclose(
            gram_blocked(x, 1), gram(np.array(x), 1), atol=1e-10
        )
