"""RuntimeConfig layer: resolution precedence, serialization, dispatch.

The contract under test is the tentpole of the config refactor: every
``REPRO_*`` knob is resolved exactly once at the ``run_spmd`` boundary
with precedence *keyword > config object > environment > default*, and
the resolved object reaches every layer (transport, kernels, drivers)
through the active-config dispatch — so an explicit ``RuntimeConfig``
and the equivalent environment produce bit-identical runs.
"""

import numpy as np
import pytest

from repro.config import (
    CONFIG_FIELDS,
    PLAN_ENV_VAR,
    RuntimeConfig,
    active_config,
    default_for,
    env_default,
    resolve_config,
    resolve_plan,
    set_active_config,
)
from repro.distributed import DistTensor, dist_sthosvd
from repro.mpi import CartGrid, run_spmd
from repro.tensor import low_rank_tensor
from tests.conftest import spmd


@pytest.fixture(autouse=True)
def clean_knob_env(monkeypatch):
    """Start every test from an unset REPRO_* environment."""
    for field in CONFIG_FIELDS:
        monkeypatch.delenv(field.env, raising=False)
    monkeypatch.delenv(PLAN_ENV_VAR, raising=False)


class TestDefaults:
    def test_blank_config_matches_field_defaults(self):
        cfg = RuntimeConfig()
        for field in CONFIG_FIELDS:
            assert getattr(cfg, field.name) == field.default

    def test_blank_config_matches_clean_environment(self):
        assert resolve_config() == RuntimeConfig()

    def test_every_field_has_a_distinct_env_var(self):
        envs = [f.env for f in CONFIG_FIELDS]
        assert len(envs) == len(set(envs))
        assert all(env.startswith("REPRO_") for env in envs)


class TestPrecedence:
    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_OVERLAP", "0")
        monkeypatch.setenv("REPRO_TSQR_TREE", "butterfly")
        cfg = resolve_config()
        assert cfg.overlap is False
        assert cfg.tsqr_tree == "butterfly"

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_OVERLAP", "0")
        cfg = resolve_config(RuntimeConfig(overlap=True))
        assert cfg.overlap is True

    def test_kwarg_beats_config(self):
        cfg = resolve_config(RuntimeConfig(sanitize=2), sanitize=1)
        assert cfg.sanitize == 1

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "2")
        assert resolve_config(sanitize=0).sanitize == 0

    def test_none_kwarg_means_unspecified(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_BACKEND", "process")
        assert resolve_config(backend=None).backend == "process"
        assert resolve_config(RuntimeConfig(backend="thread"),
                              backend=None).backend == "thread"

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown RuntimeConfig key"):
            resolve_config(overlpa=False)

    def test_non_config_object_rejected(self):
        with pytest.raises(TypeError, match="RuntimeConfig"):
            resolve_config({"overlap": False})


class TestEnvDefault:
    def test_parses_each_field_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TTM_BATCH_LEAD", "128")
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_SHM_ARENA", "0")
        assert env_default("ttm_batch_lead") == 128
        assert env_default("timeout") == 7.5
        assert env_default("arena") is False

    def test_historical_error_messages(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "nope")
        with pytest.raises(ValueError, match="invalid REPRO_SANITIZE"):
            env_default("sanitize")
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_SPMD_TIMEOUT"):
            env_default("timeout")
        monkeypatch.setenv("REPRO_TSQR_TREE", "ternary")
        with pytest.raises(ValueError, match="unknown TSQR tree"):
            env_default("tsqr_tree")


class TestValidation:
    @pytest.mark.parametrize(
        "changes, match",
        [
            ({"tsqr_tree": "ternary"}, "unknown TSQR tree"),
            ({"sanitize": 3}, "sanitize level"),
            ({"retry": 0}, "retry"),
            ({"timeout": 0.0}, "timeout"),
            ({"window_slot": -1}, "window_slot"),
            ({"ttm_batch_lead": -1}, "ttm_batch_lead"),
            ({"hugepages": "maybe"}, "REPRO_SPMD_HUGEPAGES"),
        ],
    )
    def test_bad_values_rejected(self, changes, match):
        with pytest.raises(ValueError, match=match):
            RuntimeConfig(**changes)

    def test_frozen(self):
        with pytest.raises(Exception):
            RuntimeConfig().overlap = False


class TestSerialization:
    def test_json_round_trip(self):
        cfg = RuntimeConfig(
            backend="process", overlap=False, tsqr_tree="butterfly",
            ttm_batch_lead=64, sanitize=2, faults="crash:rank=1:call=3",
            timeout=5.0,
        )
        assert RuntimeConfig.from_json(cfg.to_json()) == cfg

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="invalid RuntimeConfig JSON"):
            RuntimeConfig.from_json("{not json")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown RuntimeConfig key"):
            RuntimeConfig.from_dict({"overlap": True, "bogus": 1})

    def test_replace_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown RuntimeConfig key"):
            RuntimeConfig().replace(bogus=1)

    def test_replace_validates(self):
        with pytest.raises(ValueError, match="unknown TSQR tree"):
            RuntimeConfig().replace(tsqr_tree="ternary")

    def test_to_env_reproduces_the_config(self, monkeypatch):
        cfg = RuntimeConfig(
            overlap=False, tsqr_tree="butterfly", sanitize=1, timeout=30.0
        )
        for env, raw in cfg.to_env().items():
            monkeypatch.setenv(env, raw)
        assert resolve_config() == cfg

    def test_describe_covers_every_field(self):
        rows = RuntimeConfig().describe()
        assert [r[0] for r in rows] == [f.name for f in CONFIG_FIELDS]
        assert all(len(r) == 4 for r in rows)


class TestActiveConfigDispatch:
    def test_install_and_restore(self):
        assert active_config() is None
        cfg = RuntimeConfig(overlap=False)
        previous = set_active_config(cfg)
        try:
            assert previous is None
            assert active_config() is cfg
            assert default_for("overlap") is False
        finally:
            set_active_config(previous)
        assert active_config() is None

    def test_default_for_falls_back_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TTM_BATCH_LEAD", "256")
        assert default_for("ttm_batch_lead") == 256

    def test_run_spmd_installs_config_in_ranks(self):
        cfg = RuntimeConfig(overlap=False, tsqr_tree="butterfly", timeout=20.0)

        def prog(comm):
            return default_for("overlap"), default_for("tsqr_tree")

        results = run_spmd(2, prog, config=cfg)
        assert list(results) == [(False, "butterfly")] * 2
        # The installation is scoped to the run.
        assert active_config() is None

    def test_run_spmd_kwarg_beats_config_field(self):
        cfg = RuntimeConfig(sanitize=0, timeout=20.0)

        def prog(comm):
            return default_for("sanitize")

        assert list(run_spmd(2, prog, config=cfg, sanitize=1)) == [1, 1]


class TestResolvePlan:
    def test_unset_is_none(self):
        assert resolve_plan() is None

    def test_default_is_none(self, monkeypatch):
        assert resolve_plan("default") is None
        monkeypatch.setenv(PLAN_ENV_VAR, "default")
        assert resolve_plan() is None

    def test_env_selector(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV_VAR, "auto")
        assert resolve_plan() == "auto"

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV_VAR, "auto")
        assert resolve_plan("default") is None


class TestBitIdentity:
    """Explicit config == equivalent environment, bit for bit."""

    GRID = (2, 2, 1)
    RANKS = (3, 3, 2)

    def _factors_and_core(self, **sthosvd_kwargs):
        x = low_rank_tensor((8, 6, 4), (3, 3, 2), seed=11, noise=0.02)

        def prog(comm):
            g = CartGrid(comm, self.GRID)
            dt = DistTensor.from_global(g, x)
            t = dist_sthosvd(dt, ranks=self.RANKS, **sthosvd_kwargs)
            tucker = t.to_tucker()
            return tucker.core, tucker.factors

        return spmd(int(np.prod(self.GRID)), prog)[0]

    def test_config_matches_equivalent_env(self, monkeypatch):
        cfg = RuntimeConfig(
            overlap=False, tsqr_tree="butterfly", ttm_batch_lead=64
        )
        via_config = self._factors_and_core(config=cfg)

        monkeypatch.setenv("REPRO_SPMD_OVERLAP", "0")
        monkeypatch.setenv("REPRO_TSQR_TREE", "butterfly")
        monkeypatch.setenv("REPRO_TTM_BATCH_LEAD", "64")
        via_env = self._factors_and_core()

        assert via_config[0].tobytes() == via_env[0].tobytes()
        for u_cfg, u_env in zip(via_config[1], via_env[1]):
            assert u_cfg.tobytes() == u_env.tobytes()

    def test_auto_plan_matches_its_explicit_config(self):
        from repro.perfmodel import plan_sthosvd

        planned = plan_sthosvd(
            (8, 6, 4), ranks=self.RANKS, grid=self.GRID
        ).config
        via_plan = self._factors_and_core(plan="auto")
        via_config = self._factors_and_core(config=planned)

        assert via_plan[0].tobytes() == via_config[0].tobytes()
        for u_plan, u_cfg in zip(via_plan[1], via_config[1]):
            assert u_plan.tobytes() == u_cfg.tobytes()

    def test_json_plan_replays_a_config(self):
        cfg = RuntimeConfig(overlap=False, tsqr_tree="butterfly")
        via_json = self._factors_and_core(plan=cfg.to_json())
        via_config = self._factors_and_core(config=cfg)
        assert via_json[0].tobytes() == via_config[0].tobytes()
