"""Public API stability: the documented surface must exist and stay typed.

Downstream code imports these names; renames are breaking changes and must
show up as test failures, not user bug reports.
"""

import importlib

import pytest

PUBLIC_API = {
    "repro": [
        "TuckerTensor", "SthosvdResult", "HooiResult",
        "sthosvd", "hooi", "hosvd",
        "normalized_rms", "max_abs_error", "compression_ratio",
        "RuntimeConfig", "__version__",
    ],
    "repro.config": [
        "RuntimeConfig", "ConfigField", "CONFIG_FIELDS", "PLAN_ENV_VAR",
        "resolve_config", "resolve_plan", "env_default", "default_for",
        "set_active_config", "active_config",
    ],
    "repro.core": [
        "TuckerTensor", "sthosvd", "hooi", "hosvd",
        "StreamingTucker", "validate_tucker", "ValidationReport",
        "greedy_flops_order", "greedy_ratio_order",
        "modewise_error_curves", "error_bound",
    ],
    "repro.tensor": [
        "Tensor", "unfold", "fold", "ttm", "ttm_blocked", "multi_ttm",
        "gram", "gram_blocked", "eigendecompose", "leading_eigenvectors",
        "rank_from_tolerance", "low_rank_tensor", "random_factor",
        "random_tensor",
    ],
    "repro.mpi": [
        "run_spmd", "Communicator", "CartGrid", "CostLedger",
        "SUM", "MAX", "MIN", "PROD",
        "MpiError", "DeadlockError", "SpmdError", "CommunicatorError",
        "BufferMismatchError",
    ],
    "repro.distributed": [
        "DistTensor", "DistTucker", "dist_ttm", "dist_gram", "dist_evecs",
        "dist_sthosvd", "dist_hooi", "dist_mode_svd", "tsqr_r",
        "choose_grid", "block_range", "DistStreamingTucker",
    ],
    "repro.perfmodel": [
        "MachineSpec", "EDISON", "EDISON_CALIBRATED", "UNIT",
        "send_recv_cost", "allgather_cost", "reduce_cost", "allreduce_cost",
        "KernelCost", "ttm_cost", "gram_cost", "evecs_cost",
        "AlgorithmCost", "sthosvd_cost", "hooi_cost", "hooi_iteration_cost",
        "sthosvd_memory_bound", "strong_scaling_curve", "weak_scaling_curve",
        "grid_sweep", "mode_order_sweep",
        "ExecutionPlan", "plan_sthosvd", "refine_machine",
    ],
    "repro.data": [
        "hcci_proxy", "tjlr_proxy", "sp_proxy", "load_dataset", "DATASETS",
        "center_and_scale", "invert_scaling", "multiway_field",
        "decay_profile", "dct_basis",
        "fig8a_problem", "fig8b_problem", "strong_scaling_problem",
        "weak_scaling_problem",
    ],
    "repro.baselines": [
        "PcaCompressor", "Tucker1Compressor",
    ],
    "repro.io": ["save_tucker", "load_tucker", "stored_bytes"],
    "repro.report": ["EXPERIMENTS", "generate_all", "write_csv"],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    missing = [n for n in PUBLIC_API[module_name] if not hasattr(module, n)]
    assert not missing, f"{module_name} lost public names: {missing}"


def test_py_typed_marker_exists():
    import repro

    import os

    assert os.path.exists(
        os.path.join(os.path.dirname(repro.__file__), "py.typed")
    )


def test_all_lists_are_accurate():
    for module_name in PUBLIC_API:
        module = importlib.import_module(module_name)
        declared = getattr(module, "__all__", None)
        if declared is None:
            continue
        for name in declared:
            assert hasattr(module, name), (
                f"{module_name}.__all__ lists missing name {name}"
            )
