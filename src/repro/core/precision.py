"""Mixed-precision policy: compute dtypes and the error-budget split.

The distributed ST-HOSVD pipeline is communication-bound at scale, and
every Gram ring hop, TSQR exchange and TTM reduce ships words whose width
is the compute precision.  The ``compute_dtype`` runtime knob
(``REPRO_DTYPE``) selects that width:

``float64``
    The default.  Bit-identical to the historical pipeline on every
    backend and knob combination.
``float32``
    Gram/TSQR/TTM run in single precision end to end; ring hops,
    allgathers and reduces ship half the bytes per fence.  The delivered
    relative error carries a single-precision noise floor on top of the
    truncation error (see :func:`float32_error_budget`).
``mixed``
    float32 kernels plus one round of float64 refinement of the factor
    matrices against the original tensor slabs, so the delivered error
    still meets the user's tolerance.

Error-split contract (``mixed``)
--------------------------------
A user tolerance ``tol`` is split into a truncation share and a
precision share, combined in quadrature:

* truncation gets ``tol * sqrt(MIXED_TRUNC_SHARE)`` — the per-mode
  eigenvalue-tail thresholds are computed from this tighter tolerance;
* precision gets ``tol * sqrt(1 - MIXED_TRUNC_SHARE)`` — after the
  float32 sweep the driver estimates its precision loss (the float32
  noise floor plus the measured orthonormality defect of the computed
  factors) and triggers the float64 refinement sweep *only* when that
  estimate exceeds the precision share.

With ``MIXED_TRUNC_SHARE = 0.5`` both shares are ``tol / sqrt(2)``:
loose tolerances (well above the float32 noise floor) skip refinement
entirely and keep the full bandwidth win, while tight tolerances pay one
float64 sweep and still deliver ``error <= tol``.

The small dense eigenproblems and the final TSQR ``R``-factor SVD are
always solved in float64 (they are rank-local and cheap); only the
bandwidth-carrying kernels run narrow.
"""

from __future__ import annotations

import numpy as np

from repro.config import default_for
from repro.tensor.dense import match_dtype

__all__ = [
    "COMPUTE_DTYPES",
    "FLOAT32_NOISE_FLOOR",
    "MIXED_TRUNC_SHARE",
    "resolve_compute_dtype",
    "kernel_dtype",
    "match_dtype",
    "split_tolerance",
    "float32_error_budget",
]

#: Valid ``compute_dtype`` / ``REPRO_DTYPE`` values.
COMPUTE_DTYPES = ("float64", "float32", "mixed")

#: Relative noise floor of the float32 Gram/TSQR path:
#: ``sqrt(eps_float32)``, because the Gram route squares the conditioning
#: (singular values below ``sigma_1 * sqrt(eps)`` drown in roundoff).
FLOAT32_NOISE_FLOOR = float(np.sqrt(np.finfo(np.float32).eps))

#: Fraction of the squared tolerance granted to truncation under
#: ``mixed``; the rest is the precision share that gates refinement.
MIXED_TRUNC_SHARE = 0.5


def resolve_compute_dtype(override: str | None = None) -> str:
    """The effective compute dtype: kwarg > config/env > ``"float64"``.

    Follows the same resolution contract as every other knob helper: an
    explicit argument wins, otherwise the active run config (installed at
    the ``run_spmd`` boundary), otherwise the environment default.
    """
    value = override if override is not None else default_for("compute_dtype")
    if value not in COMPUTE_DTYPES:
        raise ValueError(
            f"unknown compute dtype {value!r}; use one of {COMPUTE_DTYPES}"
        )
    return value


def kernel_dtype(compute: str) -> np.dtype:
    """The numpy dtype the bandwidth-carrying kernels run in."""
    return np.dtype(np.float32 if compute in ("float32", "mixed")
                    else np.float64)


def split_tolerance(tol: float) -> tuple[float, float]:
    """``(truncation_tolerance, precision_share)`` for ``mixed`` mode.

    The two shares combine in quadrature to the user's ``tol``:
    ``trunc**2 + prec**2 == tol**2``.
    """
    trunc = tol * float(np.sqrt(MIXED_TRUNC_SHARE))
    prec = tol * float(np.sqrt(1.0 - MIXED_TRUNC_SHARE))
    return trunc, prec


def float32_error_budget(tol: float) -> float:
    """Documented delivered-error budget of pure ``float32`` mode.

    ``float32`` performs no refinement, so the delivered relative error
    is the requested truncation error plus the single-precision noise
    floor (in quadrature, with a small safety factor for the per-mode
    accumulation across the sweep).
    """
    return float(np.sqrt(tol * tol + (4.0 * FLOAT32_NOISE_FLOOR) ** 2))
