"""Truncated HOSVD (T-HOSVD) baseline — paper Sec. II-B.

The classical De Lathauwer et al. truncation: every factor matrix comes from
the Gram matrix of the *original* tensor's unfolding (no sequential
shrinking), then the core is ``G = X x {U^(n)T}``.  ST-HOSVD produces the
same error guarantee at lower cost; T-HOSVD is kept as the baseline the
paper's error bound (eq. 3) is stated for, and as a comparison point in the
ablation benches.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.sthosvd import SthosvdResult
from repro.core.tucker import TuckerTensor
from repro.tensor.dense import as_ndarray
from repro.tensor.eig import eigendecompose, rank_from_tolerance
from repro.tensor.gram import gram
from repro.tensor.ttm import multi_ttm
from repro.util.validation import check_shape_like


def hosvd(
    x: np.ndarray,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
) -> SthosvdResult:
    """Truncated HOSVD with epsilon- or rank-based truncation.

    Returns the same result type as :func:`repro.core.sthosvd.sthosvd`; for
    T-HOSVD the recorded eigenvalues are the spectra of the *original*
    tensor's unfoldings in every mode, so ``error_estimate()`` returns the
    eq. (3) upper bound rather than the exact error.
    """
    arr = as_ndarray(x)
    n_modes = arr.ndim
    if (tol is None) == (ranks is None):
        raise ValueError("specify exactly one of tol= or ranks=")
    if tol is not None and tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if ranks is not None:
        ranks = check_shape_like(ranks, "ranks")
        if len(ranks) != n_modes:
            raise ValueError(f"need {n_modes} ranks, got {len(ranks)}")
        for r, s in zip(ranks, arr.shape):
            if r > s:
                raise ValueError(f"rank {r} exceeds dimension {s}")

    x_norm = float(np.linalg.norm(arr.reshape(-1)))
    threshold = (tol**2) * (x_norm**2) / n_modes if tol is not None else None

    factors: list[np.ndarray] = []
    eigenvalues: list[np.ndarray] = []
    for n in range(n_modes):
        eig = eigendecompose(gram(arr, n))
        rn = (
            rank_from_tolerance(eig.values, threshold)
            if threshold is not None
            else ranks[n]  # type: ignore[index]
        )
        factors.append(eig.leading(rn))
        eigenvalues.append(eig.values)

    core = np.asfortranarray(multi_ttm(arr, factors, transpose=True))
    return SthosvdResult(
        decomposition=TuckerTensor(core=core, factors=tuple(factors)),
        eigenvalues=tuple(eigenvalues),
        mode_order=tuple(range(n_modes)),
        x_norm=x_norm,
    )
