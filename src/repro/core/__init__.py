"""The paper's primary contribution: Tucker decomposition for compression.

Sequential reference implementations of the paper's algorithms:

* :func:`sthosvd` — sequentially-truncated HOSVD (Alg. 1), the paper's
  initialization and, in practice, its complete compression method.
* :func:`hooi` — higher-order orthogonal iteration (Alg. 2), the iterative
  refinement.
* :func:`hosvd` — truncated HOSVD (T-HOSVD) baseline.
* :class:`TuckerTensor` — the compressed object: core + factor matrices,
  with full and *partial* (subtensor) reconstruction (paper Sec. II-C) and
  compression accounting (Sec. VII-B).
* :mod:`repro.core.errors` — normalized RMS error, the mode-wise error
  curves of Fig. 6, and the T-HOSVD error bound, eq. (3).

The distributed counterparts live in :mod:`repro.distributed` and are tested
for exact agreement with these references.
"""

from repro.core.tucker import TuckerTensor
from repro.core.sthosvd import (
    SthosvdResult,
    greedy_flops_order,
    greedy_ratio_order,
    sthosvd,
)
from repro.core.hooi import HooiResult, hooi
from repro.core.hosvd import hosvd
from repro.core.errors import (
    compression_ratio,
    error_bound,
    max_abs_error,
    modewise_error_curves,
    normalized_rms,
    relative_error,
)
from repro.core.diagnostics import ValidationReport, validate_tucker
from repro.core.precision import (
    COMPUTE_DTYPES,
    FLOAT32_NOISE_FLOOR,
    MIXED_TRUNC_SHARE,
    float32_error_budget,
    kernel_dtype,
    match_dtype,
    resolve_compute_dtype,
    split_tolerance,
)
from repro.core.streaming import StreamingTucker

__all__ = [
    "TuckerTensor",
    "SthosvdResult",
    "sthosvd",
    "greedy_flops_order",
    "greedy_ratio_order",
    "HooiResult",
    "hooi",
    "hosvd",
    "normalized_rms",
    "relative_error",
    "max_abs_error",
    "modewise_error_curves",
    "error_bound",
    "compression_ratio",
    "ValidationReport",
    "validate_tucker",
    "StreamingTucker",
    "COMPUTE_DTYPES",
    "FLOAT32_NOISE_FLOOR",
    "MIXED_TRUNC_SHARE",
    "resolve_compute_dtype",
    "kernel_dtype",
    "match_dtype",
    "split_tolerance",
    "float32_error_budget",
]
