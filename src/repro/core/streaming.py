"""Streaming Tucker compression for time-appended simulation output.

The paper compresses completed datasets, but its motivating scenario —
a running simulation emitting one time step at a time (Sec. I) — invites an
incremental variant, which later became a TuckerMPI research line.  This
module implements a streaming ST-HOSVD with a provable error budget:

* non-time factor bases are *grown on demand*: each incoming slab is
  projected onto the current bases; if the projection residual exceeds the
  slab's error budget, an ST-HOSVD of the residual supplies new orthonormal
  directions, and the accumulated core is zero-padded into the enlarged
  bases;
* the time mode stays uncompressed while streaming (the core grows one
  slab at a time);
* :meth:`StreamingTucker.finalize` recompresses the accumulated core —
  including the time mode — with the remaining budget.

Budget argument: each slab may discard at most ``eps^2 ||slab||^2 / 2`` of
energy, and the final recompression at tolerance ``eps / sqrt(2)`` discards
at most ``eps^2 ||K||^2 / 2 <= eps^2 ||X||^2 / 2``; since slab energies sum
to ``||X||^2`` (disjoint time ranges), the total squared error is at most
``eps^2 ||X||^2`` — the same guarantee as batch ST-HOSVD, achieved without
ever holding the full tensor (peak memory is the running core plus one
slab).
"""

from __future__ import annotations

import numpy as np

from repro.core.sthosvd import sthosvd
from repro.core.tucker import TuckerTensor
from repro.tensor.dense import as_ndarray
from repro.tensor.ttm import multi_ttm
from repro.util.validation import check_shape_like


class StreamingTucker:
    """Incrementally compress a tensor arriving as slabs of the last mode.

    Parameters
    ----------
    spatial_shape:
        The fixed shape of all modes except the streaming (last) mode.
    tol:
        Relative error tolerance for the *final* decomposition, measured
        against the full streamed tensor.
    """

    def __init__(self, spatial_shape: tuple[int, ...] | list[int], tol: float):
        self._spatial_shape = check_shape_like(spatial_shape, "spatial_shape")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        self._tol = float(tol)
        self._n_spatial = len(self._spatial_shape)
        self._bases: list[np.ndarray | None] = [None] * self._n_spatial
        self._core_slabs: list[np.ndarray] = []
        self._energy = 0.0  # running ||X||^2
        self._discarded = 0.0  # running discarded energy (for accounting)
        self._n_steps = 0
        self._pending_zero_steps = 0  # zero slabs seen before any basis
        self._finalized = False

    # -- state -----------------------------------------------------------------

    @property
    def n_steps(self) -> int:
        """Time steps ingested so far."""
        return self._n_steps

    @property
    def current_ranks(self) -> tuple[int, ...]:
        """Current basis sizes for the non-streaming modes."""
        return tuple(
            0 if b is None else b.shape[1] for b in self._bases
        )

    @property
    def streamed_norm(self) -> float:
        """``||X||`` of everything ingested so far."""
        return float(np.sqrt(self._energy))

    # -- ingestion -------------------------------------------------------------------

    def update(self, slab: np.ndarray) -> None:
        """Ingest one or more time steps.

        ``slab`` must have shape ``spatial_shape`` (a single step) or
        ``spatial_shape + (t,)``.
        """
        if self._finalized:
            raise RuntimeError("cannot update a finalized StreamingTucker")
        arr = as_ndarray(slab)
        if arr.shape == self._spatial_shape:
            arr = arr.reshape(self._spatial_shape + (1,))
        if arr.shape[:-1] != self._spatial_shape:
            raise ValueError(
                f"slab shape {arr.shape} does not match spatial shape "
                f"{self._spatial_shape} (+ optional time axis)"
            )
        slab_energy = float(np.linalg.norm(arr.reshape(-1)) ** 2)
        self._energy += slab_energy
        self._n_steps += arr.shape[-1]
        if slab_energy == 0.0:
            # An all-zero slab contributes zero rows to the core.
            if any(b is None for b in self._bases):
                self._pending_zero_steps += arr.shape[-1]
            else:
                self._core_slabs.append(
                    np.zeros(self.current_ranks + (arr.shape[-1],))
                )
            return

        budget = (self._tol**2) * slab_energy / 2.0

        if any(b is None for b in self._bases):
            # First slab: bases straight from its ST-HOSVD (time untouched).
            res = sthosvd(
                arr,
                tol=np.sqrt(budget / slab_energy),
                mode_order=list(range(self._n_spatial)) + [self._n_spatial],
            )
            # Keep the spatial factors; leave time uncompressed by
            # re-projecting the raw slab (the sthosvd above also truncated
            # time, which we do not want while streaming).
            for n in range(self._n_spatial):
                self._bases[n] = res.decomposition.factors[n]
            if self._pending_zero_steps:
                self._core_slabs.append(
                    np.zeros(self.current_ranks + (self._pending_zero_steps,))
                )
                self._pending_zero_steps = 0
            core = multi_ttm(
                arr,
                list(self._bases) + [None],
                transpose=True,
            )
            self._core_slabs.append(np.asfortranarray(core))
            return

        projected = multi_ttm(arr, list(self._bases) + [None], transpose=True)
        residual_energy = slab_energy - float(
            np.linalg.norm(projected.reshape(-1)) ** 2
        )
        if residual_energy > budget:
            self._expand_bases(arr, projected, budget)
            projected = multi_ttm(
                arr, list(self._bases) + [None], transpose=True
            )
        self._discarded += max(
            0.0,
            slab_energy - float(np.linalg.norm(projected.reshape(-1)) ** 2),
        )
        self._core_slabs.append(np.asfortranarray(projected))

    def _expand_bases(
        self, arr: np.ndarray, projected: np.ndarray, budget: float
    ) -> None:
        """Grow the spatial bases to capture ``arr`` within ``budget``."""
        # Residual slab: what the current bases miss.
        back = multi_ttm(projected, list(self._bases) + [None], transpose=False)
        residual = arr - back
        res_norm = float(np.linalg.norm(residual.reshape(-1)))
        if res_norm == 0.0:
            return
        res = sthosvd(
            residual,
            tol=np.sqrt(budget) / res_norm,
            mode_order=list(range(self._n_spatial)) + [self._n_spatial],
        )
        grew = False
        for n in range(self._n_spatial):
            old = self._bases[n]
            new_dirs = res.decomposition.factors[n]
            # Orthogonalize new directions against the existing basis.
            overlap = old @ (old.T @ new_dirs)
            extra = new_dirs - overlap
            q, r = np.linalg.qr(extra)
            keep = np.abs(np.diag(r)) > 1e-12 * max(1.0, res_norm)
            q = q[:, keep]
            if q.shape[1] == 0:
                continue
            max_growth = self._spatial_shape[n] - old.shape[1]
            q = q[:, :max_growth]
            if q.shape[1] == 0:
                continue
            self._bases[n] = np.hstack([old, q])
            grew = True
        if not grew:
            return
        # Zero-pad previously accumulated core slabs into the new bases.
        new_ranks = self.current_ranks
        for i, slab in enumerate(self._core_slabs):
            padded = np.zeros(new_ranks + (slab.shape[-1],))
            padded[tuple(slice(0, s) for s in slab.shape)] = slab
            self._core_slabs[i] = padded

    # -- output ----------------------------------------------------------------------

    def finalize(self) -> TuckerTensor:
        """Recompress the accumulated core and return the decomposition.

        The returned object approximates the full streamed tensor with
        normalized RMS error at most ``tol``.  The streamer becomes
        read-only afterwards.
        """
        if self._n_steps == 0:
            raise RuntimeError("no data was streamed")
        if not self._core_slabs:
            raise ValueError(
                "streamed data is identically zero; nothing to decompose"
            )
        self._finalized = True
        core = np.concatenate(self._core_slabs, axis=-1)
        # Recompress everything (time included) with the remaining budget.
        inner = sthosvd(core, tol=self._tol / np.sqrt(2.0))
        factors = []
        for n in range(self._n_spatial):
            factors.append(self._bases[n] @ inner.decomposition.factors[n])
        factors.append(inner.decomposition.factors[self._n_spatial])
        return TuckerTensor(
            core=inner.decomposition.core, factors=tuple(factors)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingTucker(spatial={self._spatial_shape}, "
            f"steps={self._n_steps}, ranks={self.current_ranks})"
        )
