"""The Tucker-compressed tensor object (paper Sec. II-B, II-C, VII-B).

A :class:`TuckerTensor` holds the core ``G`` (size ``R_1 x ... x R_N``) and
factor matrices ``U^(n)`` (size ``I_n x R_n``) of the approximation

    ``X ~ G x_1 U^(1) x_2 U^(2) ... x_N U^(N)``.

It supports full reconstruction, *partial* reconstruction of arbitrary
subtensors without forming the whole tensor (the capability that lets
terabyte datasets be analysed on a laptop — Sec. II-C), norm computation via
the core (valid for orthonormal factors), and the paper's compression-ratio
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.tensor.dense import as_ndarray
from repro.tensor.ttm import multi_ttm
from repro.util.validation import prod


@dataclass(frozen=True)
class TuckerTensor:
    """Core tensor plus one factor matrix per mode.

    Attributes
    ----------
    core:
        ``R_1 x ... x R_N`` ndarray ``G``.
    factors:
        Tuple of ``I_n x R_n`` factor matrices ``U^(n)``.  For
        decompositions produced by this library the columns are orthonormal.
    """

    core: np.ndarray
    factors: tuple[np.ndarray, ...]

    def __post_init__(self):
        core = np.asarray(self.core, dtype=np.float64)
        factors = tuple(np.asarray(f, dtype=np.float64) for f in self.factors)
        object.__setattr__(self, "core", core)
        object.__setattr__(self, "factors", factors)
        if len(factors) != core.ndim:
            raise ValueError(
                f"core has {core.ndim} modes but {len(factors)} factors given"
            )
        for n, f in enumerate(factors):
            if f.ndim != 2:
                raise ValueError(f"factor {n} must be a matrix, got ndim={f.ndim}")
            if f.shape[1] != core.shape[n]:
                raise ValueError(
                    f"factor {n} has {f.shape[1]} columns but core mode {n} "
                    f"has size {core.shape[n]}"
                )

    # -- shapes ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes N."""
        return self.core.ndim

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape ``I_1 x ... x I_N`` of the reconstructed tensor."""
        return tuple(f.shape[0] for f in self.factors)

    @property
    def ranks(self) -> tuple[int, ...]:
        """Reduced dimensions ``R_1 x ... x R_N``."""
        return self.core.shape

    # -- reconstruction -------------------------------------------------------------

    def reconstruct(self) -> np.ndarray:
        """Full reconstruction ``X~ = G x {U^(n)}`` (eq. 1)."""
        return multi_ttm(self.core, list(self.factors), transpose=False)

    def reconstruct_subtensor(
        self, indices: Sequence[slice | Sequence[int] | int | None]
    ) -> np.ndarray:
        """Reconstruct only the requested subtensor (paper Sec. II-C).

        Each entry of ``indices`` selects rows of the corresponding factor
        matrix: a ``slice``, an integer index (that mode is kept with size
        1), an explicit index sequence, or ``None`` for the whole mode.  The
        cost scales with the *subtensor* size, never the full tensor: only
        the selected factor rows enter the TTM chain.

        Examples
        --------
        A single variable (index 3 of mode 3) at every 10th time step::

            t.reconstruct_subtensor([None, None, None, 3, slice(0, None, 10)])
        """
        if len(indices) != self.order:
            raise ValueError(
                f"need one index per mode ({self.order}), got {len(indices)}"
            )
        rows: list[np.ndarray] = []
        for n, idx in enumerate(indices):
            factor = self.factors[n]
            if idx is None:
                rows.append(factor)
            elif isinstance(idx, slice):
                rows.append(factor[idx])
            elif isinstance(idx, (int, np.integer)):
                if not -factor.shape[0] <= idx < factor.shape[0]:
                    raise IndexError(
                        f"index {idx} out of range for mode {n} of size "
                        f"{factor.shape[0]}"
                    )
                rows.append(factor[idx : idx + 1] if idx >= 0 else factor[idx:][:1])
            else:
                rows.append(factor[np.asarray(idx, dtype=np.intp)])
        for n, r in enumerate(rows):
            if r.shape[0] == 0:
                raise ValueError(f"selection for mode {n} is empty")
        return multi_ttm(self.core, rows, transpose=False)

    # -- norms and errors -------------------------------------------------------------

    def core_norm(self) -> float:
        """``||G||``; equals ``||X~||`` when all factors are orthonormal."""
        return float(np.linalg.norm(self.core.reshape(-1)))

    def residual_norm_sq(self, x_norm_sq: float) -> float:
        """``||X||^2 - ||G||^2``, the paper's fit quantity (Alg. 2 line 10).

        Valid when the factors are orthonormal and ``G = X x {U^(n)T}``;
        clipped at 0 against roundoff.
        """
        return max(0.0, x_norm_sq - self.core_norm() ** 2)

    def relative_error(self, x: np.ndarray) -> float:
        """Normalized RMS error ``||X - X~|| / ||X||`` by explicit residual."""
        arr = as_ndarray(x)
        if arr.shape != self.shape:
            raise ValueError(
                f"tensor shape {arr.shape} does not match decomposition "
                f"shape {self.shape}"
            )
        denom = float(np.linalg.norm(arr.reshape(-1)))
        if denom == 0:
            raise ValueError("cannot compute relative error of a zero tensor")
        return float(
            np.linalg.norm((arr - self.reconstruct()).reshape(-1)) / denom
        )

    # -- compression accounting (Sec. VII-B) --------------------------------------------

    @property
    def storage_words(self) -> int:
        """Words stored: ``prod(R_n) + sum_n I_n R_n``."""
        return prod(self.ranks) + sum(
            f.shape[0] * f.shape[1] for f in self.factors
        )

    @property
    def compression_ratio(self) -> float:
        """``C = prod(I_n) / (prod(R_n) + sum_n I_n R_n)`` (Sec. VII-B)."""
        return prod(self.shape) / self.storage_words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TuckerTensor(shape={self.shape}, ranks={self.ranks}, "
            f"compression={self.compression_ratio:.1f}x)"
        )
