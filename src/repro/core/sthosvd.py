"""Sequentially-truncated HOSVD — Alg. 1 of the paper.

ST-HOSVD processes modes one at a time: form the Gram matrix of the current
working tensor's mode-n unfolding, pick ``R_n`` from the eigenvalue tail
(given a tolerance) or use a prescribed rank, take the leading eigenvectors
as ``U^(n)``, and shrink the working tensor with a transposed TTM.  Because
the working tensor shrinks after every mode, later modes are much cheaper
than in the plain T-HOSVD.

Mode ordering matters only for cost, not correctness (Sec. VIII-C); this
module also provides the two greedy ordering heuristics the paper discusses:
``greedy_flops_order`` (Vannieuwenhoven et al.'s flop-minimizing rule) and
``greedy_ratio_order`` (maximize the compression ratio ``I_n / R_n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.tucker import TuckerTensor
from repro.tensor.dense import as_ndarray
from repro.tensor.eig import eigendecompose, rank_from_tolerance
from repro.tensor.gram import gram
from repro.tensor.ttm import ttm
from repro.util.validation import check_shape_like, prod


@dataclass(frozen=True)
class SthosvdResult:
    """Decomposition plus the per-mode spectral information Alg. 1 produced.

    Attributes
    ----------
    decomposition:
        The compressed tensor.
    eigenvalues:
        Per mode (in *mode* index order, not processing order), the
        eigenvalue spectrum of the Gram matrix that produced ``U^(n)``.
        Note these are spectra of the partially-truncated working tensor,
        not of ``X`` itself, for every mode after the first processed.
    mode_order:
        The order in which modes were processed.
    x_norm:
        ``||X||`` of the input, needed for error accounting.
    """

    decomposition: TuckerTensor
    eigenvalues: tuple[np.ndarray, ...]
    mode_order: tuple[int, ...]
    x_norm: float

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.decomposition.ranks

    def error_estimate(self) -> float:
        """Normalized RMS error estimate from the truncated eigenvalue tails.

        For ST-HOSVD the squared error is exactly the sum over modes of the
        discarded eigenvalue mass of each processing step [22], so this
        estimate is tight (up to roundoff) without reconstructing.
        """
        total = 0.0
        for n in range(len(self.eigenvalues)):
            values = self.eigenvalues[n]
            r = self.ranks[n]
            total += float(np.sum(values[r:]))
        if self.x_norm == 0:
            raise ValueError("zero input tensor")
        return float(np.sqrt(max(0.0, total)) / self.x_norm)


def _resolve_order(
    order: Sequence[int] | str | None, n_modes: int
) -> list[int] | None:
    """Normalize the mode_order argument; None means natural order."""
    if order is None or order == "natural":
        return list(range(n_modes))
    if isinstance(order, str):
        raise ValueError(
            f"unknown mode_order {order!r}; pass a permutation, 'natural', "
            f"or use greedy_flops_order/greedy_ratio_order"
        )
    order = [int(m) for m in order]
    if sorted(order) != list(range(n_modes)):
        raise ValueError(f"mode_order {order} is not a permutation of modes")
    return order


def _mode_spectrum_gram(y: np.ndarray, mode: int) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues (decreasing) and eigenvectors via the Gram matrix.

    The paper's production path: cheap (one syrk + one small symmetric
    eigensolve) but limited to accuracies above sqrt(machine epsilon),
    because forming ``Y Y^T`` squares the condition number.
    """
    eig = eigendecompose(gram(y, mode))
    return eig.values, eig.vectors


def _mode_spectrum_svd(y: np.ndarray, mode: int) -> tuple[np.ndarray, np.ndarray]:
    """Squared singular values and left singular vectors of the unfolding.

    The numerically robust alternative the paper's Sec. IX proposes for
    eps near or below sqrt(machine epsilon): compute the SVD of ``Y_(n)``
    directly (roughly twice the cost of the Gram approach for tall-skinny
    transposes).  Sign convention matches the Gram path.
    """
    from repro.tensor.dense import unfold as _unfold
    from repro.tensor.eig import _fix_signs

    mat = _unfold(y, mode)
    u, sing, _ = np.linalg.svd(mat, full_matrices=False)
    values = sing**2
    if u.shape[1] < mat.shape[0]:  # wide unfolding never hits this branch
        pad = mat.shape[0] - u.shape[1]
        values = np.concatenate([values, np.zeros(pad)])
        u = np.hstack([u, np.zeros((mat.shape[0], pad))])
    return values, _fix_signs(u)


def sthosvd(
    x: np.ndarray,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    mode_order: Sequence[int] | str | None = None,
    method: str = "gram",
) -> SthosvdResult:
    """Sequentially-truncated HOSVD (Alg. 1).

    Parameters
    ----------
    x:
        Dense input tensor (any order >= 1).
    tol:
        Relative error tolerance ``eps``: ranks are chosen per mode so the
        final normalized RMS error is at most ``eps`` (eq. 3, with the
        per-mode budget ``eps^2 ||X||^2 / N``).  Exactly one of ``tol`` /
        ``ranks`` must be given.
    ranks:
        Prescribed reduced dimensions ``R_n`` (e.g. for HOOI refinement or
        performance experiments).
    mode_order:
        Processing order: a permutation, ``"natural"``, or ``None``.
    method:
        ``"gram"`` — the paper's Gram-matrix eigensolver (Alg. 1 verbatim;
        accuracy floor around sqrt(machine eps) ~ 1e-8 in the spectrum).
        ``"svd"`` — direct SVD of the unfolding, the numerically robust
        variant proposed in the paper's Sec. IX, required to realize
        tolerances at or below ~1e-6 on strongly compressible data.

    Returns
    -------
    SthosvdResult
    """
    arr = as_ndarray(x)
    n_modes = arr.ndim
    if (tol is None) == (ranks is None):
        raise ValueError("specify exactly one of tol= or ranks=")
    if tol is not None and tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if method not in ("gram", "svd"):
        raise ValueError(f"unknown method {method!r}; use 'gram' or 'svd'")
    if ranks is not None:
        ranks = check_shape_like(ranks, "ranks")
        if len(ranks) != n_modes:
            raise ValueError(f"need {n_modes} ranks, got {len(ranks)}")
        for r, s in zip(ranks, arr.shape):
            if r > s:
                raise ValueError(f"rank {r} exceeds dimension {s}")
    order = _resolve_order(mode_order, n_modes)
    spectrum = _mode_spectrum_gram if method == "gram" else _mode_spectrum_svd

    x_norm = float(np.linalg.norm(arr.reshape(-1)))
    threshold = (
        (tol**2) * (x_norm**2) / n_modes if tol is not None else None
    )

    y = arr
    factors: list[np.ndarray | None] = [None] * n_modes
    eigenvalues: list[np.ndarray | None] = [None] * n_modes
    for n in order:
        values, vectors = spectrum(y, n)
        if threshold is not None:
            rn = rank_from_tolerance(values, threshold)
        else:
            rn = ranks[n]  # type: ignore[index]
        factors[n] = np.array(vectors[:, :rn], copy=True)
        eigenvalues[n] = values
        y = ttm(y, factors[n], n, transpose=True)

    core = np.asfortranarray(y)
    decomposition = TuckerTensor(core=core, factors=tuple(factors))  # type: ignore[arg-type]
    return SthosvdResult(
        decomposition=decomposition,
        eigenvalues=tuple(eigenvalues),  # type: ignore[arg-type]
        mode_order=tuple(order),
        x_norm=x_norm,
    )


def greedy_flops_order(shape: Sequence[int], ranks: Sequence[int]) -> list[int]:
    """Vannieuwenhoven et al.'s greedy mode order: minimize flops per step.

    At each step, among unprocessed modes pick the one whose processing
    (Gram + TTM on the current working tensor) costs fewest flops; the
    working tensor then shrinks in that mode.  The paper notes this
    heuristic is good but not always optimal (Sec. VIII-C).
    """
    shape = list(check_shape_like(shape, "shape"))
    ranks = check_shape_like(ranks, "ranks")
    if len(shape) != len(ranks):
        raise ValueError("shape and ranks differ in order")
    remaining = set(range(len(shape)))
    current = list(shape)
    order: list[int] = []
    while remaining:
        def step_flops(n: int) -> float:
            j = prod(current)
            return 2.0 * current[n] * j + 2.0 * ranks[n] * j

        best = min(sorted(remaining), key=step_flops)
        order.append(best)
        current[best] = ranks[best]
        remaining.remove(best)
    return order


def greedy_ratio_order(shape: Sequence[int], ranks: Sequence[int]) -> list[int]:
    """The paper's alternative heuristic: process highest ``I_n / R_n`` first.

    Maximizing the per-step compression ratio shrinks the working tensor
    fastest, reducing the cost of all subsequent steps.
    """
    shape = check_shape_like(shape, "shape")
    ranks = check_shape_like(ranks, "ranks")
    if len(shape) != len(ranks):
        raise ValueError("shape and ranks differ in order")
    return sorted(range(len(shape)), key=lambda n: ranks[n] / shape[n])
