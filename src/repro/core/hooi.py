"""Higher-Order Orthogonal Iteration — Alg. 2 of the paper.

HOOI is alternating optimization: holding all factors but ``U^(n)`` fixed,
the optimal ``U^(n)`` consists of the leading left singular vectors of the
unfolding of ``Y = X x {U^(m)T}_{m != n}``.  Cycling over modes
monotonically improves the fit.  The paper initializes with ST-HOSVD and
tracks the fit through the identity

    ``||X - G x {U^(n)}||^2 = ||X||^2 - ||G||^2``

(valid for orthonormal factors with the optimal core), stopping when that
quantity stops decreasing, drops below a tolerance, or a maximum number of
iterations is reached.  The paper's observation (Sec. VII-C) — that HOOI
barely improves on ST-HOSVD for combustion data — is reproduced in the
Table II benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.sthosvd import SthosvdResult, sthosvd
from repro.core.tucker import TuckerTensor
from repro.tensor.dense import as_ndarray
from repro.tensor.eig import eigendecompose
from repro.tensor.gram import gram
from repro.tensor.ttm import multi_ttm, ttm
from repro.util.validation import check_shape_like


@dataclass(frozen=True)
class HooiResult:
    """HOOI output: decomposition, fit history, and convergence flags.

    Attributes
    ----------
    decomposition:
        The refined Tucker decomposition.
    residual_history:
        ``||X||^2 - ||G_k||^2`` after each outer iteration, starting with
        the ST-HOSVD initialization's value (index 0).  Nonincreasing up to
        roundoff.
    n_iterations:
        Outer iterations actually performed.
    converged:
        True if iteration stopped because improvement fell below the
        threshold (rather than hitting ``max_iterations``).
    init:
        The ST-HOSVD initialization result (None if factors were supplied).
    """

    decomposition: TuckerTensor
    residual_history: tuple[float, ...]
    n_iterations: int
    converged: bool
    init: SthosvdResult | None

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.decomposition.ranks

    def error_estimate(self, x_norm: float) -> float:
        """Normalized RMS error from the final fit quantity."""
        if x_norm <= 0:
            raise ValueError(f"x_norm must be positive, got {x_norm}")
        return float(np.sqrt(max(0.0, self.residual_history[-1])) / x_norm)


def hooi(
    x: np.ndarray,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    max_iterations: int = 25,
    improvement_tol: float = 1e-10,
    init: SthosvdResult | None = None,
) -> HooiResult:
    """Higher-order orthogonal iteration (Alg. 2), ST-HOSVD initialized.

    Parameters
    ----------
    x:
        Dense input tensor.
    tol / ranks:
        Passed to the ST-HOSVD initialization (exactly one required unless
        ``init`` is supplied).  After initialization the ranks are *fixed*;
        HOOI refines the subspaces, not the truncation.
    max_iterations:
        Upper bound on outer iterations.
    improvement_tol:
        Stop when the decrease of the normalized residual
        ``(||X||^2 - ||G||^2) / ||X||^2`` between outer iterations falls
        below this value (Alg. 2's "ceases to decrease").
    init:
        Reuse an existing ST-HOSVD result instead of recomputing it.
    """
    arr = as_ndarray(x)
    n_modes = arr.ndim
    if max_iterations < 0:
        raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
    if improvement_tol < 0:
        raise ValueError(f"improvement_tol must be >= 0, got {improvement_tol}")

    if init is None:
        init = sthosvd(arr, tol=tol, ranks=ranks)
    else:
        if init.decomposition.shape != arr.shape:
            raise ValueError(
                f"init shape {init.decomposition.shape} does not match input "
                f"{arr.shape}"
            )
    target_ranks = check_shape_like(init.decomposition.ranks, "ranks")
    factors = [np.array(f, copy=True) for f in init.decomposition.factors]
    core = np.array(init.decomposition.core, copy=True)

    x_norm_sq = float(np.linalg.norm(arr.reshape(-1)) ** 2)
    history = [max(0.0, x_norm_sq - float(np.linalg.norm(core.reshape(-1)) ** 2))]

    converged = False
    iterations = 0
    for _ in range(max_iterations):
        y = None
        for n in range(n_modes):
            # Y = X x {U^(m)T} for m != n (Alg. 2 line 5).
            y = multi_ttm(arr, factors, skip=n, transpose=True)
            s = gram(y, n)
            eig = eigendecompose(s)
            factors[n] = eig.leading(target_ranks[n])
        # Core reuses the last inner iteration's Y (Alg. 2 line 9): that Y
        # already has every mode but N-1 projected.
        assert y is not None
        core = np.asfortranarray(ttm(y, factors[n_modes - 1], n_modes - 1, transpose=True))
        iterations += 1
        residual = max(
            0.0, x_norm_sq - float(np.linalg.norm(core.reshape(-1)) ** 2)
        )
        history.append(residual)
        if (history[-2] - history[-1]) / x_norm_sq < improvement_tol:
            converged = True
            break

    return HooiResult(
        decomposition=TuckerTensor(core=core, factors=tuple(factors)),
        residual_history=tuple(history),
        n_iterations=iterations,
        converged=converged,
        init=init,
    )
