"""Decomposition health checks and validation reports.

Downstream users of compressed artifacts need to verify properties the
algorithms guarantee by construction: orthonormal factor columns, a core
that is the optimal projection of the data, and an error estimate that
matches reality.  :func:`validate_tucker` checks all of them and returns a
structured report (used by tests, useful in notebooks and pipelines).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tucker import TuckerTensor
from repro.tensor.dense import as_ndarray
from repro.tensor.ttm import multi_ttm


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_tucker`.

    Attributes
    ----------
    orthonormality_errors:
        Per mode, ``max |U^T U - I|`` — 0 for perfectly orthonormal factors.
    core_residual:
        ``||G - X x {U^T}|| / ||X||`` if the original tensor was supplied
        (None otherwise); ~0 when the core is the optimal projection.
    relative_error:
        ``||X - X~|| / ||X||`` if the original tensor was supplied.
    norm_identity_gap:
        ``| ||X~||  - ||G|| | / ||G||`` — orthonormal factors preserve the
        core norm through reconstruction.
    issues:
        Human-readable list of everything that exceeded its tolerance.
    """

    orthonormality_errors: tuple[float, ...]
    core_residual: float | None
    relative_error: float | None
    norm_identity_gap: float
    issues: tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when no check exceeded its tolerance."""
        return not self.issues


def check_orthonormal(factor: np.ndarray) -> float:
    """``max |U^T U - I|`` for one factor matrix."""
    factor = np.asarray(factor, dtype=np.float64)
    if factor.ndim != 2:
        raise ValueError(f"factor must be a matrix, got ndim={factor.ndim}")
    r = factor.shape[1]
    return float(np.max(np.abs(factor.T @ factor - np.eye(r))))


def validate_tucker(
    t: TuckerTensor,
    x: np.ndarray | None = None,
    atol: float = 1e-8,
) -> ValidationReport:
    """Validate a Tucker decomposition's structural guarantees.

    Parameters
    ----------
    t:
        The decomposition to check.
    x:
        Optionally, the original tensor: enables the core-optimality and
        true-error checks (costs one reconstruction).
    atol:
        Tolerance for the orthonormality / identity checks.
    """
    if not isinstance(t, TuckerTensor):
        raise TypeError(f"expected a TuckerTensor, got {type(t).__name__}")
    issues: list[str] = []

    orth = tuple(check_orthonormal(f) for f in t.factors)
    for n, err in enumerate(orth):
        if err > atol:
            issues.append(
                f"factor {n} deviates from orthonormality by {err:.2e}"
            )

    recon = t.reconstruct()
    g_norm = float(np.linalg.norm(t.core.reshape(-1)))
    recon_norm = float(np.linalg.norm(recon.reshape(-1)))
    gap = abs(recon_norm - g_norm) / max(g_norm, 1e-300)
    if gap > max(atol, 1e-12):
        issues.append(
            f"reconstruction norm differs from core norm by {gap:.2e} "
            f"(factors not orthonormal?)"
        )

    core_residual = None
    relative_error = None
    if x is not None:
        arr = as_ndarray(x)
        if arr.shape != t.shape:
            raise ValueError(
                f"tensor shape {arr.shape} does not match decomposition "
                f"{t.shape}"
            )
        x_norm = float(np.linalg.norm(arr.reshape(-1)))
        if x_norm == 0:
            raise ValueError("cannot validate against a zero tensor")
        optimal_core = multi_ttm(arr, list(t.factors), transpose=True)
        core_residual = float(
            np.linalg.norm((t.core - optimal_core).reshape(-1)) / x_norm
        )
        if core_residual > max(atol, 1e-10):
            issues.append(
                f"core is not the optimal projection (residual "
                f"{core_residual:.2e}); was it produced by a different "
                f"factor set?"
            )
        relative_error = float(
            np.linalg.norm((arr - recon).reshape(-1)) / x_norm
        )

    return ValidationReport(
        orthonormality_errors=orth,
        core_residual=core_residual,
        relative_error=relative_error,
        norm_identity_gap=gap,
        issues=tuple(issues),
    )
