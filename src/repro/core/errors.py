"""Error metrics and bounds for Tucker compression (paper Secs. II, VII).

Implements:

* :func:`normalized_rms` / :func:`relative_error` — the paper's "normalized
  RMS error" ``||X - X~|| / ||X||``.
* :func:`max_abs_error` — maximum absolute elementwise error (Table II).
* :func:`modewise_error_curves` — the per-mode truncation error curves
  ``sqrt(sum_{i > R} lambda_i^(n)) / ||X||`` of Fig. 6.
* :func:`error_bound` — the T-HOSVD truncation bound, eq. (3):
  ``||X - X~||^2 <= sum_n sum_{i > R_n} lambda_i^(n) <= eps^2 ||X||^2``.
* :func:`compression_ratio` — the storage ratio formula of Sec. VII-B.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.dense import as_ndarray
from repro.tensor.eig import eigendecompose
from repro.tensor.gram import gram
from repro.util.validation import check_shape_like, prod


def normalized_rms(x: np.ndarray, x_hat: np.ndarray) -> float:
    """``||X - X~|| / ||X||``.

    The paper calls this the normalized RMS error: with data centered and
    scaled to unit variance, ``||X||^2 ~ prod(I_n)``, so the relative
    Frobenius error equals the RMS elementwise error in units of the data's
    standard deviation.
    """
    a = as_ndarray(x)
    b = as_ndarray(x_hat)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    denom = float(np.linalg.norm(a.reshape(-1)))
    if denom == 0:
        raise ValueError("cannot normalize by a zero tensor")
    return float(np.linalg.norm((a - b).reshape(-1)) / denom)


#: Alias: the quantity is exactly the relative Frobenius-norm error.
relative_error = normalized_rms


def max_abs_error(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Maximum absolute elementwise error (Table II column)."""
    a = as_ndarray(x)
    b = as_ndarray(x_hat)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.max(np.abs(a - b)))


def mode_eigenvalues(x: np.ndarray) -> list[np.ndarray]:
    """Eigenvalues of every mode-n Gram matrix, decreasing per mode.

    ``lambda_i^(n)`` is the square of the i-th singular value of ``X_(n)``;
    these spectra fully determine the compressibility of the data.
    """
    arr = as_ndarray(x)
    return [eigendecompose(gram(arr, n)).values for n in range(arr.ndim)]


def modewise_error_curves(
    x: np.ndarray, eigenvalues: Sequence[np.ndarray] | None = None
) -> list[np.ndarray]:
    """Fig. 6: for each mode, the normalized truncation error vs rank.

    Returns one array per mode; entry ``R`` (0 <= R <= I_n) is

        ``sqrt(sum_{i > R} lambda_i^(n)) / ||X||``,

    the mode-wise contribution to the error bound if mode ``n`` is truncated
    to rank ``R``.  Pass precomputed ``eigenvalues`` to avoid refactoring
    the Gram matrices (the distributed driver supplies them).
    """
    arr = as_ndarray(x)
    norm = float(np.linalg.norm(arr.reshape(-1)))
    if norm == 0:
        raise ValueError("zero tensor has no meaningful error curve")
    if eigenvalues is None:
        eigenvalues = mode_eigenvalues(arr)
    curves = []
    for values in eigenvalues:
        n = values.shape[0]
        tail = np.zeros(n + 1)
        tail[:n] = np.cumsum(values[::-1])[::-1]
        curves.append(np.sqrt(np.clip(tail, 0.0, None)) / norm)
    return curves


def error_bound(
    eigenvalues: Sequence[np.ndarray], ranks: Sequence[int], x_norm: float
) -> float:
    """T-HOSVD error bound (eq. 3), as a normalized RMS error.

    ``||X - X~|| / ||X|| <= sqrt(sum_n sum_{i > R_n} lambda_i^(n)) / ||X||``.
    """
    ranks = check_shape_like(ranks, "ranks")
    if len(eigenvalues) != len(ranks):
        raise ValueError("one eigenvalue array per mode is required")
    if x_norm <= 0:
        raise ValueError(f"x_norm must be positive, got {x_norm}")
    total = 0.0
    for values, r in zip(eigenvalues, ranks):
        if not 0 <= r <= values.shape[0]:
            raise ValueError(
                f"rank {r} out of range for mode with {values.shape[0]} eigenvalues"
            )
        total += float(np.sum(values[r:]))
    return float(np.sqrt(max(0.0, total)) / x_norm)


def compression_ratio(shape: Sequence[int], ranks: Sequence[int]) -> float:
    """``C = prod(I_n) / (prod(R_n) + sum_n I_n R_n)`` (Sec. VII-B)."""
    shape = check_shape_like(shape, "shape")
    ranks = check_shape_like(ranks, "ranks")
    if len(shape) != len(ranks):
        raise ValueError(f"shape {shape} and ranks {ranks} differ in order")
    for r, s in zip(ranks, shape):
        if r > s:
            raise ValueError(f"rank {r} exceeds dimension {s}")
    storage = prod(ranks) + sum(i * r for i, r in zip(shape, ranks))
    return prod(shape) / storage
