"""Parallel leading-eigenvector computation — Alg. 5 of the paper.

After :func:`~repro.distributed.gram.dist_gram`, each rank holds the block
row of ``S`` matching its mode-``n`` tensor rows.  Alg. 5 all-gathers the
full ``I_n x I_n`` matrix across the mode-``n`` processor column, solves the
(small) symmetric eigenproblem *redundantly* on every rank — ``I_n`` is
assumed modest, the paper's working assumption is ``I_n <= 2000`` — and
extracts the local block row of the factor matrix, which is exactly the
redundant factor distribution of Sec. IV-B.

Rank selection is either prescribed or chosen "on the fly" from the
eigenvalue tail against the epsilon budget (Alg. 1 line 5), and is
identical on every rank because all ranks solve the same eigenproblem.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import block_range
from repro.tensor.eig import EigResult, eigendecompose, rank_from_tolerance
from repro.util.flops import eig_flops
from repro.util.validation import check_axis


def dist_evecs(
    dt: DistTensor,
    s_rows: np.ndarray,
    mode: int,
    rank: int | None = None,
    threshold: float | None = None,
    min_rank: int = 1,
) -> tuple[np.ndarray, EigResult]:
    """Parallel eigenvectors (Alg. 5).

    Parameters
    ----------
    dt:
        The distributed tensor whose grid defines the data distribution
        (its *current* mode-``mode`` extent must match ``s_rows``).
    s_rows:
        This rank's block row of the Gram matrix from :func:`dist_gram`.
    rank / threshold:
        Exactly one must be given: a prescribed ``R_n`` or the epsilon
        budget ``eps^2 ||X||^2 / N`` for on-the-fly truncation.
    min_rank:
        Floor for threshold-based selection.  The driver passes the grid
        extent ``P_n``: the block distribution needs at least one output
        row per processor, so very aggressive truncations are rounded up
        (a strictly better approximation, never worse).

    Returns
    -------
    (u_local, eig):
        ``u_local`` is this rank's block row of ``U^(n)`` (shape
        ``local I_n x R_n``); ``eig`` the full spectrum (identical on all
        ranks), which drives error accounting.
    """
    mode = check_axis(mode, dt.ndim)
    if (rank is None) == (threshold is None):
        raise ValueError("specify exactly one of rank= or threshold=")
    col = dt.grid.mode_column(mode)
    jn = dt.global_shape[mode]
    if s_rows.ndim != 2 or s_rows.shape[1] != jn:
        raise ValueError(
            f"s_rows shape {s_rows.shape} does not match mode-{mode} "
            f"dimension {jn}"
        )

    # All-gather the full Gram matrix over the processor column (line 4).
    pieces = col.allgather(s_rows)
    s_full = np.vstack(pieces)
    if s_full.shape != (jn, jn):
        raise ValueError(
            f"gathered Gram matrix has shape {s_full.shape}, expected "
            f"({jn}, {jn})"
        )
    # Redundant local eigendecomposition (line 5); charge the paper's
    # (10/3) I_n^3 flops on every rank since every rank solves it.
    eig = eigendecompose(s_full)
    dt.comm.add_flops(eig_flops(jn))
    if rank is not None:
        rn = rank
    else:
        rn = max(min_rank, rank_from_tolerance(eig.values, threshold))  # type: ignore[arg-type]
    u_full = eig.leading(rn)
    # Extract this rank's block row (line 6), in the Gram matrix's working
    # dtype: the eigensolve always runs in float64 (it is rank-local and
    # cheap), but a float32 pipeline ships and applies float32 factors so
    # the downstream TTM keeps its narrow words.
    start, stop = block_range(jn, col.size, col.rank)
    u_local = np.array(u_full[start:stop], dtype=s_rows.dtype, copy=True)
    # M_EIG live set: local S block + gathered S + full U + local U block.
    dt.comm.note_memory(s_rows.size + s_full.size + u_full.size + u_local.size)
    return u_local, eig
