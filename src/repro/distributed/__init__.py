"""Distributed-memory parallel Tucker decomposition (paper Secs. IV-VI).

These modules run on the simulated MPI runtime of :mod:`repro.mpi` and
implement the paper's parallel system:

* :mod:`repro.distributed.layout` — block distributions of tensors and the
  redundant factor-matrix distribution (Sec. IV).
* :class:`DistTensor` — a block-distributed dense tensor whose unfoldings
  are logical (no data movement).
* :func:`dist_ttm` — parallel TTM, Alg. 3 (blocked row-by-row reduce, plus
  the single reduce-scatter fast path of Sec. V-B).
* :func:`dist_gram` — parallel Gram, Alg. 4 (ring exchange + all-reduce).
* :func:`dist_evecs` — parallel eigenvectors, Alg. 5 (all-gather +
  redundant eigensolve).
* :func:`dist_sthosvd` / :func:`dist_hooi` — the full parallel algorithms.
* :func:`choose_grid` — processor-grid selection heuristics (Sec. VIII-B).
* :mod:`repro.distributed.overlap` — the ``REPRO_SPMD_OVERLAP`` knob: the
  Gram ring and the blocked TTM pipeline their communication behind the
  local dgemms by default (bit-identical results with the knob off).

Every public entry point is exercised against the sequential reference
implementation in the test suite.
"""

from repro.distributed.layout import block_range, block_ranges, local_block
from repro.distributed.overlap import OVERLAP_ENV_VAR, overlap_enabled
from repro.distributed.ring import RingHop, mode_ring_hops, ring_exchange
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.ttm import dist_ttm
from repro.distributed.gram import dist_gram
from repro.distributed.evecs import dist_evecs
from repro.distributed.sthosvd import DistTucker, dist_sthosvd
from repro.distributed.hooi import dist_hooi
from repro.distributed.grid import choose_grid
from repro.distributed.tsqr import (
    TSQR_TREE_ENV_VAR,
    dist_mode_svd,
    tsqr_r,
    tsqr_tree,
)
from repro.distributed.streaming import DistStreamingTucker

__all__ = [
    "block_range",
    "block_ranges",
    "local_block",
    "OVERLAP_ENV_VAR",
    "overlap_enabled",
    "RingHop",
    "mode_ring_hops",
    "ring_exchange",
    "TSQR_TREE_ENV_VAR",
    "tsqr_tree",
    "DistTensor",
    "dist_ttm",
    "dist_gram",
    "dist_evecs",
    "DistTucker",
    "dist_sthosvd",
    "dist_hooi",
    "choose_grid",
    "dist_mode_svd",
    "tsqr_r",
    "DistStreamingTucker",
]
