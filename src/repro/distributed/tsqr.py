"""Communication-avoiding TSQR and the Gram-free factor kernel (Sec. IX).

The paper's conclusion proposes improving numerical robustness by computing
singular vectors directly instead of via the Gram matrix: "because Y_(n)^T
is typically very tall and skinny, we can compute the SVD using a QR
decomposition as a preprocessing step at roughly twice the cost".  This
module implements that improvement on the distributed substrate:

* :func:`tsqr_r` — the R factor of a tall-skinny QR across a communicator
  (Demmel et al.'s communication-avoiding TSQR; only R is needed here, so
  Q is never formed), with two reduction trees:

  - ``tree="binary"`` — eliminate-and-broadcast: a binary reduction of
    stacked local R factors to group rank 0, then a broadcast.
  - ``tree="butterfly"`` — the allreduce-style butterfly: ``log2 P``
    pairwise exchange rounds after which *every* rank holds the global
    R, no broadcast.  Non-power-of-two sizes work by skipping absent
    partners and fanning the finished R out to the (few) ranks the
    truncated butterfly leaves incomplete.

  Both trees stack partner triangles lower-group-rank first at every
  node, so they perform the *same* floating-point folds in the same
  bracketing and return bit-identical R factors (up to nothing — the
  bits match exactly, before and after the sign convention).

* :func:`dist_mode_svd` — this rank's block row of ``U^(n)`` computed from
  the *transposed* local unfolding: the local tensors travel around the
  mode-column ring (the shared :func:`~repro.distributed.ring.ring_exchange`
  pipeline, all hops posted up front under ``REPRO_SPMD_OVERLAP``), each
  rank assembles complete rows of ``Y_(n)^T`` for its share of the column
  range while later hops are still in flight, the local QR of the
  assembled slab runs at the pipeline tail, and the TSQR tree combines
  the R factors over the whole grid; a small ``J_n x J_n`` SVD of the
  final R yields the spectrum and this rank's factor rows.

Unlike Alg. 4 + Alg. 5 this path never squares the condition number, so
epsilon-truncation remains reliable down to machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.config import default_for
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import block_range
from repro.distributed.overlap import overlap_enabled
from repro.distributed.ring import mode_ring_hops, ring_exchange, unfold_peer
from repro.mpi.comm import Communicator
from repro.tensor.dense import match_dtype
from repro.tensor.eig import EigResult, _fix_signs, rank_from_tolerance
from repro.util.validation import check_axis

#: Environment switch for the TSQR reduction tree: ``binary`` (default,
#: eliminate-and-broadcast) or ``butterfly`` (allreduce-style exchange
#: rounds, no broadcast).  A ``tree=`` keyword on the kernels overrides it.
TSQR_TREE_ENV_VAR = "REPRO_TSQR_TREE"

_TREES = ("binary", "butterfly")


def tsqr_tree(override: str | None = None) -> str:
    """Resolve the TSQR tree variant: kwarg > ``REPRO_TSQR_TREE`` > binary."""
    tree = override if override is not None else default_for("tsqr_tree")
    if tree not in _TREES:
        raise ValueError(f"unknown TSQR tree {tree!r}; use one of {_TREES}")
    return tree


def _local_r(matrix: np.ndarray) -> np.ndarray:
    """Upper-triangular R of a local QR, in its *true* shape.

    For an ``m x n`` slab with ``m < n`` the R factor is ``m x n``; tree
    nodes stack true shapes (no zero-row padding), so flop charges reflect
    the rows actually factorized.
    """
    return np.linalg.qr(matrix, mode="r")


def _fold(comm: Communicator, mine: np.ndarray, other, lower_first: bool):
    """One tree node: stack two R factors (lower group rank on top) and
    re-factorize, charging the true stacked shape."""
    other = np.asarray(other)
    stacked = np.vstack([mine, other] if lower_first else [other, mine])
    n = stacked.shape[1]
    r = _local_r(stacked)
    comm.add_flops(2 * stacked.shape[0] * n * n)
    return r


def _tsqr_binary(comm: Communicator, r: np.ndarray) -> np.ndarray:
    """Eliminate-and-broadcast: binary reduction to rank 0, then bcast.

    At round k, ranks with bit k set send their triangle to
    ``rank - 2^k`` and drop out; rank 0 ends with the global R and
    broadcasts it.
    """
    rank, size = comm.rank, comm.size
    step = 1
    while step < size:
        if rank % (2 * step) == 0:
            partner = rank + step
            if partner < size:
                other = comm.recv(source=partner, tag=("tsqr", step))
                r = _fold(comm, r, other, lower_first=True)
        else:
            comm.send(r, dest=rank - step, tag=("tsqr", step))
            break  # eliminated; rejoin at the broadcast
        step *= 2
    return np.asarray(comm.bcast(r if rank == 0 else None, root=0))


def _butterfly_complete(size: int) -> list[bool]:
    """Which ranks of a skip-absent-partner butterfly end holding the
    global R.  Pure arithmetic on group ranks — every member derives the
    identical schedule locally, so the fix-up fan-out needs no extra
    coordination round."""
    cover = [1 << i for i in range(size)]
    step = 1
    while step < size:
        cover = [
            c | cover[i ^ step] if i ^ step < size else c
            for i, c in enumerate(cover)
        ]
        step *= 2
    full = (1 << size) - 1
    return [c == full for c in cover]


def _tsqr_butterfly(
    comm: Communicator, r: np.ndarray, pipelined: bool
) -> np.ndarray:
    """Butterfly (allreduce-style) TSQR: ``log2 P`` pairwise exchange
    rounds; every rank folds its partner's triangle each round, stacking
    the lower group rank first — the same folds, in the same bracketing,
    as the binary tree, so the result is bit-identical to it.

    A rank whose partner ``rank ^ 2^k`` falls outside the group skips
    that round (its R is simply carried forward).  For non-power-of-two
    sizes a few ranks therefore finish without every contribution; the
    ranks that did finish fan the global R out to them — far cheaper
    than the binary tree's full broadcast, and absent entirely at
    power-of-two sizes.  The exchange rounds themselves have no schedule
    freedom (each round's send is the previous round's fold, so
    ``sendrecv``'s staged send leg is already maximally eager); overlap
    only changes the fix-up fan-out, whose sends are posted ``isend`` s
    completed after the receivers are served.
    """
    rank, size = comm.rank, comm.size
    step = 1
    while step < size:
        partner = rank ^ step
        if partner < size:
            other = comm.sendrecv(
                r, dest=partner, source=partner, tag=("tsqr-bfly", step)
            )
            r = _fold(comm, r, other, lower_first=rank < partner)
        step *= 2

    if size & (size - 1) == 0:
        return r  # power of two: every rank already holds the global R
    complete = _butterfly_complete(size)
    if not all(complete):
        donors = [i for i, done in enumerate(complete) if done]
        needy = [i for i, done in enumerate(complete) if not done]
        posted = []
        for t, dst in enumerate(needy):
            src = donors[t % len(donors)]
            if rank == src:
                if pipelined:
                    posted.append(
                        comm.isend(r, dest=dst, tag=("tsqr-fix", t))
                    )
                else:
                    comm.send(r, dest=dst, tag=("tsqr-fix", t))
            elif rank == dst:
                r = np.asarray(
                    comm.recv(source=src, tag=("tsqr-fix", t))
                )
        for req in posted:
            req.wait()
    return r


def tsqr_r(
    comm: Communicator,
    local: np.ndarray,
    tree: str | None = None,
    overlap: bool | None = None,
) -> np.ndarray:
    """R factor of the QR of the row-stacked distributed matrix.

    Every rank passes its local ``m_i x n`` slab (``n`` identical across
    ranks); all ranks return the same ``n x n`` R factor (up to a
    deterministic sign convention on the diagonal).

    ``tree`` selects the reduction tree (``"binary"`` /
    ``"butterfly"``, default the ``REPRO_TSQR_TREE`` environment switch);
    the returned factor is bit-identical across tree choices.
    ``overlap`` (default ``REPRO_SPMD_OVERLAP``) posts the butterfly's
    non-power-of-two fix-up fan-out as deferred-completion sends;
    charges and bits are identical either way.

    Intermediate R factors keep their true row counts — short local
    slabs (``m_i < n``) stack as-is instead of being zero-padded, so
    each node's flop charge is ``2 (m_a + m_b) n^2`` for the rows it
    actually factorizes; only the final factor is padded to ``n x n``.
    """
    local = np.asarray(local, dtype=match_dtype(np.asarray(local).dtype))
    if local.ndim != 2:
        raise ValueError(f"tsqr_r expects a matrix, got ndim={local.ndim}")
    variant = tsqr_tree(tree)
    pipelined = overlap_enabled(overlap)
    n = local.shape[1]
    r = _local_r(local)
    comm.add_flops(2 * local.shape[0] * n * n)

    if comm.size > 1:
        if variant == "butterfly":
            r = _tsqr_butterfly(comm, r, pipelined)
        else:
            r = _tsqr_binary(comm, r)

    # Every rank now holds the same global R in its true shape; pad to
    # n x n so downstream consumers always see the full triangle.
    if r.shape[0] < n:
        r = np.vstack([r, np.zeros((n - r.shape[0], n), dtype=r.dtype)])
    # Deterministic sign convention: make the diagonal non-negative.
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return signs[:, None] * r


def _assemble_slab_t(
    dt: DistTensor,
    local_unf: np.ndarray,
    mode: int,
    keep: slice,
    jn: int,
    pn: int,
    my_pn: int,
    row_start: int,
    row_stop: int,
    pipelined: bool,
) -> np.ndarray:
    """Assemble the *transposed* slab ``Y_(n)^T[:, keep].T`` — shape
    ``(J_n, kept columns)``, C-ordered, so its ``.T`` is the F-ordered
    ``(kept columns) x J_n`` slab LAPACK's QR consumes without a copy.

    Each row block is written straight from the peer unfolding (one copy,
    no intermediate transposed temporaries: the former C-ordered slab
    forced every block through a strided transpose assignment).  The ring
    pipeline posts all hops up front, so each arriving block's
    unfold/scatter overlaps the hops still in flight.
    """
    col = dt.grid.mode_column(mode)
    slab_t = np.zeros((jn, keep.stop - keep.start), dtype=local_unf.dtype)
    exchanges = ring_exchange(
        col, dt.local, mode_ring_hops(pn, my_pn, tag="svd"), pipelined
    ) if pn > 1 else iter(())
    slab_t[row_start:row_stop, :] = local_unf[:, keep]
    for hop, w in exchanges:
        w_unf = unfold_peer(w, mode)
        w_rows = block_range(jn, pn, hop.source)
        slab_t[w_rows[0] : w_rows[1], :] = w_unf[:, keep]
    return slab_t


def dist_mode_svd(
    dt: DistTensor,
    mode: int,
    rank: int | None = None,
    threshold: float | None = None,
    min_rank: int = 1,
    overlap: bool | None = None,
    tree: str | None = None,
) -> tuple[np.ndarray, EigResult]:
    """Gram-free factor computation: left singular vectors of ``Y_(n)``.

    Drop-in replacement for ``dist_gram`` + ``dist_evecs`` with the same
    return convention (this rank's block row of ``U^(n)`` plus the full
    squared-singular-value spectrum), but computed via QR so accuracy
    survives below sqrt(machine eps).

    Construction: a row of ``Y_(n)^T`` is one column of the unfolding —
    complete only when the ``P_n`` ranks of a mode column (which share the
    column range but own different ``J_n`` rows) combine their pieces.  As
    in Alg. 4 the local tensors travel around the mode-column ring — the
    shared pipelined :func:`~repro.distributed.ring.ring_exchange`, all
    hops posted up front under ``overlap`` (default
    ``REPRO_SPMD_OVERLAP``), each arriving block scattered into the slab
    while the remaining hops are in flight and the local QR folded in at
    the pipeline tail.  Each rank assembles complete rows for *its* share
    of the column range (a ``1/P_n`` slice, so no row is duplicated
    across the grid), and the global TSQR ``tree`` (default
    ``REPRO_TSQR_TREE``) reduces every rank's slab to the ``J_n x J_n``
    R factor of the exactly-stacked ``Y_(n)^T``.  Results are
    bit-identical across overlap on/off and tree choices.
    """
    mode = check_axis(mode, dt.ndim)
    if (rank is None) == (threshold is None):
        raise ValueError("specify exactly one of rank= or threshold=")
    jn = dt.global_shape[mode]
    col = dt.grid.mode_column(mode)
    pn, my_pn = col.size, col.rank
    row_start, row_stop = block_range(jn, pn, my_pn)

    local_unf = dt.local_unfolding(mode)
    # My share of this processor column's unfolding columns (may be empty
    # when the local block has fewer columns than P_n).
    base, rem = divmod(local_unf.shape[1], pn)
    keep_start = my_pn * base + min(my_pn, rem)
    keep = slice(keep_start, keep_start + base + (1 if my_pn < rem else 0))

    pipelined = pn > 1 and overlap_enabled(overlap)
    slab_t = _assemble_slab_t(
        dt, local_unf, mode, keep, jn, pn, my_pn, row_start, row_stop,
        pipelined,
    )
    # Live set mirrors the Gram ring's accounting: local tensor +
    # in-flight peer tensors + the assembled slab (held once — the QR
    # consumes the transposed view in place).
    inflight = (pn - 1) if pipelined else min(1, pn - 1)
    dt.comm.note_memory((1 + inflight) * dt.local.size + slab_t.size)
    r = tsqr_r(dt.comm, slab_t.T, tree=tree, overlap=overlap)
    # SVD of R (J_n x J_n, small): Y_(n)^T = Q R  =>  right singular
    # vectors of R are the left singular vectors of Y_(n).  Like the
    # eigensolve on the Gram path, the small SVD always runs in float64
    # (a no-op cast on the float64 path) — only the bandwidth-carrying
    # QR folds run narrow.
    _, sing, vt = np.linalg.svd(np.asarray(r, dtype=np.float64))
    dt.comm.add_flops((10 * jn**3) // 3)
    values = sing**2
    vectors = _fix_signs(vt.T)
    eig = EigResult(values=values, vectors=vectors)

    if rank is not None:
        rn = rank
    else:
        rn = max(min_rank, rank_from_tolerance(values, threshold))  # type: ignore[arg-type]
    u_full = eig.leading(rn)
    # Block row in the pipeline's working dtype (cf. dist_evecs).
    return np.array(u_full[row_start:row_stop], dtype=local_unf.dtype,
                    copy=True), eig
