"""Communication-avoiding TSQR and the Gram-free factor kernel (Sec. IX).

The paper's conclusion proposes improving numerical robustness by computing
singular vectors directly instead of via the Gram matrix: "because Y_(n)^T
is typically very tall and skinny, we can compute the SVD using a QR
decomposition as a preprocessing step at roughly twice the cost".  This
module implements that improvement on the distributed substrate:

* :func:`tsqr_r` — the R factor of a tall-skinny QR across a communicator,
  by binary-tree reduction of stacked local R factors (Demmel et al.'s
  communication-avoiding TSQR; only R is needed here, so Q is never formed).
* :func:`dist_mode_svd` — this rank's block row of ``U^(n)`` computed from
  the *transposed* local unfolding: each rank QR-factorizes its local
  ``(local columns) x (local J_n)`` slab, the tree combines R factors over
  the whole grid, and a small ``J_n x J_n`` SVD of the final R yields the
  singular values and right singular vectors — which are the left singular
  vectors of ``Y_(n)``.

Unlike Alg. 4 + Alg. 5 this path never squares the condition number, so
epsilon-truncation remains reliable down to machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import block_range
from repro.mpi.comm import Communicator
from repro.tensor.eig import EigResult, _fix_signs, rank_from_tolerance
from repro.util.validation import check_axis


def _local_r(matrix: np.ndarray) -> np.ndarray:
    """Upper-triangular R of a (possibly short) local QR, padded to n x n.

    For an ``m x n`` slab with ``m < n`` the R factor is ``m x n``; we pad
    with zero rows so tree nodes always combine ``n x n`` blocks.
    """
    r = np.linalg.qr(matrix, mode="r")
    n = matrix.shape[1]
    if r.shape[0] < n:
        r = np.vstack([r, np.zeros((n - r.shape[0], n))])
    return r


def tsqr_r(comm: Communicator, local: np.ndarray) -> np.ndarray:
    """R factor of the QR of the row-stacked distributed matrix.

    Every rank passes its local ``m_i x n`` slab (``n`` identical across
    ranks); all ranks return the same ``n x n`` R factor (up to a
    deterministic sign convention on the diagonal).

    Communication: a binary reduction tree of ``n x n`` triangles
    (``log2 P`` rounds), then a broadcast of the root's result — the
    standard TSQR pattern.
    """
    local = np.asarray(local, dtype=np.float64)
    if local.ndim != 2:
        raise ValueError(f"tsqr_r expects a matrix, got ndim={local.ndim}")
    n = local.shape[1]
    r = _local_r(local)
    comm.add_flops(2 * local.shape[0] * n * n)

    # Binary tree over group ranks: at round k, ranks with bit k set send
    # their triangle to (rank - 2^k) and drop out.
    rank, size = comm.rank, comm.size
    step = 1
    active = True
    while step < size:
        if active:
            if rank % (2 * step) == 0:
                partner = rank + step
                if partner < size:
                    other = comm.recv(source=partner, tag=("tsqr", step))
                    r = _local_r(np.vstack([r, other]))
                    comm.add_flops(2 * (2 * n) * n * n)
            else:
                partner = rank - step
                comm.send(r, dest=partner, tag=("tsqr", step))
                active = False
        step *= 2
    # Root holds the global R; broadcast it.
    r = comm.bcast(r if rank == 0 else None, root=0)

    # Deterministic sign convention: make the diagonal non-negative.
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return signs[:, None] * r


def dist_mode_svd(
    dt: DistTensor,
    mode: int,
    rank: int | None = None,
    threshold: float | None = None,
    min_rank: int = 1,
) -> tuple[np.ndarray, EigResult]:
    """Gram-free factor computation: left singular vectors of ``Y_(n)``.

    Drop-in replacement for ``dist_gram`` + ``dist_evecs`` with the same
    return convention (this rank's block row of ``U^(n)`` plus the full
    squared-singular-value spectrum), but computed via QR so accuracy
    survives below sqrt(machine eps).

    Construction: a row of ``Y_(n)^T`` is one column of the unfolding —
    complete only when the ``P_n`` ranks of a mode column (which share the
    column range but own different ``J_n`` rows) combine their pieces.  As
    in Alg. 4 the local tensors travel around the mode-column ring; each
    rank assembles complete rows for *its* share of the column range (a
    ``1/P_n`` slice, so no row is duplicated across the grid), and the
    global TSQR tree then reduces every rank's slab to the ``J_n x J_n``
    R factor of the exactly-stacked ``Y_(n)^T``.
    """
    mode = check_axis(mode, dt.ndim)
    if (rank is None) == (threshold is None):
        raise ValueError("specify exactly one of rank= or threshold=")
    jn = dt.global_shape[mode]
    col = dt.grid.mode_column(mode)
    pn, my_pn = col.size, col.rank
    row_start, row_stop = block_range(jn, pn, my_pn)

    local_unf = dt.local_unfolding(mode)  # (my jn rows) x (my cols)
    n_cols = local_unf.shape[1]
    # My share of this processor column's unfolding columns (may be empty
    # when the local block has fewer columns than P_n).
    base, rem = divmod(n_cols, pn)
    keep_start = my_pn * base + min(my_pn, rem)
    keep_stop = keep_start + base + (1 if my_pn < rem else 0)
    keep = slice(keep_start, keep_stop)

    slab = np.zeros((keep_stop - keep_start, jn))
    slab[:, row_start:row_stop] = local_unf[:, keep].T
    # Ring exchange (same pattern as Alg. 4): after P_n - 1 shifts every
    # rank has seen all J_n rows for its kept columns.
    for i in range(1, pn):
        dst = (my_pn - i) % pn
        src = (my_pn + i) % pn
        w = col.sendrecv(dt.local, dest=dst, source=src, tag=("svd", i))
        w_arr = np.asarray(w)
        w_unf = np.reshape(
            np.moveaxis(w_arr, mode, 0), (w_arr.shape[mode], -1), order="F"
        )
        w_rows = block_range(jn, pn, src)
        slab[:, w_rows[0] : w_rows[1]] = w_unf[:, keep].T

    r = tsqr_r(dt.comm, slab)
    # SVD of R (J_n x J_n, small): Y_(n)^T = Q R  =>  right singular
    # vectors of R are the left singular vectors of Y_(n).
    _, sing, vt = np.linalg.svd(r)
    dt.comm.add_flops((10 * jn**3) // 3)
    values = sing**2
    vectors = _fix_signs(vt.T)
    eig = EigResult(values=values, vectors=vectors)

    if rank is not None:
        rn = rank
    else:
        rn = max(min_rank, rank_from_tolerance(values, threshold))  # type: ignore[arg-type]
    u_full = eig.leading(rn)
    return np.array(u_full[row_start:row_stop], copy=True), eig
