"""Parallel ST-HOSVD driver and the distributed Tucker result object.

The driver strings together the three parallel kernels per mode — Gram
(Alg. 4), Eigenvectors (Alg. 5), TTM (Alg. 3) — exactly as Alg. 1
prescribes, shrinking the distributed working tensor in place.  Kernel
charges are attributed to ledger sections ``"gram"``/``"evecs"``/``"ttm"``,
which is how the benchmarks regenerate the paper's per-kernel runtime
breakdowns (Fig. 8) from *measured* simulator costs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import RuntimeConfig, resolve_plan
from repro.core.precision import (
    FLOAT32_NOISE_FLOOR,
    kernel_dtype,
    resolve_compute_dtype,
    split_tolerance,
)
from repro.core.tucker import TuckerTensor
from repro.resources import check_deadline
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.evecs import dist_evecs
from repro.distributed.gram import dist_gram
from repro.distributed.layout import block_range
from repro.distributed.ttm import dist_ttm
from repro.mpi.reduce_ops import SUM
from repro.util.validation import check_shape_like


@dataclass
class DistTucker:
    """A Tucker decomposition held in the paper's parallel distribution.

    The core is block distributed on the processor grid; each factor matrix
    is held as this rank's block row (redundant across its processor row,
    Sec. IV-B).

    Attributes
    ----------
    core:
        Distributed core tensor ``G``.
    factors_local:
        Per mode, this rank's ``(local I_n) x R_n`` block row of ``U^(n)``.
    eigenvalues:
        Per mode, the Gram eigenvalue spectrum observed when that mode was
        processed (identical on all ranks).
    x_norm:
        ``||X||`` of the input.
    mode_order:
        Processing order used.
    """

    core: DistTensor
    factors_local: list[np.ndarray]
    eigenvalues: list[np.ndarray]
    x_norm: float
    mode_order: tuple[int, ...]

    @property
    def shape(self) -> tuple[int, ...]:
        """Global shape of the reconstructed tensor (collective call)."""
        return tuple(self._global_rows(n) for n in range(self.core.ndim))

    def _global_rows(self, mode: int) -> int:
        grid = self.core.grid
        col = grid.mode_column(mode)
        heights = col.allgather(self.factors_local[mode].shape[0])
        return int(sum(heights))

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.core.global_shape

    def factor_global(self, mode: int) -> np.ndarray:
        """Assemble the full ``I_n x R_n`` factor (all-gather over the column)."""
        col = self.core.grid.mode_column(mode)
        pieces = col.allgather(self.factors_local[mode])
        return np.vstack(pieces)

    def to_tucker(self) -> TuckerTensor:
        """Gather everything into a sequential :class:`TuckerTensor`.

        For analysis and testing; the gathered object is small (core +
        factors), which is the entire point of the compression.
        """
        core = self.core.to_global()
        factors = tuple(self.factor_global(n) for n in range(self.core.ndim))
        return TuckerTensor(core=core, factors=factors)

    def reconstruct_distributed(self) -> DistTensor:
        """Distributed reconstruction ``X~ = G x {U^(n)}`` (eq. 1).

        Each mode-n TTM uses the reconstruction-direction distribution of
        Sec. IV-B: the ``I_n x R_n`` factor's columns are blocked by the
        rank's local core extent.
        """
        y = self.core
        for n in range(self.core.ndim):
            u_full = self.factor_global(n)
            pn = y.grid.dims[n]
            start, stop = block_range(y.global_shape[n], pn, y.grid.coords[n])
            y = dist_ttm(y, u_full[:, start:stop].copy(), n, u_full.shape[0])
        return y

    def reconstruct_subtensor(self, indices) -> np.ndarray:
        """Reconstruct a subtensor on every rank (paper Sec. II-C).

        Gathers the (small) core and factors, then selects factor rows per
        ``indices`` exactly like
        :meth:`repro.core.tucker.TuckerTensor.reconstruct_subtensor`.  The
        gathered object is the compressed representation, so this is cheap
        regardless of the original tensor's size; collective call.
        """
        return self.to_tucker().reconstruct_subtensor(indices)

    def error_estimate(self) -> float:
        """Normalized RMS error from truncated eigenvalue tails (exact for
        ST-HOSVD, see :meth:`repro.core.sthosvd.SthosvdResult.error_estimate`)."""
        total = 0.0
        for n, values in enumerate(self.eigenvalues):
            total += float(np.sum(values[self.ranks[n]:]))
        if self.x_norm == 0:
            raise ValueError("zero input tensor")
        return float(np.sqrt(max(0.0, total)) / self.x_norm)

    @property
    def compression_ratio(self) -> float:
        shape = self.shape
        ranks = self.ranks
        storage = int(np.prod(ranks)) + sum(
            i * r for i, r in zip(shape, ranks)
        )
        return float(np.prod(shape)) / storage


def _checkpoint_digest(
    dt: DistTensor,
    tol: float | None,
    ranks: Sequence[int] | None,
    order: Sequence[int],
    method: str,
    compute: str = "float64",
) -> str:
    from repro.io.tucker_io import checkpoint_digest

    return checkpoint_digest(
        {
            "global_shape": [int(s) for s in dt.global_shape],
            "grid": [int(p) for p in dt.grid.dims],
            "n_ranks": dt.comm.size,
            "tol": tol,
            "ranks": None if ranks is None else [int(r) for r in ranks],
            "order": [int(n) for n in order],
            "method": method,
            "compute": compute,
        }
    )


def _checkpoint_resume(
    checkpoint: str | os.PathLike,
    digest: str,
    dt: DistTensor,
    factors: list[np.ndarray | None],
    eigenvalues: list[np.ndarray | None],
) -> tuple[int, DistTensor]:
    """Restore ``(completed steps, working tensor)`` from a committed
    checkpoint, or ``(0, dt)`` when none exists.

    Safe to run concurrently on all ranks: the committed ``meta.json``
    is stable (nobody writes it until every rank is past this point),
    and each rank loads only its own step file.
    """
    from repro.io.tucker_io import load_checkpoint_state, read_checkpoint_meta

    check_deadline("checkpoint resume")
    meta = read_checkpoint_meta(checkpoint)
    if meta is None:
        return 0, dt
    if meta["digest"] != digest:
        raise ValueError(
            f"checkpoint {os.fspath(checkpoint)!r} was written for "
            "different parameters (shape, grid, tol/ranks, mode order, or "
            "method); refusing to resume from it"
        )
    completed = int(meta["completed"])
    if completed <= 0:
        return 0, dt
    state = load_checkpoint_state(checkpoint, completed - 1, dt.comm.rank)
    for mode, f in state["factors"].items():
        factors[mode] = f
    for mode, e in state["eigenvalues"].items():
        eigenvalues[mode] = e
    return completed, dt.with_local(state["local"], state["global_shape"])


def _checkpoint_commit(
    checkpoint: str | os.PathLike,
    digest: str,
    step: int,
    order: Sequence[int],
    y: DistTensor,
    factors: list[np.ndarray | None],
    eigenvalues: list[np.ndarray | None],
) -> None:
    """Commit the state after step ``step`` (position in ``order``).

    Every rank writes its step file, a barrier establishes that all
    files exist, then rank 0 publishes ``meta.json`` and retires the
    superseded step.  A crash anywhere in between leaves the previous
    committed checkpoint fully intact.
    """
    from repro.io.tucker_io import (
        clear_checkpoint_step,
        commit_checkpoint_meta,
        save_checkpoint_state,
    )

    comm = y.comm
    check_deadline("checkpoint commit")
    save_checkpoint_state(
        checkpoint,
        step,
        comm.rank,
        y.local,
        y.global_shape,
        {n: f for n, f in enumerate(factors) if f is not None},
        {n: e for n, e in enumerate(eigenvalues) if e is not None},
    )
    comm.barrier()
    if comm.rank == 0:
        commit_checkpoint_meta(
            checkpoint, digest, step + 1, comm.size, tuple(order)
        )
        if step > 0:
            clear_checkpoint_step(checkpoint, step - 1)
    comm.barrier()


def _orthonormality_defect(grid, factors: Sequence[np.ndarray]) -> float:
    """Measured float32 precision loss: ``sqrt(sum_n ||U_n^T U_n - I||_F^2)``.

    Each factor is held as a block row distributed over its mode column,
    so every ``U^T U`` is one small ``R_n x R_n`` all-reduce.  Computed in
    float64 regardless of the factors' dtype — this is the *measurement*
    of the float32 sweep's defect, and must not itself drown in float32
    roundoff.  Identical on all ranks (the all-reduce results are).
    """
    total = 0.0
    for n, u in enumerate(factors):
        col = grid.mode_column(n)
        u64 = np.asarray(u, dtype=np.float64)
        g = np.asarray(col.allreduce(u64.T @ u64, SUM))
        g = g - np.eye(g.shape[0])
        total += float(np.sum(g * g))
    return float(np.sqrt(total))


def _refine_sweep_f64(
    dt: DistTensor,
    order: Sequence[int],
    target_ranks: Sequence[int],
    factors: list,
    eigenvalues: list,
    ttm_strategy: str,
    method: str,
    tsqr_tree: str | None,
    overlap: bool | None,
    batch_lead: int | None,
) -> DistTensor:
    """One float64 HOOI-style sweep against the original tensor slabs.

    For each mode (in the driver's order): project the *original* float64
    tensor onto every other mode's current factor, recompute this mode's
    factor at its fixed rank, and update it in place.  The final mode's
    projection yields the refined core.  This is exactly the
    :func:`~repro.distributed.hooi.dist_hooi` inner iteration, run once —
    the classic mixed-precision pattern: cheap narrow sweep for the
    subspaces and ranks, one wide sweep to restore accuracy.

    After refinement each ``eigenvalues[n]`` is the spectrum seen while
    *re*-solving mode ``n`` on the projected tensor, so the sum-of-tails
    error estimate becomes an upper estimate rather than exact (the
    ST-HOSVD identity no longer applies); it is never smaller than the
    true residual.
    """
    y = dt
    for n in order:
        z = dt
        for m in order:
            if m == n:
                continue
            u64 = np.asarray(factors[m], dtype=np.float64)
            z = dist_ttm(
                z, u64.T.copy(), m, target_ranks[m], strategy=ttm_strategy,
                overlap=overlap, batch_lead=batch_lead,
            )
        if method == "svd":
            from repro.distributed.tsqr import dist_mode_svd

            u_local, eig = dist_mode_svd(
                z, n, rank=target_ranks[n], overlap=overlap, tree=tsqr_tree
            )
        else:
            s_rows = dist_gram(z, n, overlap=overlap)
            u_local, eig = dist_evecs(z, s_rows, n, rank=target_ranks[n])
        factors[n] = u_local
        eigenvalues[n] = eig.values
        if n == order[-1]:
            # The last projection chain already carries every other mode's
            # refined factor, so one more TTM yields the refined core.
            y = dist_ttm(
                z, u_local.T.copy(), n, target_ranks[n],
                strategy=ttm_strategy, overlap=overlap,
                batch_lead=batch_lead,
            )
    return y


def _resolve_driver_config(
    dt: DistTensor,
    tol: float | None,
    ranks: Sequence[int] | None,
    mode_order: Sequence[int] | None,
    config: RuntimeConfig | None,
    plan: str | None,
) -> RuntimeConfig | None:
    """The kernel-knob config a driver call should run under.

    Precedence: explicit ``config=`` > explicit ``plan=`` > the
    ``REPRO_PLAN`` selector > none (every kernel falls back to the run's
    active config / environment).  ``plan="auto"`` asks the perf model
    (:func:`repro.perfmodel.autotune.plan_sthosvd`) using this call's
    actual shape, ranks/tol, grid and the ledger's machine constants —
    a pure function of collectively-identical arguments, so every rank
    selects the same plan without communicating.  Any other selector is
    parsed as a saved :class:`RuntimeConfig` JSON object.
    """
    if config is not None:
        if not isinstance(config, RuntimeConfig):
            raise TypeError(
                f"config must be a RuntimeConfig or None, got "
                f"{type(config).__name__}"
            )
        return config
    selector = resolve_plan(plan)
    if selector is None:
        return None
    if selector == "auto":
        from repro.perfmodel.autotune import plan_sthosvd

        return plan_sthosvd(
            dt.global_shape,
            ranks=ranks,
            tol=tol,
            grid=dt.grid.dims,
            machine=dt.comm.ledger.machine,
            mode_order=mode_order,
        ).config
    return RuntimeConfig.from_json(selector)


def dist_sthosvd(
    dt: DistTensor,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    mode_order: Sequence[int] | None = None,
    ttm_strategy: str = "auto",
    method: str = "gram",
    tsqr_tree: str | None = None,
    checkpoint: str | os.PathLike | None = None,
    config: RuntimeConfig | None = None,
    plan: str | None = None,
    compute_dtype: str | None = None,
) -> DistTucker:
    """Parallel ST-HOSVD (Alg. 1 on the Sec. V kernels).

    Parameters mirror :func:`repro.core.sthosvd.sthosvd`; ``dt`` is the
    block-distributed input.  All ranks must call this collectively with
    identical arguments.  ``method="svd"`` replaces the Gram + eigenvector
    kernels with the TSQR-based factor computation of
    :func:`repro.distributed.tsqr.dist_mode_svd` (the paper's Sec. IX
    numerical improvement, at roughly twice the cost); ``tsqr_tree``
    selects its reduction tree (``"binary"``/``"butterfly"``, default the
    ``REPRO_TSQR_TREE`` environment switch — factors are bit-identical
    across tree choices).

    ``checkpoint=`` names a directory used for crash recovery: after
    each mode completes, every rank writes its shrunk core block and
    factor rows there (atomic per-mode commit, see
    :mod:`repro.io.tucker_io`), and a relaunch — e.g. a
    ``run_spmd(retry=RetryPolicy(...))`` attempt after a rank death —
    resumes from the last committed mode instead of recomputing,
    producing bit-identical factors.  The store is validated against the
    call's parameters (digest) and cleared on successful completion.

    ``config=`` pins the kernel tuning knobs (overlap, TSQR tree, TTM
    batch threshold) to an explicit :class:`~repro.config.RuntimeConfig`
    for this call; ``plan=`` selects one instead: ``"auto"`` asks the
    perf model for this problem (see
    :func:`repro.perfmodel.autotune.plan_sthosvd`), ``"default"``/None
    keeps the run's active config, and any other string is parsed as a
    saved config's JSON.  ``None`` consults ``REPRO_PLAN``.  Every
    *scheduling* knob is pure tuning: factors and core are bit-identical
    across plans on a fixed grid.  An explicit ``tsqr_tree=`` still wins
    over the plan.

    ``compute_dtype=`` selects the kernel precision (default the
    resolved config's ``compute_dtype`` / ``REPRO_DTYPE``): ``"float64"``
    is the historical bit-exact pipeline; ``"float32"`` runs
    Gram/TSQR/TTM narrow end to end (half the bytes on every ring hop,
    allgather and reduce) and delivers the requested truncation error
    plus a single-precision noise floor
    (:func:`repro.core.precision.float32_error_budget`); ``"mixed"``
    splits ``tol`` into truncation and precision shares (see
    :mod:`repro.core.precision`), truncates against the tighter share,
    and — only when the measured float32 defect exceeds the precision
    share — runs one float64 refinement sweep against the original
    tensor slabs, so the delivered relative error still meets ``tol``.
    Outputs (core and factors) are always returned in float64.
    """
    n_modes = dt.ndim
    if (tol is None) == (ranks is None):
        raise ValueError("specify exactly one of tol= or ranks=")
    if tol is not None and tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if method not in ("gram", "svd"):
        raise ValueError(f"unknown method {method!r}; use 'gram' or 'svd'")
    if ranks is not None:
        ranks = check_shape_like(ranks, "ranks")
        if len(ranks) != n_modes:
            raise ValueError(f"need {n_modes} ranks, got {len(ranks)}")
        for r, (s, p) in zip(ranks, zip(dt.global_shape, dt.grid.dims)):
            if r > s:
                raise ValueError(f"rank {r} exceeds dimension {s}")
            if r < p:
                raise ValueError(
                    f"rank {r} smaller than grid extent {p}; use a smaller grid"
                )
    order = (
        list(range(n_modes))
        if mode_order is None
        else [int(m) for m in mode_order]
    )
    if sorted(order) != list(range(n_modes)):
        raise ValueError(f"mode_order {mode_order} is not a permutation")
    cfg = _resolve_driver_config(dt, tol, ranks, order, config, plan)
    overlap = cfg.overlap if cfg is not None else None
    batch_lead = cfg.ttm_batch_lead if cfg is not None else None
    if tsqr_tree is None and cfg is not None:
        tsqr_tree = cfg.tsqr_tree
    if compute_dtype is None and cfg is not None:
        compute_dtype = cfg.compute_dtype
    compute = resolve_compute_dtype(compute_dtype)
    work = kernel_dtype(compute)

    comm = dt.comm
    x_norm_sq = dt.norm_sq()
    # Mixed mode truncates against the tighter share of the split budget;
    # the rest of the budget is reserved for float32 precision loss.
    tol_trunc = tol
    prec_share = 0.0
    if tol is not None and compute == "mixed":
        tol_trunc, prec_share = split_tolerance(tol)
    threshold = (
        (tol_trunc**2) * x_norm_sq / n_modes if tol_trunc is not None
        else None
    )

    y = dt
    if work == np.float32:
        # One cast at the driver boundary; every kernel below follows the
        # working dtype, so rings, allgathers and reduces all ship narrow
        # words from here on.
        y = dt.with_local(np.asarray(dt.local, dtype=np.float32))
    factors: list[np.ndarray | None] = [None] * n_modes
    eigenvalues: list[np.ndarray | None] = [None] * n_modes
    completed = 0
    ckpt_digest = ""
    if checkpoint is not None:
        ckpt_digest = _checkpoint_digest(dt, tol, ranks, order, method,
                                         compute)
        with comm.section("checkpoint"):
            completed, y = _checkpoint_resume(
                checkpoint, ckpt_digest, y, factors, eigenvalues
            )
    for step, n in enumerate(order):
        if step < completed:
            continue
        # Threshold-based selection is floored at the grid extent: the
        # block distribution needs one output row per processor in the
        # mode (strictly more accurate than requested, never worse).
        pn = dt.grid.dims[n]
        if method == "svd":
            from repro.distributed.tsqr import dist_mode_svd

            with comm.section("svd"):
                if threshold is not None:
                    u_local, eig = dist_mode_svd(
                        y, n, threshold=threshold, min_rank=pn,
                        overlap=overlap, tree=tsqr_tree,
                    )
                else:
                    u_local, eig = dist_mode_svd(
                        y, n, rank=ranks[n],  # type: ignore[index]
                        overlap=overlap, tree=tsqr_tree,
                    )
                rn = u_local.shape[1]
        else:
            with comm.section("gram"):
                s_rows = dist_gram(y, n, overlap=overlap)
            with comm.section("evecs"):
                if threshold is not None:
                    u_local, eig = dist_evecs(
                        y, s_rows, n, threshold=threshold, min_rank=pn
                    )
                else:
                    u_local, eig = dist_evecs(y, s_rows, n, rank=ranks[n])  # type: ignore[index]
                rn = u_local.shape[1]
        with comm.section("ttm"):
            y = dist_ttm(
                y, u_local.T.copy(), n, rn, strategy=ttm_strategy,
                overlap=overlap, batch_lead=batch_lead,
            )
        factors[n] = u_local
        eigenvalues[n] = eig.values
        if checkpoint is not None:
            with comm.section("checkpoint"):
                _checkpoint_commit(
                    checkpoint, ckpt_digest, step, order, y,
                    factors, eigenvalues,
                )

    if compute == "mixed" and tol is not None:
        # Precision-share gate: the float32 sweep's residual estimate is
        # the single-precision noise floor plus the measured
        # orthonormality defect of the computed factors.  Only when it
        # exceeds the reserved share does the float64 refinement sweep
        # run — loose tolerances keep the full bandwidth win.
        with comm.section("refine"):
            est_prec = FLOAT32_NOISE_FLOOR + _orthonormality_defect(
                dt.grid, factors  # type: ignore[arg-type]
            )
            if est_prec > prec_share:
                y = _refine_sweep_f64(
                    dt, order, y.global_shape, factors, eigenvalues,
                    ttm_strategy, method, tsqr_tree, overlap, batch_lead,
                )
    if work == np.float32:
        # Outputs are always float64: the compressed object is tiny, and
        # downstream consumers (reconstruction, I/O, error accounting)
        # expect the historical dtype.
        factors = [np.asarray(f, dtype=np.float64) for f in factors]
        if y.local.dtype != np.float64:
            y = y.with_local(np.asarray(y.local, dtype=np.float64))

    if checkpoint is not None:
        # The run is complete; restart files are transient by design —
        # a later call with the same parameters must recompute, not
        # replay stale state.
        with comm.section("checkpoint"):
            comm.barrier()
            if comm.rank == 0:
                from repro.io.tucker_io import clear_checkpoint

                clear_checkpoint(checkpoint)

    return DistTucker(
        core=y,
        factors_local=list(factors),  # type: ignore[arg-type]
        eigenvalues=list(eigenvalues),  # type: ignore[arg-type]
        x_norm=float(np.sqrt(x_norm_sq)),
        mode_order=tuple(order),
    )
