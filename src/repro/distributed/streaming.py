"""Distributed streaming Tucker compression (in-situ scenario).

The paper's motivating use case is a *running parallel simulation* whose
output outgrows storage (Sec. I).  The natural deployment is in situ: each
rank holds its block of every new time slab, and compression happens on the
simulation's own processor grid without ever gathering a slab.  This module
runs the :class:`repro.core.streaming.StreamingTucker` recipe on the
distributed substrate:

* spatial bases live in the paper's redundant block-row distribution
  (each rank stores its ``I_n``-rows slice, Sec. IV-B);
* slab projection is a chain of distributed TTMs (Alg. 3) — no
  redistribution;
* basis growth runs a distributed ST-HOSVD (Algs. 3-5) on the *residual*
  slab;
* the accumulated core — the compressed stream itself, small by
  construction — is kept *replicated* on every rank (gathering each
  projected slab costs one all-gather of core-slab size; keeping it
  replicated avoids redistributing accumulated slabs whenever a basis
  grows and block boundaries move); :meth:`finalize` recompresses it and
  returns an ordinary :class:`~repro.core.tucker.TuckerTensor` on every
  rank.

The grid covers the spatial modes only; time is the append axis.  The error
budget argument is identical to the sequential streamer (see
:mod:`repro.core.streaming`), and tests pin the two implementations to the
same results.
"""

from __future__ import annotations

import numpy as np

from repro.core.sthosvd import sthosvd
from repro.core.tucker import TuckerTensor
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import local_block
from repro.distributed.sthosvd import dist_sthosvd
from repro.distributed.ttm import dist_ttm
from repro.mpi.cart import CartGrid
from repro.util.validation import check_shape_like


class DistStreamingTucker:
    """Incrementally compress distributed time slabs on a processor grid.

    Parameters
    ----------
    grid:
        Cartesian grid over the *spatial* modes plus the time mode with
        extent 1 (time is never partitioned while streaming).
    spatial_shape:
        Global shape of the non-time modes.
    tol:
        Relative error tolerance for the final decomposition.
    """

    def __init__(
        self,
        grid: CartGrid,
        spatial_shape: tuple[int, ...] | list[int],
        tol: float,
    ):
        self._spatial_shape = check_shape_like(spatial_shape, "spatial_shape")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        n_spatial = len(self._spatial_shape)
        if grid.ndim != n_spatial + 1:
            raise ValueError(
                f"grid order {grid.ndim} must be spatial order + 1 "
                f"({n_spatial + 1}); the last grid mode is time"
            )
        if grid.dims[-1] != 1:
            raise ValueError(
                f"time mode must not be partitioned while streaming; got "
                f"grid {grid.dims}"
            )
        self._grid = grid
        self._tol = float(tol)
        self._n_spatial = n_spatial
        #: per spatial mode, this rank's block rows of the basis (or None)
        self._bases_local: list[np.ndarray | None] = [None] * n_spatial
        #: replicated global core slabs (the compressed stream), time last
        self._core_slabs: list[np.ndarray] = []
        self._energy = 0.0
        self._n_steps = 0
        self._pending_zero = 0
        self._finalized = False

    # -- helpers -----------------------------------------------------------------

    @property
    def comm(self):
        return self._grid.comm

    @property
    def n_steps(self) -> int:
        return self._n_steps

    @property
    def current_ranks(self) -> tuple[int, ...]:
        return tuple(
            0 if b is None else b.shape[1] for b in self._bases_local
        )

    def _slab_dist(self, local_slab: np.ndarray) -> DistTensor:
        t = local_slab.shape[-1]
        return DistTensor(
            self._grid, self._spatial_shape + (t,), local_slab
        )

    def _project(self, slab: DistTensor) -> DistTensor:
        """Distributed ``slab x {U^(n)T}`` over the spatial modes."""
        y = slab
        for n in range(self._n_spatial):
            # Basis width is global: identical on all ranks because the
            # bases are replicated row-blocks of one global matrix.
            y = dist_ttm(
                y, self._bases_local[n].T.copy(), n,
                self._bases_local[n].shape[1],
            )
        return y

    def _back_project(self, core_slab: DistTensor) -> DistTensor:
        """Distributed ``core x {U^(n)}`` back to physical space."""
        from repro.distributed.layout import block_range

        y = core_slab
        for n in range(self._n_spatial):
            col = self._grid.mode_column(n)
            pieces = col.allgather(self._bases_local[n])
            u_full = np.vstack(pieces)
            start, stop = block_range(
                y.global_shape[n], self._grid.dims[n], self._grid.coords[n]
            )
            y = dist_ttm(
                y, u_full[:, start:stop].copy(), n, u_full.shape[0]
            )
        return y

    # -- streaming ----------------------------------------------------------------

    def update(self, local_slab: np.ndarray) -> None:
        """Ingest this rank's block of one or more time steps (collective).

        ``local_slab`` has this rank's spatial block shape plus a trailing
        time axis (a single step may omit it).
        """
        if self._finalized:
            raise RuntimeError("cannot update a finalized streamer")
        arr = np.asarray(local_slab, dtype=np.float64)
        expected = tuple(
            s.stop - s.start
            for s in local_block(
                self._spatial_shape,
                self._grid.dims[:-1],
                self._grid.coords[:-1],
            )
        )
        if arr.shape == expected:
            arr = arr.reshape(expected + (1,))
        if arr.shape[:-1] != expected:
            raise ValueError(
                f"local slab shape {arr.shape} does not match this rank's "
                f"block {expected} (+ time axis)"
            )
        slab = self._slab_dist(np.asfortranarray(arr))
        slab_energy = slab.norm_sq()
        self._energy += slab_energy
        self._n_steps += arr.shape[-1]
        if slab_energy == 0.0:
            if all(b is not None for b in self._bases_local):
                self._core_slabs.append(
                    np.zeros(self.current_ranks + (arr.shape[-1],), dtype=np.float64)
                )
            else:
                self._pending_zero += arr.shape[-1]
            return

        budget = (self._tol**2) * slab_energy / 2.0

        if any(b is None for b in self._bases_local):
            # The streamer does its own error-budget accounting, so the
            # inner factorizations run full precision: letting REPRO_DTYPE
            # split the per-slab budget again would double-count it, and
            # the float32 noise floor can swamp the tiny slab tolerances.
            res = dist_sthosvd(
                slab,
                tol=float(np.sqrt(budget / slab_energy)),
                compute_dtype="float64",
            )
            for n in range(self._n_spatial):
                self._bases_local[n] = res.factors_local[n]
            if self._pending_zero:
                self._core_slabs.append(
                    np.zeros(self.current_ranks + (self._pending_zero,), dtype=np.float64)
                )
                self._pending_zero = 0
            self._core_slabs.append(self._project(slab).to_global())
            return

        projected = self._project(slab)
        residual_energy = slab_energy - projected.norm_sq()
        if residual_energy > budget:
            self._expand(slab, projected, budget)
            projected = self._project(slab)
        self._core_slabs.append(projected.to_global())

    def _expand(
        self, slab: DistTensor, projected: DistTensor, budget: float
    ) -> None:
        back = self._back_project(projected)
        residual = slab.with_local(slab.local - back.local)
        res_norm_sq = residual.norm_sq()
        if res_norm_sq == 0.0:
            return
        res = dist_sthosvd(
            residual, tol=float(np.sqrt(budget / res_norm_sq)),
            compute_dtype="float64",  # see update(): budget already split
        )
        grew = False
        for n in range(self._n_spatial):
            old = self._bases_local[n]
            new_dirs = res.factors_local[n]
            # Orthogonalize against the existing basis: needs the *global*
            # inner products, identical on all ranks of a mode column; the
            # QR of the extra block must also be global — do it on the
            # gathered matrices (small: I_n x r).
            col = self._grid.mode_column(n)
            old_full = np.vstack(col.allgather(old))
            new_full = np.vstack(col.allgather(new_dirs))
            extra = new_full - old_full @ (old_full.T @ new_full)
            q, r = np.linalg.qr(extra)
            keep = np.abs(np.diag(r)) > 1e-12 * max(
                1.0, float(np.sqrt(res_norm_sq))
            )
            q = q[:, keep]
            max_growth = self._spatial_shape[n] - old_full.shape[1]
            q = q[:, :max_growth]
            if q.shape[1] == 0:
                continue
            from repro.distributed.layout import block_range

            start, stop = block_range(
                self._spatial_shape[n],
                self._grid.dims[n],
                self._grid.coords[n],
            )
            self._bases_local[n] = np.hstack([old, q[start:stop]])
            grew = True
        if not grew:
            return
        # Zero-pad the accumulated (replicated) core slabs into the new
        # basis: new basis = [old, extra], so old coefficients keep their
        # global positions exactly.
        new_ranks = self.current_ranks
        for i, slab_global in enumerate(self._core_slabs):
            padded = np.zeros(new_ranks + (slab_global.shape[-1],), dtype=np.float64)
            padded[tuple(slice(0, s) for s in slab_global.shape)] = slab_global
            self._core_slabs[i] = padded

    # -- output ------------------------------------------------------------------------

    def finalize(self) -> TuckerTensor:
        """Gather the core, recompress, return the decomposition (collective)."""
        if self._n_steps == 0:
            raise RuntimeError("no data was streamed")
        if not self._core_slabs:
            raise ValueError(
                "streamed data is identically zero; nothing to decompose"
            )
        self._finalized = True
        core = np.concatenate(self._core_slabs, axis=-1)
        inner = sthosvd(core, tol=self._tol / np.sqrt(2.0))
        factors = []
        for n in range(self._n_spatial):
            col = self._grid.mode_column(n)
            u_full = np.vstack(col.allgather(self._bases_local[n]))
            factors.append(u_full @ inner.decomposition.factors[n])
        factors.append(inner.decomposition.factors[self._n_spatial])
        return TuckerTensor(
            core=inner.decomposition.core, factors=tuple(factors)
        )
