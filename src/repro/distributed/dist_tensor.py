"""Block-distributed dense tensors (paper Sec. IV-A, IV-C).

A :class:`DistTensor` couples a :class:`~repro.mpi.cart.CartGrid` with this
rank's local block of a global tensor.  Unfolding the distributed tensor is
purely logical: the local portion of the global mode-n unfolding *is* the
mode-n unfolding of the local block (Sec. IV-C), so no distributed method
here ever redistributes tensor data — the property the paper's design is
built around.

Construction helpers cover the two situations that matter in practice:
``from_global`` (every rank slices its block from a replicated array —
convenient in tests), ``scatter`` (root holds the array and scatters blocks,
the realistic ingest path), and ``from_local_factory`` (each rank generates
its own block, allowing simulated tensors larger than any single rank would
want to hold).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.distributed.layout import local_block, local_shape
from repro.mpi.cart import CartGrid
from repro.mpi.errors import CommunicatorError
from repro.mpi.reduce_ops import SUM
from repro.tensor.dense import match_dtype, unfold
from repro.util.validation import check_shape_like


class DistTensor:
    """One rank's view of a block-distributed global tensor."""

    def __init__(
        self,
        grid: CartGrid,
        global_shape: Sequence[int],
        local: np.ndarray,
    ):
        global_shape = check_shape_like(global_shape, "global_shape")
        if len(global_shape) != grid.ndim:
            raise ValueError(
                f"tensor order {len(global_shape)} does not match grid order "
                f"{grid.ndim}"
            )
        for j, p in zip(global_shape, grid.dims):
            if p > j:
                raise ValueError(
                    f"grid {grid.dims} has more processors than elements in "
                    f"some mode of shape {global_shape}"
                )
        expected = local_shape(global_shape, grid.dims, grid.coords)
        if tuple(local.shape) != expected:
            raise ValueError(
                f"local block shape {local.shape} does not match expected "
                f"{expected} at coords {grid.coords}"
            )
        self._grid = grid
        self._global_shape = global_shape
        # float32 blocks stay float32 (the mixed-precision working
        # representation); everything else is coerced to float64 as always.
        self._local = np.asfortranarray(
            np.asarray(local, dtype=match_dtype(np.asarray(local).dtype))
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_global(cls, grid: CartGrid, array: np.ndarray) -> "DistTensor":
        """Each rank slices its own block from a replicated global array."""
        array = np.asarray(array, dtype=match_dtype(np.asarray(array).dtype))
        slices = local_block(array.shape, grid.dims, grid.coords)
        return cls(grid, array.shape, np.array(array[slices], copy=True))

    @classmethod
    def scatter(
        cls,
        grid: CartGrid,
        array: np.ndarray | None,
        root: int = 0,
    ) -> "DistTensor":
        """Root rank scatters blocks of ``array`` to all ranks.

        ``array`` is only required on ``root``; its shape is broadcast.
        """
        comm = grid.comm
        shape = comm.bcast(
            None if array is None else tuple(np.asarray(array).shape), root=root
        )
        if shape is None:
            raise CommunicatorError("scatter root passed array=None")
        if comm.rank == root:
            arr = np.asarray(array, dtype=match_dtype(np.asarray(array).dtype))
            blocks = [
                np.array(arr[local_block(shape, grid.dims, grid.coords_of(r))],
                         copy=True)
                for r in range(comm.size)
            ]
        else:
            blocks = None
        local = comm.scatter(blocks, root=root)
        return cls(grid, shape, local)

    @classmethod
    def from_local_factory(
        cls,
        grid: CartGrid,
        global_shape: Sequence[int],
        factory: Callable[[tuple[slice, ...]], np.ndarray],
    ) -> "DistTensor":
        """Each rank builds its block from its global slices (no global array)."""
        global_shape = check_shape_like(global_shape, "global_shape")
        slices = local_block(global_shape, grid.dims, grid.coords)
        return cls(grid, global_shape, factory(slices))

    # -- geometry ------------------------------------------------------------------

    @property
    def grid(self) -> CartGrid:
        return self._grid

    @property
    def comm(self):
        return self._grid.comm

    @property
    def global_shape(self) -> tuple[int, ...]:
        return self._global_shape

    @property
    def ndim(self) -> int:
        return len(self._global_shape)

    @property
    def local(self) -> np.ndarray:
        """This rank's block (Fortran-ordered)."""
        return self._local

    @property
    def local_slices(self) -> tuple[slice, ...]:
        return local_block(self._global_shape, self._grid.dims, self._grid.coords)

    def local_unfolding(self, mode: int) -> np.ndarray:
        """Mode-``mode`` unfolding of the local block (logical, Sec. IV-C)."""
        return unfold(self._local, mode)

    # -- global reductions -------------------------------------------------------------

    def norm_sq(self) -> float:
        """``||X||^2`` via local sum-of-squares + all-reduce.

        Always accumulated in float64 — the norm feeds tolerance
        thresholds, and a float32 running sum would lose the very digits
        the error budget accounts for.
        """
        flat = self._local.reshape(-1)
        if flat.dtype == np.float32:
            flat = flat.astype(np.float64)
        local = float(np.dot(flat, flat))
        self.comm.add_flops(2 * self._local.size)
        return float(self.comm.allreduce(local, SUM))

    def norm(self) -> float:
        return float(np.sqrt(self.norm_sq()))

    def to_global(self) -> np.ndarray:
        """Assemble the full tensor on every rank (test/analysis helper).

        Costs an all-gather of the entire tensor; fine at simulation scale,
        never used inside the decomposition algorithms.
        """
        comm = self.comm
        pieces = comm.allgather((self._grid.coords, self._local))
        out = np.zeros(self._global_shape, dtype=self._local.dtype, order="F")
        for coords, block in pieces:
            out[local_block(self._global_shape, self._grid.dims, coords)] = block
        return out

    def with_local(
        self, local: np.ndarray, global_shape: Sequence[int] | None = None
    ) -> "DistTensor":
        """New DistTensor on the same grid with a replaced local block."""
        return DistTensor(
            self._grid,
            self._global_shape if global_shape is None else global_shape,
            local,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistTensor(global={self._global_shape}, grid={self._grid.dims}, "
            f"local={self._local.shape})"
        )
