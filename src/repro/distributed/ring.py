"""Shared mode-column ring-shift pipeline (Alg. 4's exchange pattern).

Three distributed kernels move local tensors around a mode-``n`` processor
column the same way: at step ``i`` the rank sends its payload ``i`` hops
"down" the column and receives from ``i`` hops "up", so after ``P_n - 1``
steps every rank has seen every column member's block.  Crucially *every
hop ships the same local payload*, which is what makes the schedule
pipelineable: there is nothing to wait for before posting all hops'
``isendrecv`` exchanges up front, and each blocking wait then finds its
peer block already delivered while the later hops stay in flight behind
the caller's compute.

:func:`ring_exchange` is that pipeline, extracted from the ring
``dist_gram`` grew when the deferred-completion transport landed, so the
Gram kernel (both the default and the symmetry-halved ring) and the
TSQR/SVD kernel (:func:`~repro.distributed.tsqr.dist_mode_svd`) share one
schedule instead of three hand-rolled copies.  Results, charges and hop
order are bit-identical whether the pipeline is enabled or not — only
when communication is *initiated* changes (see
:mod:`repro.distributed.overlap`); the price of pipelining is memory, not
time: up to ``len(hops)`` exchanges are in flight instead of one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.mpi.comm import Communicator


def unfold_peer(w: Any, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding of a peer tensor block received off the ring
    (shared by the Gram and TSQR/SVD kernels, which consume each hop's
    block through exactly this view)."""
    arr = np.asarray(w)
    return np.reshape(
        np.moveaxis(arr, mode, 0), (arr.shape[mode], -1), order="F"
    )


@dataclass(frozen=True)
class RingHop:
    """One step of a ring schedule: ship the payload to ``dest``, receive
    the same step's payload from ``source``, matched by ``tag``."""

    step: int
    dest: int
    source: int
    tag: Hashable


def mode_ring_hops(
    pn: int, my_pn: int, tag: Hashable | None = None
) -> list[RingHop]:
    """The full ``P_n - 1``-step column ring (Alg. 4 lines 6-12).

    Step ``i`` sends to ``(my_pn - i) % pn`` and receives from
    ``(my_pn + i) % pn``.  ``tag`` prefixes each step's wire tag (kernels
    sharing a communicator must not collide); ``None`` keeps the bare step
    index as the tag.
    """
    return [
        RingHop(
            step=i,
            dest=(my_pn - i) % pn,
            source=(my_pn + i) % pn,
            tag=i if tag is None else (tag, i),
        )
        for i in range(1, pn)
    ]


def ring_exchange(
    comm: Communicator,
    payload: Any,
    hops: Sequence[RingHop],
    pipelined: bool,
) -> Iterator[tuple[RingHop, Any]]:
    """Run a ring schedule, yielding ``(hop, received_block)`` in hop order.

    Every hop ships the *same* ``payload`` (the ring invariant).
    Pipelined, all hops' ``isendrecv`` exchanges are posted before the
    first block is consumed; the caller's per-block compute then overlaps
    the remaining in-flight hops, and each hop's charges land at its wait
    exactly as the blocking schedule would charge them.  Blocking, each
    hop is one ``sendrecv`` — the pre-pipelining Alg. 4 schedule.

    Pipelined posts happen *at the call*, not at the first iteration —
    the caller's compute between the call and the first block consumption
    (e.g. the Gram kernel's diagonal dgemm) therefore already overlaps
    every hop.  The payload must not be mutated while the exchange is
    live (the usual MPI rule for posted sends).
    """
    if pipelined:
        requests = [
            comm.isendrecv(payload, dest=h.dest, source=h.source, tag=h.tag)
            for h in hops
        ]

        def _drain() -> Iterator[tuple[RingHop, Any]]:
            for hop, request in zip(hops, requests):
                yield hop, request.wait()

        return _drain()

    def _blocking() -> Iterator[tuple[RingHop, Any]]:
        for hop in hops:
            yield hop, comm.sendrecv(
                payload, dest=hop.dest, source=hop.source, tag=hop.tag
            )

    return _blocking()
