"""Communication/computation overlap knob for the distributed kernels.

The paper's cost model (Alg. 3/4, Secs. V–VI) treats communication and
computation as additive because its reference implementation runs them
back-to-back.  With the runtime's deferred-completion requests
(:meth:`~repro.mpi.comm.Communicator.isendrecv`,
:meth:`~repro.mpi.comm.Communicator.ireduce`, ...) the hot kernels can
instead *pipeline*: :func:`~repro.distributed.gram.dist_gram` and the
mode-column ring of :func:`~repro.distributed.tsqr.dist_mode_svd` post
every ring hop up front (the shared
:func:`~repro.distributed.ring.ring_exchange` pipeline) and compute with
the remaining exchanges in flight, the blocked
:func:`~repro.distributed.ttm.dist_ttm` overlaps each block-row reduce
with the next block's local TTM, and the butterfly
:func:`~repro.distributed.tsqr.tsqr_r` posts its non-power-of-two
fix-up fan-out as deferred-completion sends (its exchange rounds have
no schedule freedom: each round ships the previous round's fold).

Results are bit-identical with the overlap on or off — only the order in
which communication is *initiated* changes, never the data, the fold
order, or the charged costs — so the knob exists for apples-to-apples
benchmarking (``benchmarks/test_perf_kernels.py``) and for bisecting,
not for correctness.

Resolution order: an explicit ``overlap=`` keyword on the kernel wins;
otherwise the run's installed :class:`~repro.config.RuntimeConfig`
decides (which itself resolved the ``REPRO_SPMD_OVERLAP`` environment
variable at the ``run_spmd`` boundary — anything but ``"0"`` enables
it; the default is on).
"""

from __future__ import annotations

from repro.config import default_for

#: Environment switch: ``0`` disables communication/computation overlap
#: in the distributed kernels (the pre-pipelining blocking schedule).
OVERLAP_ENV_VAR = "REPRO_SPMD_OVERLAP"


def overlap_enabled(override: bool | None = None) -> bool:
    """Whether the distributed kernels should pipeline communication.

    ``override`` is a kernel keyword (``True``/``False`` forces the
    choice); ``None`` defers to the run's resolved config (the
    ``REPRO_SPMD_OVERLAP`` environment variable outside a run).
    """
    if override is not None:
        return bool(override)
    return bool(default_for("overlap"))
