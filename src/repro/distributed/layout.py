"""Block data distributions (paper Sec. IV).

A tensor of shape ``J_1 x ... x J_N`` on a ``P_1 x ... x P_N`` grid is
*block distributed*: the processor at grid coordinates ``(p_1, ..., p_N)``
owns the subtensor covering index range ``block_range(J_n, P_n, p_n)`` in
every mode.  The paper assumes ``P_n`` divides ``J_n`` for presentation;
like the paper's implementation, we support uneven division with balanced
blocks (the first ``J mod P`` blocks are one element longer).

Factor matrices use the redundant distribution of Sec. IV-B: for mode ``n``
the ``I_n x R_n`` matrix ``U^(n)`` is split into ``P_n`` block *rows*, and
the processor with mode-``n`` grid coordinate ``p_n`` stores block row
``p_n`` — identically on every processor sharing that coordinate (i.e.
replicated ``P / P_n`` times).
"""

from __future__ import annotations

from repro.util.validation import check_positive_int


def block_range(total: int, n_blocks: int, index: int) -> tuple[int, int]:
    """Half-open index range ``[start, stop)`` of block ``index``.

    Balanced partition of ``total`` items into ``n_blocks`` blocks: block
    sizes differ by at most one, larger blocks first.  ``n_blocks`` may
    exceed ``total`` only if the block is allowed to be empty — we forbid
    that because an empty tensor block would make local unfoldings
    degenerate; callers validate grids against shapes up front.
    """
    check_positive_int(total, "total")
    check_positive_int(n_blocks, "n_blocks")
    if not 0 <= index < n_blocks:
        raise ValueError(f"block index {index} out of range [0, {n_blocks})")
    if n_blocks > total:
        raise ValueError(
            f"cannot split {total} items into {n_blocks} non-empty blocks"
        )
    base, rem = divmod(total, n_blocks)
    if index < rem:
        start = index * (base + 1)
        return start, start + base + 1
    start = rem * (base + 1) + (index - rem) * base
    return start, start + base


def block_size(total: int, n_blocks: int, index: int) -> int:
    """Length of block ``index`` in the balanced partition."""
    start, stop = block_range(total, n_blocks, index)
    return stop - start


def block_ranges(total: int, n_blocks: int) -> list[tuple[int, int]]:
    """All block ranges of the balanced partition, in order."""
    return [block_range(total, n_blocks, i) for i in range(n_blocks)]


def local_block(
    shape: tuple[int, ...], grid: tuple[int, ...], coords: tuple[int, ...]
) -> tuple[slice, ...]:
    """The sub-tensor slices owned by the processor at ``coords``.

    One slice per mode, per the Cartesian block distribution of Sec. IV-A.
    """
    if not len(shape) == len(grid) == len(coords):
        raise ValueError(
            f"shape {shape}, grid {grid}, coords {coords} differ in order"
        )
    return tuple(
        slice(*block_range(j, p, c)) for j, p, c in zip(shape, grid, coords)
    )


def local_shape(
    shape: tuple[int, ...], grid: tuple[int, ...], coords: tuple[int, ...]
) -> tuple[int, ...]:
    """Shape of the local block at ``coords``."""
    return tuple(
        block_size(j, p, c) for j, p, c in zip(shape, grid, coords)
    )
