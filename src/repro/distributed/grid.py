"""Processor-grid selection (paper Sec. VIII-B).

The grid does not change the flop count of ST-HOSVD but strongly affects
communication and local-kernel shapes; the paper tunes over a handful of
heuristic candidates per processor count.  :func:`choose_grid` automates
that: enumerate feasible factorizations of P, keep a balanced shortlist,
and pick the one whose *modeled* ST-HOSVD cost is smallest.  The paper's
observation that the best grids put ``P_1 = 1`` (no communication in the
first, most expensive Gram/TTM) emerges from the model rather than being
hard-coded.
"""

from __future__ import annotations

from typing import Sequence

from repro.perfmodel.algorithms import sthosvd_cost
from repro.perfmodel.machine import EDISON, MachineSpec
from repro.perfmodel.scaling import candidate_grids
from repro.util.validation import check_shape_like


def choose_grid(
    n_ranks: int,
    shape: Sequence[int],
    ranks: Sequence[int] | None = None,
    machine: MachineSpec = EDISON,
    max_candidates: int = 50,
) -> tuple[int, ...]:
    """Pick a processor grid for ``n_ranks`` processors and this problem.

    Parameters
    ----------
    n_ranks:
        Total processor count ``P``.
    shape:
        Global tensor dimensions.
    ranks:
        Anticipated reduced dimensions; if unknown, a 10x-per-mode
        compression is assumed (only the *relative* sizes matter for
        ranking grids).
    machine:
        Machine model used to score candidates.

    Returns
    -------
    The modeled-cost-minimizing grid, one entry per mode.
    """
    shape = check_shape_like(shape, "shape")
    if ranks is None:
        ranks = tuple(max(1, s // 10) for s in shape)
    else:
        ranks = check_shape_like(ranks, "ranks")
        if len(ranks) != len(shape):
            raise ValueError(f"ranks {ranks} and shape {shape} differ in order")
    candidates = [
        g
        for g in candidate_grids(n_ranks, shape, max_candidates=max_candidates)
        # A grid extent beyond R_n would make the truncated mode's blocks
        # empty after the TTM; exclude such grids.
        if all(pn <= rn for pn, rn in zip(g, ranks))
    ]
    if not candidates:
        raise ValueError(
            f"no feasible grid for P={n_ranks} on shape {tuple(shape)} with "
            f"ranks {tuple(ranks)}"
        )
    return min(
        candidates,
        key=lambda g: sthosvd_cost(shape, ranks, g, machine).time,
    )
