"""Parallel tensor-times-matrix — Alg. 3 of the paper.

Computes ``Z = Y x_n V`` for a block-distributed ``Y`` and a factor matrix
``V`` in the redundant distribution of Sec. IV-B: each rank passes
``v_local``, its ``K x (local J_n)`` block of ``V`` — the columns matching
its local mode-``n`` rows.  For the decomposition direction ``V = U^(n)T``
this is exactly ``U_local.T`` where ``U_local`` is the rank's block row of
the factor matrix, so no communication is ever needed to stage ``V``.

Two strategies, as in the paper (Sec. V-B):

* ``"blocked"``: loop over the ``P_n`` block rows of ``V``; each iteration
  computes a partial product and reduces it to the ``l``-th member of the
  mode-``n`` processor column.  The intermediate never exceeds the local
  result size.
* ``"reduce_scatter"``: when ``K <= J_n / P_n`` (the intermediate fits), a
  single local multiply followed by one reduce-scatter — fewer messages,
  same bandwidth and flops.

``strategy="auto"`` picks the fast path when the memory condition holds and
the block sizes divide evenly (our reduce-scatter requires equal blocks).
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import block_range, block_ranges
from repro.distributed.overlap import overlap_enabled
from repro.mpi.reduce_ops import SUM
from repro.tensor.dense import match_dtype
from repro.tensor.ttm import ttm_blocked
from repro.util.validation import check_axis


def _expected_local_cols(dt: DistTensor, mode: int) -> int:
    start, stop = block_range(
        dt.global_shape[mode], dt.grid.dims[mode], dt.grid.coords[mode]
    )
    return stop - start


def dist_ttm(
    dt: DistTensor,
    v_local: np.ndarray,
    mode: int,
    new_dim: int,
    strategy: str = "auto",
    overlap: bool | None = None,
    batch_lead: int | None = None,
) -> DistTensor:
    """Parallel ``Z = Y x_n V`` (Alg. 3).

    Parameters
    ----------
    dt:
        The distributed input tensor ``Y``.
    v_local:
        This rank's ``K x (local J_n)`` block of ``V`` (the block column of
        ``V`` matching the rank's mode-``n`` index range).
    mode:
        The contraction mode ``n``.
    new_dim:
        The global output dimension ``K`` (needed because ``v_local`` only
        shows the local column count).
    strategy:
        ``"blocked"``, ``"reduce_scatter"``, or ``"auto"``.
    overlap:
        Communication/computation pipelining for the blocked strategy
        (default: the ``REPRO_SPMD_OVERLAP`` environment switch): each
        block-row reduce is posted non-blocking and completed only after
        the next block's local TTM, hiding the reduce fences behind the
        dgemms.  Results and charges are bit-identical either way.
    batch_lead:
        Skinny-block threshold for the local
        :func:`~repro.tensor.ttm.ttm_blocked` kernels (default: the run's
        resolved config, ``REPRO_TTM_BATCH_LEAD``).  Pure tuning — both
        local paths are bit-identical.

    Returns
    -------
    DistTensor
        ``Z``, block distributed on the same grid: the output's mode-``n``
        dimension ``K`` is partitioned over the same ``P_n`` processors.
    """
    mode = check_axis(mode, dt.ndim)
    # The factor block follows the tensor's working dtype: a float32
    # pipeline multiplies and reduces narrow blocks end to end.
    v_local = np.asarray(v_local, dtype=match_dtype(dt.local.dtype))
    if v_local.ndim != 2:
        raise ValueError(f"v_local must be a matrix, got ndim={v_local.ndim}")
    if v_local.shape[0] != new_dim:
        raise ValueError(
            f"v_local has {v_local.shape[0]} rows but new_dim={new_dim}"
        )
    local_cols = _expected_local_cols(dt, mode)
    if v_local.shape[1] != local_cols:
        raise ValueError(
            f"v_local has {v_local.shape[1]} columns but this rank owns "
            f"{local_cols} mode-{mode} indices"
        )
    pn = dt.grid.dims[mode]
    if new_dim < pn:
        raise ValueError(
            f"output dimension {new_dim} smaller than grid extent {pn} in "
            f"mode {mode}; choose a smaller grid"
        )

    if strategy == "auto":
        even = new_dim % pn == 0
        fits = new_dim <= max(1, dt.global_shape[mode] // pn)
        strategy = "reduce_scatter" if (even and fits) else "blocked"
    if strategy == "reduce_scatter":
        return _ttm_reduce_scatter(dt, v_local, mode, new_dim, batch_lead)
    if strategy == "blocked":
        return _ttm_blocked(
            dt, v_local, mode, new_dim, overlap=overlap, batch_lead=batch_lead
        )
    raise ValueError(f"unknown strategy {strategy!r}")


def _out_shape(dt: DistTensor, mode: int, new_dim: int) -> tuple[int, ...]:
    shape = list(dt.global_shape)
    shape[mode] = new_dim
    return tuple(shape)


def _ttm_blocked(
    dt: DistTensor,
    v_local: np.ndarray,
    mode: int,
    new_dim: int,
    overlap: bool | None = None,
    batch_lead: int | None = None,
) -> DistTensor:
    """Alg. 3: P_n iterations of (local TTM block row, reduce to member l).

    Pipelined (the default), every block row's reduce is posted
    non-blocking and completed only after the *next* block's local TTM,
    so the reduce's fences hide behind the dgemms — on the process
    backend the reduces ride the double-buffered collective windows,
    which is exactly the two-deep pipeline they exist for.  The same
    contributions are folded in the same group-rank order at the same
    roots either way, so results and charges are bit-identical.
    """
    col = dt.grid.mode_column(mode)
    pn, my_pn = col.size, col.rank
    local = dt.local
    pipelined = pn > 1 and overlap_enabled(overlap)
    z_local: np.ndarray | None = None
    z_words: int | None = None  # size of this rank's reduced block row
    pending = None  # (root, request) of the previous block row's reduce
    inflight_w = 0  # previous block row still held by its pending reduce
    for ell, (start, stop) in enumerate(block_ranges(new_dim, pn)):
        # Local mode-n TTM with the ell-th block row of V (layout-respecting
        # dgemms, Sec. IV-C).
        w = ttm_blocked(local, v_local[start:stop], mode, batch_lead=batch_lead)
        dt.comm.add_flops(2 * (stop - start) * local.size)
        # M_TTM live set: local input + factor block + temporary + result,
        # plus — pipelined — the previous block row, which stays alive in
        # its posted reduce until the wait below (the same memory-for-time
        # trade dist_gram's overlapped ring notes; off, the extra term is
        # zero and the noted peak matches the paper's blocking schedule).
        dt.comm.note_memory(
            local.size
            + v_local.size
            + w.size
            + inflight_w
            + (z_words if z_words is not None else w.size)
        )
        if ell == my_pn:
            z_words = w.size
        if pipelined:
            inflight_w = w.size
            req = col.ireduce(w, SUM, root=ell)
            if pending is not None:
                prev_root, prev_req = pending
                reduced = prev_req.wait()
                if prev_root == my_pn:
                    assert reduced is not None
                    z_local = reduced
            pending = (ell, req)
        else:
            reduced = col.reduce(w, SUM, root=ell)
            if ell == my_pn:
                assert reduced is not None
                z_local = reduced
    if pending is not None:
        prev_root, prev_req = pending
        reduced = prev_req.wait()
        if prev_root == my_pn:
            assert reduced is not None
            z_local = reduced
    assert z_local is not None
    return DistTensor(dt.grid, _out_shape(dt, mode, new_dim), z_local)


def _ttm_reduce_scatter(
    dt: DistTensor,
    v_local: np.ndarray,
    mode: int,
    new_dim: int,
    batch_lead: int | None = None,
) -> DistTensor:
    """Sec. V-B fast path: one local multiply + one reduce-scatter.

    Requires ``P_n | K``.  The full-K intermediate is formed locally (the
    memory condition ``K <= J_n / P_n`` guarantees it is no larger than the
    local input tensor), then reduce-scattered down the processor column.
    """
    col = dt.grid.mode_column(mode)
    pn = col.size
    if new_dim % pn != 0:
        raise ValueError(
            f"reduce_scatter strategy requires {pn} | {new_dim}; use 'blocked'"
        )
    local = dt.local
    w = ttm_blocked(local, v_local, mode, batch_lead=batch_lead)
    dt.comm.add_flops(2 * new_dim * local.size)
    # Reduce-scatter along the mode axis: move mode to front so equal blocks
    # along axis 0 correspond to the K partition.
    z_front = col.reduce_scatter_block(_mode_front(w, mode), SUM)
    z_local = np.moveaxis(z_front, 0, mode)
    return DistTensor(dt.grid, _out_shape(dt, mode, new_dim), z_local)


def _mode_front(w: np.ndarray, mode: int) -> np.ndarray:
    """``w`` with ``mode`` moved to axis 0, copied only when necessary.

    For ``mode == 0`` (a Fortran-ordered TTM result) the moved view *is*
    the array, so the historical unconditional ``ascontiguousarray`` was a
    full extra copy of the intermediate on the hot path; the collectives
    accept any contiguous layout, so only a genuinely strided view (mode
    moved from the interior) still needs materializing.
    """
    w_front = np.moveaxis(w, mode, 0)
    if w_front.flags.c_contiguous or w_front.flags.f_contiguous:
        return w_front
    return np.ascontiguousarray(w_front)
