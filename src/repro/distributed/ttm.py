"""Parallel tensor-times-matrix — Alg. 3 of the paper.

Computes ``Z = Y x_n V`` for a block-distributed ``Y`` and a factor matrix
``V`` in the redundant distribution of Sec. IV-B: each rank passes
``v_local``, its ``K x (local J_n)`` block of ``V`` — the columns matching
its local mode-``n`` rows.  For the decomposition direction ``V = U^(n)T``
this is exactly ``U_local.T`` where ``U_local`` is the rank's block row of
the factor matrix, so no communication is ever needed to stage ``V``.

Two strategies, as in the paper (Sec. V-B):

* ``"blocked"``: loop over the ``P_n`` block rows of ``V``; each iteration
  computes a partial product and reduces it to the ``l``-th member of the
  mode-``n`` processor column.  The intermediate never exceeds the local
  result size.
* ``"reduce_scatter"``: when ``K <= J_n / P_n`` (the intermediate fits), a
  single local multiply followed by one reduce-scatter — fewer messages,
  same bandwidth and flops.

``strategy="auto"`` picks the fast path when the memory condition holds and
the block sizes divide evenly (our reduce-scatter requires equal blocks).
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import block_range, block_ranges
from repro.mpi.reduce_ops import SUM
from repro.tensor.ttm import ttm_blocked
from repro.util.validation import check_axis


def _expected_local_cols(dt: DistTensor, mode: int) -> int:
    start, stop = block_range(
        dt.global_shape[mode], dt.grid.dims[mode], dt.grid.coords[mode]
    )
    return stop - start


def dist_ttm(
    dt: DistTensor,
    v_local: np.ndarray,
    mode: int,
    new_dim: int,
    strategy: str = "auto",
) -> DistTensor:
    """Parallel ``Z = Y x_n V`` (Alg. 3).

    Parameters
    ----------
    dt:
        The distributed input tensor ``Y``.
    v_local:
        This rank's ``K x (local J_n)`` block of ``V`` (the block column of
        ``V`` matching the rank's mode-``n`` index range).
    mode:
        The contraction mode ``n``.
    new_dim:
        The global output dimension ``K`` (needed because ``v_local`` only
        shows the local column count).
    strategy:
        ``"blocked"``, ``"reduce_scatter"``, or ``"auto"``.

    Returns
    -------
    DistTensor
        ``Z``, block distributed on the same grid: the output's mode-``n``
        dimension ``K`` is partitioned over the same ``P_n`` processors.
    """
    mode = check_axis(mode, dt.ndim)
    v_local = np.asarray(v_local, dtype=np.float64)
    if v_local.ndim != 2:
        raise ValueError(f"v_local must be a matrix, got ndim={v_local.ndim}")
    if v_local.shape[0] != new_dim:
        raise ValueError(
            f"v_local has {v_local.shape[0]} rows but new_dim={new_dim}"
        )
    local_cols = _expected_local_cols(dt, mode)
    if v_local.shape[1] != local_cols:
        raise ValueError(
            f"v_local has {v_local.shape[1]} columns but this rank owns "
            f"{local_cols} mode-{mode} indices"
        )
    pn = dt.grid.dims[mode]
    if new_dim < pn:
        raise ValueError(
            f"output dimension {new_dim} smaller than grid extent {pn} in "
            f"mode {mode}; choose a smaller grid"
        )

    if strategy == "auto":
        even = new_dim % pn == 0
        fits = new_dim <= max(1, dt.global_shape[mode] // pn)
        strategy = "reduce_scatter" if (even and fits) else "blocked"
    if strategy == "reduce_scatter":
        return _ttm_reduce_scatter(dt, v_local, mode, new_dim)
    if strategy == "blocked":
        return _ttm_blocked(dt, v_local, mode, new_dim)
    raise ValueError(f"unknown strategy {strategy!r}")


def _out_shape(dt: DistTensor, mode: int, new_dim: int) -> tuple[int, ...]:
    shape = list(dt.global_shape)
    shape[mode] = new_dim
    return tuple(shape)


def _ttm_blocked(
    dt: DistTensor, v_local: np.ndarray, mode: int, new_dim: int
) -> DistTensor:
    """Alg. 3 verbatim: P_n iterations of (local TTM block row, reduce)."""
    col = dt.grid.mode_column(mode)
    pn, my_pn = col.size, col.rank
    local = dt.local
    z_local: np.ndarray | None = None
    for ell, (start, stop) in enumerate(block_ranges(new_dim, pn)):
        # Local mode-n TTM with the ell-th block row of V (layout-respecting
        # dgemms, Sec. IV-C).
        w = ttm_blocked(local, v_local[start:stop], mode)
        dt.comm.add_flops(2 * (stop - start) * local.size)
        # M_TTM live set: local input + factor block + temporary + result.
        dt.comm.note_memory(
            local.size
            + v_local.size
            + w.size
            + (z_local.size if z_local is not None else w.size)
        )
        reduced = col.reduce(w, SUM, root=ell)
        if ell == my_pn:
            assert reduced is not None
            z_local = reduced
    assert z_local is not None
    return DistTensor(dt.grid, _out_shape(dt, mode, new_dim), z_local)


def _ttm_reduce_scatter(
    dt: DistTensor, v_local: np.ndarray, mode: int, new_dim: int
) -> DistTensor:
    """Sec. V-B fast path: one local multiply + one reduce-scatter.

    Requires ``P_n | K``.  The full-K intermediate is formed locally (the
    memory condition ``K <= J_n / P_n`` guarantees it is no larger than the
    local input tensor), then reduce-scattered down the processor column.
    """
    col = dt.grid.mode_column(mode)
    pn = col.size
    if new_dim % pn != 0:
        raise ValueError(
            f"reduce_scatter strategy requires {pn} | {new_dim}; use 'blocked'"
        )
    local = dt.local
    w = ttm_blocked(local, v_local, mode)
    dt.comm.add_flops(2 * new_dim * local.size)
    # Reduce-scatter along the mode axis: move mode to front so equal blocks
    # along axis 0 correspond to the K partition.
    w_front = np.ascontiguousarray(np.moveaxis(w, mode, 0))
    z_front = col.reduce_scatter_block(w_front, SUM)
    z_local = np.moveaxis(z_front, 0, mode)
    return DistTensor(dt.grid, _out_shape(dt, mode, new_dim), z_local)
