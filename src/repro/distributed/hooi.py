"""Parallel HOOI — Alg. 2 on the Sec. V parallel kernels.

Initialized by the parallel ST-HOSVD, each outer iteration updates every
factor matrix from the Gram of ``Y = X x {U^(m)T}_{m != n}`` (a chain of
N-1 distributed TTMs — no redistribution anywhere), then computes the core
from the final inner iteration's ``Y`` and tracks the fit through
``||X||^2 - ||G||^2`` (Alg. 2 line 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import RuntimeConfig
from repro.core.precision import resolve_compute_dtype
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.evecs import dist_evecs
from repro.distributed.gram import dist_gram
from repro.distributed.sthosvd import (
    DistTucker,
    _resolve_driver_config,
    dist_sthosvd,
)
from repro.distributed.ttm import dist_ttm


@dataclass
class DistHooiResult:
    """Parallel HOOI output (mirrors :class:`repro.core.hooi.HooiResult`)."""

    decomposition: DistTucker
    residual_history: tuple[float, ...]
    n_iterations: int
    converged: bool

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.decomposition.ranks

    def error_estimate(self) -> float:
        x_norm = self.decomposition.x_norm
        if x_norm <= 0:
            raise ValueError("invalid stored x_norm")
        return float(np.sqrt(max(0.0, self.residual_history[-1])) / x_norm)


def dist_hooi(
    dt: DistTensor,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    max_iterations: int = 25,
    improvement_tol: float = 1e-10,
    init: DistTucker | None = None,
    ttm_strategy: str = "auto",
    method: str = "gram",
    config: RuntimeConfig | None = None,
    plan: str | None = None,
    compute_dtype: str | None = None,
) -> DistHooiResult:
    """Parallel higher-order orthogonal iteration (Alg. 2).

    All ranks must call collectively with identical arguments.  Ranks are
    fixed by the ST-HOSVD initialization (or ``init``); iteration stops when
    the normalized fit improvement falls below ``improvement_tol`` or after
    ``max_iterations`` outer iterations.  ``method="svd"`` uses the
    TSQR-based factor kernel for both the initialization and the inner
    updates (the Sec. IX numerical improvement).  ``config=``/``plan=``
    pin or select the kernel tuning knobs exactly as in
    :func:`~repro.distributed.sthosvd.dist_sthosvd` (and are forwarded
    to the ST-HOSVD initialization); results are bit-identical across
    plans on a fixed grid.

    ``compute_dtype=`` selects the kernel precision (default the resolved
    config's ``compute_dtype`` / ``REPRO_DTYPE``).  ``"mixed"`` runs the
    ST-HOSVD initialization in float32 and the outer iterations in
    float64: the HOOI sweeps against the original tensor *are* iterative
    refinement, so no separate refinement pass is needed (the cheap init
    only has to land the right ranks and a good starting subspace).
    ``"float32"`` runs the iterations narrow as well; outputs are always
    returned as float64.  ``"float64"`` is bit-identical to the historical
    behavior.
    """
    if max_iterations < 0:
        raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
    if improvement_tol < 0:
        raise ValueError(f"improvement_tol must be >= 0, got {improvement_tol}")
    if method not in ("gram", "svd"):
        raise ValueError(f"unknown method {method!r}; use 'gram' or 'svd'")
    comm = dt.comm
    n_modes = dt.ndim
    cfg = _resolve_driver_config(dt, tol, ranks, None, config, plan)
    overlap = cfg.overlap if cfg is not None else None
    batch_lead = cfg.ttm_batch_lead if cfg is not None else None
    tree = cfg.tsqr_tree if cfg is not None else None
    if compute_dtype is None and cfg is not None:
        compute_dtype = cfg.compute_dtype
    compute = resolve_compute_dtype(compute_dtype)
    # Mixed precision: float32 init, float64 iterations (the sweeps against
    # the original tensor are the refinement); pure float32 iterates narrow.
    init_compute = "float32" if compute in ("float32", "mixed") else "float64"
    iter_dtype = np.dtype(np.float32 if compute == "float32" else np.float64)

    if init is None:
        init = dist_sthosvd(
            dt, tol=tol, ranks=ranks, ttm_strategy=ttm_strategy,
            method=method, config=cfg, compute_dtype=init_compute,
        )
    target_ranks = init.ranks
    factors = [np.array(f, dtype=iter_dtype, copy=True) for f in init.factors_local]
    eigenvalues = list(init.eigenvalues)
    xwork = dt
    if iter_dtype == np.float32 and dt.local.dtype != np.float32:
        xwork = dt.with_local(np.asarray(dt.local, dtype=np.float32))

    x_norm_sq = init.x_norm**2
    core = init.core
    history = [max(0.0, x_norm_sq - core.norm_sq())]

    converged = False
    iterations = 0
    for _ in range(max_iterations):
        y: DistTensor | None = None
        for n in range(n_modes):
            y = xwork
            with comm.section("ttm"):
                for m in range(n_modes):
                    if m == n:
                        continue
                    y = dist_ttm(
                        y,
                        factors[m].T.copy(),
                        m,
                        target_ranks[m],
                        strategy=ttm_strategy,
                        overlap=overlap,
                        batch_lead=batch_lead,
                    )
            if method == "svd":
                from repro.distributed.tsqr import dist_mode_svd

                with comm.section("svd"):
                    u_local, eig = dist_mode_svd(
                        y, n, rank=target_ranks[n], overlap=overlap, tree=tree
                    )
            else:
                with comm.section("gram"):
                    s_rows = dist_gram(y, n, overlap=overlap)
                with comm.section("evecs"):
                    u_local, eig = dist_evecs(y, s_rows, n, rank=target_ranks[n])
            factors[n] = u_local
            eigenvalues[n] = eig.values
        assert y is not None
        # Core from the last inner iteration's Y (Alg. 2 line 9).
        with comm.section("ttm"):
            core = dist_ttm(
                y,
                factors[n_modes - 1].T.copy(),
                n_modes - 1,
                target_ranks[n_modes - 1],
                strategy=ttm_strategy,
                overlap=overlap,
                batch_lead=batch_lead,
            )
        iterations += 1
        history.append(max(0.0, x_norm_sq - core.norm_sq()))
        if (history[-2] - history[-1]) / x_norm_sq < improvement_tol:
            converged = True
            break

    # Deliverables are always float64, whatever the iteration dtype.
    if core.local.dtype != np.float64:
        core = core.with_local(np.asarray(core.local, dtype=np.float64))
    factors = [np.asarray(f, dtype=np.float64) for f in factors]
    decomposition = DistTucker(
        core=core,
        factors_local=factors,
        eigenvalues=eigenvalues,
        x_norm=init.x_norm,
        mode_order=init.mode_order,
    )
    return DistHooiResult(
        decomposition=decomposition,
        residual_history=tuple(history),
        n_iterations=iterations,
        converged=converged,
    )
