"""Parallel Gram matrix — Alg. 4 of the paper.

Computes ``S = Y_(n) Y_(n)^T`` for a block-distributed tensor without any
tensor redistribution.  Ranks in the same mode-``n`` processor column own
the same columns of the unfolding but different row blocks; the local
tensors are passed around that column in a ring ((P_n - 1) shifts), each
step contributing one ``(my rows) x (peer rows)`` block of this column's
contribution to ``S``.  Summing contributions across the mode-``n``
processor row (an all-reduce) yields this rank's *block row* ``S[rows, :]``
of the Gram matrix, replicated across its processor row — exactly the
input distribution Alg. 5 expects.

When ``P_n == 1`` the ring disappears: one symmetric local Gram (dsyrk-
style, exploiting symmetry) followed by the all-reduce, the fully-symmetric
fast path the paper highlights.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import block_ranges
from repro.distributed.overlap import overlap_enabled
from repro.mpi.reduce_ops import SUM
from repro.util.validation import check_axis


def _unfold_peer(w, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding of a received peer tensor block."""
    arr = np.asarray(w)
    return np.reshape(
        np.moveaxis(arr, mode, 0), (arr.shape[mode], -1), order="F"
    )


def dist_gram(
    dt: DistTensor,
    mode: int,
    exploit_symmetry: bool = False,
    overlap: bool | None = None,
) -> np.ndarray:
    """Parallel ``S = Y_(n) Y_(n)^T`` (Alg. 4).

    Returns this rank's block row ``S[my mode-n rows, :]`` of the global
    ``J_n x J_n`` Gram matrix (identical on all ranks sharing the same
    mode-``n`` grid coordinate).

    ``exploit_symmetry=True`` enables the optimization the paper leaves as
    future work ("up to a factor of two could be saved by exploiting
    symmetry of S"): each off-diagonal block pair ``(p, k)/(k, p)`` is
    multiplied once and the transpose is shipped to the symmetric partner
    — halving the ring length and the off-diagonal flops at the price of
    one extra (small) block exchange per retained ring step.

    ``overlap`` controls communication/computation pipelining (default:
    the ``REPRO_SPMD_OVERLAP`` environment switch, on unless ``"0"``):
    every ring step sends the *same* local tensor, so the pipelined
    schedule posts all hops' exchanges up front and every dgemm computes
    with the remaining exchanges in flight — no receive ever idles the
    rank once its peers have posted.  Results, charges and fold order are
    bit-identical either way; the price is memory, not time: up to
    ``P_n - 1`` exchanges are in flight instead of one, and the noted
    ``M_GRAM`` live set grows accordingly (the paper's eq. (2) bound
    assumes the one-in-flight blocking ring — disable overlap to stay
    inside it on memory-critical runs).
    """
    mode = check_axis(mode, dt.ndim)
    col = dt.grid.mode_column(mode)
    row = dt.grid.mode_row(mode)
    pn, my_pn = col.size, col.rank
    jn = dt.global_shape[mode]
    ranges = block_ranges(jn, pn)
    my_unf = dt.local_unfolding(mode)  # (my rows) x (local columns)
    pipelined = pn > 1 and overlap_enabled(overlap)

    blocks: list[np.ndarray | None] = [None] * pn
    if pn == 1:
        # Fully symmetric local Gram (half the flops of the general case).
        s_local = my_unf @ my_unf.T
        s_local = (s_local + s_local.T) * 0.5
        dt.comm.add_flops(my_unf.shape[0] * (my_unf.shape[0] + 1) * my_unf.shape[1])
        blocks[0] = s_local
    elif not exploit_symmetry:
        # Ring exchange (Alg. 4 lines 6-12): at step i send the local tensor
        # i hops "down" the column and receive from i hops "up"; sendrecv
        # (or its deferred isendrecv form) avoids the blocking-order
        # deadlock.  Pipelined, every hop's exchange is posted before the
        # diagonal dgemm — all hops carry the same payload, so there is
        # nothing to wait for before shipping them — and each wait then
        # finds its peer block already delivered.
        def _hop(i: int) -> tuple[int, int]:
            return (my_pn - i) % pn, (my_pn + i) % pn  # (dest, source)

        reqs = {}
        if pipelined:
            for i in range(1, pn):
                j, k = _hop(i)
                reqs[i] = col.isendrecv(dt.local, dest=j, source=k, tag=i)
        blocks[my_pn] = my_unf @ my_unf.T
        dt.comm.add_flops(2 * my_unf.shape[0] ** 2 * my_unf.shape[1])
        for i in range(1, pn):
            j, k = _hop(i)  # destination / source (Alg. 4 lines 7-8)
            if pipelined:
                w = reqs.pop(i).wait()
            else:
                w = col.sendrecv(dt.local, dest=j, source=k, tag=i)
            w_unf = _unfold_peer(w, mode)
            blocks[k] = my_unf @ w_unf.T
            dt.comm.add_flops(2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1])
    else:
        # Halved ring: `half` paired steps, plus one antipodal step for
        # even P_n.  Pipelined, every step's local-tensor exchange is
        # posted before the diagonal dgemm (they all ship ``dt.local``);
        # only the symT block shipments stay synchronous, since each
        # carries a block computed in that very step.
        half = (pn - 1) // 2
        steps: list[tuple[str, int]] = [("sym", i) for i in range(1, half + 1)]
        if pn % 2 == 0:
            steps.append(("symA", pn // 2))

        def _post(step: tuple[str, int]):
            kind, i = step
            if kind == "sym":
                return col.isendrecv(
                    dt.local,
                    dest=(my_pn - i) % pn,
                    source=(my_pn + i) % pn,
                    tag=("sym", i),
                )
            anti = (my_pn + i) % pn
            return col.isendrecv(dt.local, dest=anti, source=anti, tag=("symA", i))

        reqs = {}
        if pipelined:
            for idx, step in enumerate(steps):
                reqs[idx] = _post(step)
        # Diagonal block with symmetric flop count.
        diag = my_unf @ my_unf.T
        blocks[my_pn] = (diag + diag.T) * 0.5
        dt.comm.add_flops(my_unf.shape[0] * (my_unf.shape[0] + 1) * my_unf.shape[1])
        for idx, (kind, i) in enumerate(steps):
            j = (my_pn - i) % pn
            k = (my_pn + i) % pn
            if pipelined:
                w = reqs.pop(idx).wait()
            elif kind == "sym":
                w = col.sendrecv(dt.local, dest=j, source=k, tag=("sym", i))
            else:
                w = col.sendrecv(dt.local, dest=k, source=k, tag=("symA", i))
            if kind == "sym":
                w_unf = _unfold_peer(w, mode)
                blocks[k] = my_unf @ w_unf.T
                dt.comm.add_flops(
                    2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1]
                )
                # Ship block (my, k) to rank k, whose (k, my) block is its
                # transpose; receive my (my, j) block from rank j in return.
                received = col.sendrecv(blocks[k], dest=k, source=j, tag=("symT", i))
                blocks[j] = np.asarray(received).T
            elif my_pn < k:
                # The antipodal pair: only the lower-coordinate rank
                # multiplies.
                w_unf = _unfold_peer(w, mode)
                blocks[k] = my_unf @ w_unf.T
                dt.comm.add_flops(
                    2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1]
                )
                col.send(blocks[k], dest=k, tag=("symAT", i))
            else:
                blocks[k] = np.asarray(col.recv(source=k, tag=("symAT", i))).T

    # Assemble the (my rows) x J_n slab, ordering peer blocks by their global
    # row ranges, then sum contributions over the processor row.
    slab = np.empty((my_unf.shape[0], jn))
    for k, (start, stop) in enumerate(ranges):
        slab[:, start:stop] = blocks[k]
    # M_GRAM live set: local tensor + in-flight peer tensors + V + S.  The
    # blocking ring holds one exchange in flight (the paper's eq. (2)
    # accounting); the pipelined ring trades memory for time and holds
    # them all, which the noted peak reports honestly.
    if pipelined:
        inflight = (pn - 1) if not exploit_symmetry else max(1, len(steps))
    else:
        inflight = 1
    dt.comm.note_memory((1 + inflight) * dt.local.size + 2 * slab.size)
    return np.asarray(row.allreduce(slab, SUM))
