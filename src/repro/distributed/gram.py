"""Parallel Gram matrix — Alg. 4 of the paper.

Computes ``S = Y_(n) Y_(n)^T`` for a block-distributed tensor without any
tensor redistribution.  Ranks in the same mode-``n`` processor column own
the same columns of the unfolding but different row blocks; the local
tensors are passed around that column in a ring ((P_n - 1) shifts), each
step contributing one ``(my rows) x (peer rows)`` block of this column's
contribution to ``S``.  Summing contributions across the mode-``n``
processor row (an all-reduce) yields this rank's *block row* ``S[rows, :]``
of the Gram matrix, replicated across its processor row — exactly the
input distribution Alg. 5 expects.

When ``P_n == 1`` the ring disappears: one symmetric local Gram (dsyrk-
style, exploiting symmetry) followed by the all-reduce, the fully-symmetric
fast path the paper highlights.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import block_ranges
from repro.mpi.reduce_ops import SUM
from repro.util.validation import check_axis


def _unfold_peer(w, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding of a received peer tensor block."""
    arr = np.asarray(w)
    return np.reshape(
        np.moveaxis(arr, mode, 0), (arr.shape[mode], -1), order="F"
    )


def dist_gram(
    dt: DistTensor, mode: int, exploit_symmetry: bool = False
) -> np.ndarray:
    """Parallel ``S = Y_(n) Y_(n)^T`` (Alg. 4).

    Returns this rank's block row ``S[my mode-n rows, :]`` of the global
    ``J_n x J_n`` Gram matrix (identical on all ranks sharing the same
    mode-``n`` grid coordinate).

    ``exploit_symmetry=True`` enables the optimization the paper leaves as
    future work ("up to a factor of two could be saved by exploiting
    symmetry of S"): each off-diagonal block pair ``(p, k)/(k, p)`` is
    multiplied once and the transpose is shipped to the symmetric partner
    — halving the ring length and the off-diagonal flops at the price of
    one extra (small) block exchange per retained ring step.
    """
    mode = check_axis(mode, dt.ndim)
    col = dt.grid.mode_column(mode)
    row = dt.grid.mode_row(mode)
    pn, my_pn = col.size, col.rank
    jn = dt.global_shape[mode]
    ranges = block_ranges(jn, pn)
    my_unf = dt.local_unfolding(mode)  # (my rows) x (local columns)

    blocks: list[np.ndarray | None] = [None] * pn
    if pn == 1:
        # Fully symmetric local Gram (half the flops of the general case).
        s_local = my_unf @ my_unf.T
        s_local = (s_local + s_local.T) * 0.5
        dt.comm.add_flops(my_unf.shape[0] * (my_unf.shape[0] + 1) * my_unf.shape[1])
        blocks[0] = s_local
    elif not exploit_symmetry:
        blocks[my_pn] = my_unf @ my_unf.T
        dt.comm.add_flops(2 * my_unf.shape[0] ** 2 * my_unf.shape[1])
        # Ring exchange (Alg. 4 lines 6-12): at step i send the local tensor
        # i hops "down" the column and receive from i hops "up"; sendrecv
        # avoids the blocking-order deadlock.
        for i in range(1, pn):
            j = (my_pn - i) % pn  # destination (Alg. 4 line 7)
            k = (my_pn + i) % pn  # source (Alg. 4 line 8)
            w = col.sendrecv(dt.local, dest=j, source=k, tag=i)
            w_unf = _unfold_peer(w, mode)
            blocks[k] = my_unf @ w_unf.T
            dt.comm.add_flops(2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1])
    else:
        # Diagonal block with symmetric flop count.
        diag = my_unf @ my_unf.T
        blocks[my_pn] = (diag + diag.T) * 0.5
        dt.comm.add_flops(my_unf.shape[0] * (my_unf.shape[0] + 1) * my_unf.shape[1])
        half = (pn - 1) // 2
        for i in range(1, half + 1):
            j = (my_pn - i) % pn
            k = (my_pn + i) % pn
            w = col.sendrecv(dt.local, dest=j, source=k, tag=("sym", i))
            w_unf = _unfold_peer(w, mode)
            blocks[k] = my_unf @ w_unf.T
            dt.comm.add_flops(2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1])
            # Ship block (my, k) to rank k, whose (k, my) block is its
            # transpose; receive my (my, j) block from rank j in return.
            received = col.sendrecv(blocks[k], dest=k, source=j, tag=("symT", i))
            blocks[j] = np.asarray(received).T
        if pn % 2 == 0:
            # The antipodal pair: only the lower-coordinate rank multiplies.
            i = pn // 2
            k = (my_pn + i) % pn
            w = col.sendrecv(dt.local, dest=k, source=k, tag=("symA", i))
            if my_pn < k:
                w_unf = _unfold_peer(w, mode)
                blocks[k] = my_unf @ w_unf.T
                dt.comm.add_flops(
                    2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1]
                )
                col.send(blocks[k], dest=k, tag=("symAT", i))
            else:
                blocks[k] = np.asarray(col.recv(source=k, tag=("symAT", i))).T

    # Assemble the (my rows) x J_n slab, ordering peer blocks by their global
    # row ranges, then sum contributions over the processor row.
    slab = np.empty((my_unf.shape[0], jn))
    for k, (start, stop) in enumerate(ranges):
        slab[:, start:stop] = blocks[k]
    # M_GRAM live set: local tensor + one in-flight peer tensor + V + S.
    dt.comm.note_memory(2 * dt.local.size + 2 * slab.size)
    return np.asarray(row.allreduce(slab, SUM))
