"""Parallel Gram matrix — Alg. 4 of the paper.

Computes ``S = Y_(n) Y_(n)^T`` for a block-distributed tensor without any
tensor redistribution.  Ranks in the same mode-``n`` processor column own
the same columns of the unfolding but different row blocks; the local
tensors are passed around that column in a ring ((P_n - 1) shifts), each
step contributing one ``(my rows) x (peer rows)`` block of this column's
contribution to ``S``.  Summing contributions across the mode-``n``
processor row (an all-reduce) yields this rank's *block row* ``S[rows, :]``
of the Gram matrix, replicated across its processor row — exactly the
input distribution Alg. 5 expects.

The ring itself is the shared :func:`~repro.distributed.ring.ring_exchange`
pipeline (also driving :func:`~repro.distributed.tsqr.dist_mode_svd`):
pipelined, every hop's exchange is posted before the diagonal dgemm and
each block multiply overlaps the remaining in-flight hops.

When ``P_n == 1`` the ring disappears: one symmetric local Gram (dsyrk-
style, exploiting symmetry) followed by the all-reduce, the fully-symmetric
fast path the paper highlights.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import block_ranges
from repro.distributed.overlap import overlap_enabled
from repro.distributed.ring import (
    RingHop,
    mode_ring_hops,
    ring_exchange,
    unfold_peer as _unfold_peer,
)
from repro.mpi.reduce_ops import SUM
from repro.util.validation import check_axis


def dist_gram(
    dt: DistTensor,
    mode: int,
    exploit_symmetry: bool = False,
    overlap: bool | None = None,
) -> np.ndarray:
    """Parallel ``S = Y_(n) Y_(n)^T`` (Alg. 4).

    Returns this rank's block row ``S[my mode-n rows, :]`` of the global
    ``J_n x J_n`` Gram matrix (identical on all ranks sharing the same
    mode-``n`` grid coordinate).

    ``exploit_symmetry=True`` enables the optimization the paper leaves as
    future work ("up to a factor of two could be saved by exploiting
    symmetry of S"): each off-diagonal block pair ``(p, k)/(k, p)`` is
    multiplied once and the transpose is shipped to the symmetric partner
    — halving the ring length and the off-diagonal flops at the price of
    one extra (small) block exchange per retained ring step.

    ``overlap`` controls communication/computation pipelining (default:
    the ``REPRO_SPMD_OVERLAP`` environment switch, on unless ``"0"``):
    every ring step sends the *same* local tensor, so the pipelined
    schedule posts all hops' exchanges up front and every dgemm computes
    with the remaining exchanges in flight — no receive ever idles the
    rank once its peers have posted.  Results, charges and fold order are
    bit-identical either way; the price is memory, not time: up to
    ``P_n - 1`` exchanges are in flight instead of one, and the noted
    ``M_GRAM`` live set grows accordingly (the paper's eq. (2) bound
    assumes the one-in-flight blocking ring — disable overlap to stay
    inside it on memory-critical runs).
    """
    mode = check_axis(mode, dt.ndim)
    col = dt.grid.mode_column(mode)
    row = dt.grid.mode_row(mode)
    pn, my_pn = col.size, col.rank
    jn = dt.global_shape[mode]
    ranges = block_ranges(jn, pn)
    my_unf = dt.local_unfolding(mode)  # (my rows) x (local columns)
    pipelined = pn > 1 and overlap_enabled(overlap)
    inflight = 1

    blocks: list[np.ndarray | None] = [None] * pn
    if pn == 1:
        # Fully symmetric local Gram (half the flops of the general case).
        s_local = my_unf @ my_unf.T
        s_local = (s_local + s_local.T) * 0.5
        dt.comm.add_flops(my_unf.shape[0] * (my_unf.shape[0] + 1) * my_unf.shape[1])
        blocks[0] = s_local
    elif not exploit_symmetry:
        # Full ring (Alg. 4 lines 6-12) on the shared pipeline.  The
        # exchange generator posts every hop before the first block is
        # consumed (pipelined) — the diagonal dgemm then runs with all
        # hops in flight, and each peer multiply overlaps the rest.
        hops = mode_ring_hops(pn, my_pn)
        exchanges = ring_exchange(col, dt.local, hops, pipelined)
        blocks[my_pn] = my_unf @ my_unf.T
        dt.comm.add_flops(2 * my_unf.shape[0] ** 2 * my_unf.shape[1])
        for hop, w in exchanges:
            w_unf = _unfold_peer(w, mode)
            blocks[hop.source] = my_unf @ w_unf.T
            dt.comm.add_flops(2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1])
        inflight = pn - 1 if pipelined else 1
    else:
        # Halved ring: `half` paired steps, plus one antipodal step for
        # even P_n.  All local-tensor shipments ride the shared pipeline
        # (they all carry ``dt.local``); only the symT block shipments
        # stay synchronous, since each carries a block computed in that
        # very step.
        half = (pn - 1) // 2
        hops = mode_ring_hops(pn, my_pn, tag="sym")[:half]
        if pn % 2 == 0:
            anti = (my_pn + pn // 2) % pn
            hops.append(
                RingHop(step=pn // 2, dest=anti, source=anti, tag=("symA", pn // 2))
            )
        exchanges = ring_exchange(col, dt.local, hops, pipelined)
        # Diagonal block with symmetric flop count.
        diag = my_unf @ my_unf.T
        blocks[my_pn] = (diag + diag.T) * 0.5
        dt.comm.add_flops(my_unf.shape[0] * (my_unf.shape[0] + 1) * my_unf.shape[1])
        for hop, w in exchanges:
            i, k = hop.step, hop.source
            j = (my_pn - i) % pn
            if hop.tag[0] == "sym":
                w_unf = _unfold_peer(w, mode)
                blocks[k] = my_unf @ w_unf.T
                dt.comm.add_flops(
                    2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1]
                )
                # Ship block (my, k) to rank k, whose (k, my) block is its
                # transpose; receive my (my, j) block from rank j in return.
                received = col.sendrecv(blocks[k], dest=k, source=j, tag=("symT", i))
                blocks[j] = np.asarray(received).T
            elif my_pn < k:
                # The antipodal pair: only the lower-coordinate rank
                # multiplies.
                w_unf = _unfold_peer(w, mode)
                blocks[k] = my_unf @ w_unf.T
                dt.comm.add_flops(
                    2 * my_unf.shape[0] * w_unf.shape[0] * my_unf.shape[1]
                )
                col.send(blocks[k], dest=k, tag=("symAT", i))
            else:
                blocks[k] = np.asarray(col.recv(source=k, tag=("symAT", i))).T
        inflight = max(1, len(hops)) if pipelined else 1

    # Assemble the (my rows) x J_n slab, ordering peer blocks by their global
    # row ranges, then sum contributions over the processor row.
    slab = np.empty((my_unf.shape[0], jn), dtype=my_unf.dtype)
    for k, (start, stop) in enumerate(ranges):
        slab[:, start:stop] = blocks[k]
    # M_GRAM live set: local tensor + in-flight peer tensors + V + S.  The
    # blocking ring holds one exchange in flight (the paper's eq. (2)
    # accounting); the pipelined ring trades memory for time and holds
    # them all, which the noted peak reports honestly.
    dt.comm.note_memory((1 + inflight) * dt.local.size + 2 * slab.size)
    return np.asarray(row.allreduce(slab, SUM))
