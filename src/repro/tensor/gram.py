"""Mode-n Gram matrices ``S = X_(n) X_(n)^T`` (paper Algs. 1-2, line "S <- ...").

The Gram matrix is the workhorse of both ST-HOSVD and HOOI: its leading
eigenvectors are the factor matrices, and its eigenvalue tails drive the
epsilon-based rank selection.  Two implementations:

* :func:`gram` — single syrk-equivalent (``A @ A.T``) on the unfolding.
* :func:`gram_blocked` — layout-respecting variant accumulating one
  contiguous sub-block at a time (the multiple-dsyrk-call strategy the paper
  uses for interior modes, Sec. V-C), avoiding the permuted copy of the full
  unfolding.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dense import Tensor, as_f_contiguous, as_ndarray, unfold
from repro.util.validation import check_axis, prod


def gram(x: "Tensor | np.ndarray", mode: int) -> np.ndarray:
    """Gram matrix of the mode-``mode`` unfolding (``I_n x I_n``, symmetric PSD)."""
    arr = as_ndarray(x)
    mode = check_axis(mode, arr.ndim)
    mat = unfold(arr, mode)
    s = mat @ mat.T
    # Enforce exact symmetry: dgemm output can differ in the last ulp across
    # the diagonal, which would leak into eigensolver determinism.
    return (s + s.T) * 0.5


def gram_blocked(x: "Tensor | np.ndarray", mode: int) -> np.ndarray:
    """Gram matrix accumulated sub-block by sub-block (paper Sec. V-C).

    For a Fortran-stored tensor, the mode-n unfolding consists of
    ``prod_{m > n} I_m`` contiguous ``I_n x prod_{m < n} I_m`` blocks; the
    Gram matrix is the sum of per-block outer products, each one a dsyrk.
    """
    arr = as_ndarray(x)
    mode = check_axis(mode, arr.ndim)
    shape = arr.shape
    lead = prod(shape[:mode])
    trail = prod(shape[mode + 1 :])
    flat = np.reshape(as_f_contiguous(arr), (lead, shape[mode], trail), order="F")
    n = shape[mode]
    s = np.zeros((n, n), dtype=arr.dtype)
    if trail == 1:
        block = flat[:, :, 0]
        np.matmul(block.T, block, out=s)
    else:
        # One preallocated product buffer, accumulated in place: the
        # historical ``s += block.T @ block`` allocated a fresh n x n
        # temporary per sub-block, which dominated for skinny blocks.
        tmp = np.empty((n, n), dtype=arr.dtype)
        for b in range(trail):
            block = flat[:, :, b]  # lead x I_n; the unfolding block is its transpose
            np.matmul(block.T, block, out=tmp)
            s += tmp
    return (s + s.T) * 0.5
