"""Dense tensors and mode-n unfoldings (paper Sec. II-A, IV-C).

Unfolding convention
--------------------
``unfold(x, n)`` is the ``I_n x (I / I_n)`` matrix whose column index
enumerates the remaining modes *in increasing mode order with mode 1
(Python mode 0) varying fastest*:

    ``unfold(x, n) = reshape(moveaxis(x, n, 0), (I_n, -1), order="F")``

This is the convention of the paper's data layout (Sec. IV): a tensor is
stored so that its mode-1 unfolding is column-major, and unfolding is a
purely *logical* operation — for ``n = 0`` the unfolding is exactly the
Fortran-ordered buffer reinterpreted as a matrix, and for interior modes the
columns are a sequence of contiguous sub-blocks (Fig. 3b).  The matrix
element mapping is ``(i_1, ..., i_N) -> (i_n, j)`` with

    ``j = sum_{k != n} i_k * prod_{m < k, m != n} I_m``.

``fold`` is the exact inverse.  Tensors are stored Fortran-ordered
internally so that ``unfold(x, 0)`` is always a zero-copy view.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import check_axis, check_shape_like, prod


def unfold(array: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding of ``array`` (paper layout convention)."""
    mode = check_axis(mode, array.ndim)
    return np.reshape(
        np.moveaxis(array, mode, 0), (array.shape[mode], -1), order="F"
    )


def fold(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`unfold`: rebuild the tensor of ``shape``.

    ``matrix`` must be ``shape[mode] x (prod(shape) / shape[mode])``.
    """
    shape = check_shape_like(shape)
    mode = check_axis(mode, len(shape))
    if matrix.ndim != 2:
        raise ValueError(f"fold expects a matrix, got ndim={matrix.ndim}")
    expected = (shape[mode], prod(shape) // shape[mode])
    if matrix.shape != expected:
        raise ValueError(
            f"matrix shape {matrix.shape} does not match unfolding {expected} "
            f"of tensor shape {tuple(shape)} in mode {mode}"
        )
    moved = (shape[mode],) + tuple(s for i, s in enumerate(shape) if i != mode)
    return np.moveaxis(np.reshape(matrix, moved, order="F"), 0, mode)


class Tensor:
    """A dense real tensor with the paper's layout and mode operations.

    Thin wrapper over a float ndarray kept Fortran-ordered, so the mode-1
    (index 0) unfolding is a zero-copy column-major view, matching the
    storage convention of Sec. IV-A.  Most library functions accept plain
    ndarrays; this class is the convenient user-facing handle.
    """

    __slots__ = ("_data",)

    def __init__(self, data: np.ndarray, copy: bool = True):
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim == 0:
            raise ValueError("a Tensor must have at least one mode")
        self._data = np.asfortranarray(arr) if (copy or not arr.flags.f_contiguous) else arr

    # -- construction ---------------------------------------------------------

    @classmethod
    def zeros(cls, shape: Sequence[int]) -> "Tensor":
        return cls(
            np.zeros(check_shape_like(shape), dtype=np.float64, order="F"),
            copy=False,
        )

    @classmethod
    def from_unfolding(
        cls, matrix: np.ndarray, mode: int, shape: Sequence[int]
    ) -> "Tensor":
        return cls(fold(matrix, mode, shape))

    # -- basic properties -------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying ndarray (Fortran-ordered)."""
        return self._data

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    def __getitem__(self, idx):
        return self._data[idx]

    def __array__(self, dtype=None, copy=None):
        if dtype is not None:
            return np.asarray(self._data, dtype=dtype)
        return self._data

    # -- paper Sec. II-A operations ----------------------------------------------

    def unfold(self, mode: int) -> np.ndarray:
        """Mode-``mode`` unfolding ``X_(n)`` of size ``I_n x I/I_n``."""
        return unfold(self._data, mode)

    def norm(self) -> float:
        """Tensor norm ``||X|| = ||X_(1)||_F`` (root of sum of squares)."""
        return float(np.linalg.norm(self._data.reshape(-1)))

    def nrank(self, mode: int, tol: float | None = None) -> int:
        """n-rank: column rank of the mode-``mode`` unfolding."""
        mat = self.unfold(mode)
        return int(np.linalg.matrix_rank(mat, tol=tol))

    def ttm(self, v: np.ndarray, mode: int, transpose: bool = False) -> "Tensor":
        """Mode-``mode`` product ``X x_n V`` (see :func:`repro.tensor.ttm.ttm`)."""
        from repro.tensor.ttm import ttm as _ttm

        return Tensor(_ttm(self._data, v, mode, transpose=transpose), copy=False)

    def gram(self, mode: int) -> np.ndarray:
        """Mode-``mode`` Gram matrix ``X_(n) X_(n)^T``."""
        from repro.tensor.gram import gram as _gram

        return _gram(self._data, mode)

    def scale_by(self, value: float) -> "Tensor":
        return Tensor(self._data * value, copy=False)

    def __sub__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other_arr = other.data if isinstance(other, Tensor) else np.asarray(other)
        return Tensor(self._data - other_arr, copy=False)

    def __add__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other_arr = other.data if isinstance(other, Tensor) else np.asarray(other)
        return Tensor(self._data + other_arr, copy=False)

    def allclose(self, other: "Tensor | np.ndarray", **kwargs) -> bool:
        other_arr = other.data if isinstance(other, Tensor) else np.asarray(other)
        return bool(np.allclose(self._data, other_arr, **kwargs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape})"


def as_ndarray(x: "Tensor | np.ndarray") -> np.ndarray:
    """Accept either a Tensor or a raw ndarray and return the ndarray.

    float32 arrays pass through unwidened — they are the mixed-precision
    kernels' working representation — while everything else (including
    integer arrays and nested lists) is coerced to float64 exactly as
    before.
    """
    if isinstance(x, Tensor):
        return x.data
    if isinstance(x, np.ndarray) and x.dtype == np.float32:
        return x
    return np.asarray(x, dtype=np.float64)


def match_dtype(dtype: "np.dtype | type") -> np.dtype:
    """Kernel working dtype for an input array dtype.

    float32 inputs stay float32 (the mixed-precision narrow path);
    everything else computes in float64, exactly as the kernels always
    have.  Kernels use this to coerce secondary operands (factor
    matrices, received blocks) so a float32 tensor is never silently
    re-widened by a float64 operand.
    """
    return np.dtype(np.float32 if np.dtype(dtype) == np.float32
                    else np.float64)


def as_f_contiguous(arr: np.ndarray) -> np.ndarray:
    """``arr`` itself when already Fortran-contiguous, else an F-ordered copy.

    The blocked kernels view their input as contiguous Fortran sub-blocks;
    this helper is their layout normalization.  Returning the *same object*
    for compliant inputs matters on the distributed hot path: received
    tensors are read-only zero-copy views backed by shared memory
    (:class:`~repro.mpi.process_transport.ShmArrayView`), and
    ``np.asfortranarray`` would wrap them in a fresh base-class view —
    harmless for data, but this way the no-copy property is explicit and
    regression-testable (``tests/tensor`` asserts identity).
    """
    if arr.flags.f_contiguous:
        return arr
    return np.asfortranarray(arr)
