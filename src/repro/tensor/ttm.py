"""Tensor-times-matrix (TTM) products (paper Sec. II-A, IV-C).

``ttm(x, v, n)`` computes ``Y = X x_n V``, equivalently ``Y_(n) = V X_(n)``.
Two implementations are provided:

* :func:`ttm` — the production path: one ``tensordot`` call, which BLAS
  executes as a single dgemm after an internal transpose.
* :func:`ttm_blocked` — the paper-faithful path that walks the unfolded
  tensor's contiguous sub-blocks (Fig. 3b) and multiplies each with dgemm,
  never materializing a full permuted copy.  This is the layout-respecting
  strategy the paper uses for local computations; tests assert it matches
  :func:`ttm` exactly, and it is the kernel the distributed TTM calls so
  that local work mirrors Alg. 3.

``multi_ttm`` applies a sequence of factor matrices along multiple modes,
optionally skipping one (the HOOI inner step ``X x {U^T}_{m != n}``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import default_for
from repro.tensor.dense import Tensor, as_f_contiguous, as_ndarray, match_dtype
from repro.util.validation import check_axis, prod

#: Batched fast-path gate for :func:`ttm_blocked`: collapse the
#: per-sub-block Python loop into batched/stacked dgemms when the
#: sub-blocks are *skinny* (few leading columns per block) and numerous
#: enough for the per-block Python and BLAS-dispatch overhead to matter.
#: Wide blocks keep the loop: each dgemm is then large enough to amortize
#: its dispatch, and the loop avoids the batched path's staging buffer.
#: ``BATCH_MAX_LEAD`` is the built-in default; per-run values come from
#: the resolved config (``REPRO_TTM_BATCH_LEAD``) or an explicit
#: ``batch_lead=`` argument, e.g. from an autotuned execution plan.
BATCH_MAX_LEAD = 32
BATCH_MIN_TRAIL = 8


def _check_ttm_shapes(
    shape: tuple[int, ...], v: np.ndarray, mode: int, transpose: bool
) -> int:
    """Validate dims of ``X x_n V`` (or V^T) and return the output mode size."""
    if v.ndim != 2:
        raise ValueError(f"TTM matrix must be 2-D, got ndim={v.ndim}")
    inner = v.shape[0] if transpose else v.shape[1]
    out = v.shape[1] if transpose else v.shape[0]
    if inner != shape[mode]:
        raise ValueError(
            f"TTM dimension mismatch in mode {mode}: tensor has {shape[mode]}, "
            f"matrix{'(transposed)' if transpose else ''} expects {inner}"
        )
    return out


def ttm(
    x: "Tensor | np.ndarray",
    v: np.ndarray,
    mode: int,
    transpose: bool = False,
) -> np.ndarray:
    """Mode-``mode`` product ``X x_n V`` (or ``X x_n V^T`` if ``transpose``).

    Parameters
    ----------
    x:
        Input tensor of shape ``I_1 x ... x I_N``.
    v:
        Matrix of shape ``K x I_n`` (or ``I_n x K`` with ``transpose=True``,
        the common case for factor matrices ``U^(n)`` of size ``I_n x R_n``).
    mode:
        The mode to contract.

    Returns
    -------
    np.ndarray
        Tensor of shape ``I_1 x ... x I_{n-1} x K x I_{n+1} x ... x I_N``.
    """
    arr = as_ndarray(x)
    mode = check_axis(mode, arr.ndim)
    v = np.asarray(v, dtype=match_dtype(arr.dtype))
    _check_ttm_shapes(arr.shape, v, mode, transpose)
    contract_axis = 0 if transpose else 1
    # tensordot puts v's surviving axis first; move it back to `mode`.
    out = np.tensordot(v, arr, axes=([contract_axis], [mode]))
    return np.moveaxis(out, 0, mode)


def ttm_blocked(
    x: "Tensor | np.ndarray",
    v: np.ndarray,
    mode: int,
    transpose: bool = False,
    batched: bool | None = None,
    batch_lead: int | None = None,
) -> np.ndarray:
    """Layout-respecting TTM: per-sub-block dgemm as in paper Sec. IV-C.

    The mode-n unfolding of a Fortran-stored tensor consists of
    ``prod_{m > n} I_m`` contiguous blocks, each an ``I_n x prod_{m < n} I_m``
    matrix (stored column-major within the block).  We multiply each block
    by ``V`` separately, exactly as the paper's implementation does with
    dgemm, avoiding any global data permutation.

    When the sub-blocks are skinny (``lead <= BATCH_MAX_LEAD``) and
    numerous (``trail >= BATCH_MIN_TRAIL``), the per-block Python loop is
    collapsed into one batched call: for ``lead == 1`` (leading modes)
    the whole product is a *single* dgemm on the ``(I_n, trail)`` view
    the Fortran layout already provides, and otherwise one stacked
    ``matmul`` runs the same per-block dgemms from C.  ``batched``
    overrides the gate (``None`` = auto) — the benchmark suite uses it to
    measure loop vs. batched on equal shapes.  ``batch_lead`` overrides
    the skinny-block threshold (``None`` = the run's resolved config,
    ``REPRO_TTM_BATCH_LEAD``, default :data:`BATCH_MAX_LEAD`); both
    paths compute bit-identical results, so the knob is pure tuning.
    """
    arr = as_ndarray(x)
    mode = check_axis(mode, arr.ndim)
    v = np.asarray(v, dtype=match_dtype(arr.dtype))
    k = _check_ttm_shapes(arr.shape, v, mode, transpose)
    shape = arr.shape
    lead = prod(shape[:mode])  # columns per sub-block
    trail = prod(shape[mode + 1 :])  # number of sub-blocks
    vmat = v.T if transpose else v
    new_shape = shape[:mode] + (k,) + shape[mode + 1 :]

    # View the tensor as (lead, I_n, trail) in Fortran order: mode indices
    # before `mode` are flattened into the leading axis, those after into the
    # trailing axis.  Each trail slice is one contiguous sub-block.
    flat = np.reshape(as_f_contiguous(arr), (lead, shape[mode], trail), order="F")
    if batched is None:
        lead_cap = (
            int(default_for("ttm_batch_lead"))
            if batch_lead is None
            else int(batch_lead)
        )
        batched = lead <= lead_cap and trail >= BATCH_MIN_TRAIL
    if batched and trail > 1:
        if lead == 1:
            # All sub-blocks share their single row index, so the
            # (I_n, trail) Fortran view is one matrix and the whole TTM
            # is one dgemm written straight into the F-ordered output.
            flat2 = np.reshape(flat, (shape[mode], trail), order="F")
            out2 = np.empty((k, trail), dtype=arr.dtype, order="F")
            np.matmul(vmat, flat2, out=out2)
            return np.reshape(out2, new_shape, order="F")
        # Stacked matmul: the identical per-block dgemm (same operand
        # layouts as the loop below, so the bits match exactly), batched
        # in C and written straight into the F-ordered output through its
        # (trail, lead, k) transpose view.
        out = np.empty((lead, k, trail), dtype=arr.dtype, order="F")
        np.matmul(
            flat.transpose(2, 0, 1),
            np.ascontiguousarray(vmat.T),
            out=out.transpose(2, 0, 1),
        )
        return np.reshape(out, new_shape, order="F")
    out = np.empty((lead, k, trail), dtype=arr.dtype, order="F")
    vt = np.ascontiguousarray(vmat.T)
    for b in range(trail):
        # One dgemm per contiguous sub-block: out_block = block @ V^T, i.e.
        # the transpose of V @ (mode-n columns of this block).
        out[:, :, b] = flat[:, :, b] @ vt
    return np.reshape(out, new_shape, order="F")


def multi_ttm(
    x: "Tensor | np.ndarray",
    matrices: Sequence[np.ndarray | None],
    skip: int | None = None,
    transpose: bool = False,
    order: Sequence[int] | None = None,
) -> np.ndarray:
    """Multiply ``x`` by a matrix in every mode: ``X x {V^(n)}``.

    Parameters
    ----------
    matrices:
        One matrix per mode (entries may be ``None`` to skip that mode).
    skip:
        Additionally skip this mode (HOOI's ``m != n`` product).
    transpose:
        Apply each matrix transposed (``X x {U^(n)T}``), the projection
        direction used throughout ST-HOSVD and HOOI.
    order:
        Sequence in which modes are processed.  The result is independent of
        order (mode products commute across distinct modes) but cost is not;
        defaults to increasing mode.
    """
    arr = as_ndarray(x)
    n_modes = arr.ndim
    if len(matrices) != n_modes:
        raise ValueError(
            f"need one matrix per mode ({n_modes}), got {len(matrices)}"
        )
    modes = list(range(n_modes)) if order is None else [
        check_axis(m, n_modes, "order entry") for m in order
    ]
    if order is not None and sorted(modes) != list(range(n_modes)):
        raise ValueError(f"order {order} is not a permutation of modes")
    result = arr
    for m in modes:
        if m == skip or matrices[m] is None:
            continue
        result = ttm(result, matrices[m], m, transpose=transpose)
    return result
