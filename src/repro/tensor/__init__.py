"""Dense tensor algebra substrate.

Implements the tensor notation of paper Sec. II-A: mode-n unfoldings in the
paper's layout convention (the mode-1 unfolding of a stored tensor is
column-major), the tensor-times-matrix (TTM) product, mode-n Gram matrices,
and the truncated symmetric eigensolver used for factor-matrix computation.
Everything here is sequential; the distributed algorithms in
:mod:`repro.distributed` call these kernels on per-rank local blocks.
"""

from repro.tensor.dense import Tensor, as_f_contiguous, fold, unfold
from repro.tensor.ttm import multi_ttm, ttm, ttm_blocked
from repro.tensor.gram import gram, gram_blocked
from repro.tensor.eig import (
    EigResult,
    eigendecompose,
    leading_eigenvectors,
    rank_from_tolerance,
)
from repro.tensor.random import low_rank_tensor, random_factor, random_tensor

__all__ = [
    "Tensor",
    "as_f_contiguous",
    "fold",
    "unfold",
    "ttm",
    "ttm_blocked",
    "multi_ttm",
    "gram",
    "gram_blocked",
    "EigResult",
    "eigendecompose",
    "leading_eigenvectors",
    "rank_from_tolerance",
    "low_rank_tensor",
    "random_factor",
    "random_tensor",
]
