"""Symmetric eigensolver kernel and epsilon-driven rank selection.

The paper computes factor matrices as the leading eigenvectors of the mode-n
Gram matrix (dsyevx in LAPACK; here ``scipy.linalg.eigh``), and inside
ST-HOSVD chooses the reduced dimension ``R_n`` on the fly as

    ``R_n = min R such that sum_{r > R} lambda_r(S) <= eps^2 ||X||^2 / N``

(Alg. 1, line 5).  Eigenvalues are returned in decreasing order; eigenvector
signs are fixed deterministically (largest-magnitude entry positive) so that
sequential and distributed runs of the same Gram matrix produce identical
factors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg


@dataclass(frozen=True)
class EigResult:
    """Sorted eigendecomposition of a symmetric PSD matrix.

    Attributes
    ----------
    values:
        Eigenvalues in decreasing order, clipped below at 0 (Gram matrices
        are PSD; tiny negative values are roundoff).
    vectors:
        Corresponding eigenvectors as columns, sign-normalized.
    """

    values: np.ndarray
    vectors: np.ndarray

    def leading(self, rank: int) -> np.ndarray:
        """The first ``rank`` eigenvectors as an ``n x rank`` matrix."""
        if not 1 <= rank <= self.vectors.shape[1]:
            raise ValueError(
                f"rank {rank} out of range [1, {self.vectors.shape[1]}]"
            )
        return np.array(self.vectors[:, :rank], copy=True)

    def tail_sums(self) -> np.ndarray:
        """``tail[r] = sum_{i >= r} values[i]`` for r = 0..n (tail[n] = 0).

        ``tail[r]`` is the squared error of truncating to rank ``r``.
        """
        n = self.values.shape[0]
        tail = np.zeros(n + 1, dtype=np.float64)
        tail[:n] = np.cumsum(self.values[::-1])[::-1]
        return tail


def _fix_signs(vectors: np.ndarray) -> np.ndarray:
    """Make the largest-|.| entry of every column positive (deterministic)."""
    idx = np.argmax(np.abs(vectors), axis=0)
    signs = np.sign(vectors[idx, np.arange(vectors.shape[1])])
    signs[signs == 0] = 1.0
    return vectors * signs


def eigendecompose(s: np.ndarray) -> EigResult:
    """Full symmetric eigendecomposition, sorted by decreasing eigenvalue.

    Always solved in float64: the eigenproblem is rank-local and cheap, so
    even the float32 kernel path upcasts its Gram matrix here (the
    mixed-precision contract narrows only the bandwidth-carrying kernels).
    The symmetry gate scales with the *input* precision — a float32 Gram
    matrix is symmetric only to float32 roundoff.
    """
    s_in = np.asarray(s)
    sym_atol = 1e-4 if s_in.dtype == np.float32 else 1e-8
    s = np.asarray(s_in, dtype=np.float64)
    if s.ndim != 2 or s.shape[0] != s.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {s.shape}")
    if not np.allclose(s, s.T, atol=sym_atol * max(1.0, float(np.abs(s).max(initial=0.0)))):
        raise ValueError("matrix is not symmetric")
    values, vectors = scipy.linalg.eigh(s)
    order = np.argsort(values)[::-1]
    values = np.clip(values[order], 0.0, None)
    vectors = _fix_signs(vectors[:, order])
    return EigResult(values=values, vectors=vectors)


def rank_from_tolerance(values: np.ndarray, threshold: float) -> int:
    """Smallest ``R >= 1`` with ``sum_{r > R} values[r] <= threshold``.

    ``values`` must be sorted decreasing.  This is Alg. 1 line 5; the
    returned rank never exceeds ``len(values)`` and is at least 1 (an empty
    factor matrix is never useful).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("eigenvalues must be a 1-D array")
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    n = values.shape[0]
    tail = np.zeros(n + 1, dtype=np.float64)
    tail[:n] = np.cumsum(values[::-1])[::-1]
    # tail[r] = error of keeping r leading eigenvalues; find smallest r with
    # tail[r] <= threshold.
    for r in range(n + 1):
        if tail[r] <= threshold:
            return max(1, r)
    return n  # pragma: no cover - tail[n] == 0 <= threshold always triggers


def leading_eigenvectors(
    s: np.ndarray,
    rank: int | None = None,
    threshold: float | None = None,
) -> tuple[np.ndarray, EigResult]:
    """Leading eigenvectors of a Gram matrix, with optional on-the-fly rank.

    Exactly one of ``rank`` / ``threshold`` must be given.  With
    ``threshold``, the rank is chosen by :func:`rank_from_tolerance` (the
    paper's epsilon-based truncation).  Returns ``(U, eig)`` where ``U`` is
    ``n x R``.
    """
    if (rank is None) == (threshold is None):
        raise ValueError("specify exactly one of rank= or threshold=")
    eig = eigendecompose(s)
    if rank is None:
        rank = rank_from_tolerance(eig.values, threshold)  # type: ignore[arg-type]
    return eig.leading(rank), eig
