"""Seeded random tensor factories used by tests, examples, and benchmarks.

Includes the exact-low-multilinear-rank construction used for the paper's
synthetic performance experiments (Sec. VIII-C: "synthetic data ... formed
from a Tucker decomposition with core dimensions ..."): a random core tensor
multiplied by random orthonormal factors, optionally plus white noise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.ttm import multi_ttm
from repro.util.seeding import rng_for
from repro.util.validation import check_shape_like


def random_tensor(shape: Sequence[int], seed: int = 0) -> np.ndarray:
    """Standard-normal tensor with a deterministic stream per (shape, seed)."""
    shape = check_shape_like(shape)
    rng = rng_for(seed, "random_tensor", shape)
    return np.asfortranarray(rng.standard_normal(shape))


def random_factor(n_rows: int, n_cols: int, seed: int = 0) -> np.ndarray:
    """Random matrix with orthonormal columns (``n_rows x n_cols``)."""
    if n_cols > n_rows:
        raise ValueError(
            f"cannot build {n_cols} orthonormal columns of length {n_rows}"
        )
    rng = rng_for(seed, "random_factor", n_rows, n_cols)
    q, r = np.linalg.qr(rng.standard_normal((n_rows, n_cols)))
    # Fix signs so the factory is deterministic under LAPACK variation.
    return q * np.sign(np.where(np.diag(r) == 0, 1.0, np.diag(r)))


def low_rank_tensor(
    shape: Sequence[int],
    ranks: Sequence[int],
    seed: int = 0,
    noise: float = 0.0,
) -> np.ndarray:
    """Tensor of exact multilinear rank ``ranks`` (plus optional noise).

    Built as ``G x {U^(n)}`` with a standard-normal core ``G`` of size
    ``ranks`` and orthonormal factors, the construction of the paper's
    synthetic scaling datasets.  ``noise`` adds white Gaussian noise of the
    given elementwise standard deviation, making the tensor full-rank but
    numerically low-rank — useful for exercising epsilon-truncation.
    """
    shape = check_shape_like(shape)
    ranks = check_shape_like(ranks, "ranks")
    if len(ranks) != len(shape):
        raise ValueError(f"ranks {ranks} and shape {shape} differ in order")
    for r, s in zip(ranks, shape):
        if r > s:
            raise ValueError(f"rank {r} exceeds dimension {s}")
    core = random_tensor(ranks, seed=seed)
    factors = [
        random_factor(s, r, seed=seed + 17 * (i + 1))
        for i, (s, r) in enumerate(zip(shape, ranks))
    ]
    x = multi_ttm(core, factors, transpose=False)
    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise}")
    if noise > 0:
        rng = rng_for(seed, "low_rank_tensor_noise", shape, ranks)
        x = x + noise * rng.standard_normal(shape)
    return np.asfortranarray(x)
