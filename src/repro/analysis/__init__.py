"""SPMD correctness tooling: runtime sanitizer and static lint pass.

Two halves, sharing the SPMD-protocol vocabulary of :mod:`repro.mpi`:

* :mod:`repro.analysis.sanitizer` — the runtime half.  At
  ``REPRO_SANITIZE >= 1`` (or ``run_spmd(..., sanitize=1)``) every
  collective records a call-site signature and cross-rank verifies it by
  piggybacking a digest on the collective windows' size fence (uncharged
  point-to-point exchange on window-less transports), turning
  mismatched/reordered collectives into precise diagnostics instead of
  deadlocks; non-blocking requests are tracked so leaked handles and
  double waits fail the run.  Level 2 adds per-slot generation counters
  to the shm windows so a read of a stale or unfenced slot raises
  :class:`~repro.mpi.errors.WindowProtocolError`.  Level 0 (default)
  compiles every check out of the fast path.
* :mod:`repro.analysis.lint` — the static half: ``repro-lint`` (also
  ``python -m repro.analysis.lint``), an AST checker with SPMD-aware
  rules (collectives under rank-dependent branches, unwaited deferred
  requests, blocking collectives inside pipeline regions, bare
  ``except`` around transport calls, mutable default arguments), per-rule
  suppression comments, and a JSON output mode for CI.
"""

from repro.analysis.sanitizer import (
    SANITIZE_ENV_VAR,
    CollectiveCall,
    RequestRecord,
    Sanitizer,
    call_site,
    sanitize_level,
)

__all__ = [
    "SANITIZE_ENV_VAR",
    "CollectiveCall",
    "RequestRecord",
    "Sanitizer",
    "call_site",
    "sanitize_level",
]
