"""Runtime SPMD sanitizer: collective-protocol and request-lifetime checks.

The simulated runtime's failure mode for protocol bugs is a deadlock
timeout: a rank that posts ``bcast`` while its peers post ``allreduce``
spins on a fence until the transport gives up, and the report names no
line of user code.  The sanitizer (modeled on MPI correctness tools in
the MUST family) turns those hangs into immediate, precise diagnostics:

* **Collective matching** — every collective entry records a
  :class:`CollectiveCall` signature ``(op, sequence number, root,
  reduction op, dtype, shape, call site)``.  A 63-bit digest of the
  protocol-relevant fields rides the collective windows' existing size
  fence (one extra int64 store per exchange); on transports without
  windows the signatures travel an uncharged point-to-point exchange.
  Any divergence raises
  :class:`~repro.mpi.errors.CollectiveMismatchError` naming every
  diverging rank and its call site.  dtype/shape are recorded for
  diagnostics but deliberately excluded from the digest except for
  ``reduce_scatter_block`` (whose contract requires one shape): uneven
  payloads are legal for gather/reduce-family collectives here.
* **Request lifetimes** — non-blocking requests are registered at post;
  a request never waited by user code fails finalize with
  :class:`~repro.mpi.errors.RequestLeakError`, a second user wait raises
  :class:`~repro.mpi.errors.RequestStateError` (the runtime's internal
  force-completion of pipelined window rounds is exempt).
* **Happens-before (level 2)** — the shm windows stamp a per-slot
  generation on every write; a read of a slot whose generation lags the
  round raises :class:`~repro.mpi.errors.WindowProtocolError`.

Levels: ``0`` — off, zero instrumentation on the hot path; ``1`` —
collective matching + request tracking; ``2`` — level 1 plus the window
generation checks.  Select with ``REPRO_SANITIZE`` or
``run_spmd(..., sanitize=)``.
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.config import default_for

if TYPE_CHECKING:  # real imports happen lazily at the raise sites:
    # importing repro.mpi.errors at module load would run the repro.mpi
    # package __init__, which imports repro.mpi.comm, which imports this
    # module — a cycle whenever repro.analysis loads first (repro-lint).
    from repro.mpi.errors import CollectiveMismatchError

#: Environment variable consulted when ``run_spmd`` gets no ``sanitize=``.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

#: Valid sanitizer levels.
SANITIZE_LEVELS = (0, 1, 2)

#: Ops whose contract requires identical shapes/dtypes on every member,
#: so those fields join the protocol digest.  The other reduction-family
#: and gather-family collectives legally take uneven contributions.
_SHAPE_STRICT_OPS = frozenset(
    {"reduce_scatter_block", "ireduce_scatter_block"}
)

#: Frames from these path fragments are runtime internals, skipped when
#: attributing a collective or request post to user code.
_INTERNAL_FRAGMENTS = (
    os.path.join("repro", "mpi") + os.sep,
    os.path.join("repro", "analysis") + os.sep,
)


def sanitize_level(override: int | None = None) -> int:
    """Resolve the sanitizer level: explicit ``override``, else the run's
    resolved config (the ``REPRO_SANITIZE`` environment variable outside
    a run; default 0)."""
    if override is None:
        level = int(default_for("sanitize"))
    else:
        level = int(override)
    if level not in SANITIZE_LEVELS:
        raise ValueError(
            f"sanitize level must be one of {SANITIZE_LEVELS}, got {level}"
        )
    return level


def call_site() -> str:
    """``file.py:line`` of the nearest caller outside the runtime.

    Walks the stack past :mod:`repro.mpi` / :mod:`repro.analysis` frames
    so diagnostics point at the SPMD program, not at communicator
    internals.  Falls back to the outermost inspected frame when the
    whole stack is internal (direct unit tests of the runtime).
    """
    frame = sys._getframe(1)
    last = "<unknown>"
    depth = 0
    while frame is not None and depth < 30:
        filename = frame.f_code.co_filename
        last = f"{os.path.basename(filename)}:{frame.f_lineno}"
        if not any(frag in filename for frag in _INTERNAL_FRAGMENTS):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
        depth += 1
    return last


def _describe_value(value: Any) -> tuple[str, str]:
    """Best-effort (dtype, shape) strings for diagnostics."""
    dtype = getattr(value, "dtype", None)
    shape = getattr(value, "shape", None)
    if dtype is None:
        return type(value).__name__, ""
    return str(dtype), "x".join(map(str, shape)) if shape is not None else ""


@dataclass
class CollectiveCall:
    """One rank's record of one collective entry."""

    op: str
    seq: int
    group_rank: int
    world_rank: int
    root: int | None = None
    reduce_op: str | None = None
    dtype: str = ""
    shape: str = ""
    site: str = "<unknown>"

    def protocol_key(self) -> tuple:
        """The fields every member must agree on for this call."""
        key: tuple = (self.op, self.seq, self.root, self.reduce_op)
        if self.op in _SHAPE_STRICT_OPS:
            key += (self.dtype, self.shape)
        return key

    @property
    def digest(self) -> int:
        """63-bit non-zero digest of :meth:`protocol_key`.

        Non-zero so a window digest row of 0 (a rank that has not posted
        a sanitized round) is never mistaken for a match; 63-bit so it
        stores losslessly in the window's int64 flag row.
        """
        raw = hashlib.blake2b(
            repr(self.protocol_key()).encode(), digest_size=8
        ).digest()
        return (int.from_bytes(raw, "little") & 0x7FFFFFFFFFFFFFFF) | 1

    def describe(self) -> str:
        extra = ""
        if self.root is not None:
            extra += f", root={self.root}"
        if self.reduce_op is not None:
            extra += f", op={self.reduce_op}"
        if self.dtype:
            extra += f", {self.dtype}"
            if self.shape:
                extra += f"[{self.shape}]"
        return (
            f"rank {self.group_rank} (world {self.world_rank}): "
            f"{self.op}#{self.seq}{extra} at {self.site}"
        )

    def wire(self) -> dict:
        """Picklable form for the point-to-point signature exchange."""
        return {
            "op": self.op,
            "seq": self.seq,
            "group_rank": self.group_rank,
            "world_rank": self.world_rank,
            "root": self.root,
            "reduce_op": self.reduce_op,
            "dtype": self.dtype,
            "shape": self.shape,
            "site": self.site,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "CollectiveCall":
        return cls(**data)


@dataclass
class RequestRecord:
    """Lifetime bookkeeping for one non-blocking request."""

    op: str
    site: str
    seq: int
    user_waits: int = 0

    def describe(self) -> str:
        return f"{self.op} (request #{self.seq}) posted at {self.site}"


@dataclass
class Sanitizer:
    """Per-rank sanitizer state, shared by every communicator of the rank.

    Created by the executor backend when the resolved sanitize level is
    positive and threaded through :class:`~repro.mpi.comm.Communicator`
    (``split`` children share their parent's instance, so request
    bookkeeping and the deadlock context span the whole rank).
    """

    level: int
    world_rank: int
    current: CollectiveCall | None = None
    _requests: list[RequestRecord] = field(default_factory=list)
    _req_seq: int = 0

    # -- collective protocol -------------------------------------------------

    def collective(
        self,
        op: str,
        seq: int,
        group_rank: int,
        root: int | None = None,
        reduce_op: Any = None,
        value: Any = None,
    ) -> CollectiveCall:
        """Record entry into a collective; returns its signature."""
        dtype, shape = _describe_value(value) if value is not None else ("", "")
        sig = CollectiveCall(
            op=op,
            seq=seq,
            group_rank=group_rank,
            world_rank=self.world_rank,
            root=root,
            reduce_op=getattr(reduce_op, "name", None),
            dtype=dtype,
            shape=shape,
            site=call_site(),
        )
        self.current = sig
        return sig

    def mismatch(
        self, mine: CollectiveCall, peers: list[CollectiveCall]
    ) -> "CollectiveMismatchError":
        """Build the diagnostic for a diverged collective."""
        from repro.mpi.errors import CollectiveMismatchError

        mine_key = mine.protocol_key()
        lines = [mine.describe()]
        for peer in sorted(peers, key=lambda s: s.group_rank):
            marker = "" if peer.protocol_key() == mine_key else " <-- diverged"
            lines.append(f"{peer.describe()}{marker}")
        return CollectiveMismatchError(
            f"collective #{mine.seq} diverged across ranks "
            f"(mismatched or reordered collective calls):\n  "
            + "\n  ".join(lines)
        )

    # -- request lifetimes ---------------------------------------------------

    def track_request(self, op: str) -> RequestRecord:
        rec = RequestRecord(op=op, site=call_site(), seq=self._req_seq)
        self._req_seq += 1
        self._requests.append(rec)
        return rec

    def user_wait(self, rec: RequestRecord) -> None:
        from repro.mpi.errors import RequestStateError

        rec.user_waits += 1
        if rec.user_waits > 1:
            raise RequestStateError(
                f"rank {self.world_rank}: double wait on {rec.describe()} "
                f"(second wait at {call_site()}); a request handle is dead "
                f"after its first wait"
            )

    def finalize(self) -> None:
        """End-of-rank check: every posted request must have been waited."""
        from repro.mpi.errors import RequestLeakError

        leaked = [r for r in self._requests if r.user_waits == 0]
        self._requests.clear()
        if leaked:
            listing = "\n  ".join(r.describe() for r in leaked)
            raise RequestLeakError(
                f"rank {self.world_rank}: {len(leaked)} non-blocking "
                f"request(s) never waited:\n  {listing}"
            )

    # -- deadlock context ----------------------------------------------------

    def annotate(self, exc: BaseException) -> None:
        """Attach the last collective context to a deadlock for post-mortems."""
        if self.current is not None:
            exc.add_note(f"sanitizer: last collective {self.current.describe()}")
