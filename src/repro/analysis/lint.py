"""repro-lint: SPMD-aware static analysis for programs on :mod:`repro.mpi`.

Generic linters know nothing about SPMD discipline: they cannot see that
a collective reached by only some ranks deadlocks the rest, or that a
non-blocking request whose ``wait()`` is unreachable leaks its deferred
completion (and its ledger charge).  This pass encodes those protocol
rules over the Python AST:

========  ==============================================================
SPMD001   collective call under a rank-dependent branch with no matching
          call on the other path (subset-participation deadlock)
SPMD002   non-blocking request discarded or never waited on any path
          (leaked completion; the sanitizer's RequestLeakError, caught
          before running)
SPMD003   blocking collective entered while non-blocking posts are
          outstanding (serializes the overlap region and, with the
          double-buffered window protocol, risks fence reordering)
SPMD004   bare ``except:`` around transport calls (swallows
          DeadlockError/SpmdError poisoning, so sibling ranks hang)
SPMD005   mutable default argument (list/dict/set/ndarray — shared
          across calls *and* across ranks on the thread backend)
SPMD006   direct ``REPRO_*`` environment read outside
          :mod:`repro.config` (bypasses the one-shot config resolution
          at the ``run_spmd`` boundary; pooled workers never see it)
SPMD007   shared-memory allocation outside the resources/transport
          layers, or one guarded by an ``except OSError`` that does not
          discriminate errno (bypasses the budget gate, or swallows the
          ``ENOSPC``/``ENOMEM`` the degradation ladder must see)
SPMD008   dtype-less NumPy allocation or literal conversion in the
          kernel/distributed layers (implicitly float64 — silently
          upcasts a float32 pipeline's buffers and doubles its wire
          words)
========  ==============================================================

Findings point at file:line:col.  Suppress a finding by putting
``# repro-lint: disable=CODE`` (or ``disable=all``) on the flagged line.
Run as ``repro-lint paths...`` or ``python -m repro.analysis.lint``;
``--json`` emits machine-readable findings for CI, ``--select`` limits
the rule set, ``--list-rules`` documents every rule.  Exit status: 0
clean, 1 findings, 2 usage or parse error.

The rules are deliberately heuristic (this is a linter, not a verifier):
they know the :class:`~repro.mpi.comm.Communicator` method names and a
few rank-access spellings, and they treat a request that escapes its
statement (passed to a call, returned, stored in a container) as
consumed — whoever received it owns the wait.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Blocking collective methods of Communicator/CartGrid communicators.
BLOCKING_COLLECTIVES = frozenset(
    {
        "barrier",
        "bcast",
        "gather",
        "allgather",
        "scatter",
        "reduce",
        "allreduce",
        "reduce_scatter_block",
        "alltoall",
        "split",
        "dup",
    }
)

#: Non-blocking *collective* posts (SPMD-ordered like their blocking
#: counterparts; rank-dependent branching around them deadlocks).
NB_COLLECTIVES = frozenset(
    {"ireduce", "iallreduce", "ireduce_scatter_block"}
)

#: All non-blocking posts returning a Request.  The point-to-point trio
#: is legal under rank branches (paired send/recv is the idiom) but
#: still carries the wait obligation.
NB_POSTS = NB_COLLECTIVES | frozenset({"isend", "irecv", "isendrecv"})

#: Blocking point-to-point / transport-touching methods (for SPMD004).
TRANSPORT_CALLS = (
    BLOCKING_COLLECTIVES
    | NB_POSTS
    | frozenset({"send", "recv", "Send", "Recv", "sendrecv"})
)

#: Attribute / variable spellings that mean "this rank's identity".
_RANK_NAMES = frozenset({"rank", "world_rank", "group_rank", "my_rank"})

#: Call results treated as freshly-allocated mutable defaults (SPMD005).
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "zeros", "ones", "empty", "array", "full"}
)

RULES: dict[str, str] = {
    "SPMD001": (
        "collective call under a rank-dependent branch with no matching "
        "call on the other path — the unreached ranks deadlock"
    ),
    "SPMD002": (
        "non-blocking request discarded or never waited — its deferred "
        "completion (and ledger charge) never runs"
    ),
    "SPMD003": (
        "blocking collective while non-blocking requests are outstanding "
        "— collapses the overlap region and risks fence reordering"
    ),
    "SPMD004": (
        "bare except around transport calls — swallows the poisoned-"
        "transport errors that make sibling ranks fail fast"
    ),
    "SPMD005": (
        "mutable default argument — shared across calls, and across "
        "ranks on the thread backend"
    ),
    "SPMD006": (
        "direct REPRO_* environment read outside repro.config — knobs "
        "must resolve once at the run_spmd boundary, not mid-library"
    ),
    "SPMD007": (
        "shm allocation outside the resources/transport layers, or "
        "guarded by a non-errno-discriminating OSError handler — it "
        "bypasses the budget gate or swallows ENOSPC/ENOMEM"
    ),
    "SPMD008": (
        "dtype-less NumPy allocation/conversion in kernel or distributed "
        "code — implicitly float64, silently upcasting a float32 pipeline"
    ),
}


@dataclass
class Finding:
    """One lint finding, anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


# -- AST helpers -------------------------------------------------------------


def _method_name(call: ast.Call) -> str | None:
    """The attribute name of ``obj.method(...)`` calls, else None."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _mentions_rank(node: ast.AST) -> bool:
    """Whether an expression reads this rank's identity."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _RANK_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in _RANK_NAMES:
            return True
        if isinstance(sub, ast.Call) and _method_name(sub) == "Get_rank":
            return True
    return False


def _calls_in(nodes: Iterable[ast.AST]) -> Iterator[ast.Call]:
    for node in nodes:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                yield sub


def _collective_calls(nodes: Iterable[ast.AST]) -> list[tuple[str, ast.Call]]:
    out = []
    for call in _calls_in(nodes):
        name = _method_name(call)
        if name in BLOCKING_COLLECTIVES or name in NB_COLLECTIVES:
            out.append((name, call))
    return out


# -- SPMD001: rank-dependent collectives -------------------------------------


def _check_rank_branches(tree: ast.AST, path: str) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.If) or not _mentions_rank(node.test):
            continue
        body_ops = _collective_calls(node.body)
        else_ops = _collective_calls(node.orelse)
        body_names = {name for name, _ in body_ops}
        else_names = {name for name, _ in else_ops}
        for ops, other in ((body_ops, else_names), (else_ops, body_names)):
            for name, call in ops:
                if name in other:
                    # Both paths reach the same collective (root/non-root
                    # asymmetry of the same call): legal pairing.
                    continue
                findings.append(
                    Finding(
                        path,
                        call.lineno,
                        call.col_offset,
                        "SPMD001",
                        f"collective '{name}' is only reached by ranks "
                        f"taking this branch of a rank-dependent 'if' "
                        f"(line {node.lineno}); the other ranks block "
                        f"forever",
                    )
                )
    return findings


# -- SPMD002 / SPMD003: request lifetimes and pipeline regions ---------------


@dataclass
class _Post:
    """An outstanding non-blocking post bound to a local name."""

    name: str
    op: str
    line: int
    col: int
    consumed: bool = False


class _RegionAnalyzer:
    """Branch-local abstract interpreter over one function body.

    Tracks which non-blocking requests are outstanding at each program
    point.  ``If`` arms are analyzed from a copy of the pre-branch state
    and merged by intersection (a request waited on either arm no longer
    blocks SPMD003); loops get a single pass.  A request that escapes —
    passed to a call, returned, yielded, stored into a container or
    attribute — counts as consumed: its new owner is responsible for the
    wait, which is beyond a per-function analysis.
    """

    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []
        self.outstanding: dict[str, _Post] = {}
        self.all_posts: list[_Post] = []

    # -- small classification helpers --

    def _nb_call(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Call):
            name = _method_name(node)
            if name in NB_POSTS:
                return name
        return None

    def _nb_calls_anywhere(self, node: ast.AST) -> list[tuple[str, ast.Call]]:
        return [
            (name, call)
            for call in ast.walk(node)
            if isinstance(call, ast.Call)
            and (name := _method_name(call)) in NB_POSTS
        ]

    def _record(self, name: str, op: str, node: ast.AST) -> None:
        post = _Post(name, op, node.lineno, node.col_offset)
        self.outstanding[name] = post
        self.all_posts.append(post)

    def _consume(self, name: str) -> None:
        post = self.outstanding.pop(name, None)
        if post is not None:
            post.consumed = True
        else:
            for post in self.all_posts:
                if post.name == name:
                    post.consumed = True

    # -- statement walk --

    def run(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def finish(self) -> None:
        """End of function: posts never consumed on any path leak."""
        for post in self.all_posts:
            if not post.consumed:
                self.findings.append(
                    Finding(
                        self.path,
                        post.line,
                        post.col,
                        "SPMD002",
                        f"request from '{post.op}' is never waited; its "
                        f"deferred completion (and ledger charge) never "
                        f"runs",
                    )
                )

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested scopes are analyzed independently, but a closure
            # capturing an outstanding request consumes it: the nested
            # function owns the wait (the pipelined ring's `_drain`).
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and sub.id in self.outstanding:
                    self._consume(sub.id)
            return
        if isinstance(stmt, ast.If):
            pre = dict(self.outstanding)
            self.run(stmt.body)
            after_body = self.outstanding
            self.outstanding = dict(pre)
            self.run(stmt.orelse)
            after_else = self.outstanding
            self.outstanding = {
                name: post
                for name, post in after_body.items()
                if name in after_else
            }
            return
        if isinstance(stmt, (ast.For, ast.While)):
            self._expr_effects(getattr(stmt, "iter", None) or stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr_effects(item.context_expr)
            self.run(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                saved = dict(self.outstanding)
                self.run(handler.body)
                self.outstanding = saved
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        if isinstance(stmt, ast.Expr):
            op = self._nb_call(stmt.value)
            if op is not None:
                self.findings.append(
                    Finding(
                        self.path,
                        stmt.value.lineno,
                        stmt.value.col_offset,
                        "SPMD002",
                        f"request from '{op}' is discarded at the call "
                        f"site; nothing can ever wait it",
                    )
                )
                return
            self._expr_effects(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._escape_names(stmt.value)
            self._expr_effects(stmt.value)
            return
        self._expr_effects(stmt)

    def _assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        op = self._nb_call(value)
        if op is not None and len(targets) == 1 and isinstance(
            targets[0], ast.Name
        ):
            self._check_blocking(value)
            self._record(targets[0].id, op, value)
            return
        self._expr_effects(value)
        # A request list built by comprehension stays trackable under
        # the assigned name: `reqs = [comm.isend(...) for ...]`.
        if (
            len(targets) == 1
            and isinstance(targets[0], ast.Name)
            and isinstance(value, (ast.ListComp, ast.GeneratorExp))
        ):
            nb = self._nb_calls_anywhere(value)
            if nb:
                name, call = nb[0]
                self._record(targets[0].id, name, call)

    def _expr_effects(self, node: ast.AST | None) -> None:
        """Process waits, escapes, blocking collectives and stray posts
        inside one expression, in that order."""
        if node is None:
            return
        self._process_waits(node)
        self._escape_names(node)
        self._check_blocking(node)

    def _process_waits(self, node: ast.AST) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            if _method_name(call) != "wait":
                continue
            target = call.func.value  # type: ignore[union-attr]
            if isinstance(target, ast.Name):
                self._consume(target.id)

    def _escape_names(self, node: ast.AST) -> None:
        """Names flowing into calls, containers, yields or returns are
        consumed — their new owner carries the wait obligation."""
        for sub in ast.walk(node):
            names: list[ast.expr] = []
            if isinstance(sub, ast.Call):
                names = list(sub.args) + [kw.value for kw in sub.keywords]
            elif isinstance(sub, (ast.List, ast.Tuple, ast.Set)):
                names = list(sub.elts)
            elif isinstance(sub, ast.Dict):
                names = [v for v in sub.values if v is not None]
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value:
                names = [sub.value]
            elif isinstance(sub, ast.comprehension):
                names = [sub.iter]
            for expr in names:
                if isinstance(expr, ast.Name) and expr.id in self.outstanding:
                    self._consume(expr.id)

    def _check_blocking(self, node: ast.AST) -> None:
        if not self.outstanding:
            return
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            name = _method_name(call)
            if name in BLOCKING_COLLECTIVES:
                posted = ", ".join(
                    f"'{p.op}' (line {p.line})"
                    for p in self.outstanding.values()
                )
                self.findings.append(
                    Finding(
                        self.path,
                        call.lineno,
                        call.col_offset,
                        "SPMD003",
                        f"blocking collective '{name}' runs while "
                        f"non-blocking post(s) {posted} are outstanding; "
                        f"wait them first or keep the pipeline "
                        f"non-blocking",
                    )
                )


def _check_requests(tree: ast.AST, path: str) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyzer = _RegionAnalyzer(path)
            analyzer.run(node.body)
            analyzer.finish()
            findings.extend(analyzer.findings)
    return findings


# -- SPMD004: bare except around transport calls -----------------------------


def _check_bare_except(tree: ast.AST, path: str) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        touched = sorted(
            {
                name
                for call in _calls_in(node.body)
                if (name := _method_name(call)) in TRANSPORT_CALLS
            }
        )
        if not touched:
            continue
        for handler in node.handlers:
            if handler.type is not None:
                continue
            findings.append(
                Finding(
                    path,
                    handler.lineno,
                    handler.col_offset,
                    "SPMD004",
                    f"bare 'except:' around transport call(s) "
                    f"{', '.join(touched)} swallows DeadlockError/"
                    f"poisoning, leaving sibling ranks hung; catch "
                    f"specific exceptions",
                )
            )
    return findings


# -- SPMD005: mutable default arguments --------------------------------------


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", None
        )
        return name in _MUTABLE_FACTORIES
    return False


def _check_mutable_defaults(tree: ast.AST, path: str) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(
                    Finding(
                        path,
                        default.lineno,
                        default.col_offset,
                        "SPMD005",
                        f"mutable default argument in '{node.name}' is "
                        f"shared across calls (and across ranks on the "
                        f"thread backend); default to None and allocate "
                        f"inside",
                    )
                )
    return findings


# -- SPMD006: REPRO_* environment reads outside repro.config ------------------


def _repro_key(node: ast.expr) -> str | None:
    """Spelling of an env-var key expression when it names a REPRO_ knob.

    Matches string literals starting ``REPRO_`` and names/attributes
    ending ``_ENV_VAR`` (the repo's constant convention, e.g.
    ``OVERLAP_ENV_VAR`` / ``backends.POOL_ENV_VAR``).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value.startswith("REPRO_") else None
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None and name.endswith("_ENV_VAR"):
        return name
    return None


def _is_environ(node: ast.expr) -> bool:
    """Whether an expression is ``os.environ`` (or a bare ``environ``)."""
    if isinstance(node, ast.Attribute):
        return node.attr == "environ"
    return isinstance(node, ast.Name) and node.id == "environ"


def _check_env_reads(tree: ast.AST, path: str) -> list[Finding]:
    if "repro/config" in Path(path).as_posix():
        # The config package is the designated resolver; its env_default
        # is the one legal reader.
        return []
    findings = []
    for node in ast.walk(tree):
        key = None
        how = None
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and _is_environ(node.value)
        ):
            key = _repro_key(node.slice)
            how = "os.environ[...]"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and _is_environ(func.value)
                and node.args
            ):
                key = _repro_key(node.args[0])
                how = "os.environ.get(...)"
            elif (
                (
                    isinstance(func, ast.Attribute)
                    and func.attr == "getenv"
                )
                or (isinstance(func, ast.Name) and func.id == "getenv")
            ) and node.args:
                key = _repro_key(node.args[0])
                how = "os.getenv(...)"
        if key is None or how is None:
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                node.col_offset,
                "SPMD006",
                f"{how} read of {key} outside repro.config; resolve it "
                f"through repro.config (resolve_config / default_for) so "
                f"the knob is decided once at the run_spmd boundary and "
                f"reaches pooled workers",
            )
        )
    return findings


# -- SPMD007: shm allocation sites and their error handling -------------------

#: Layers allowed to allocate shared memory directly: the transport's
#: choke points (``create_segment`` runs the budget gate), the resources
#: package (the gate itself and the accounting boards) and the fault
#: status board.  Everything else must allocate *through* them so every
#: segment is gated, charged and crash-audited.
_SHM_ALLOC_EXEMPT = (
    "repro/mpi/process_transport",
    "repro/resources/",
    "repro/faults/status",
)

#: Call spellings that allocate a shared segment.
_SHM_ALLOC_CALLS = frozenset(
    {"create_segment", "create_window", "SharedMemory", "HugePageSegment"}
)

#: ``except`` types that discriminate by construction — OSError
#: subclasses narrower than the exhaustion set.
_NARROW_OSERRORS = frozenset(
    {
        "FileNotFoundError",
        "FileExistsError",
        "PermissionError",
        "NotADirectoryError",
        "IsADirectoryError",
        "InterruptedError",
        "BrokenPipeError",
        "ConnectionError",
        "TimeoutError",
    }
)


def _alloc_call_name(call: ast.Call) -> str | None:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(
        func, "id", None
    )
    if name not in _SHM_ALLOC_CALLS:
        return None
    if name == "create_window" and isinstance(func, ast.Attribute):
        # ``transport.create_window(...)`` is the sanctioned protocol
        # API (TransportBase); only a direct import of the constructor
        # sidesteps the gated layer.
        return None
    if name == "SharedMemory":
        # Attaching by name reserves nothing; only create=True allocates.
        for kw in call.keywords:
            if kw.arg == "create" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            ):
                return name
        return None
    return name


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """The exception-type spellings an ``except`` clause catches."""
    node = handler.type
    types = (
        node.elts if isinstance(node, ast.Tuple) else [node]
        if node is not None else []
    )
    out = set()
    for t in types:
        if isinstance(t, ast.Name):
            out.add(t.id)
        elif isinstance(t, ast.Attribute):
            out.add(t.attr)
    return out


def _discriminates_errno(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body inspects which error actually happened:
    an ``.errno`` read, or a call into the resources routing helpers."""
    for sub in ast.walk(handler):
        if isinstance(sub, ast.Attribute) and sub.attr == "errno":
            return True
        if isinstance(sub, ast.Call):
            name = _method_name(sub) or getattr(sub.func, "id", None)
            if name in ("is_exhaustion", "strerror"):
                return True
        if isinstance(sub, ast.Name) and sub.id in (
            "EXHAUSTED_ERRNOS", "errno"
        ):
            return True
    return False


def _check_shm_alloc(tree: ast.AST, path: str) -> list[Finding]:
    posix = Path(path).as_posix()
    exempt = any(part in posix for part in _SHM_ALLOC_EXEMPT)
    findings = []
    if not exempt:
        for call in (
            sub for sub in ast.walk(tree) if isinstance(sub, ast.Call)
        ):
            name = _alloc_call_name(call)
            if name is None:
                continue
            findings.append(
                Finding(
                    path,
                    call.lineno,
                    call.col_offset,
                    "SPMD007",
                    f"direct shm allocation '{name}' outside the "
                    f"resources/transport layers bypasses the budget "
                    f"gate and the crash audit; allocate through "
                    f"repro.mpi.process_transport.create_segment",
                )
            )
    # Everywhere (exempt layers included): an allocation guarded by a
    # broad OSError handler must route on errno, or exhaustion is
    # swallowed instead of degrading.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        allocs = sorted(
            {
                name
                for call in _calls_in(node.body)
                if (name := _alloc_call_name(call)) is not None
            }
        )
        if not allocs:
            continue
        for handler in node.handlers:
            caught = _handler_names(handler)
            if "OSError" not in caught and "EnvironmentError" not in caught:
                continue
            if caught & _NARROW_OSERRORS and len(caught) == len(
                caught & _NARROW_OSERRORS
            ):
                continue  # pragma: no cover - tuple of narrow subclasses
            if _discriminates_errno(handler):
                continue
            findings.append(
                Finding(
                    path,
                    handler.lineno,
                    handler.col_offset,
                    "SPMD007",
                    f"'except OSError' around shm allocation(s) "
                    f"{', '.join(allocs)} does not discriminate errno; "
                    f"check exc.errno (or resources.is_exhaustion) so "
                    f"ENOSPC/ENOMEM degrade instead of being swallowed",
                )
            )
    return findings


# -- SPMD008: implicit float64 in dtype-following layers ----------------------

#: Layers whose kernels follow the working tensor's dtype (the mixed-
#: precision contract, see :mod:`repro.core.precision`): a dtype-less
#: allocation there silently upcasts a float32 pipeline to float64 —
#: results stay right, but the narrow-word compute and communication the
#: mode was selected for is quietly lost.  Other layers (config, io,
#: perfmodel...) carry no working dtype and are not checked.
_DTYPE_SCOPED = ("repro/tensor/", "repro/distributed/")

#: Allocators whose default dtype is float64.
_DTYPE_ALLOC_CALLS = frozenset({"empty", "zeros", "ones", "full"})

#: Converters that default literal (list/tuple) input to float64.
_DTYPE_CONVERT_CALLS = frozenset({"array", "asarray", "asfortranarray"})


def _np_call_name(call: ast.Call) -> str | None:
    """The function name of a ``np.xxx(...)``/``numpy.xxx(...)`` call."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def _check_implicit_dtype(tree: ast.AST, path: str) -> list[Finding]:
    posix = Path(path).as_posix()
    if not any(part in posix for part in _DTYPE_SCOPED):
        return []
    findings = []
    for call in (n for n in ast.walk(tree) if isinstance(n, ast.Call)):
        name = _np_call_name(call)
        if name is None:
            continue
        if any(kw.arg == "dtype" for kw in call.keywords):
            continue
        if name in _DTYPE_ALLOC_CALLS:
            # A positional dtype also counts: np.zeros(shape, np.float32),
            # np.full(shape, fill, np.float32).
            if len(call.args) >= (3 if name == "full" else 2):
                continue
            findings.append(
                Finding(
                    path,
                    call.lineno,
                    call.col_offset,
                    "SPMD008",
                    f"np.{name} without dtype= allocates float64 in a "
                    f"dtype-following layer; pass the working dtype "
                    f"(e.g. arr.dtype or match_dtype(...)) so float32 "
                    f"pipelines stay narrow",
                )
            )
        elif (
            name in _DTYPE_CONVERT_CALLS
            and len(call.args) == 1
            and isinstance(call.args[0], (ast.List, ast.Tuple, ast.ListComp))
        ):
            findings.append(
                Finding(
                    path,
                    call.lineno,
                    call.col_offset,
                    "SPMD008",
                    f"np.{name} of a literal without dtype= defaults to "
                    f"float64 in a dtype-following layer; state the "
                    f"intended dtype explicitly",
                )
            )
    return findings


# -- driver ------------------------------------------------------------------

_CHECKS = {
    "SPMD001": _check_rank_branches,
    "SPMD002": _check_requests,
    "SPMD003": _check_requests,
    "SPMD004": _check_bare_except,
    "SPMD005": _check_mutable_defaults,
    "SPMD006": _check_env_reads,
    "SPMD007": _check_shm_alloc,
    "SPMD008": _check_implicit_dtype,
}


def _suppressed(source_lines: list[str], finding: Finding) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    line = source_lines[finding.line - 1]
    marker = "# repro-lint:"
    idx = line.find(marker)
    if idx < 0:
        return False
    directive = line[idx + len(marker):].strip()
    if not directive.startswith("disable="):
        return False
    codes = {c.strip() for c in directive[len("disable="):].split(",")}
    return "all" in codes or finding.code in codes


def lint_source(
    source: str, path: str, select: set[str] | None = None
) -> list[Finding]:
    """Lint one source blob; returns findings sorted by position."""
    tree = ast.parse(source, filename=path)
    selected = set(RULES) if select is None else select
    findings: list[Finding] = []
    ran: set = set()
    for code in sorted(selected):
        check = _CHECKS[code]
        if check in ran:
            continue  # SPMD002/003 share one analyzer pass
        ran.add(check)
        findings.extend(check(tree, path))
    lines = source.splitlines()
    seen = set()
    out = []
    for f in sorted(findings, key=lambda f: (f.line, f.col, f.code)):
        if f.code not in selected or _suppressed(lines, f):
            continue
        key = (f.line, f.col, f.code)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


def lint_paths(
    paths: list[str], select: set[str] | None = None
) -> tuple[list[Finding], list[str]]:
    """Lint files/directories; returns (findings, unreadable-path errors)."""
    findings: list[Finding] = []
    errors: list[str] = []
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            errors.append(f"{raw}: no such file or directory")
    for file in files:
        try:
            source = file.read_text()
        except OSError as exc:
            errors.append(f"{file}: {exc}")
            continue
        try:
            findings.extend(lint_source(source, str(file), select))
        except SyntaxError as exc:
            errors.append(f"{file}: syntax error: {exc}")
    return findings, errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="SPMD-aware static checks for repro.mpi programs",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary in sorted(RULES.items()):
            print(f"{code}  {summary}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = {c.strip() for c in args.select.split(",") if c.strip()}
        unknown = select - set(RULES)
        if unknown:
            print(
                f"repro-lint: error: unknown rule(s) "
                f"{', '.join(sorted(unknown))}; known: "
                f"{', '.join(sorted(RULES))}",
                file=sys.stderr,
            )
            return 2
    findings, errors = lint_paths(args.paths, select)
    if args.json:
        print(json.dumps([f.as_json() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
    for err in errors:
        print(f"repro-lint: error: {err}", file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
