"""Command-line interface: compress, inspect, reconstruct, extract.

The end-to-end workflow of the paper as a shell tool::

    repro-tucker compress field.npy field.tucker.npz --tol 1e-3
    repro-tucker info field.tucker.npz
    repro-tucker reconstruct field.tucker.npz back.npy
    repro-tucker extract field.tucker.npz slab.npy --select : : 3 0:10

``compress`` accepts a dense tensor in ``.npy`` format, optionally applies
the paper's per-species normalization, runs ST-HOSVD (optionally refined by
HOOI), and writes a Tucker container.  ``extract`` reconstructs only the
selected subtensor (paper Sec. II-C) — the full tensor is never formed.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core import hooi, sthosvd
from repro.data.preprocess import center_and_scale
from repro.io import load_tucker, save_tucker, stored_bytes
from repro.mpi.errors import SpmdError
from repro.util.validation import prod


def _backend_choices() -> tuple[str, ...]:
    from repro.mpi import available_backends

    return available_backends()


def _parse_selection(token: str, dim: int):
    """Parse one ``--select`` token: ``:``, ``i``, or ``a:b[:c]``."""
    token = token.strip()
    if token == ":":
        return None
    if ":" in token:
        parts = token.split(":")
        if len(parts) > 3:
            raise ValueError(f"bad slice {token!r}")
        vals = [int(p) if p else None for p in parts]
        while len(vals) < 3:
            vals.append(None)
        return slice(vals[0], vals[1], vals[2])
    idx = int(token)
    if not -dim <= idx < dim:
        raise ValueError(f"index {idx} out of range for mode of size {dim}")
    return idx


def _parallel_sthosvd_prog(comm, x, grid, tol, ranks, method, plan, dtype):
    """SPMD program behind ``compress --parallel``.

    Module-level (not a closure) so the process backend can pickle it by
    reference and dispatch repeated compressions to its warm rank pool.
    """
    from repro.distributed import DistTensor, dist_sthosvd
    from repro.mpi import CartGrid

    g = CartGrid(comm, grid)
    dt = DistTensor.from_global(g, x)
    t = dist_sthosvd(
        dt, tol=tol, ranks=ranks, method=method, plan=plan, compute_dtype=dtype
    )
    gathered = t.to_tucker()  # collective: every rank participates
    if comm.rank == 0:
        return gathered, t.error_estimate()
    return None


def _compress_parallel(
    x: np.ndarray, args: argparse.Namespace, metadata: dict
):
    """Run the distributed ST-HOSVD on ``--parallel`` simulated ranks.

    Returns ``(decomposition, error_estimate)``; factors are bit-identical
    across backends, so the container does not depend on the choice.
    """
    from repro.distributed import choose_grid
    from repro.mpi import ProcessBackend, resolve_backend, run_spmd

    ranks = tuple(args.ranks) if args.ranks else None
    grid = choose_grid(args.parallel, x.shape, ranks=ranks)

    backend = resolve_backend(args.backend)
    if args.no_pool and isinstance(backend, ProcessBackend):
        backend = ProcessBackend(pool=False)
    res = run_spmd(
        args.parallel,
        _parallel_sthosvd_prog,
        x,
        grid,
        args.tol,
        ranks,
        args.method,
        args.plan,
        args.dtype,
        backend=backend,
        sanitize=args.sanitize,
        timeout=args.timeout,
    )
    metadata["parallel"] = {
        "ranks": args.parallel,
        "grid": list(grid),
        "backend": backend.name,
    }
    if args.dtype is not None:
        metadata["parallel"]["compute_dtype"] = args.dtype
    print(
        f"  parallel     : {args.parallel} ranks, grid "
        f"{'x'.join(map(str, grid))}, {backend.name} backend, "
        f"modeled time {res.modeled_time:.3e} s"
    )
    return res[0]


def _cmd_compress(args: argparse.Namespace) -> int:
    x = np.load(args.input)
    if x.ndim < 1:
        print("error: input must be a dense tensor", file=sys.stderr)
        return 2
    if args.parallel < 0:
        print("error: --parallel must be >= 0", file=sys.stderr)
        return 2
    if args.parallel and args.hooi_iterations > 0:
        print(
            "error: --hooi-iterations is not supported with --parallel",
            file=sys.stderr,
        )
        return 2
    if args.backend is not None and not args.parallel:
        print(
            "error: --backend requires --parallel (sequential compression "
            "never launches SPMD ranks)",
            file=sys.stderr,
        )
        return 2
    if args.sanitize is not None and not args.parallel:
        print(
            "error: --sanitize requires --parallel (the SPMD sanitizer "
            "checks rank protocols)",
            file=sys.stderr,
        )
        return 2
    if args.timeout is not None and not args.parallel:
        print(
            "error: --timeout requires --parallel (the deadlock timeout "
            "guards SPMD receives)",
            file=sys.stderr,
        )
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    if args.plan is not None and not args.parallel:
        print(
            "error: --plan requires --parallel (plans tune the distributed "
            "kernels)",
            file=sys.stderr,
        )
        return 2
    if args.dtype is not None and not args.parallel:
        print(
            "error: --dtype requires --parallel (precision selection lives "
            "in the distributed drivers)",
            file=sys.stderr,
        )
        return 2
    metadata: dict = {"source": args.input}
    if args.species_mode is not None:
        x, info = center_and_scale(x, args.species_mode)
        metadata["normalized"] = {
            "species_mode": info.mode,
            "means": np.asarray(info.means).ravel().tolist(),
            "stds": np.asarray(info.stds).ravel().tolist(),
        }
    if args.parallel:
        decomposition, error_estimate = _compress_parallel(x, args, metadata)
    else:
        ranks = tuple(args.ranks) if args.ranks else None
        result = sthosvd(x, tol=args.tol, ranks=ranks, method=args.method)
        error_estimate = result.error_estimate()
        if args.hooi_iterations > 0:
            refined = hooi(x, init=result, max_iterations=args.hooi_iterations)
            decomposition = refined.decomposition
        else:
            decomposition = result.decomposition
    metadata["tol"] = args.tol
    metadata["method"] = args.method
    save_tucker(args.output, decomposition, metadata=metadata)
    raw = x.size * 8
    disk = stored_bytes(args.output)
    print(
        f"compressed {args.input} {x.shape} -> {args.output}\n"
        f"  ranks        : {decomposition.ranks}\n"
        f"  ratio        : {decomposition.compression_ratio:.1f}x in memory, "
        f"{raw / disk:.1f}x on disk\n"
        f"  error (est.) : {error_estimate:.3e}"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """Print the autotuned execution plan for a problem, without running it.

    Resolves a :class:`~repro.config.RuntimeConfig` exactly as
    ``compress --parallel P --plan auto`` would, then shows every knob
    (with its environment spelling and the layer it steers), the chosen
    processor grid, the decision evidence, and the model's predicted
    per-mode kernel costs.  ``--json`` emits the config alone, ready to
    replay via ``--plan '<json>'`` or ``REPRO_PLAN``.
    """
    from repro.perfmodel import EDISON_CALIBRATED, MachineSpec, plan_sthosvd

    if (args.tol is None) == (args.ranks is None):
        print("error: specify exactly one of --tol / --ranks", file=sys.stderr)
        return 2
    shape = tuple(args.shape)
    ranks = tuple(args.ranks) if args.ranks else None
    if ranks is not None and len(ranks) != len(shape):
        print(
            f"error: need {len(shape)} --ranks entries, got {len(ranks)}",
            file=sys.stderr,
        )
        return 2
    machine = EDISON_CALIBRATED
    if args.machine is not None:
        with open(args.machine) as fh:
            machine = MachineSpec.from_json(fh.read())
    plan = plan_sthosvd(
        shape,
        ranks=ranks,
        tol=args.tol,
        n_ranks=args.parallel,
        machine=machine,
    )
    if args.json:
        print(plan.config.to_json())
        return 0
    print(
        f"plan for {'x'.join(map(str, shape))} on {args.parallel} ranks "
        f"(grid {'x'.join(map(str, plan.grid))}, machine {machine.name}):"
    )
    print(f"  {'knob':<15}{'env var':<24}{'value':<12}layer")
    for field, env, value, layer in plan.config.describe():
        print(f"  {field:<15}{env:<24}{value:<12}{layer}")
    print("decisions:")
    for name, reason in plan.decisions.items():
        print(f"  {name} = {getattr(plan.config, name)}: {reason}")
    print("predicted per-mode costs:")
    for kernel, mode, cost in plan.predicted.steps:
        print(
            f"  mode {mode} {kernel:<6}: {cost.time:.3e} s "
            f"(flop {cost.flop_time:.2e}, bw {cost.bw_time:.2e}, "
            f"lat {cost.lat_time:.2e})"
        )
    print(f"predicted total: {plan.predicted.time:.3e} s")
    print(f"replay: --plan '{plan.config.to_json()}'")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    t, meta = load_tucker(args.model)
    print(
        f"{args.model}\n"
        f"  shape       : {t.shape}\n"
        f"  ranks       : {t.ranks}\n"
        f"  compression : {t.compression_ratio:.1f}x "
        f"({prod(t.shape)} -> {t.storage_words} words)\n"
        f"  metadata    : {json.dumps(meta)}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.diagnostics import validate_tucker
    from repro.core.precision import FLOAT32_NOISE_FLOOR

    t, meta = load_tucker(args.model)
    x = np.load(args.against) if args.against else None
    # A model computed under a narrowed dtype (compress --dtype
    # float32/mixed, recorded in the container metadata) legitimately
    # carries float32-level orthonormality defect in its factors; hold
    # it to the float32 bar instead of failing it against float64's.
    dtype = (meta.get("parallel") or {}).get("compute_dtype", "float64")
    atol = 1e-8 if dtype == "float64" else float(FLOAT32_NOISE_FLOOR)
    report = validate_tucker(t, x, atol=atol)
    print(f"{args.model}: {'OK' if report.ok else 'ISSUES FOUND'}")
    if dtype != "float64":
        print(f"  dtype bar          : {dtype} (atol {atol:.1e})")
    print(f"  orthonormality dev : "
          f"{max(report.orthonormality_errors):.2e} (worst mode)")
    print(f"  norm identity gap  : {report.norm_identity_gap:.2e}")
    if report.core_residual is not None:
        print(f"  core residual      : {report.core_residual:.2e}")
        print(f"  relative error     : {report.relative_error:.2e}")
    for issue in report.issues:
        print(f"  ! {issue}")
    return 0 if report.ok else 1


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    t, _ = load_tucker(args.model)
    np.save(args.output, t.reconstruct())
    print(f"reconstructed {t.shape} tensor -> {args.output}")
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    t, _ = load_tucker(args.model)
    if len(args.select) != t.order:
        print(
            f"error: need {t.order} --select tokens (one per mode), got "
            f"{len(args.select)}",
            file=sys.stderr,
        )
        return 2
    try:
        spec = [
            _parse_selection(token, dim)
            for token, dim in zip(args.select, t.shape)
        ]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sub = t.reconstruct_subtensor(spec)
    np.save(args.output, sub)
    print(f"extracted subtensor {sub.shape} -> {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tucker",
        description="Tucker compression of dense scientific tensors "
        "(reproduction of Austin, Ballard & Kolda, IPDPS 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a .npy tensor")
    p.add_argument("input", help="dense tensor in .npy format")
    p.add_argument("output", help="output Tucker container (.npz)")
    p.add_argument("--tol", type=float, default=None,
                   help="relative error tolerance (exclusive with --ranks)")
    p.add_argument("--ranks", type=int, nargs="+", default=None,
                   help="explicit reduced dimensions per mode")
    p.add_argument("--method", choices=("gram", "svd"), default="gram",
                   help="factor computation (svd: robust at tiny tol)")
    p.add_argument("--species-mode", type=int, default=None,
                   help="center-and-scale slices of this mode first")
    p.add_argument("--hooi-iterations", type=int, default=0,
                   help="refine with up to this many HOOI iterations")
    p.add_argument("--parallel", type=int, default=0, metavar="P",
                   help="run the distributed ST-HOSVD on P simulated ranks "
                        "(0: sequential)")
    p.add_argument("--backend", choices=_backend_choices(), default=None,
                   help="SPMD executor backend for --parallel (default: "
                        "$REPRO_SPMD_BACKEND or 'thread')")
    p.add_argument("--sanitize", type=int, choices=(0, 1, 2), default=None,
                   help="SPMD sanitizer level for --parallel runs: 1 checks "
                        "collective matching and request lifetimes, 2 adds "
                        "shared-memory window generation checks (default: "
                        "the REPRO_SANITIZE environment variable)")
    p.add_argument("--no-pool", action="store_true",
                   help="with --backend process: fork fresh ranks instead "
                        "of using the persistent worker pool "
                        "(equivalent to REPRO_SPMD_POOL=0)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="deadlock-detection timeout for --parallel runs "
                        "(default: $REPRO_SPMD_TIMEOUT or 120)")
    p.add_argument("--plan", default=None, metavar="PLAN",
                   help="execution plan for --parallel runs: 'auto' (pick "
                        "kernel knobs from the perf model), 'default', or "
                        "a RuntimeConfig JSON object (default: $REPRO_PLAN)")
    p.add_argument("--dtype", choices=("float64", "float32", "mixed"),
                   default=None,
                   help="compute precision for --parallel runs: float32 "
                        "kernels, mixed (float32 kernels + one float64 "
                        "refinement sweep under the error budget), or full "
                        "float64 (default: $REPRO_DTYPE)")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser(
        "plan",
        help="print the autotuned execution plan for a problem "
             "(no data needed)",
    )
    p.add_argument("shape", type=int, nargs="+",
                   help="global tensor dimensions, e.g. 672 672 33 626")
    p.add_argument("--tol", type=float, default=None,
                   help="relative error tolerance (exclusive with --ranks)")
    p.add_argument("--ranks", type=int, nargs="+", default=None,
                   help="target reduced dimensions per mode")
    p.add_argument("--parallel", "-p", type=int, required=True, metavar="P",
                   help="processor count to plan for")
    p.add_argument("--machine", default=None, metavar="FILE",
                   help="plan against a MachineSpec JSON file "
                        "(MachineSpec.to_json output; default: the "
                        "calibrated Edison description)")
    p.add_argument("--json", action="store_true",
                   help="emit only the RuntimeConfig JSON (for --plan/"
                        "REPRO_PLAN replay)")
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("info", help="describe a Tucker container")
    p.add_argument("model")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser(
        "validate", help="check a container's structural guarantees"
    )
    p.add_argument("model")
    p.add_argument("--against", default=None,
                   help="original tensor (.npy) for error/core checks")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser("reconstruct", help="write the full reconstruction")
    p.add_argument("model")
    p.add_argument("output", help="output .npy path")
    p.set_defaults(fn=_cmd_reconstruct)

    p = sub.add_parser(
        "extract", help="reconstruct only a subtensor (never forms the rest)"
    )
    p.add_argument("model")
    p.add_argument("output", help="output .npy path")
    p.add_argument(
        "--select",
        nargs="+",
        required=True,
        help="one token per mode: ':' (all), an index, or a:b[:c] slice",
    )
    p.set_defaults(fn=_cmd_extract)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compress" and (args.tol is None) == (args.ranks is None):
        print("error: specify exactly one of --tol / --ranks", file=sys.stderr)
        return 2
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Bad parameter combinations surfaced by the library (unknown
        # REPRO_SPMD_BACKEND, infeasible grid, rank > dimension...).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SpmdError as exc:
        # A parallel run failed — dead rank, injected fault, mismatched
        # collectives, deadlock; the per-rank diagnoses ride the message.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
