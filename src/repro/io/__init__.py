"""Serialization of compressed Tucker models.

The end product of the paper's pipeline is a compressed artifact that can be
shipped to a laptop and partially reconstructed there (Sec. VII).  This
package stores :class:`~repro.core.tucker.TuckerTensor` objects as ``.npz``
containers with JSON metadata and reports on-disk compression relative to
the raw tensor.
"""

from repro.io.tucker_io import (
    checkpoint_digest,
    clear_checkpoint,
    clear_checkpoint_step,
    commit_checkpoint_meta,
    load_checkpoint_state,
    load_tucker,
    read_checkpoint_meta,
    save_checkpoint_state,
    save_tucker,
    stored_bytes,
)

__all__ = [
    "save_tucker",
    "load_tucker",
    "stored_bytes",
    "checkpoint_digest",
    "save_checkpoint_state",
    "load_checkpoint_state",
    "commit_checkpoint_meta",
    "read_checkpoint_meta",
    "clear_checkpoint_step",
    "clear_checkpoint",
]
