"""Serialization of compressed Tucker models.

The end product of the paper's pipeline is a compressed artifact that can be
shipped to a laptop and partially reconstructed there (Sec. VII).  This
package stores :class:`~repro.core.tucker.TuckerTensor` objects as ``.npz``
containers with JSON metadata and reports on-disk compression relative to
the raw tensor.
"""

from repro.io.tucker_io import (
    load_tucker,
    save_tucker,
    stored_bytes,
)

__all__ = ["save_tucker", "load_tucker", "stored_bytes"]
