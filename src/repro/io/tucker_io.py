"""Save/load Tucker decompositions as ``.npz`` containers.

Layout of the container:

* ``core`` — the core tensor ``G``;
* ``factor_0`` ... ``factor_{N-1}`` — the factor matrices ``U^(n)``;
* ``meta`` — a JSON string with the library version, shapes, and any
  user-supplied metadata (dataset name, epsilon used, scaling info...).

Compression on disk is the in-memory word-count ratio (Sec. VII-B) modulo
npz container overhead, which :func:`stored_bytes` lets callers report
precisely.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.core.tucker import TuckerTensor

#: Container format version, bumped on layout changes.
FORMAT_VERSION = 1


def save_tucker(
    path: str | os.PathLike,
    t: TuckerTensor,
    metadata: dict[str, Any] | None = None,
    compressed: bool = True,
) -> None:
    """Write a Tucker decomposition to ``path`` (.npz appended if missing).

    ``metadata`` must be JSON-serializable; it is stored verbatim and
    returned by :func:`load_tucker`.
    """
    if not isinstance(t, TuckerTensor):
        raise TypeError(f"expected a TuckerTensor, got {type(t).__name__}")
    meta = {
        "format_version": FORMAT_VERSION,
        "shape": list(t.shape),
        "ranks": list(t.ranks),
        "user": metadata or {},
    }
    try:
        meta_json = json.dumps(meta)
    except TypeError as exc:
        raise TypeError("metadata must be JSON-serializable") from exc
    arrays = {"core": t.core, "meta": np.frombuffer(meta_json.encode(), dtype=np.uint8)}
    for n, f in enumerate(t.factors):
        arrays[f"factor_{n}"] = f
    writer = np.savez_compressed if compressed else np.savez
    writer(os.fspath(path), **arrays)


def load_tucker(path: str | os.PathLike) -> tuple[TuckerTensor, dict[str, Any]]:
    """Read a decomposition written by :func:`save_tucker`.

    Returns ``(tucker, user_metadata)``.
    """
    with np.load(os.fspath(path)) as data:
        if "meta" not in data or "core" not in data:
            raise ValueError(f"{path} is not a Tucker container")
        meta = json.loads(bytes(data["meta"]).decode())
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported container version {version} (expected "
                f"{FORMAT_VERSION})"
            )
        core = data["core"]
        n_modes = core.ndim
        factors = []
        for n in range(n_modes):
            key = f"factor_{n}"
            if key not in data:
                raise ValueError(f"container missing {key}")
            factors.append(data[key])
    t = TuckerTensor(core=core, factors=tuple(factors))
    if list(t.shape) != meta["shape"] or list(t.ranks) != meta["ranks"]:
        raise ValueError(
            f"container metadata inconsistent: stored shape/ranks "
            f"{meta['shape']}/{meta['ranks']} vs arrays {t.shape}/{t.ranks}"
        )
    return t, meta["user"]


def stored_bytes(path: str | os.PathLike) -> int:
    """On-disk size of a saved container, for compression reports."""
    target = os.fspath(path)
    if not os.path.exists(target) and os.path.exists(target + ".npz"):
        target = target + ".npz"
    return os.path.getsize(target)
