"""Save/load Tucker decompositions as ``.npz`` containers.

Layout of the container:

* ``core`` — the core tensor ``G``;
* ``factor_0`` ... ``factor_{N-1}`` — the factor matrices ``U^(n)``;
* ``meta`` — a JSON string with the library version, shapes, and any
  user-supplied metadata (dataset name, epsilon used, scaling info...).

Compression on disk is the in-memory word-count ratio (Sec. VII-B) modulo
npz container overhead, which :func:`stored_bytes` lets callers report
precisely.

The module also holds the per-mode checkpoint store used by
``dist_sthosvd(..., checkpoint=)`` for crash recovery: each rank writes
its post-mode state (shrunk core block + factor block rows so far) to a
step file, and rank 0 commits a ``meta.json`` naming the last step whose
files are *all* on disk.  Every write is ``tmp + os.replace`` so a rank
killed mid-write can never corrupt a committed checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

import numpy as np

from repro.core.tucker import TuckerTensor

#: Container format version, bumped on layout changes.
FORMAT_VERSION = 1

#: Checkpoint store format version, bumped on layout changes.
CHECKPOINT_VERSION = 1


def save_tucker(
    path: str | os.PathLike,
    t: TuckerTensor,
    metadata: dict[str, Any] | None = None,
    compressed: bool = True,
) -> None:
    """Write a Tucker decomposition to ``path`` (.npz appended if missing).

    ``metadata`` must be JSON-serializable; it is stored verbatim and
    returned by :func:`load_tucker`.
    """
    if not isinstance(t, TuckerTensor):
        raise TypeError(f"expected a TuckerTensor, got {type(t).__name__}")
    meta = {
        "format_version": FORMAT_VERSION,
        "shape": list(t.shape),
        "ranks": list(t.ranks),
        "user": metadata or {},
    }
    try:
        meta_json = json.dumps(meta)
    except TypeError as exc:
        raise TypeError("metadata must be JSON-serializable") from exc
    arrays = {"core": t.core, "meta": np.frombuffer(meta_json.encode(), dtype=np.uint8)}
    for n, f in enumerate(t.factors):
        arrays[f"factor_{n}"] = f
    writer = np.savez_compressed if compressed else np.savez
    writer(os.fspath(path), **arrays)


def load_tucker(path: str | os.PathLike) -> tuple[TuckerTensor, dict[str, Any]]:
    """Read a decomposition written by :func:`save_tucker`.

    Returns ``(tucker, user_metadata)``.
    """
    with np.load(os.fspath(path)) as data:
        if "meta" not in data or "core" not in data:
            raise ValueError(f"{path} is not a Tucker container")
        meta = json.loads(bytes(data["meta"]).decode())
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported container version {version} (expected "
                f"{FORMAT_VERSION})"
            )
        core = data["core"]
        n_modes = core.ndim
        factors = []
        for n in range(n_modes):
            key = f"factor_{n}"
            if key not in data:
                raise ValueError(f"container missing {key}")
            factors.append(data[key])
    t = TuckerTensor(core=core, factors=tuple(factors))
    if list(t.shape) != meta["shape"] or list(t.ranks) != meta["ranks"]:
        raise ValueError(
            f"container metadata inconsistent: stored shape/ranks "
            f"{meta['shape']}/{meta['ranks']} vs arrays {t.shape}/{t.ranks}"
        )
    return t, meta["user"]


# ---------------------------------------------------------------------------
# ST-HOSVD checkpoint store
# ---------------------------------------------------------------------------


def checkpoint_digest(params: dict[str, Any]) -> str:
    """Stable digest of the run parameters a checkpoint belongs to.

    Resume refuses a checkpoint whose digest differs — a state written
    for a different shape, grid, tolerance, rank request, mode order, or
    method would silently corrupt the result otherwise.
    """
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def _step_file(path: str, step: int, rank: int) -> str:
    return os.path.join(path, f"m{step}_r{rank}.npz")


def _atomic_write_npz(target: str, arrays: dict[str, np.ndarray]) -> None:
    # A file object sidesteps np.savez's auto-".npz" suffix; os.replace
    # makes the publication atomic (a killed writer leaves only a .tmp).
    tmp = target + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    os.replace(tmp, target)


def save_checkpoint_state(
    path: str | os.PathLike,
    step: int,
    rank: int,
    local: np.ndarray,
    global_shape: tuple[int, ...],
    factors: dict[int, np.ndarray],
    eigenvalues: dict[int, np.ndarray],
) -> None:
    """Write one rank's post-``step`` state file (atomic).

    ``factors``/``eigenvalues`` map processed mode -> this rank's factor
    block row / the mode's eigenvalue spectrum; each step file carries
    the *full* state so far, so only the newest step needs to survive.
    """
    root = os.fspath(path)
    os.makedirs(root, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "local": np.ascontiguousarray(local),
        "global_shape": np.asarray(global_shape, dtype=np.int64),
    }
    for mode, f in factors.items():
        arrays[f"factor_{mode}"] = f
    for mode, e in eigenvalues.items():
        arrays[f"eig_{mode}"] = e
    _atomic_write_npz(_step_file(root, step, rank), arrays)


def load_checkpoint_state(
    path: str | os.PathLike, step: int, rank: int
) -> dict[str, Any]:
    """Read one rank's state file for ``step``.

    Returns ``{"local", "global_shape", "factors", "eigenvalues"}`` with
    the mode-indexed dicts reassembled.  Raises ``FileNotFoundError`` if
    the file is missing (a committed meta without its step files means
    the store was tampered with or partially deleted).
    """
    target = _step_file(os.fspath(path), step, rank)
    factors: dict[int, np.ndarray] = {}
    eigenvalues: dict[int, np.ndarray] = {}
    with np.load(target) as data:
        local = np.asfortranarray(data["local"])
        global_shape = tuple(int(s) for s in data["global_shape"])
        for key in data.files:
            if key.startswith("factor_"):
                factors[int(key[len("factor_"):])] = data[key]
            elif key.startswith("eig_"):
                eigenvalues[int(key[len("eig_"):])] = data[key]
    return {
        "local": local,
        "global_shape": global_shape,
        "factors": factors,
        "eigenvalues": eigenvalues,
    }


def commit_checkpoint_meta(
    path: str | os.PathLike,
    digest: str,
    completed: int,
    n_ranks: int,
    order: tuple[int, ...],
) -> None:
    """Atomically publish ``meta.json``: all state through step
    ``completed - 1`` is on disk for every rank."""
    root = os.fspath(path)
    meta = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "digest": digest,
        "completed": completed,
        "n_ranks": n_ranks,
        "order": list(order),
    }
    tmp = os.path.join(root, "meta.json.tmp")
    with open(tmp, "w") as fh:
        json.dump(meta, fh)
    os.replace(tmp, os.path.join(root, "meta.json"))


def read_checkpoint_meta(path: str | os.PathLike) -> dict[str, Any] | None:
    """The committed ``meta.json``, or None when no checkpoint exists."""
    target = os.path.join(os.fspath(path), "meta.json")
    try:
        with open(target) as fh:
            meta = json.load(fh)
    except FileNotFoundError:
        return None
    version = meta.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version} (expected "
            f"{CHECKPOINT_VERSION})"
        )
    return meta


def clear_checkpoint_step(path: str | os.PathLike, step: int) -> None:
    """Best-effort removal of a superseded (or finished) step's files."""
    root = os.fspath(path)
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return
    prefix = f"m{step}_r"
    for name in names:
        if name.startswith(prefix) and name.endswith(".npz"):
            try:
                os.remove(os.path.join(root, name))
            except FileNotFoundError:  # pragma: no cover - concurrent clear
                pass


def clear_checkpoint(path: str | os.PathLike) -> None:
    """Remove a checkpoint store entirely (meta + every step file)."""
    root = os.fspath(path)
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return
    for name in names:
        if name == "meta.json" or (
            name.startswith("m") and name.endswith((".npz", ".tmp"))
        ):
            try:
                os.remove(os.path.join(root, name))
            except FileNotFoundError:  # pragma: no cover - concurrent clear
                pass


def stored_bytes(path: str | os.PathLike) -> int:
    """On-disk size of a saved container, for compression reports."""
    target = os.fspath(path)
    if not os.path.exists(target) and os.path.exists(target + ".npz"):
        target = target + ".npz"
    return os.path.getsize(target)
