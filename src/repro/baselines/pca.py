"""PCA / truncated-SVD baseline compression (two-way, one matricization).

Prior combustion-data compression (paper ref [23]) reduces the data by PCA
on one matricization: pick a mode, unfold, keep the top ``R`` singular
triplets.  Storage is ``R * (I_n + I_hat_n)`` words — the long dimension
``I_hat_n = prod of the other modes`` appears *linearly*, which is exactly
why the method cannot reach Tucker's compression: Tucker pays only
``R_n * I_n`` per mode plus the small core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.dense import as_ndarray, fold, unfold
from repro.util.validation import check_axis, prod


@dataclass(frozen=True)
class PcaCompressed:
    """Truncated SVD of one matricization: ``X_(n) ~ U diag(s) V^T``."""

    mode: int
    shape: tuple[int, ...]
    u: np.ndarray  # I_n x R
    s: np.ndarray  # R
    vt: np.ndarray  # R x I_hat_n

    @property
    def rank(self) -> int:
        return int(self.s.shape[0])

    @property
    def storage_words(self) -> int:
        return self.u.size + self.s.size + self.vt.size

    @property
    def compression_ratio(self) -> float:
        return prod(self.shape) / self.storage_words

    def reconstruct(self) -> np.ndarray:
        mat = (self.u * self.s) @ self.vt
        return fold(mat, self.mode, self.shape)

    def relative_error(self, x: np.ndarray) -> float:
        arr = as_ndarray(x)
        denom = float(np.linalg.norm(arr.reshape(-1)))
        if denom == 0:
            raise ValueError("cannot compute relative error of a zero tensor")
        return float(
            np.linalg.norm((arr - self.reconstruct()).reshape(-1)) / denom
        )


class PcaCompressor:
    """Compress by truncated SVD of the mode-``mode`` matricization.

    Parameters
    ----------
    mode:
        Which mode to keep as the "variables" axis (prior work used the
        species mode).
    """

    def __init__(self, mode: int = 0):
        self.mode = mode

    def compress(
        self,
        x: np.ndarray,
        tol: float | None = None,
        rank: int | None = None,
    ) -> PcaCompressed:
        """Truncate to ``rank`` or to the smallest rank meeting ``tol``.

        With ``tol``, the rank is the smallest ``R`` with
        ``sqrt(sum_{i>R} s_i^2) <= tol * ||X||`` — the matrix analogue of
        the paper's eq. (3) criterion.
        """
        if (tol is None) == (rank is None):
            raise ValueError("specify exactly one of tol= or rank=")
        arr = as_ndarray(x)
        mode = check_axis(self.mode, arr.ndim, "mode")
        mat = unfold(arr, mode)
        u, s, vt = np.linalg.svd(mat, full_matrices=False)
        if rank is None:
            if tol <= 0:
                raise ValueError(f"tol must be positive, got {tol}")
            sq = s**2
            tail = np.concatenate([np.cumsum(sq[::-1])[::-1], [0.0]])
            budget = (tol**2) * float(np.sum(sq))
            rank = int(np.argmax(tail <= budget))
            rank = max(1, rank)
        if not 1 <= rank <= s.shape[0]:
            raise ValueError(f"rank {rank} out of range [1, {s.shape[0]}]")
        return PcaCompressed(
            mode=mode,
            shape=arr.shape,
            u=np.array(u[:, :rank], copy=True),
            s=np.array(s[:rank], copy=True),
            vt=np.array(vt[:rank], copy=True),
        )
