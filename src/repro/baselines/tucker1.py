"""Tucker1 (single-mode truncation) baseline — paper Sec. II-B.

Tucker1 is the special case of Tucker where only one mode is compressed:
``X ~ G x_n U^(n)`` with ``G = X x_n U^(n)T``.  Equivalent in content to
the PCA baseline but stored in Tucker form; it isolates how much of the
full method's advantage comes from compressing *all* modes versus one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tucker import TuckerTensor
from repro.tensor.dense import as_ndarray
from repro.tensor.eig import eigendecompose, rank_from_tolerance
from repro.tensor.gram import gram
from repro.tensor.ttm import ttm
from repro.util.validation import check_axis, prod


@dataclass(frozen=True)
class Tucker1Compressed:
    """Single-mode Tucker truncation: core + one factor matrix."""

    mode: int
    shape: tuple[int, ...]
    factor: np.ndarray  # I_n x R
    core: np.ndarray  # shape with mode n reduced to R

    @property
    def rank(self) -> int:
        return int(self.factor.shape[1])

    @property
    def storage_words(self) -> int:
        return self.core.size + self.factor.size

    @property
    def compression_ratio(self) -> float:
        return prod(self.shape) / self.storage_words

    def reconstruct(self) -> np.ndarray:
        return ttm(self.core, self.factor, self.mode)

    def relative_error(self, x: np.ndarray) -> float:
        arr = as_ndarray(x)
        denom = float(np.linalg.norm(arr.reshape(-1)))
        if denom == 0:
            raise ValueError("cannot compute relative error of a zero tensor")
        return float(
            np.linalg.norm((arr - self.reconstruct()).reshape(-1)) / denom
        )

    def to_tucker(self) -> TuckerTensor:
        """Express as a full TuckerTensor (identity factors elsewhere)."""
        factors = [
            np.eye(s) if n != self.mode else self.factor
            for n, s in enumerate(self.shape)
        ]
        return TuckerTensor(core=self.core, factors=tuple(factors))


class Tucker1Compressor:
    """Compress one mode with the paper's Gram-eigenvector kernel."""

    def __init__(self, mode: int = 0):
        self.mode = mode

    def compress(
        self,
        x: np.ndarray,
        tol: float | None = None,
        rank: int | None = None,
    ) -> Tucker1Compressed:
        if (tol is None) == (rank is None):
            raise ValueError("specify exactly one of tol= or rank=")
        arr = as_ndarray(x)
        mode = check_axis(self.mode, arr.ndim, "mode")
        eig = eigendecompose(gram(arr, mode))
        if rank is None:
            if tol <= 0:
                raise ValueError(f"tol must be positive, got {tol}")
            x_norm_sq = float(np.linalg.norm(arr.reshape(-1)) ** 2)
            rank = rank_from_tolerance(eig.values, (tol**2) * x_norm_sq)
        factor = eig.leading(rank)
        core = ttm(arr, factor, mode, transpose=True)
        return Tucker1Compressed(
            mode=mode, shape=arr.shape, factor=factor, core=np.asfortranarray(core)
        )
