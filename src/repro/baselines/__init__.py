"""Baseline compression methods the paper positions Tucker against.

The paper's introduction notes prior compression attempts for combustion
data based on PCA (ref [23]) and that Tucker generalizes PCA / truncated
SVD to all modes at once (Sec. I).  These baselines make that comparison
concrete:

* :class:`PcaCompressor` — truncated SVD of a single matricization (PCA on
  one mode), the two-way method of the prior work;
* :class:`Tucker1Compressor` — truncation in a single tensor mode (the
  "Tucker1" special case, Sec. II-B).

Both implement the same ``compress / reconstruct / storage`` interface as
the Tucker pipeline, so the benchmark harness can compare compression at
equal error.
"""

from repro.baselines.pca import PcaCompressed, PcaCompressor
from repro.baselines.tucker1 import Tucker1Compressed, Tucker1Compressor

__all__ = [
    "PcaCompressor",
    "PcaCompressed",
    "Tucker1Compressor",
    "Tucker1Compressed",
]
