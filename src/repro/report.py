"""Programmatic regeneration of every table and figure in the paper.

Each ``fig*_data`` / ``table*_data`` function returns plain dicts/lists
ready for tabulation or plotting, produced by the same library calls the
benchmark suite asserts on.  ``write_csv`` serializes any of them, and
``generate_all`` runs the whole evaluation (see
``examples/generate_paper_tables.py``).

The compression studies run on the synthetic proxies and the performance
studies on the calibrated machine model — see DESIGN.md for why those
substitutions preserve the paper's claims, and EXPERIMENTS.md for the
recorded paper-vs-measured comparison.
"""

from __future__ import annotations

import csv
import os
from typing import Any, Callable, Sequence



from repro.core import hooi, max_abs_error, normalized_rms, sthosvd
from repro.core.errors import modewise_error_curves
from repro.data import (
    center_and_scale,
    fig8a_problem,
    fig8b_problem,
    load_dataset,
)
from repro.perfmodel import (
    EDISON_CALIBRATED,
    MachineSpec,
    grid_sweep,
    mode_order_sweep,
    strong_scaling_curve,
    weak_scaling_curve,
)

Row = dict[str, Any]


def _normalized(name: str, **kwargs):
    ds = load_dataset(name, **kwargs)
    x, _ = center_and_scale(ds.tensor, ds.species_mode)
    return ds, x


def fig1b_data(
    epsilons: Sequence[float] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2),
    method: str = "svd",
) -> list[Row]:
    """Fig. 1b: compression ratio vs error for the SP dataset."""
    _, x = _normalized("SP")
    rows = []
    for eps in epsilons:
        res = sthosvd(x, tol=eps, method=method)
        rows.append(
            {
                "eps": eps,
                "compression_ratio": res.decomposition.compression_ratio,
                "true_error": res.decomposition.relative_error(x),
                "ranks": res.ranks,
            }
        )
    return rows


def fig6_data(dataset: str = "HCCI") -> list[Row]:
    """Fig. 6: mode-wise normalized truncation error vs rank."""
    ds, x = _normalized(dataset)
    curves = modewise_error_curves(x)
    rows = []
    for mode, curve in enumerate(curves):
        for rank, err in enumerate(curve):
            rows.append(
                {"dataset": ds.name, "mode": mode, "rank": rank, "error": err}
            )
    return rows


def fig7_data(
    epsilons: Sequence[float] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2),
    method: str = "svd",
) -> list[Row]:
    """Fig. 7: compression vs error for all three datasets."""
    rows = []
    for name in ("HCCI", "TJLR", "SP"):
        _, x = _normalized(name)
        for eps in epsilons:
            res = sthosvd(x, tol=eps, method=method)
            rows.append(
                {
                    "dataset": name,
                    "eps": eps,
                    "compression_ratio": res.decomposition.compression_ratio,
                }
            )
    return rows


def table2_data(eps: float = 1e-3, hooi_iterations: int = 5) -> list[Row]:
    """Table II: ST-HOSVD vs HOOI errors and compression at ``eps``."""
    rows = []
    for name in ("HCCI", "TJLR", "SP"):
        ds, x = _normalized(name)
        st = sthosvd(x, tol=eps)
        ho = hooi(x, init=st, max_iterations=hooi_iterations)
        st_rec = st.decomposition.reconstruct()
        ho_rec = ho.decomposition.reconstruct()
        rows.append(
            {
                "dataset": name,
                "reduced_dims": st.ranks,
                "st_norm_rms": normalized_rms(x, st_rec),
                "st_max_abs": max_abs_error(x, st_rec),
                "hooi_norm_rms": normalized_rms(x, ho_rec),
                "hooi_max_abs": max_abs_error(x, ho_rec),
                "compression_ratio": st.decomposition.compression_ratio,
                "paper_compression": ds.paper_compression_eps1e3,
            }
        )
    return rows


def fig8a_data(machine: MachineSpec = EDISON_CALIBRATED) -> list[Row]:
    """Fig. 8a: per-kernel modeled runtime for the paper's eleven grids."""
    problem = fig8a_problem()
    points = grid_sweep(problem.shape, problem.ranks, problem.grids, machine)
    best = min(p.time for p in points)
    return [
        {
            "grid": p.label,
            "time": p.time,
            "relative_time": p.time / best,
            **{f"{k}_time": v for k, v in p.breakdown().items()},
        }
        for p in points
    ]


def fig8b_data(machine: MachineSpec = EDISON_CALIBRATED) -> list[Row]:
    """Fig. 8b: modeled runtime for every mode-processing order."""
    problem = fig8b_problem()
    points = mode_order_sweep(
        problem.shape, problem.ranks, problem.grids[0], machine
    )
    best = min(p.time for p in points)
    return [
        {
            "order": p.label,
            "time": p.time,
            "relative_time": p.time / best,
            **{f"{k}_time": v for k, v in p.breakdown().items()},
        }
        for p in sorted(points, key=lambda p: p.label)
    ]


def fig9a_data(machine: MachineSpec = EDISON_CALIBRATED) -> list[Row]:
    """Fig. 9a: modeled strong-scaling times, best grid per P."""
    procs = [24 * 2**k for k in range(10)]
    points = strong_scaling_curve((200,) * 4, (20,) * 4, procs, machine)
    return [
        {
            "nodes": p.n_procs // 24,
            "cores": p.n_procs,
            "grid": "x".join(map(str, p.grid)),
            "sthosvd_seconds": p.sthosvd_time,
            "hooi_seconds": p.hooi_time,
        }
        for p in points
    ]


def fig9b_data(machine: MachineSpec = EDISON_CALIBRATED) -> list[Row]:
    """Fig. 9b: modeled weak-scaling GFLOPS per core."""
    points = weak_scaling_curve(range(1, 7), machine)
    return [
        {
            "k": k,
            "cores": p.n_procs,
            "data_gb": (200 * k) ** 4 * 8 / 1e9,
            "grid": "x".join(map(str, p.grid)),
            "sthosvd_gflops_per_core": p.gflops_per_core("sthosvd"),
            "hooi_gflops_per_core": p.gflops_per_core("hooi"),
        }
        for k, p in enumerate(points, start=1)
    ]


#: Registry of every reproducible experiment, keyed by paper artifact.
EXPERIMENTS: dict[str, Callable[[], list[Row]]] = {
    "fig1b": fig1b_data,
    "fig6_hcci": lambda: fig6_data("HCCI"),
    "fig6_tjlr": lambda: fig6_data("TJLR"),
    "fig6_sp": lambda: fig6_data("SP"),
    "fig7": fig7_data,
    "table2": table2_data,
    "fig8a": fig8a_data,
    "fig8b": fig8b_data,
    "fig9a": fig9a_data,
    "fig9b": fig9b_data,
}


def write_csv(rows: list[Row], path: str | os.PathLike) -> None:
    """Write experiment rows to CSV (columns from the first row's keys)."""
    if not rows:
        raise ValueError("no rows to write")
    with open(os.fspath(path), "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def generate_all(out_dir: str | os.PathLike) -> dict[str, str]:
    """Run every experiment and write one CSV per paper artifact.

    Returns a mapping of experiment id to output path.
    """
    os.makedirs(out_dir, exist_ok=True)
    written = {}
    for name, fn in EXPERIMENTS.items():
        path = os.path.join(os.fspath(out_dir), f"{name}.csv")
        write_csv(fn(), path)
        written[name] = path
    return written
