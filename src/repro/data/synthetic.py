"""Problem definitions for the paper's performance experiments (Sec. VIII).

Each helper returns ``(shape, ranks, grid-or-grids, extras)`` describing one
experiment, at either paper scale (for the analytic model) or a reduced
scale (for actual simulated execution).  Keeping the definitions here — and
importing them from both tests and benchmarks — guarantees the experiments
the benches run are the ones DESIGN.md documents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive_int, prod


@dataclass(frozen=True)
class ScalingProblem:
    """One performance-experiment configuration."""

    shape: tuple[int, ...]
    ranks: tuple[int, ...]
    n_procs: int
    grids: tuple[tuple[int, ...], ...]
    note: str = ""


def fig8a_problem(scale: int = 1) -> ScalingProblem:
    """Fig. 8a: 384^4 tensor -> 96^4 core on P = 384, eleven grids.

    ``scale`` divides tensor dimensions (grids are unchanged — they are the
    experiment's subject); ``scale=1`` is paper scale, suitable for the
    analytic model only.
    """
    check_positive_int(scale, "scale")
    if 384 % scale != 0 or 96 % scale != 0:
        raise ValueError(f"scale {scale} must divide 384 and 96")
    dim, rank = 384 // scale, 96 // scale
    grids = (
        (1, 1, 1, 384),
        (1, 1, 16, 24),
        (1, 1, 2, 192),
        (1, 1, 4, 96),
        (1, 1, 8, 48),
        (1, 2, 12, 16),
        (1, 4, 8, 12),
        (2, 2, 8, 12),
        (2, 4, 6, 8),
        (4, 4, 4, 6),
        (6, 4, 4, 4),
    )
    return ScalingProblem(
        shape=(dim,) * 4,
        ranks=(rank,) * 4,
        n_procs=384,
        grids=grids,
        note="Fig. 8a processor-grid sweep (paper lists these 11 grids)",
    )


def fig8b_problem(scale: int = 1) -> ScalingProblem:
    """Fig. 8b: 25 x 250 x 250 x 250 -> 10 x 10 x 100 x 100 on a 2^4 grid.

    The paper runs 16 of 24 cores of one node as a uniform 2x2x2x2 grid and
    sweeps the ST-HOSVD mode order.
    """
    check_positive_int(scale, "scale")
    if 250 % scale != 0 or 100 % scale != 0:
        raise ValueError(f"scale {scale} must divide 250 and 100")
    # Paper problem: 25 x 250 x 250 x 250 -> 10 x 10 x 100 x 100 (mode 1
    # has the largest compression ratio, 250 -> 10).
    shape = (25 if scale == 1 else max(4, 25 // scale),) + (250 // scale,) * 3
    ranks = (
        10 if scale == 1 else max(2, 10 // scale),
        10 if scale == 1 else max(2, 10 // scale),
    ) + (100 // scale,) * 2
    return ScalingProblem(
        shape=shape,
        ranks=ranks,
        n_procs=16,
        grids=((2, 2, 2, 2),),
        note="Fig. 8b mode-ordering sweep",
    )


def strong_scaling_problem(k: int, cores_per_node: int = 24) -> ScalingProblem:
    """Fig. 9a: 200^4 tensor -> 20^4 core on 24 * 2^k cores (k = 0..9)."""
    if not 0 <= k <= 9:
        raise ValueError(f"k must be in [0, 9], got {k}")
    return ScalingProblem(
        shape=(200,) * 4,
        ranks=(20,) * 4,
        n_procs=cores_per_node * 2**k,
        grids=(),
        note=f"Fig. 9a strong scaling point, {2**k} node(s)",
    )


def weak_scaling_problem(k: int, cores_per_node: int = 24) -> ScalingProblem:
    """Fig. 9b: (200k)^4 tensor -> (20k)^4 core on 24 k^4 cores, the paper's
    three candidate grids."""
    check_positive_int(k, "k")
    if k > 6:
        raise ValueError(f"the paper runs k in [1, 6], got {k}")
    grids = (
        (1, 1, 4 * k * k, 6 * k * k),
        (k, k, 4 * k, 6 * k),
        (k, 2 * k, 3 * k, 4 * k),
    )
    return ScalingProblem(
        shape=(200 * k,) * 4,
        ranks=(20 * k,) * 4,
        n_procs=cores_per_node * k**4,
        grids=grids,
        note=f"Fig. 9b weak scaling point k={k} "
        f"({prod((200 * k,) * 4) * 8 / 1e9:.0f} GB tensor)",
    )
