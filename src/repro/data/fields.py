"""Multiway field synthesis with prescribed per-mode spectral decay.

Combustion DNS data is smooth in space, strongly correlated across chemical
species, and coherent in time; its compressibility under Tucker is entirely
captured by how fast the eigenvalues of each mode-n Gram matrix decay
(paper Sec. VII-B, Fig. 6).  :func:`multiway_field` constructs

    ``X = G x_1 B^(1) x_2 B^(2) ... x_N B^(N)  +  sigma * noise``

where each ``B^(n)`` is a smooth orthonormal basis (type-II DCT — low
columns are large-scale structures, high columns fine scales) and the core
``G`` is elementwise standard normal *scaled by separable per-mode decay
weights* ``w_n(i)``.  Because the ``B^(n)`` are orthonormal, the mode-n
Gram spectrum of the noiseless field is governed by ``w_n(i)^2``, giving
direct control over each dataset's mode-wise error curves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.ttm import multi_ttm
from repro.util.seeding import rng_for
from repro.util.validation import check_shape_like


def dct_basis(n: int) -> np.ndarray:
    """Orthonormal type-II DCT basis of size ``n x n``.

    Column ``k`` oscillates with frequency ``k``: column 0 is constant
    (the mean structure), low columns are smooth large-scale modes, high
    columns fine-scale content — a reasonable cartoon of turbulent fields.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    i = np.arange(n)
    k = np.arange(n)
    basis = np.cos(np.pi * (i[:, None] + 0.5) * k[None, :] / n)
    basis[:, 0] *= np.sqrt(1.0 / n)
    basis[:, 1:] *= np.sqrt(2.0 / n)
    return basis


def decay_profile(
    n: int, kind: str = "power", rate: float = 1.0, floor: float = 0.0
) -> np.ndarray:
    """Per-index weights ``w(i)`` controlling a mode's spectral decay.

    ``kind="power"``: ``w(i) = (i + 1)^(-rate)``;
    ``kind="exp"``:   ``w(i) = exp(-rate * i)``.
    ``floor`` adds an additive noise floor, bounding compressibility from
    below (real data never decays to exactly zero).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    if floor < 0:
        raise ValueError(f"floor must be non-negative, got {floor}")
    i = np.arange(n, dtype=np.float64)
    if kind == "power":
        w = (i + 1.0) ** (-rate)
    elif kind == "exp":
        w = np.exp(-rate * i)
    else:
        raise ValueError(f"unknown decay kind {kind!r}")
    return w + floor


def multiway_field(
    shape: Sequence[int],
    profiles: Sequence[np.ndarray],
    seed: int = 0,
    noise: float = 0.0,
    smooth_modes: Sequence[bool] | None = None,
    bursts: int = 0,
    burst_amplitude: float = 5.0,
) -> np.ndarray:
    """Synthesize a multiway field with per-mode spectral decay ``profiles``.

    Parameters
    ----------
    shape:
        Tensor dimensions ``I_1 x ... x I_N``.
    profiles:
        One weight vector ``w_n`` of length ``I_n`` per mode (see
        :func:`decay_profile`).
    seed:
        Seed for the random core (and noise).
    noise:
        Standard deviation of additive white noise, *relative to the
        signal's elementwise RMS* (so ``noise=1e-6`` bounds the data's
        compressibility at roughly six decades regardless of scale).
    smooth_modes:
        Per mode, whether to use the smooth DCT basis (spatial/temporal
        modes) or a random orthonormal basis (species-like modes).
        Defaults to all smooth.
    bursts:
        Number of localized high-amplitude events to superimpose.
        Combustion data is "bursty, with important activity occurring in
        subsets of the spatial grid, small points in time" (paper Sec. I);
        bursts give the synthetic data the heavy-tailed maximum-elementwise
        errors Table II reports for real data.  Each burst is a separable
        product of narrow Gaussian bumps, one per mode.
    burst_amplitude:
        Peak amplitude of each burst, in units of the field's RMS.
    """
    shape = check_shape_like(shape, "shape")
    n_modes = len(shape)
    if len(profiles) != n_modes:
        raise ValueError(f"need {n_modes} profiles, got {len(profiles)}")
    if smooth_modes is None:
        smooth_modes = [True] * n_modes
    if len(smooth_modes) != n_modes:
        raise ValueError("smooth_modes must have one entry per mode")

    rng = rng_for(seed, "multiway_field_core", shape)
    core = rng.standard_normal(shape)
    for n, w in enumerate(profiles):
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (shape[n],):
            raise ValueError(
                f"profile {n} has shape {w.shape}, expected ({shape[n]},)"
            )
        if np.any(w < 0):
            raise ValueError(f"profile {n} has negative weights")
        core *= w.reshape((1,) * n + (-1,) + (1,) * (n_modes - 1 - n))

    bases = []
    for n in range(n_modes):
        if smooth_modes[n]:
            bases.append(dct_basis(shape[n]))
        else:
            basis_rng = rng_for(seed, "multiway_field_basis", n, shape[n])
            q, _ = np.linalg.qr(basis_rng.standard_normal((shape[n], shape[n])))
            bases.append(q)
    x = multi_ttm(core, bases, transpose=False)

    if bursts < 0:
        raise ValueError(f"bursts must be non-negative, got {bursts}")
    if bursts > 0:
        if burst_amplitude <= 0:
            raise ValueError(
                f"burst_amplitude must be positive, got {burst_amplitude}"
            )
        burst_rng = rng_for(seed, "multiway_field_bursts", shape)
        rms = float(np.sqrt(np.mean(x**2)))
        for _ in range(bursts):
            bump = np.ones((1,) * n_modes)
            for n, size in enumerate(shape):
                center = burst_rng.uniform(0, size)
                width = max(1.0, 0.03 * size)
                i = np.arange(size, dtype=np.float64)
                profile_1d = np.exp(-0.5 * ((i - center) / width) ** 2)
                bump = bump * profile_1d.reshape(
                    (1,) * n + (-1,) + (1,) * (n_modes - 1 - n)
                )
            sign = 1.0 if burst_rng.random() < 0.5 else -1.0
            x = x + sign * burst_amplitude * rms * bump

    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise}")
    if noise > 0:
        noise_rng = rng_for(seed, "multiway_field_noise", shape)
        rms = float(np.sqrt(np.mean(x**2)))
        x = x + noise * rms * noise_rng.standard_normal(shape)
    return np.asfortranarray(x)
