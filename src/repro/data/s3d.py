"""Synthetic proxies for the paper's three S3D combustion datasets.

Paper Sec. VII-A describes (all proprietary, all far beyond this machine):

* **HCCI** — 672 x 672 x 33 x 627 (2-D grid, species, time), 70 GB.
  Autoignition of an ethanol/air premixture; temporally evolving,
  moderately compressible (C = 25 at eps = 1e-3).
* **TJLR** — 460 x 700 x 360 x 35 x 16 (3-D grid, variables, time), 520 GB.
  DME jet flame, heavily *downsampled* output — the least compressible
  dataset (C = 7 at eps = 1e-3; species and time modes barely truncate).
* **SP** — 500 x 500 x 500 x 11 x 50 (3-D grid, variables, time), 550 GB.
  *Statistically steady* premixed flame — the most compressible
  (C = 231 at eps = 1e-3, up to ~5600 at eps = 1e-2).

Each proxy is a scaled-down :func:`~repro.data.fields.multiway_field` whose
per-mode spectral decay is tuned to reproduce the datasets' *relative*
compressibility and mode-wise error-curve shapes (Fig. 6): TJLR's species
and time modes are nearly flat (no truncation possible), SP's time mode
decays fast (statistical steadiness), spatial modes sit in between.  Paper
reference numbers are attached so benchmarks can print paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.fields import decay_profile, multiway_field
from repro.util.validation import check_shape_like, prod


@dataclass(frozen=True)
class Dataset:
    """A synthetic dataset plus the paper's reference figures for it."""

    name: str
    tensor: np.ndarray
    species_mode: int
    description: str
    paper_shape: tuple[int, ...]
    paper_ranks_eps1e3: tuple[int, ...]
    paper_compression_eps1e3: float
    paper_rms_eps1e3: float

    @property
    def shape(self) -> tuple[int, ...]:
        return self.tensor.shape

    @property
    def n_elements(self) -> int:
        return prod(self.tensor.shape)


def _build(
    name: str,
    shape: tuple[int, ...],
    efolds: tuple[float, ...],
    floors: tuple[float, ...],
    smooth: tuple[bool, ...],
    species_mode: int,
    noise: float,
    seed: int,
    description: str,
    paper_shape: tuple[int, ...],
    paper_ranks: tuple[int, ...],
    paper_c: float,
    paper_rms: float,
) -> Dataset:
    """Construct a proxy with exponential per-mode spectral decay.

    ``efolds[n]`` is the number of natural-log units the component
    *amplitude* falls across mode ``n`` (so the Gram spectrum spans
    ``2 * efolds[n]`` nats).  Parameterizing in e-folds rather than
    absolute rates makes the mode-wise error curves scale-invariant: a
    proxy at any resolution truncates at the same *fraction* of each mode,
    which is what lets a 48^2 proxy stand in for a 672^2 dataset.
    """
    shape = check_shape_like(shape, "shape")
    profiles = [
        decay_profile(s, kind="exp", rate=e / s, floor=f)
        for s, e, f in zip(shape, efolds, floors)
    ]
    tensor = multiway_field(
        shape, profiles, seed=seed, noise=noise, smooth_modes=list(smooth)
    )
    return Dataset(
        name=name,
        tensor=tensor,
        species_mode=species_mode,
        description=description,
        paper_shape=paper_shape,
        paper_ranks_eps1e3=paper_ranks,
        paper_compression_eps1e3=paper_c,
        paper_rms_eps1e3=paper_rms,
    )


def hcci_proxy(
    shape: tuple[int, ...] = (48, 48, 33, 40), seed: int = 101
) -> Dataset:
    """HCCI proxy: 2-D grid x species x time, moderately compressible.

    Spatial modes decay at a moderate power law (turbulent 2-D fields with
    large-scale coherence), the species mode decays slowly (33 strongly
    coupled scalars, the paper keeps 29 of 33 at eps=1e-3), time decays
    faster (autoignition has a dominant temporal progression).
    """
    if len(shape) != 4:
        raise ValueError(f"HCCI is a 4-way dataset, got shape {shape}")
    # e-folds chosen so the eps=1e-3 truncation keeps roughly the paper's
    # per-mode rank fractions (0.44, 0.42, 0.88, 0.24 of each dimension).
    return _build(
        name="HCCI",
        shape=shape,
        efolds=(17.5, 18.0, 8.8, 32.0),
        floors=(1e-9, 1e-9, 1e-8, 1e-9),
        smooth=(True, True, False, True),
        species_mode=2,
        noise=1e-7,
        seed=seed,
        description="autoignitive ethanol/air premixture (HCCI mode), "
        "2-D grid x species x time",
        paper_shape=(672, 672, 33, 627),
        paper_ranks=(297, 279, 29, 153),
        paper_c=25.0,
        paper_rms=9.259e-4,
    )


def tjlr_proxy(
    shape: tuple[int, ...] = (24, 30, 18, 35, 16), seed: int = 202
) -> Dataset:
    """TJLR proxy: 3-D grid x variables x time, the least compressible.

    The real dataset is heavily downsampled, so little redundancy remains:
    spatial modes decay slowly and the species/time modes have essentially
    flat spectra (the paper truncates neither: R = I in both).
    """
    if len(shape) != 5:
        raise ValueError(f"TJLR is a 5-way dataset, got shape {shape}")
    # Slow spatial decay (fractions ~0.67/0.33/0.66 at eps=1e-3) and
    # near-flat species/time spectra with a high floor: those two modes do
    # not truncate at all at eps=1e-3, exactly as in Table II (R = I).
    return _build(
        name="TJLR",
        shape=shape,
        efolds=(11.5, 23.5, 11.7, 2.0, 1.5),
        floors=(1e-8, 1e-8, 1e-8, 2e-3, 2e-3),
        smooth=(True, True, True, False, True),
        species_mode=3,
        noise=1e-6,
        seed=seed,
        description="temporally-evolving planar DME slot jet flame, "
        "downsampled; 3-D grid x variables x time",
        paper_shape=(460, 700, 360, 35, 16),
        paper_ranks=(306, 232, 239, 35, 16),
        paper_c=7.0,
        paper_rms=7.617e-4,
    )


def sp_proxy(
    shape: tuple[int, ...] = (32, 32, 32, 11, 20), seed: int = 303
) -> Dataset:
    """SP proxy: 3-D grid x variables x time, the most compressible.

    Statistically steady turbulence: the time mode is highly redundant and
    spatial spectra decay fast (the paper compresses 500 -> ~100 per
    spatial mode at eps = 1e-3, and reaches C ~ 5600 at eps = 1e-2).
    """
    if len(shape) != 5:
        raise ValueError(f"SP is a 5-way dataset, got shape {shape}")
    # Fast decay everywhere (fractions ~0.16/0.26/0.25/0.64/0.64 at
    # eps=1e-3): the statistically steady flame is the paper's most
    # compressible dataset by an order of magnitude.
    return _build(
        name="SP",
        shape=shape,
        efolds=(48.0, 30.0, 31.0, 12.0, 12.0),
        floors=(1e-10, 1e-10, 1e-10, 1e-10, 1e-10),
        smooth=(True, True, True, False, True),
        species_mode=3,
        noise=1e-8,
        seed=seed,
        description="statistically steady planar turbulent premixed "
        "methane-air flame; 3-D grid x variables x time",
        paper_shape=(500, 500, 500, 11, 50),
        paper_ranks=(81, 129, 127, 7, 32),
        paper_c=231.0,
        paper_rms=8.663e-4,
    )


#: Registry of the three paper datasets by name.
DATASETS = {
    "HCCI": hcci_proxy,
    "TJLR": tjlr_proxy,
    "SP": sp_proxy,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load a proxy dataset by its paper name (case-insensitive)."""
    key = name.upper()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[key](**kwargs)
