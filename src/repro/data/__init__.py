"""Synthetic scientific datasets (substitute for the paper's S3D data).

The paper's evaluation uses three proprietary combustion DNS datasets
(HCCI, TJLR, SP — Sec. VII-A).  This package builds laptop-sized synthetic
stand-ins with the same *multiway structure* and, crucially, tunable
per-mode spectral decay, which is the only property the compression
experiments depend on (see DESIGN.md).  Generators:

* :func:`hcci_proxy` / :func:`tjlr_proxy` / :func:`sp_proxy` — the three
  datasets, with compressibility ordered SP >> HCCI >> TJLR as in the paper.
* :func:`multiway_field` — the underlying constructor: smooth per-mode
  bases x a core with prescribed per-mode spectral decay + noise floor.
* :func:`center_and_scale` — the paper's per-species normalization.
* :mod:`repro.data.synthetic` — the exact-low-rank tensors of the
  performance experiments (Sec. VIII).
"""

from repro.data.fields import dct_basis, decay_profile, multiway_field
from repro.data.preprocess import ScaleInfo, center_and_scale, invert_scaling
from repro.data.s3d import (
    DATASETS,
    Dataset,
    hcci_proxy,
    load_dataset,
    sp_proxy,
    tjlr_proxy,
)
from repro.data.synthetic import (
    fig8a_problem,
    fig8b_problem,
    strong_scaling_problem,
    weak_scaling_problem,
)

__all__ = [
    "multiway_field",
    "dct_basis",
    "decay_profile",
    "center_and_scale",
    "invert_scaling",
    "ScaleInfo",
    "Dataset",
    "DATASETS",
    "load_dataset",
    "hcci_proxy",
    "tjlr_proxy",
    "sp_proxy",
    "fig8a_problem",
    "fig8b_problem",
    "strong_scaling_problem",
    "weak_scaling_problem",
]
