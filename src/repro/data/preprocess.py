"""Per-species centering and scaling (paper Sec. VII-A).

The paper normalizes each variable/species slice before compression: for
every index ``s`` of the species mode, subtract the slice mean and divide
by the slice standard deviation *unless* the deviation is below ``1e-10``
(constant slices are only centered).  After normalization each entry is
roughly standard normal, making the normalized RMS error interpretable
across variables with wildly different physical scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.dense import as_ndarray
from repro.util.validation import check_axis

#: Threshold below which a slice is considered constant and not divided.
SIGMA_FLOOR = 1e-10


@dataclass(frozen=True)
class ScaleInfo:
    """Per-slice statistics needed to invert the normalization."""

    mode: int
    means: np.ndarray
    stds: np.ndarray  # the divisors actually applied (1.0 where skipped)


def center_and_scale(
    x: np.ndarray, species_mode: int
) -> tuple[np.ndarray, ScaleInfo]:
    """Center and scale each slice of ``species_mode``.

    Returns the normalized tensor and the :class:`ScaleInfo` to undo it.
    The input is not modified.
    """
    arr = np.array(as_ndarray(x), copy=True)
    mode = check_axis(species_mode, arr.ndim, "species_mode")
    axes = tuple(a for a in range(arr.ndim) if a != mode)
    means = arr.mean(axis=axes, keepdims=True)
    stds = arr.std(axis=axes, keepdims=True)
    divisors = np.where(stds < SIGMA_FLOOR, 1.0, stds)
    arr -= means
    arr /= divisors
    return np.asfortranarray(arr), ScaleInfo(
        mode=mode, means=means.squeeze(), stds=divisors.squeeze()
    )


def invert_scaling(x: np.ndarray, info: ScaleInfo) -> np.ndarray:
    """Undo :func:`center_and_scale` (e.g. after reconstruction)."""
    arr = np.array(as_ndarray(x), copy=True)
    mode = check_axis(info.mode, arr.ndim, "info.mode")
    n = arr.shape[mode]
    means = np.asarray(info.means, dtype=np.float64).reshape(-1)
    stds = np.asarray(info.stds, dtype=np.float64).reshape(-1)
    if means.shape[0] != n or stds.shape[0] != n:
        raise ValueError(
            f"scale info covers {means.shape[0]} slices but tensor has {n}"
        )
    expand = (1,) * mode + (-1,) + (1,) * (arr.ndim - 1 - mode)
    arr *= stds.reshape(expand)
    arr += means.reshape(expand)
    return np.asfortranarray(arr)
