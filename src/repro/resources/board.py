"""Shared-memory resource board: live shm bytes per rank, lock-free.

The budget is a *world-wide* property but allocations happen in every
rank process, so the accounting must be visible across the world without
a lock on the allocation path.  Same trick as the fault status board:
a tiny POSIX shm segment of int64 words where every word has exactly one
writer —

* per-slot word 0: live bytes charged by that slot's process (signed:
  a slot goes negative when a process unlinks a segment another process
  created, e.g. a receiver retiring a sender's payload — the *sum* over
  slots is the world's live total and stays correct under ownership
  transfer)
* per-slot word 1: count of degradation events recorded by that process

Slots 0..n_ranks-1 belong to the ranks; slot n_ranks belongs to the
parent (its staging arena).  The segment uses the transport's ``rps_``
prefix so the crash audit reclaims boards whose creator died.
Import-pure at module level apart from numpy.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

import numpy as np

# Keep in sync with process_transport._SHM_PREFIX (not imported to stay
# import-pure): boards must be swept by the same crash audit.
_PREFIX = "rps_"

_SLOT_WORDS = 2


class ResourceBoard:
    """Per-world live-byte accounting shared by the parent and all ranks."""

    def __init__(
        self, shm: shared_memory.SharedMemory, n_slots: int, owner: bool
    ):
        self._shm = shm
        self.n_slots = n_slots
        self._owner = owner
        self._words: np.ndarray | None = np.frombuffer(
            shm.buf, dtype=np.int64, count=n_slots * _SLOT_WORDS
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, n_slots: int) -> "ResourceBoard":
        nbytes = n_slots * _SLOT_WORDS * 8
        for _ in range(3):
            name = f"{_PREFIX}{os.getpid()}_{secrets.token_hex(8)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
                break
            except FileExistsError:  # pragma: no cover - token collision
                continue
        else:  # pragma: no cover
            raise RuntimeError("could not allocate a resource board segment")
        board = cls(shm, n_slots, owner=True)
        assert board._words is not None
        board._words[:] = 0
        return board

    @classmethod
    def attach(cls, name: str, n_slots: int) -> "ResourceBoard":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, n_slots, owner=False)

    # -- accounting (single writer per slot) ---------------------------

    def add(self, slot: int, delta: int) -> None:
        assert self._words is not None
        base = slot * _SLOT_WORDS
        self._words[base] += delta

    def note_degradation(self, slot: int) -> None:
        assert self._words is not None
        self._words[slot * _SLOT_WORDS + 1] += 1

    def slot_live(self, slot: int) -> int:
        assert self._words is not None
        return int(self._words[slot * _SLOT_WORDS])

    def total(self) -> int:
        """World-wide live shm bytes (sum over slots; >= 0 in aggregate)."""
        assert self._words is not None
        return max(0, int(self._words[0::_SLOT_WORDS].sum()))

    def ranks_live(self) -> int:
        """Live bytes attributed to the rank slots (parent slot excluded
        — the parent's bytes are already counted by its own governor, so
        admission sources must not report them twice)."""
        assert self._words is not None
        stop = (self.n_slots - 1) * _SLOT_WORDS
        return max(0, int(self._words[0:stop:_SLOT_WORDS].sum()))

    def reset_ranks(self) -> None:
        """Zero the rank slots after every worker arena was torn down —
        the flushed free-list bytes go back to the budget accountant."""
        assert self._words is not None
        stop = (self.n_slots - 1) * _SLOT_WORDS
        self._words[0:stop] = 0

    def degradations(self) -> int:
        assert self._words is not None
        return int(self._words[1::_SLOT_WORDS].sum())

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._words = None  # release the buffer view before closing
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already audited away
            pass
