"""Resource governance for the SPMD runtime.

Budgets and admission control (``REPRO_SHM_BUDGET`` /
``REPRO_MAX_WORLDS``), graceful per-allocation degradation of the
shared-memory fast path to the p2p/pickle routes, cooperative deadline
propagation (``REPRO_DEADLINE`` / ``run_spmd(deadline=)``), and the
per-run :class:`ResourceReport` surfaced on ``SpmdResult.resources``.

The package sits between the config layer and the transport: the
:func:`~repro.resources.governor.governor` of each process gates and
accounts every segment the transport creates, the world-wide ledger
lives on the shared :class:`~repro.resources.board.ResourceBoard`, and
the :func:`~repro.resources.admission.admission_controller` enforces the
budget across worlds at the ``run_spmd`` boundary.
"""

from repro.resources.admission import (
    ADMISSION_WAIT,
    AdmissionController,
    admission_controller,
    estimate_world_shm,
)
from repro.resources.board import ResourceBoard
from repro.resources.governor import (
    EXHAUSTED_ERRNOS,
    BudgetExceededError,
    ResourceGovernor,
    active_deadline,
    check_deadline,
    governor,
    is_exhaustion,
    remaining_deadline,
    set_active_deadline,
)
from repro.resources.report import DegradationEvent, ResourceReport

__all__ = [
    "ADMISSION_WAIT",
    "AdmissionController",
    "BudgetExceededError",
    "DegradationEvent",
    "EXHAUSTED_ERRNOS",
    "ResourceBoard",
    "ResourceGovernor",
    "ResourceReport",
    "active_deadline",
    "admission_controller",
    "check_deadline",
    "estimate_world_shm",
    "governor",
    "is_exhaustion",
    "remaining_deadline",
    "set_active_deadline",
]
