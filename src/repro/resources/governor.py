"""Per-process resource governor: budget gate, accounting, deadline.

Every process that touches ``/dev/shm`` — the parent (staging arena) and
each rank — owns exactly one :class:`ResourceGovernor` for its lifetime
(:func:`governor`).  The transport's allocation/unlink choke points call
into it:

* :meth:`ResourceGovernor.gate` runs *before* a segment is created: it
  fires the resource fault sites (``enospc``/``stall`` clauses with
  ``site=arena`` / ``site=window``) and raises
  :class:`BudgetExceededError` — an ``OSError`` with ``errno.ENOSPC`` —
  when the world's live bytes plus the request would exceed the budget,
  so a budget denial flows through exactly the same errno-discriminating
  handlers as a real tmpfs ``ENOSPC``.
* :meth:`charge` / :meth:`release` keep the live-byte ledger, mirrored
  onto the world's shared :class:`~repro.resources.board.ResourceBoard`
  while one is configured (so the budget is enforced world-wide, not
  per process).
* :meth:`note_degradation` records each allocation that fell back to
  the p2p/pickle path; the per-run summaries become the
  :class:`~repro.resources.report.ResourceReport`.

The run-scoped state (board attachment, budget, fault injector, event
list) is installed with :meth:`configure` at rank entry and removed with
:meth:`deconfigure` at exit; the byte counters survive across runs
because arena free lists do too.

This module also owns the cooperative deadline:
:func:`set_active_deadline` installs an absolute ``time.monotonic``
timestamp (shipped from the parent, so every retry attempt shares one
budget) and :func:`check_deadline` raises
:class:`~repro.mpi.errors.DeadlineExceededError` naming the operation
and elapsed time.  Checks live at fences, blocking collectives/receives
and checkpoint steps — all ranks converge on the failure within seconds.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.resources.board import ResourceBoard


class BudgetExceededError(OSError):
    """A shm allocation was denied by the resource budget.

    Subclasses ``OSError`` with ``errno.ENOSPC`` so budget denials and
    real tmpfs exhaustion take the same degradation path; carries the
    machine-readable fields for reports and tests.
    """

    def __init__(self, purpose: str, nbytes: int, budget: int, usage: int):
        super().__init__(
            errno.ENOSPC,
            f"shm budget denied {purpose} allocation of {nbytes} B "
            f"(live {usage} B of {budget} B budget)",
        )
        self.purpose = purpose
        self.nbytes = nbytes
        self.budget = budget
        self.usage = usage

    def __reduce__(self):
        return (
            type(self),
            (self.purpose, self.nbytes, self.budget, self.usage),
        )


#: errno values that mean "resources exhausted" — the only failures the
#: degradation ladder absorbs; anything else is a real bug and re-raises.
EXHAUSTED_ERRNOS = frozenset({errno.ENOSPC, errno.ENOMEM})


def is_exhaustion(exc: BaseException) -> bool:
    """Whether an exception is a resource-exhaustion ``OSError``."""
    return (
        isinstance(exc, OSError) and exc.errno in EXHAUSTED_ERRNOS
    )


class ResourceGovernor:
    """Budget gate + live-byte ledger for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Lifetime counters (survive across runs, like the arena).
        self.live_bytes = 0
        self.peak_bytes = 0
        # Run-scoped state.
        self.budget = 0
        self._board: "ResourceBoard | None" = None
        self._slot = 0
        self._faults: "FaultInjector | None" = None
        self._events: list[tuple[str, str, int, str]] = []
        self._run_charged = 0
        self._run_released = 0
        self._run_peak_base = 0

    # -- run lifecycle -------------------------------------------------

    def configure(
        self,
        budget: int = 0,
        board: "ResourceBoard | None" = None,
        slot: int = 0,
        faults: "FaultInjector | None" = None,
    ) -> None:
        """Install the run-scoped budget/board/faults and reset the
        per-run summary counters."""
        with self._lock:
            self.budget = int(budget)
            self._board = board
            self._slot = slot
            self._faults = faults
            self._events = []
            self._run_charged = 0
            self._run_released = 0
            self._run_peak_base = self.live_bytes

    def deconfigure(self) -> dict[str, Any]:
        """Remove run-scoped state; returns the run's picklable summary."""
        summary = self.summary()
        with self._lock:
            self.budget = 0
            self._board = None
            self._faults = None
        return summary

    # -- allocation path ----------------------------------------------

    def usage(self) -> int:
        """Live shm bytes counted against the budget: world-wide when a
        board is configured, else this process alone."""
        board = self._board
        if board is not None:
            return board.total()
        return max(0, self.live_bytes)

    def gate(self, purpose: str, nbytes: int) -> None:
        """Pre-allocation check: fire resource fault sites, then deny
        the request if it would blow the budget."""
        faults = self._faults
        if faults is not None:
            faults.fire(purpose)
        budget = self.budget
        if budget and self.usage() + nbytes > budget:
            raise BudgetExceededError(purpose, nbytes, budget, self.usage())

    def charge(self, nbytes: int) -> None:
        with self._lock:
            self.live_bytes += nbytes
            self.peak_bytes = max(self.peak_bytes, self.live_bytes)
            self._run_charged += nbytes
            board = self._board
        if board is not None:
            board.add(self._slot, nbytes)

    def release(self, nbytes: int) -> None:
        with self._lock:
            self.live_bytes -= nbytes
            self._run_released += nbytes
            board = self._board
        if board is not None:
            board.add(self._slot, -nbytes)

    def note_degradation(
        self, site: str, kind: str, nbytes: int, detail: str = ""
    ) -> None:
        """Record one allocation that fell back to the p2p/pickle path."""
        with self._lock:
            self._events.append((site, kind, int(nbytes), detail))
            board = self._board
        if board is not None:
            board.note_degradation(self._slot)

    def summary(self) -> dict[str, Any]:
        """Picklable per-run summary for the report channel."""
        with self._lock:
            return {
                "events": list(self._events),
                "live": max(0, self.live_bytes),
                "peak": max(0, self.peak_bytes - self._run_peak_base),
                "charged": self._run_charged,
                "released": self._run_released,
            }


#: The one governor of this process.  Reset on fork so a child starts
#: from zero (its inherited arena references are re-zeroed the same way
#: by ``process_arena``'s at-fork hook).
_GOVERNOR = ResourceGovernor()


def governor() -> ResourceGovernor:
    """This process's resource governor (always present)."""
    return _GOVERNOR


def _reset_after_fork() -> None:  # pragma: no cover - exercised via forks
    global _GOVERNOR, _DEADLINE
    _GOVERNOR = ResourceGovernor()
    _DEADLINE = None


os.register_at_fork(after_in_child=_reset_after_fork)


# -- cooperative deadline ----------------------------------------------

#: ``(absolute monotonic timestamp, total budget seconds)`` or None.
_DEADLINE: tuple[float, float] | None = None


def set_active_deadline(
    deadline: tuple[float, float] | None,
) -> tuple[float, float] | None:
    """Install the run deadline; returns the previous one so callers can
    restore it (always pair with a ``finally``)."""
    global _DEADLINE
    previous = _DEADLINE
    _DEADLINE = deadline
    return previous


def active_deadline() -> tuple[float, float] | None:
    """The installed ``(timestamp, budget)`` deadline, if any."""
    return _DEADLINE


def remaining_deadline() -> float | None:
    """Seconds left until the deadline (None when no deadline is set)."""
    if _DEADLINE is None:
        return None
    return _DEADLINE[0] - time.monotonic()


def check_deadline(what: str) -> None:
    """Raise ``DeadlineExceededError`` if the run deadline has passed.

    Cheap enough for poll loops: one monotonic read when a deadline is
    installed, nothing otherwise.
    """
    deadline = _DEADLINE
    if deadline is None:
        return
    now = time.monotonic()
    ts, total = deadline
    if now < ts:
        return
    from repro.mpi.errors import DeadlineExceededError

    raise DeadlineExceededError(
        f"deadline of {total:.6g}s exceeded after {total + (now - ts):.3f}s "
        f"in {what}"
    )
