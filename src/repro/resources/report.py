"""Per-run resource accounting results: degradation events and totals.

Everything here is plain data.  Rank-side summaries are small picklable
dicts produced by :meth:`repro.resources.governor.ResourceGovernor.summary`
and ride the existing worker→parent report channel; the parent folds them
into one :class:`ResourceReport` surfaced on ``SpmdResult.resources``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class DegradationEvent:
    """One allocation that fell back from shared memory to p2p/pickle.

    ``site`` names the allocation purpose (``"arena"``, ``"window"``),
    ``kind`` the fallback route taken (``"pickle"`` for arena staging,
    ``"p2p"`` for collective windows), ``nbytes`` the allocation that
    was refused, and ``detail`` the cause — a budget denial or a real
    ``ENOSPC``/``ENOMEM``, indistinguishable by design.
    """

    rank: int
    site: str
    kind: str
    nbytes: int
    detail: str = ""

    def render(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"rank {self.rank}: {self.site} allocation of {self.nbytes} B "
            f"degraded [{self.kind}]{extra}"
        )


@dataclass
class ResourceReport:
    """Resource-governance outcome of one ``run_spmd`` call.

    ``degradations`` lists every shared-memory allocation that fell back
    to the p2p/pickle path (results are bit-identical either way — the
    report is how callers observe that the fast path was constrained).
    Byte totals aggregate the per-rank governors; ``admission_wait`` is
    the time the launch spent queued at admission control.
    """

    degradations: list[DegradationEvent] = field(default_factory=list)
    #: live shm bytes still attributed to each rank at run end (arena
    #: free lists, persistent windows); keyed by world rank, -1 = parent.
    rank_live_bytes: dict[int, int] = field(default_factory=dict)
    peak_bytes: int = 0
    charged_bytes: int = 0
    released_bytes: int = 0
    admission_wait: float = 0.0
    estimate_bytes: int = 0
    budget_bytes: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    @classmethod
    def from_rank_summaries(
        cls, summaries: dict[int, dict[str, Any] | None]
    ) -> "ResourceReport":
        """Fold per-rank governor summaries into one report."""
        report = cls()
        for rank, summary in sorted(summaries.items()):
            if not summary:
                continue
            for site, kind, nbytes, detail in summary.get("events", ()):
                report.degradations.append(
                    DegradationEvent(rank, site, kind, int(nbytes), detail)
                )
            report.rank_live_bytes[rank] = int(summary.get("live", 0))
            report.peak_bytes += int(summary.get("peak", 0))
            report.charged_bytes += int(summary.get("charged", 0))
            report.released_bytes += int(summary.get("released", 0))
        return report

    def describe(self) -> str:
        lines = [
            f"shm charged {self.charged_bytes} B / released "
            f"{self.released_bytes} B (peak ~{self.peak_bytes} B, budget "
            f"{self.budget_bytes or 'unlimited'}, estimate "
            f"{self.estimate_bytes} B, admission wait "
            f"{self.admission_wait * 1e3:.1f} ms)"
        ]
        if not self.degradations:
            lines.append("no degradations: every allocation stayed on shm")
        for event in self.degradations:
            lines.append(event.render())
        return "\n".join(lines)
