"""Admission control: bound concurrent worlds and their shm footprint.

Enforced once per launch at the ``run_spmd`` boundary, *before* any rank
starts.  The singleton :class:`AdmissionController` tracks every active
world with its up-front footprint estimate (sized from the configured
window-slot/arena geometry — the perf model's memory picture of a
launch) and reconciles estimates against actual allocations through the
usage sources the backends register (warm-pool resource boards and the
parent governor's staging bytes): admission usage is
``max(live bytes, sum of active estimates)``, so a burst of admitted
launches is bounded by its promises until real allocations take over.

Over-budget launches first trigger the registered recyclers (idle warm
pools are shut down LRU-first, returning their arena free lists and
windows to the budget), then wait with bounded backoff for running
worlds to finish, and finally raise
:class:`~repro.mpi.errors.AdmissionError` with a machine-readable
``reason`` (``"max_worlds"`` or ``"shm_budget"``).

Degradation remains per allocation *inside* an admitted world (see
:mod:`repro.resources.governor`); admission only rejects launches whose
minimal footprint cannot fit at all, or queues them briefly when the
budget is transiently full.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import RuntimeConfig

#: Longest a launch waits for budget/world slots before being rejected.
ADMISSION_WAIT = 2.0
_POLL = 0.02

#: Matches process_transport: minimum arena bucket / adaptive window slot.
_MIN_SLOT = 4096
_WINDOW_FLAG_ROWS = 6


def estimate_world_shm(
    n_ranks: int,
    config: "RuntimeConfig | None" = None,
    payload_hint: int = 0,
) -> int:
    """Up-front shm footprint estimate for one world, in bytes.

    Models the launch-time allocations the transport will make: one
    collective window (six int64 flag rows plus a data slot per rank,
    sized from ``window_slot`` when pinned, else from the payload hint)
    and one arena bucket per rank for payload staging.  Deliberately a
    *floor*, reconciled upward against actual allocations by the
    controller; drivers with a better model can pass
    ``run_spmd(shm_estimate=)`` instead.
    """
    windows = config.windows if config is not None else True
    arena = config.arena if config is not None else True
    slot = config.window_slot if config is not None else 0
    if slot <= 0:
        slot = max(_MIN_SLOT, int(payload_hint))
    total = 0
    if windows:
        total += _WINDOW_FLAG_ROWS * 8 * n_ranks + 8 * n_ranks
        total += n_ranks * slot
    if arena and payload_hint:
        bucket = _MIN_SLOT
        while bucket < payload_hint:
            bucket <<= 1
        total += n_ranks * bucket
    return total


@dataclass
class _World:
    ticket: int
    n_ranks: int
    estimate: int


class AdmissionController:
    """Process-wide launch gate for SPMD worlds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._seq = 0
        self._active: dict[int, _World] = {}
        self._usage_sources: list[Callable[[], int]] = []
        self._recyclers: list[Callable[[int], int]] = []

    # -- wiring --------------------------------------------------------

    def register_usage_source(self, source: Callable[[], int]) -> None:
        """Add a callable returning live shm bytes (e.g. a pool board)."""
        with self._lock:
            self._usage_sources.append(source)

    def unregister_usage_source(self, source: Callable[[], int]) -> None:
        with self._lock:
            try:
                self._usage_sources.remove(source)
            except ValueError:
                pass

    def register_recycler(self, recycler: Callable[[int], int]) -> None:
        """Add a callable that frees idle resources (LRU pool shutdown);
        takes the bytes needed, returns the bytes it freed."""
        with self._lock:
            if recycler not in self._recyclers:
                self._recyclers.append(recycler)

    # -- accounting ----------------------------------------------------

    def live_bytes(self) -> int:
        """Measured live shm bytes across all registered sources."""
        from repro.resources.governor import governor

        total = max(0, governor().live_bytes)
        with self._lock:
            sources = list(self._usage_sources)
        for source in sources:
            try:
                total += max(0, source())
            except Exception:
                # A source backed by a reclaimed board must not wedge
                # admission; it will be unregistered by its owner.
                continue
        return total

    def usage(self) -> int:
        """Bytes counted against the budget: actual allocations
        reconciled against the active worlds' promises."""
        with self._lock:
            promised = sum(w.estimate for w in self._active.values())
        return max(self.live_bytes(), promised)

    def active_worlds(self) -> int:
        with self._lock:
            return len(self._active)

    # -- the gate ------------------------------------------------------

    def admit(
        self,
        n_ranks: int,
        estimate: int,
        config: "RuntimeConfig",
        max_wait: float = ADMISSION_WAIT,
    ) -> tuple[int, float]:
        """Admit one world or raise ``AdmissionError``.

        Returns ``(ticket, wait_seconds)``; the caller must pass the
        ticket to :meth:`release` in a ``finally``.
        """
        max_worlds = config.max_worlds
        budget = config.shm_budget
        start = time.monotonic()
        deny_reason = None
        with self._cond:
            while True:
                deny_reason = self._blocked(n_ranks, estimate, config)
                if deny_reason == "shm_budget":
                    # Free idle resources (LRU pools first), then recheck.
                    self._recycle_locked(estimate)
                    deny_reason = self._blocked(n_ranks, estimate, config)
                if deny_reason is None:
                    if budget and self._tight(estimate, budget):
                        # Admitted, but the budget is tightening: recycle
                        # idle pools so the new world starts with room.
                        self._recycle_locked(estimate)
                    self._seq += 1
                    ticket = self._seq
                    self._active[ticket] = _World(ticket, n_ranks, estimate)
                    return ticket, time.monotonic() - start
                waited = time.monotonic() - start
                if waited >= max_wait:
                    break
                self._cond.wait(min(_POLL, max_wait - waited))
        from repro.mpi.errors import AdmissionError

        if deny_reason == "max_worlds":
            raise AdmissionError(
                f"admission denied after {max_wait:.3g}s: "
                f"{self.active_worlds()} world(s) active, "
                f"REPRO_MAX_WORLDS={max_worlds}",
                reason="max_worlds",
            )
        raise AdmissionError(
            f"admission denied after {max_wait:.3g}s: estimated footprint "
            f"{estimate} B cannot fit live usage {self.usage()} B within "
            f"REPRO_SHM_BUDGET={budget}",
            reason="shm_budget",
        )

    def release(self, ticket: int) -> None:
        with self._cond:
            self._active.pop(ticket, None)
            self._cond.notify_all()

    def _blocked(
        self, n_ranks: int, estimate: int, config: "RuntimeConfig"
    ) -> str | None:
        """Why this world cannot start right now (None = admissible).
        Caller holds the lock."""
        if config.max_worlds and len(self._active) >= config.max_worlds:
            return "max_worlds"
        budget = config.shm_budget
        # The sole world is always admissible: per-allocation degradation
        # inside the run is the contract — admission only queues/rejects
        # launches that would *add* to live worlds beyond the budget.
        if budget and self._active:
            promised = sum(w.estimate for w in self._active.values())
            if max(self._live_unlocked(), promised) + estimate > budget:
                return "shm_budget"
        return None

    def _tight(self, estimate: int, budget: int) -> bool:
        """Whether admitting ``estimate`` more bytes crowds the budget.
        Caller holds the lock."""
        return self._live_unlocked() + estimate > budget

    def _live_unlocked(self) -> int:
        """``live_bytes()`` callable while holding the controller lock."""
        self._lock.release()
        try:
            return self.live_bytes()
        finally:
            self._lock.acquire()

    def _recycle_locked(self, needed: int) -> int:
        """Run registered recyclers (idle pools, LRU-first); lock held."""
        recyclers = list(self._recyclers)
        self._lock.release()
        try:
            freed = 0
            for recycler in recyclers:
                try:
                    freed += recycler(needed)
                except Exception:
                    continue
                if freed >= needed:
                    break
            return freed
        finally:
            self._lock.acquire()


_CONTROLLER = AdmissionController()


def admission_controller() -> AdmissionController:
    """The process-wide admission controller."""
    return _CONTROLLER
