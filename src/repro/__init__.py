"""repro — parallel Tucker tensor compression for large-scale scientific data.

A from-scratch Python reproduction of W. Austin, G. Ballard, T. G. Kolda,
*Parallel Tensor Compression for Large-Scale Scientific Data* (IPDPS 2016),
the system that became TuckerMPI.  See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quick start (sequential)::

    import numpy as np
    from repro import sthosvd
    from repro.data import hcci_proxy, center_and_scale

    ds = hcci_proxy()
    x, scaling = center_and_scale(ds.tensor, ds.species_mode)
    result = sthosvd(x, tol=1e-3)
    print(result.ranks, result.decomposition.compression_ratio)

Quick start (distributed, on the simulated MPI runtime)::

    from repro.mpi import run_spmd, CartGrid
    from repro.distributed import DistTensor, dist_sthosvd

    def program(comm):
        grid = CartGrid(comm, (2, 2, 1, 1))
        dt = DistTensor.from_global(grid, x)
        return dist_sthosvd(dt, tol=1e-3).to_tucker()

    tucker = run_spmd(4, program)[0]

Subpackages
-----------
``repro.core``         sequential Tucker algorithms (ST-HOSVD, HOOI, T-HOSVD)
``repro.distributed``  the paper's parallel algorithms (Algs. 3-5 + drivers)
``repro.mpi``          simulated distributed-memory message-passing runtime
``repro.tensor``       dense tensor kernels (unfoldings, TTM, Gram, eig)
``repro.perfmodel``    alpha-beta-gamma performance model (Secs. V-VI)
``repro.data``         synthetic combustion-like datasets (Sec. VII proxies)
``repro.io``           compressed-model serialization
``repro.config``       typed runtime configuration (RuntimeConfig) and the
                       single resolver for every ``REPRO_*`` switch
"""

from repro.config import RuntimeConfig
from repro.core import (
    HooiResult,
    SthosvdResult,
    TuckerTensor,
    compression_ratio,
    hooi,
    hosvd,
    max_abs_error,
    normalized_rms,
    sthosvd,
)

__version__ = "1.0.0"

__all__ = [
    "RuntimeConfig",
    "TuckerTensor",
    "SthosvdResult",
    "HooiResult",
    "sthosvd",
    "hooi",
    "hosvd",
    "normalized_rms",
    "max_abs_error",
    "compression_ratio",
    "__version__",
]
