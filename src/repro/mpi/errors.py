"""Exception hierarchy for the simulated MPI runtime."""

from __future__ import annotations


class MpiError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class DeadlockError(MpiError):
    """A blocking receive or collective waited past its timeout.

    In an SPMD program this almost always means a mismatched send/recv pair,
    a collective invoked by only a subset of the communicator, or mismatched
    collective ordering between ranks.
    """


class BufferMismatchError(MpiError):
    """A received message did not match the posted receive buffer.

    Raised when dtype or shape (element count) of an incoming message is
    incompatible with the buffer supplied to ``Recv``.
    """


class CommunicatorError(MpiError):
    """Invalid communicator construction or usage (bad rank, bad split...)."""


class SpmdError(MpiError):
    """One or more ranks of an SPMD section raised an exception.

    Carries the per-rank exceptions so tests can assert on the root cause.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        detail = "; ".join(
            f"rank {rank}: {type(exc).__name__}: {exc}"
            for rank, exc in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} rank(s) failed: {detail}")
