"""Exception hierarchy for the simulated MPI runtime."""

from __future__ import annotations


class MpiError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class DeadlockError(MpiError):
    """A blocking receive or collective waited past its timeout.

    In an SPMD program this almost always means a mismatched send/recv pair,
    a collective invoked by only a subset of the communicator, or mismatched
    collective ordering between ranks.  Under ``REPRO_SANITIZE >= 1`` the
    sanitizer annotates the error with the last collective the rank entered
    (operation, sequence number, call site), so post-mortems name the hung
    call instead of a bare timeout.
    """


class RankDeadError(MpiError):
    """A sibling rank process died (crash, signal, ``os._exit``).

    Raised promptly on every surviving rank — and synthesized by the
    parent for the dead rank itself — when the process backend's monitor
    observes a child exit without a report, instead of letting the
    survivors spin out the full deadlock timeout.  Carries the dead
    rank, its exit code (negative values are ``-signum``), and, when the
    run had a status board, the dead rank's last recorded collective
    context.
    """

    def __init__(
        self,
        message: str,
        dead_rank: int,
        exitcode: int | None = None,
    ):
        super().__init__(message)
        self.dead_rank = dead_rank
        self.exitcode = exitcode

    def __reduce__(self):
        # Exception.__reduce__ replays only self.args; replay the full
        # signature so instances survive the worker->parent pickle hop.
        return (type(self), (self.args[0], self.dead_rank, self.exitcode))


class DeadlineExceededError(MpiError):
    """The run blew past its cooperative deadline (``REPRO_DEADLINE``).

    Checked at fences, blocking collectives/receives and checkpoint steps:
    every rank that reaches a check after the deadline raises promptly,
    naming the operation it was in and the elapsed time, so a stalled
    world converges to a clean multi-rank failure within seconds instead
    of burning the full deadlock timeout.  The deadline is an absolute
    monotonic timestamp shared by every retry attempt, so a relaunched
    attempt only gets the remaining budget.
    """


class AdmissionError(MpiError):
    """A launch was refused by admission control.

    Raised at the ``run_spmd`` boundary — before any rank starts — when
    the world cannot be admitted within the configured budget after
    bounded backoff.  ``reason`` is machine-readable: ``"max_worlds"``
    (too many concurrent worlds, ``REPRO_MAX_WORLDS``) or
    ``"shm_budget"`` (the estimated footprint cannot fit the live
    ``REPRO_SHM_BUDGET`` even after recycling idle pools).
    """

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.args[0], self.reason))


class FaultInjectedError(MpiError):
    """An injected fault fired (``REPRO_FAULTS`` / ``run_spmd(faults=)``).

    Raised by ``kind=exception`` faults on any backend and by
    ``kind=crash`` faults on the thread backend (where killing the
    process would take the test runner down with it); ``kind=crash`` on
    the process backend SIGKILLs the rank instead and surfaces as
    :class:`RankDeadError`.
    """


class BufferMismatchError(MpiError):
    """A received message did not match the posted receive buffer.

    Raised when dtype or shape (element count) of an incoming message is
    incompatible with the buffer supplied to ``Recv``.
    """


class CommunicatorError(MpiError):
    """Invalid communicator construction or usage (bad rank, bad split...)."""


class SanitizerError(MpiError):
    """Base class for SPMD sanitizer diagnostics (``REPRO_SANITIZE >= 1``).

    Every concrete subclass carries rank context (group rank, world rank)
    and the offending call site in its message, so a failure names the
    line of SPMD code that broke the protocol, not runtime internals.
    """


class CollectiveMismatchError(SanitizerError):
    """Ranks of one communicator posted diverging collectives.

    Raised instead of the deadlock the divergence would otherwise cause:
    the sanitizer cross-checks a per-collective signature digest (operation
    name, sequence number, root, reduction op) on the window size fence —
    or over an uncharged point-to-point exchange on transports without
    windows — and reports every diverging rank with its call site.
    """


class RequestLeakError(SanitizerError):
    """A non-blocking request was never waited before finalize.

    An unwaited request means deferred completion (and its ledger charge)
    never ran — a correctness bug even when the payload was delivered by
    the eager protocol.  The message lists every leaked request with the
    posting call site.
    """


class RequestStateError(SanitizerError):
    """A non-blocking request was waited more than once.

    The runtime caches the completed value, so a double wait *works*, but
    under MPI discipline a request handle is dead after its wait; a second
    wait usually indicates confused pipeline bookkeeping.
    """


class WindowProtocolError(SanitizerError):
    """A collective-window slot was read before its round's write fence.

    Detected at ``REPRO_SANITIZE=2`` through per-slot generation counters:
    a read of a slot whose generation lags the current exchange sequence
    observed stale bytes (happens-before violation).
    """


def _describe_failure(exc: BaseException) -> str:
    detail = f"{type(exc).__name__}: {exc}"
    notes = getattr(exc, "__notes__", None)
    if notes:
        detail += " [" + "; ".join(str(n) for n in notes) + "]"
    return detail


class SpmdError(MpiError):
    """One or more ranks of an SPMD section raised an exception.

    Carries the per-rank exceptions so tests can assert on the root cause.
    Exception notes (e.g. the sanitizer's collective context on deadlocks)
    are folded into the summary line.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        detail = "; ".join(
            f"rank {rank}: {_describe_failure(exc)}"
            for rank, exc in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} rank(s) failed: {detail}")
