"""Cartesian processor grids (paper Sec. IV).

An order-N tensor is distributed over a logical ``P1 x P2 x ... x PN``
processor grid.  :class:`CartGrid` wraps a flat communicator with the grid
geometry and provides the two sub-communicators the algorithms need:

* the *mode-n processor column* — the ``Pn`` ranks that share all grid
  coordinates except coordinate ``n`` (paper: ``myProcCol``); and
* the *mode-n processor row* (or slice) — the ``P / Pn`` ranks that share
  coordinate ``n`` (paper: ``myProcRow``).

Grid coordinates map to flat ranks in C (row-major) order: coordinate N-1
varies fastest.  Sub-communicators are created once per mode and cached;
communicator construction is charged as out-of-band setup (zero model cost),
matching the paper's assumption of a fixed grid.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.comm import Communicator
from repro.mpi.errors import CommunicatorError
from repro.util.validation import check_shape_like, prod


class CartGrid:
    """An N-way Cartesian view of a communicator."""

    def __init__(self, comm: Communicator, dims: tuple[int, ...] | list[int]):
        dims = check_shape_like(dims, "dims")
        if prod(dims) != comm.size:
            raise CommunicatorError(
                f"grid {dims} has {prod(dims)} slots but communicator has "
                f"{comm.size} ranks"
            )
        self._comm = comm
        self._dims = dims
        self._coords = tuple(
            int(c) for c in np.unravel_index(comm.rank, dims, order="C")
        )
        self._col_cache: dict[int, Communicator] = {}
        self._row_cache: dict[int, Communicator] = {}

    # -- geometry ------------------------------------------------------------

    @property
    def comm(self) -> Communicator:
        return self._comm

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def ndim(self) -> int:
        return len(self._dims)

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's grid coordinates ``(p1, ..., pN)``."""
        return self._coords

    def rank_of(self, coords: tuple[int, ...] | list[int]) -> int:
        """Flat rank of the processor at ``coords``."""
        if len(coords) != self.ndim:
            raise CommunicatorError(
                f"coords {coords} do not match grid order {self.ndim}"
            )
        for c, d in zip(coords, self._dims):
            if not 0 <= c < d:
                raise CommunicatorError(f"coords {coords} outside grid {self._dims}")
        return int(np.ravel_multi_index(coords, self._dims, order="C"))

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of a flat rank."""
        if not 0 <= rank < self._comm.size:
            raise CommunicatorError(f"rank {rank} outside communicator")
        return tuple(int(c) for c in np.unravel_index(rank, self._dims, order="C"))

    def shifted(self, mode: int, offset: int) -> int:
        """Flat rank of the processor at ``coords`` shifted cyclically in ``mode``.

        Used by the Gram ring exchange (Alg. 4 lines 7-8).
        """
        coords = list(self._coords)
        coords[mode] = (coords[mode] + offset) % self._dims[mode]
        return self.rank_of(tuple(coords))

    # -- sub-communicators -----------------------------------------------------

    def mode_column(self, mode: int) -> Communicator:
        """Communicator over the ``P_mode`` ranks sharing all coords but ``mode``.

        The new communicator's rank order follows grid coordinate ``mode``,
        i.e. local rank equals ``coords[mode]``.
        """
        if not 0 <= mode < self.ndim:
            raise CommunicatorError(f"mode {mode} outside grid order {self.ndim}")
        if mode not in self._col_cache:
            fixed = tuple(c for i, c in enumerate(self._coords) if i != mode)
            color = hash(("col", mode, fixed))
            sub = self._comm.split(color=color, key=self._coords[mode])
            assert sub is not None
            self._col_cache[mode] = sub
        return self._col_cache[mode]

    def mode_row(self, mode: int) -> Communicator:
        """Communicator over the ``P / P_mode`` ranks sharing coordinate ``mode``.

        Rank order follows the C-order linearization of the remaining
        coordinates, so all mode-rows enumerate peers consistently.
        """
        if not 0 <= mode < self.ndim:
            raise CommunicatorError(f"mode {mode} outside grid order {self.ndim}")
        if mode not in self._row_cache:
            color = hash(("row", mode, self._coords[mode]))
            others_dims = tuple(d for i, d in enumerate(self._dims) if i != mode)
            others = tuple(c for i, c in enumerate(self._coords) if i != mode)
            key = (
                int(np.ravel_multi_index(others, others_dims, order="C"))
                if others_dims
                else 0
            )
            sub = self._comm.split(color=color, key=key)
            assert sub is not None
            self._row_cache[mode] = sub
        return self._row_cache[mode]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CartGrid(dims={self._dims}, coords={self._coords})"
